"""vschedlint: rule families, suppression/baseline semantics, tree health.

The checker ships from ``tools/`` (it is a dev tool, not simulation code),
so the tests put that directory on ``sys.path`` themselves.
"""

import json
import subprocess
import sys
from collections import Counter
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent
TOOLS = REPO / "tools"
if str(TOOLS) not in sys.path:
    sys.path.insert(0, str(TOOLS))

from vschedlint import baseline as baseline_mod  # noqa: E402
from vschedlint.checker import collect_records, lint_paths  # noqa: E402
from vschedlint.findings import RULES, finalize_fingerprints  # noqa: E402
from vschedlint.index import IndexCache  # noqa: E402

FIXTURES = Path(__file__).parent / "fixtures" / "vschedlint" / "repro"
SHIPPED_BASELINE = TOOLS / "vschedlint" / "baseline.json"


def lint_fixture(relpath):
    return lint_paths([str(FIXTURES / relpath)])


def rules_of(findings):
    return Counter(f.rule for f in findings)


# ----------------------------------------------------------------------
# Rule families: each must fire on its bad fixture and stay quiet on the
# clean one.
# ----------------------------------------------------------------------
class TestLayeringRules:
    def test_bad_layering_fixture(self):
        got = rules_of(lint_fixture("guest/bad_layering.py"))
        assert got == {"layer-order": 1, "guest-isolation": 2,
                       "guest-abi": 1}

    def test_clean_guest_module(self):
        assert lint_fixture("guest/clean_layering.py") == []

    def test_upward_import_flagged(self):
        got = rules_of(lint_fixture("hypervisor/bad_order.py"))
        assert got == {"layer-order": 1}

    def test_neutral_module_exempt(self):
        assert lint_fixture("hypervisor/clean_neutral.py") == []

    def test_unknown_layer(self):
        got = rules_of(lint_fixture("mystery/widget.py"))
        assert got == {"layer-unknown": 1}

    def test_heap_encapsulation_flagged_outside_sim(self):
        # import heapq + two `._heap` attribute touches = 3 findings
        got = rules_of(lint_fixture("experiments/bad_heapq.py"))
        assert got == {"heap-encapsulation": 3}

    def test_heap_use_sanctioned_inside_sim(self):
        assert lint_fixture("sim/clean_heapq.py") == []


class TestDeterminismRules:
    def test_bad_determinism_fixture(self):
        got = rules_of(lint_fixture("sim/bad_determinism.py"))
        assert got == {"wall-clock": 2, "unseeded-rng": 2,
                       "identity-key": 1, "unordered-iter": 2}

    def test_clean_determinism_fixture(self):
        assert lint_fixture("sim/clean_determinism.py") == []

    def test_monotonic_allowed_in_experiments(self):
        assert lint_fixture("experiments/clean_clock.py") == []

    def test_wallclock_banned_everywhere(self):
        got = rules_of(lint_fixture("experiments/bad_wallclock.py"))
        assert got == {"wall-clock": 2}


class TestElisionRules:
    def test_bad_elision_fixture(self):
        findings = lint_fixture("guest/bad_elision.py")
        assert rules_of(findings) == {"elision-sync": 2}
        assert {f.symbol for f in findings} == {
            "Sampler.read_stale", "Sampler.write_stale"}

    def test_clean_elision_fixture(self):
        assert lint_fixture("guest/clean_elision.py") == []


class TestSnapshotRules:
    def test_bad_snapshot_fixture(self):
        got = rules_of(lint_fixture("sim/bad_snapshot.py"))
        assert got == {"snapshot-closure": 3, "snapshot-bound-builtin": 1,
                       "snapshot-mutable-default": 1,
                       "snapshot-generator": 2}

    def test_clean_snapshot_fixture(self):
        assert lint_fixture("sim/clean_snapshot.py") == []

    def test_cross_module_mutable_default(self):
        findings = lint_paths([str(FIXTURES / "sim" / "helper_defaults.py"),
                               str(FIXTURES / "sim" / "bad_crossmod.py")])
        assert rules_of(findings) == {"snapshot-mutable-default": 1}
        assert findings[0].path.endswith("bad_crossmod.py")

    def test_unresolvable_import_stays_quiet(self):
        # Alone, ``drain`` cannot be resolved: under-approximate, don't
        # guess.
        assert lint_fixture("sim/bad_crossmod.py") == []


class TestCacheKeyRules:
    def test_bad_cachekeys_partial_scan(self):
        # Partial scan: the unresolvable repro import is NOT a gap (every
        # sibling would be); the third-party gap and hidden inputs are.
        got = rules_of(lint_fixture("experiments/bad_cachekeys.py"))
        assert got == {"fingerprint-gap": 1, "hidden-env-input": 2,
                       "hidden-file-input": 2}

    def test_bad_cachekeys_full_scan(self):
        # With the package root in the index the repro-tree gap fires too.
        findings = lint_paths([
            str(FIXTURES / "__init__.py"),
            str(FIXTURES / "experiments" / "bad_cachekeys.py")])
        got = rules_of(findings)
        assert got == {"fingerprint-gap": 2, "hidden-env-input": 2,
                       "hidden-file-input": 2}

    def test_orchestration_reads_out_of_scope(self):
        # The env read in ``_worker_count`` is not unit-reachable: quiet.
        assert lint_fixture("experiments/clean_cachekeys.py") == []


class TestLeakageRules:
    def test_bad_leakage_fixture(self):
        findings = lint_fixture("sim/bad_leakage.py")
        assert rules_of(findings) == {"cross-unit-state": 3,
                                      "class-attr-state": 2}
        assert {f.symbol for f in findings} == {
            "memoize", "trace", "bump_runs",
            "WarmPool.mark_reuse", "WarmPool.reset"}

    def test_clean_leakage_fixture(self):
        assert lint_fixture("sim/clean_leakage.py") == []


class TestGuardParity:
    """Every guard_world runtime-rejection class has a static twin.

    The same registrations as ``fixtures .../sim/bad_snapshot.py::wire``
    are made against a real engine; each offender phrase in the runtime
    error must be matched, occurrence for occurrence, by the VSL4xx rule
    that catches it at lint time.
    """

    PHRASE_TO_RULE = {
        "closure": "snapshot-closure",
        "bound builtin": "snapshot-bound-builtin",
        "mutable defaults": "snapshot-mutable-default",
        "live generator": "snapshot-generator",
    }

    def test_runtime_rejections_have_static_twins(self):
        from repro.sim.engine import Engine
        from repro.sim.snapshot import SnapshotError, guard_world

        def make_cb(tag):
            def inner():
                return tag
            return inner

        def gen_events():
            yield 1

        def has_mutable_default(acc=[]):
            acc.append(1)

        eng = Engine()
        leak, sink = [], []
        eng.call_at(1000, lambda: leak.append(1))

        def nested():
            return len(leak)
        eng.call_at(2000, nested)
        eng.call_at(3000, make_cb("x"))
        eng.call_at(4000, sink.append)
        eng.call_in(5000, has_mutable_default)
        eng.call_at(6000, print, (x for x in leak))
        eng.call_at(7000, print, gen_events())

        with pytest.raises(SnapshotError) as exc:
            guard_world(eng)
        msg = str(exc.value)
        static = rules_of(lint_fixture("sim/bad_snapshot.py"))
        assert sum(static.values()) == 7
        for phrase, rule in self.PHRASE_TO_RULE.items():
            runtime_hits = msg.count(phrase)
            assert runtime_hits > 0, (phrase, msg)
            assert static[rule] == runtime_hits, (phrase, rule, msg)


# ----------------------------------------------------------------------
# Project index cache
# ----------------------------------------------------------------------
class TestIndexCache:
    def _write(self, path, body="def f():\n    return 1\n"):
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(body)

    def test_second_run_hits(self, tmp_path):
        mod = tmp_path / "repro" / "sim" / "mod.py"
        self._write(mod)
        cache_file = tmp_path / "cache.json"

        first = IndexCache(cache_file)
        collect_records([str(mod)], first)
        assert (first.hits, first.misses) == (0, 1)

        second = IndexCache(cache_file)
        records = collect_records([str(mod)], second)
        assert (second.hits, second.misses) == (1, 0)
        assert records[0].modname == "repro.sim.mod"

    def test_edit_misses(self, tmp_path):
        mod = tmp_path / "repro" / "sim" / "mod.py"
        self._write(mod)
        cache_file = tmp_path / "cache.json"
        collect_records([str(mod)], IndexCache(cache_file))

        self._write(mod, "def g():\n    return 2\n")
        cache = IndexCache(cache_file)
        records = collect_records([str(mod)], cache)
        assert (cache.hits, cache.misses) == (0, 1)
        assert "g" in records[0].functions

    def test_rename_and_delete_prune(self, tmp_path):
        old = tmp_path / "repro" / "sim" / "old.py"
        self._write(old)
        cache_file = tmp_path / "cache.json"
        collect_records([str(old)], IndexCache(cache_file))

        new = tmp_path / "repro" / "sim" / "new.py"
        old.rename(new)
        cache = IndexCache(cache_file)
        collect_records([str(new)], cache)
        assert (cache.hits, cache.misses) == (0, 1)  # new path, fresh parse
        assert str(old) not in cache._entries        # stale entry pruned
        assert str(new) in cache._entries

    def test_cached_records_reproduce_findings(self, tmp_path):
        src = (FIXTURES / "sim" / "bad_determinism.py").read_text()
        mod = tmp_path / "repro" / "sim" / "mod.py"
        self._write(mod, src)
        cache_file = tmp_path / "cache.json"

        cold = lint_paths([str(mod)], IndexCache(cache_file))
        warm_cache = IndexCache(cache_file)
        warm = lint_paths([str(mod)], warm_cache)
        assert warm_cache.hits == 1
        assert [f.render() for f in warm] == [f.render() for f in cold]

    def test_corrupt_cache_ignored(self, tmp_path):
        mod = tmp_path / "repro" / "sim" / "mod.py"
        self._write(mod)
        cache_file = tmp_path / "cache.json"
        cache_file.write_text("{not json")
        cache = IndexCache(cache_file)
        collect_records([str(mod)], cache)
        assert (cache.hits, cache.misses) == (0, 1)

    def test_linter_edit_invalidates_everything(self, tmp_path):
        mod = tmp_path / "repro" / "sim" / "mod.py"
        self._write(mod)
        cache_file = tmp_path / "cache.json"
        collect_records([str(mod)], IndexCache(cache_file))

        stale = json.loads(cache_file.read_text())
        stale["tool"] = "0" * 64  # as if the linter's own sources changed
        cache_file.write_text(json.dumps(stale))
        cache = IndexCache(cache_file)
        collect_records([str(mod)], cache)
        assert (cache.hits, cache.misses) == (0, 1)


# ----------------------------------------------------------------------
# Suppression semantics
# ----------------------------------------------------------------------
class TestSuppressions:
    def test_valid_suppressions_silence(self):
        assert lint_fixture("sim/suppressed_ok.py") == []

    def test_broken_suppressions(self):
        got = rules_of(lint_fixture("sim/suppressed_bad.py"))
        assert got == {"bad-suppression": 2, "wall-clock": 1,
                       "unused-suppression": 1}

    def test_meta_rules_unsuppressable(self, tmp_path):
        mod = tmp_path / "repro" / "sim" / "sneaky.py"
        mod.parent.mkdir(parents=True)
        mod.write_text(
            "def f():\n"
            "    return 1  # vschedlint: disable=bad-suppression -- nope\n")
        got = rules_of(lint_paths([str(mod)]))
        assert got == {"bad-suppression": 1}


# ----------------------------------------------------------------------
# Baseline semantics
# ----------------------------------------------------------------------
class TestBaseline:
    def test_roundtrip_marks_baselined(self, tmp_path):
        findings = lint_fixture("sim/bad_determinism.py")
        assert findings
        bl = tmp_path / "baseline.json"
        n = baseline_mod.write_baseline(findings, bl)
        assert n == len(findings)

        fresh = lint_fixture("sim/bad_determinism.py")
        entries = baseline_mod.load_baseline(bl)
        baseline_mod.apply_baseline(fresh, entries, str(bl))
        assert all(f.baselined for f in fresh)

    def test_stale_entry_reported(self, tmp_path):
        findings = lint_fixture("sim/bad_determinism.py")
        bl = tmp_path / "baseline.json"
        baseline_mod.write_baseline(findings, bl)

        clean = lint_fixture("sim/clean_determinism.py")
        entries = baseline_mod.load_baseline(bl)
        baseline_mod.apply_baseline(clean, entries, str(bl))
        got = rules_of(clean)
        assert got["stale-baseline"] == len(findings)

    def test_fingerprints_survive_line_shifts(self, tmp_path):
        src = (FIXTURES / "sim" / "bad_determinism.py").read_text()
        a = tmp_path / "a" / "repro" / "sim" / "mod.py"
        b = tmp_path / "b" / "repro" / "sim" / "mod.py"
        a.parent.mkdir(parents=True)
        b.parent.mkdir(parents=True)
        a.write_text(src)
        b.write_text("# shifted\n" * 7 + src)
        fps_a = [f.fingerprint for f in lint_paths([str(a)])]
        fps_b = [f.fingerprint for f in lint_paths([str(b)])]
        assert fps_a and fps_a == fps_b


# ----------------------------------------------------------------------
# CLI and shipped-tree health
# ----------------------------------------------------------------------
def run_cli(*args):
    env = {"PYTHONPATH": f"{REPO / 'src'}:{TOOLS}", "PATH": "/usr/bin:/bin"}
    return subprocess.run(
        [sys.executable, "-m", "vschedlint", *args],
        cwd=REPO, env=env, capture_output=True, text=True)


class TestCli:
    def test_json_output_on_violations(self):
        proc = run_cli("--format", "json", "--no-baseline",
                       str(FIXTURES / "sim" / "bad_determinism.py"))
        assert proc.returncode == 1
        payload = json.loads(proc.stdout)
        assert payload["counts"]["active"] == 7
        assert payload["counts"]["by_family"] == {"determinism": 7}
        assert all(f["fingerprint"] for f in payload["findings"])

    def test_list_rules(self):
        proc = run_cli("--list-rules")
        assert proc.returncode == 0
        for slug in RULES:
            assert slug in proc.stdout


class TestCliV2:
    def test_sarif_output(self):
        proc = run_cli("--format", "sarif", "--no-baseline",
                       "--no-index-cache",
                       str(FIXTURES / "sim" / "bad_snapshot.py"))
        assert proc.returncode == 1
        doc = json.loads(proc.stdout)
        assert doc["version"] == "2.1.0"
        run = doc["runs"][0]
        results = run["results"]
        assert len(results) == 7
        rules = {r["id"]: r for r in run["tool"]["driver"]["rules"]}
        for res in results:
            assert res["ruleId"] in rules
            assert res["partialFingerprints"]["vschedlint/v1"]
        assert rules["VSL401"]["helpUri"].endswith("#vsl401")

    def test_jsonl_output(self):
        proc = run_cli("--format", "jsonl", "--no-baseline",
                       "--no-index-cache",
                       str(FIXTURES / "sim" / "bad_snapshot.py"))
        assert proc.returncode == 1
        lines = [json.loads(ln) for ln in proc.stdout.splitlines()
                 if ln.strip()]
        assert len(lines) == 7
        assert all(ln["fingerprint"] and ln["doc"] for ln in lines)

    def test_text_output_carries_doc_anchors(self):
        proc = run_cli("--no-baseline", "--no-index-cache",
                       str(FIXTURES / "sim" / "bad_snapshot.py"))
        assert "-> docs/INTERNALS.md#vsl401" in proc.stdout

    def test_write_baseline_is_shrink_only(self, tmp_path):
        bl = tmp_path / "bl.json"
        bad = str(FIXTURES / "sim" / "bad_determinism.py")
        clean = str(FIXTURES / "sim" / "clean_determinism.py")

        # A fresh baseline may be seeded; shrinking it later is fine...
        proc = run_cli("--write-baseline", "--baseline", str(bl),
                       "--no-index-cache", bad)
        assert proc.returncode == 0, proc.stderr
        proc = run_cli("--write-baseline", "--baseline", str(bl),
                       "--no-index-cache", clean)
        assert proc.returncode == 0, proc.stderr
        assert json.loads(bl.read_text())["entries"] == {}

        # ...but growing an existing baseline is refused.
        proc = run_cli("--write-baseline", "--baseline", str(bl),
                       "--no-index-cache", bad)
        assert proc.returncode == 2
        assert "grow" in proc.stderr

    def test_stats_reports_cache_reuse(self, tmp_path):
        cache = tmp_path / "cache.json"
        target = str(FIXTURES / "sim" / "clean_determinism.py")
        run_cli("--no-baseline", "--index-cache", str(cache), target)
        proc = run_cli("--no-baseline", "--stats",
                       "--index-cache", str(cache), target)
        assert "1 hit(s), 0 miss(es)" in proc.stderr


class TestChangedMode:
    def _make_repo(self, tmp_path):
        repo = tmp_path / "work"
        (repo / "repro" / "sim").mkdir(parents=True)
        steady = repo / "repro" / "sim" / "steady.py"
        steady.write_text("import time\n\n\ndef f():\n"
                          "    return time.time()\n")
        git = ["git", "-c", "user.email=t@t", "-c", "user.name=t"]
        subprocess.run([*git, "init", "-q"], cwd=repo, check=True)
        subprocess.run([*git, "add", "."], cwd=repo, check=True)
        subprocess.run([*git, "commit", "-qm", "seed"], cwd=repo,
                       check=True)
        return repo

    def _run(self, repo, *args):
        env = {"PYTHONPATH": f"{REPO / 'src'}:{TOOLS}",
               "PATH": "/usr/bin:/bin"}
        return subprocess.run(
            [sys.executable, "-m", "vschedlint", "--no-baseline",
             "--no-index-cache", *args],
            cwd=repo, env=env, capture_output=True, text=True)

    def test_only_changed_files_reported(self, tmp_path):
        repo = self._make_repo(tmp_path)
        fresh = repo / "repro" / "sim" / "fresh.py"
        fresh.write_text("import time\n\n\ndef g():\n"
                         "    return time.time()\n")

        full = self._run(repo, "--format", "json", "repro")
        assert len(json.loads(full.stdout)["findings"]) == 2

        part = self._run(repo, "--format", "json", "repro", "--changed")
        findings = json.loads(part.stdout)["findings"]
        assert part.returncode == 1
        assert [f["path"] for f in findings] == ["repro/sim/fresh.py"]

    def test_changed_with_nothing_touched_is_clean(self, tmp_path):
        repo = self._make_repo(tmp_path)
        proc = self._run(repo, "repro", "--changed")
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "clean" in proc.stdout

    def test_changed_outside_git_fails_loudly(self, tmp_path):
        plain = tmp_path / "plain" / "repro" / "sim"
        plain.mkdir(parents=True)
        (plain / "m.py").write_text("def f():\n    return 1\n")
        proc = self._run(tmp_path / "plain", "repro", "--changed")
        assert proc.returncode == 2
        assert "git" in proc.stderr


class TestDocAnchors:
    def test_every_rule_has_an_internals_anchor(self):
        # Findings render "-> docs/INTERNALS.md#vslNNN"; each target must
        # exist so the links never dangle.
        text = (REPO / "docs" / "INTERNALS.md").read_text()
        for slug, (rule_id, _family, _desc) in RULES.items():
            assert f'<a id="{rule_id.lower()}"></a>' in text, (slug, rule_id)


class TestShippedTree:
    def test_src_repro_is_clean_modulo_baseline(self):
        findings = lint_paths([str(REPO / "src" / "repro")])
        entries = baseline_mod.load_baseline(SHIPPED_BASELINE)
        baseline_mod.apply_baseline(findings, entries,
                                    str(SHIPPED_BASELINE))
        active = [f.render() for f in findings if not f.baselined]
        assert active == []

    def test_cli_exits_zero_on_shipped_tree(self):
        proc = run_cli("src/repro")
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "clean" in proc.stdout or "baselined" in proc.stdout
