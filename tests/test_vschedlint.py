"""vschedlint: rule families, suppression/baseline semantics, tree health.

The checker ships from ``tools/`` (it is a dev tool, not simulation code),
so the tests put that directory on ``sys.path`` themselves.
"""

import json
import subprocess
import sys
from collections import Counter
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
TOOLS = REPO / "tools"
if str(TOOLS) not in sys.path:
    sys.path.insert(0, str(TOOLS))

from vschedlint import baseline as baseline_mod  # noqa: E402
from vschedlint.checker import lint_paths  # noqa: E402
from vschedlint.findings import RULES, finalize_fingerprints  # noqa: E402

FIXTURES = Path(__file__).parent / "fixtures" / "vschedlint" / "repro"
SHIPPED_BASELINE = TOOLS / "vschedlint" / "baseline.json"


def lint_fixture(relpath):
    return lint_paths([str(FIXTURES / relpath)])


def rules_of(findings):
    return Counter(f.rule for f in findings)


# ----------------------------------------------------------------------
# Rule families: each must fire on its bad fixture and stay quiet on the
# clean one.
# ----------------------------------------------------------------------
class TestLayeringRules:
    def test_bad_layering_fixture(self):
        got = rules_of(lint_fixture("guest/bad_layering.py"))
        assert got == {"layer-order": 1, "guest-isolation": 2,
                       "guest-abi": 1}

    def test_clean_guest_module(self):
        assert lint_fixture("guest/clean_layering.py") == []

    def test_upward_import_flagged(self):
        got = rules_of(lint_fixture("hypervisor/bad_order.py"))
        assert got == {"layer-order": 1}

    def test_neutral_module_exempt(self):
        assert lint_fixture("hypervisor/clean_neutral.py") == []

    def test_unknown_layer(self):
        got = rules_of(lint_fixture("mystery/widget.py"))
        assert got == {"layer-unknown": 1}

    def test_heap_encapsulation_flagged_outside_sim(self):
        # import heapq + two `._heap` attribute touches = 3 findings
        got = rules_of(lint_fixture("experiments/bad_heapq.py"))
        assert got == {"heap-encapsulation": 3}

    def test_heap_use_sanctioned_inside_sim(self):
        assert lint_fixture("sim/clean_heapq.py") == []


class TestDeterminismRules:
    def test_bad_determinism_fixture(self):
        got = rules_of(lint_fixture("sim/bad_determinism.py"))
        assert got == {"wall-clock": 2, "unseeded-rng": 2,
                       "identity-key": 1, "unordered-iter": 2}

    def test_clean_determinism_fixture(self):
        assert lint_fixture("sim/clean_determinism.py") == []

    def test_monotonic_allowed_in_experiments(self):
        assert lint_fixture("experiments/clean_clock.py") == []

    def test_wallclock_banned_everywhere(self):
        got = rules_of(lint_fixture("experiments/bad_wallclock.py"))
        assert got == {"wall-clock": 2}


class TestElisionRules:
    def test_bad_elision_fixture(self):
        findings = lint_fixture("guest/bad_elision.py")
        assert rules_of(findings) == {"elision-sync": 2}
        assert {f.symbol for f in findings} == {
            "Sampler.read_stale", "Sampler.write_stale"}

    def test_clean_elision_fixture(self):
        assert lint_fixture("guest/clean_elision.py") == []


# ----------------------------------------------------------------------
# Suppression semantics
# ----------------------------------------------------------------------
class TestSuppressions:
    def test_valid_suppressions_silence(self):
        assert lint_fixture("sim/suppressed_ok.py") == []

    def test_broken_suppressions(self):
        got = rules_of(lint_fixture("sim/suppressed_bad.py"))
        assert got == {"bad-suppression": 2, "wall-clock": 1,
                       "unused-suppression": 1}

    def test_meta_rules_unsuppressable(self, tmp_path):
        mod = tmp_path / "repro" / "sim" / "sneaky.py"
        mod.parent.mkdir(parents=True)
        mod.write_text(
            "def f():\n"
            "    return 1  # vschedlint: disable=bad-suppression -- nope\n")
        got = rules_of(lint_paths([str(mod)]))
        assert got == {"bad-suppression": 1}


# ----------------------------------------------------------------------
# Baseline semantics
# ----------------------------------------------------------------------
class TestBaseline:
    def test_roundtrip_marks_baselined(self, tmp_path):
        findings = lint_fixture("sim/bad_determinism.py")
        assert findings
        bl = tmp_path / "baseline.json"
        n = baseline_mod.write_baseline(findings, bl)
        assert n == len(findings)

        fresh = lint_fixture("sim/bad_determinism.py")
        entries = baseline_mod.load_baseline(bl)
        baseline_mod.apply_baseline(fresh, entries, str(bl))
        assert all(f.baselined for f in fresh)

    def test_stale_entry_reported(self, tmp_path):
        findings = lint_fixture("sim/bad_determinism.py")
        bl = tmp_path / "baseline.json"
        baseline_mod.write_baseline(findings, bl)

        clean = lint_fixture("sim/clean_determinism.py")
        entries = baseline_mod.load_baseline(bl)
        baseline_mod.apply_baseline(clean, entries, str(bl))
        got = rules_of(clean)
        assert got["stale-baseline"] == len(findings)

    def test_fingerprints_survive_line_shifts(self, tmp_path):
        src = (FIXTURES / "sim" / "bad_determinism.py").read_text()
        a = tmp_path / "a" / "repro" / "sim" / "mod.py"
        b = tmp_path / "b" / "repro" / "sim" / "mod.py"
        a.parent.mkdir(parents=True)
        b.parent.mkdir(parents=True)
        a.write_text(src)
        b.write_text("# shifted\n" * 7 + src)
        fps_a = [f.fingerprint for f in lint_paths([str(a)])]
        fps_b = [f.fingerprint for f in lint_paths([str(b)])]
        assert fps_a and fps_a == fps_b


# ----------------------------------------------------------------------
# CLI and shipped-tree health
# ----------------------------------------------------------------------
def run_cli(*args):
    env = {"PYTHONPATH": f"{REPO / 'src'}:{TOOLS}", "PATH": "/usr/bin:/bin"}
    return subprocess.run(
        [sys.executable, "-m", "vschedlint", *args],
        cwd=REPO, env=env, capture_output=True, text=True)


class TestCli:
    def test_json_output_on_violations(self):
        proc = run_cli("--format", "json", "--no-baseline",
                       str(FIXTURES / "sim" / "bad_determinism.py"))
        assert proc.returncode == 1
        payload = json.loads(proc.stdout)
        assert payload["counts"]["active"] == 7
        assert payload["counts"]["by_family"] == {"determinism": 7}
        assert all(f["fingerprint"] for f in payload["findings"])

    def test_list_rules(self):
        proc = run_cli("--list-rules")
        assert proc.returncode == 0
        for slug in RULES:
            assert slug in proc.stdout


class TestShippedTree:
    def test_src_repro_is_clean_modulo_baseline(self):
        findings = lint_paths([str(REPO / "src" / "repro")])
        entries = baseline_mod.load_baseline(SHIPPED_BASELINE)
        baseline_mod.apply_baseline(findings, entries,
                                    str(SHIPPED_BASELINE))
        active = [f.render() for f in findings if not f.baselined]
        assert active == []

    def test_cli_exits_zero_on_shipped_tree(self):
        proc = run_cli("src/repro")
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "clean" in proc.stdout or "baselined" in proc.stdout
