"""Scheduler-behaviour tests: placement, balancing, ticks, steal visibility."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster import build_plain_vm
from repro.guest import GuestKernel, Policy, TaskState
from repro.guest.domains import DomainLevel, SchedDomains
from repro.hw import HostTopology
from repro.hypervisor import Machine
from repro.sim import Engine, MSEC, SEC, USEC


class TestWakePlacement:
    def test_fork_spreads_across_llc_groups(self):
        env = build_plain_vm(8, sockets=2)
        # Install real socket domains directly.
        env.kernel.domains = SchedDomains(8, [
            DomainLevel("llc", [range(0, 4), range(4, 8)]),
            DomainLevel("machine", [range(8)]),
        ])

        def spin(api):
            while True:
                yield api.run(MSEC)

        tasks = [env.kernel.spawn(spin, f"t{i}") for i in range(8)]
        env.engine.run_until(50 * MSEC)
        left = sum(1 for t in tasks if t.cpu.index < 4)
        assert left == 4  # fork balancing alternates sockets

    def test_wake_prefers_idle_previous_cpu(self):
        env = build_plain_vm(4)
        seen = []

        def napper(api):
            for _ in range(10):
                yield api.run(100 * USEC)
                seen.append(api.cpu_index())
                yield api.sleep(2 * MSEC)

        env.kernel.spawn(napper, "n", cpu=2)
        env.engine.run_until(1 * SEC)
        assert set(seen) == {2}

    def test_smt_level_prefers_whole_idle_cores(self):
        env = build_plain_vm(8, smt=2, cores_per_socket=4)
        env.kernel.domains = SchedDomains(8, [
            DomainLevel("smt", [(0, 1), (2, 3), (4, 5), (6, 7)]),
            DomainLevel("machine", [range(8)]),
        ])

        def spin(api):
            while True:
                yield api.run(MSEC)

        tasks = [env.kernel.spawn(spin, f"t{i}") for i in range(4)]
        env.engine.run_until(20 * MSEC)
        cores = {t.cpu.index // 2 for t in tasks}
        assert len(cores) == 4  # one per core, no sibling doubling


class TestLoadBalancing:
    def test_queued_tasks_spread_to_idle_cpus(self):
        env = build_plain_vm(4)
        tasks = []

        def spin(api):
            while True:
                yield api.run(MSEC)

        # Force all four onto CPU 0 initially.
        for i in range(4):
            t = env.kernel.spawn(spin, f"t{i}", cpu=0, allowed=None)
            tasks.append(t)
            # Pin placement start to cpu0 by direct enqueue is not needed:
            # spawn with cpu hints only sets prev; placement may spread.
        env.engine.run_until(500 * MSEC)
        busy = {t.cpu.index for t in tasks if t.cpu is not None}
        assert len(busy) == 4  # balancer achieved one task per CPU

    def test_affinity_respected_by_balancer(self):
        env = build_plain_vm(4)

        def spin(api):
            while True:
                yield api.run(MSEC)

        pinned = [env.kernel.spawn(spin, f"p{i}", cpu=0, allowed=(0, 1))
                  for i in range(4)]
        env.engine.run_until(500 * MSEC)
        for t in pinned:
            assert t.cpu.index in (0, 1)


class TestStealVisibility:
    def test_guest_reads_steal_time(self):
        env = build_plain_vm(2)
        env.machine.add_host_task("stress", pinned=(0,))

        def spin(api):
            while True:
                yield api.run(MSEC)

        env.kernel.spawn(spin, "t", cpu=0, allowed=(0,))
        env.engine.run_until(1 * SEC)
        assert env.kernel.steal_of(0) > 400 * MSEC
        assert env.kernel.steal_of(1) == 0

    def test_preempt_counter_counts_steal_jumps(self):
        env = build_plain_vm(2, host_slice_ns=5 * MSEC)
        env.machine.add_host_task("stress", pinned=(0,))

        def spin(api):
            while True:
                yield api.run(MSEC)

        env.kernel.spawn(spin, "t", cpu=0, allowed=(0,))
        env.engine.run_until(1 * SEC)
        # One qualified jump per 10 ms activity cycle.
        assert 80 < env.kernel.cpus[0].preempt_count < 120


class TestTickDelivery:
    def test_no_ticks_while_halted(self):
        env = build_plain_vm(2)
        env.engine.run_until(1 * SEC)
        # No tasks ever ran: both vCPUs halted; tick counter stays 0.
        assert env.kernel.stats.ticks == 0

    def test_ticks_flow_while_running(self):
        env = build_plain_vm(1)

        def spin(api):
            while True:
                yield api.run(MSEC)

        env.kernel.spawn(spin, "t")
        env.engine.run_until(1 * SEC)
        assert 900 < env.kernel.stats.ticks < 1100


class TestWorkConservationInvariants:
    @given(st.integers(1, 6), st.integers(2, 6))
    @settings(max_examples=20, deadline=None)
    def test_total_work_equals_cpu_time(self, n_tasks, n_cpus):
        """With CPU-bound tasks and dedicated vCPUs, total retired work
        equals min(n_tasks, n_cpus) * wall time (full utilization, no
        overcommit, no lost work)."""
        env = build_plain_vm(n_cpus)
        tasks = []

        def spin(api):
            while True:
                yield api.run(500 * USEC)

        for i in range(n_tasks):
            tasks.append(env.kernel.spawn(spin, f"t{i}"))
        env.engine.run_until(200 * MSEC)
        total = sum(t.stats.work_done for t in tasks)
        expected = min(n_tasks, n_cpus) * 200 * MSEC
        assert total == pytest.approx(expected, rel=0.02)

    @given(st.integers(2, 5))
    @settings(max_examples=10, deadline=None)
    def test_fairness_between_identical_tasks(self, n_tasks):
        env = build_plain_vm(1)
        tasks = []

        def spin(api):
            while True:
                yield api.run(500 * USEC)

        for i in range(n_tasks):
            tasks.append(env.kernel.spawn(spin, f"t{i}", cpu=0, allowed=(0,)))
        env.engine.run_until(2 * SEC)
        works = [t.stats.work_done for t in tasks]
        assert max(works) - min(works) < 0.05 * sum(works)
