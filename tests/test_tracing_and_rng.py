"""Tests for the tracing buffer and deterministic RNG helpers."""

import numpy as np

from repro.sim import IntervalTimeline, Tracer, make_rng, split_rng
from repro.sim.rng import exponential_ns, normal_ns


class TestTracer:
    def test_disabled_tracer_records_nothing(self):
        tr = Tracer(enabled=False)
        tr.record(1, "x", "payload")
        assert tr.records == []

    def test_category_filter(self):
        tr = Tracer(enabled=True, categories={"keep"})
        tr.record(1, "keep", 1)
        tr.record(2, "drop", 2)
        assert len(tr.records) == 1
        assert tr.by_category("keep")[0].payload == (1,)

    def test_clear(self):
        tr = Tracer(enabled=True)
        tr.record(1, "a")
        tr.clear()
        assert tr.records == []


class TestIntervalTimeline:
    def test_busy_time_accumulates(self):
        tl = IntervalTimeline()
        tl.begin("x", 10)
        tl.end("x", 30)
        tl.begin("x", 50)
        tl.end("x", 60)
        assert tl.busy_time("x") == 30
        assert tl.total_busy() == 30

    def test_close_all_closes_open_lanes(self):
        tl = IntervalTimeline()
        tl.begin("a", 0)
        tl.begin("b", 10)
        tl.close_all(100)
        assert tl.busy_time("a") == 100
        assert tl.busy_time("b") == 90

    def test_end_without_begin_is_ignored(self):
        tl = IntervalTimeline()
        tl.end("ghost", 50)
        assert tl.busy_time("ghost") == 0


class TestRng:
    def test_string_seeds_are_stable(self):
        a = make_rng("hello").integers(0, 10**9)
        b = make_rng("hello").integers(0, 10**9)
        c = make_rng("world").integers(0, 10**9)
        assert a == b
        assert a != c

    def test_split_streams_are_independent_but_stable(self):
        base1, base2 = make_rng("s"), make_rng("s")
        c1 = split_rng(base1, "child")
        c2 = split_rng(base2, "child")
        assert c1.integers(0, 10**9) == c2.integers(0, 10**9)
        other = split_rng(make_rng("s"), "different")
        assert (split_rng(make_rng("s"), "child").integers(0, 10**9)
                != other.integers(0, 10**9))

    def test_duration_helpers_positive(self):
        rng = make_rng(0)
        for _ in range(200):
            assert exponential_ns(rng, 1000) >= 1
            assert normal_ns(rng, 100, 500) >= 1

    def test_exponential_mean(self):
        rng = make_rng(1)
        samples = [exponential_ns(rng, 10_000) for _ in range(5000)]
        assert abs(np.mean(samples) - 10_000) < 600
