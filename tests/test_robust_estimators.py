"""Unit tests for the prober hardening layer (repro.probers.robust).

The estimators are exercised in isolation on synthetic poisoned streams:
no simulation, just the arithmetic the hardened probers route their
window samples through.
"""

import pytest

from repro.core.abstraction import TopologyView
from repro.probers.robust import (
    HysteresisGate,
    RobustScalarEstimator,
    TopologyQuarantine,
    _median,
)
from repro.sim import make_rng


class TestMedianMad:
    def test_median_odd_even(self):
        assert _median([3.0, 1.0, 2.0]) == 2.0
        assert _median([4.0, 1.0, 2.0, 3.0]) == 2.5

    def test_clean_stream_passes_through(self):
        est = RobustScalarEstimator(window=5)
        out = [est.ingest(v) for v in [100.0, 102.0, 98.0, 101.0, 99.0]]
        assert all(o is not None for o in out)
        assert est.rejected_samples == 0
        assert abs(out[-1] - 100.0) < 3.0

    def test_single_spike_rejected_and_median_unmoved(self):
        est = RobustScalarEstimator(window=5)
        for v in [100.0, 101.0, 99.0, 100.0]:
            est.ingest(v)
        before = est.last_stable
        out = est.ingest(400.0)  # poisoned window
        assert est.rejected_samples == 1
        assert out == before  # the spike moved nothing

    def test_small_moves_on_constant_signal_not_rejected(self):
        # rel_floor keeps the MAD scale from collapsing to ~0 on a
        # near-constant stream.
        est = RobustScalarEstimator(window=5)
        for _ in range(5):
            est.ingest(1000.0)
        assert est.ingest(1010.0) is not None
        assert est.rejected_samples == 0

    def test_inconsistent_flag_overrides_mad(self):
        est = RobustScalarEstimator(window=5)
        est.ingest(100.0)
        est.ingest(100.0, consistent=False)
        assert est.rejected_samples == 1

    def test_window_too_small_rejected(self):
        with pytest.raises(ValueError):
            RobustScalarEstimator(window=2)


class TestQuarantine:
    def _poison(self, est, n):
        for _ in range(n):
            est.ingest(0.0, consistent=False)

    def test_enter_on_low_confidence(self):
        est = RobustScalarEstimator(window=5, min_confidence=0.5)
        est.ingest(100.0)
        self._poison(est, 3)
        assert est.quarantined
        assert est.quarantine_entries == 1
        assert est.quarantined_windows > 0

    def test_quarantined_returns_last_stable(self):
        est = RobustScalarEstimator(window=5)
        for v in [100.0, 101.0, 99.0]:
            est.ingest(v)
        stable = est.last_stable
        self._poison(est, 4)
        assert est.quarantined
        assert est.ingest(500.0, consistent=False) == stable

    def test_no_estimate_before_first_accept(self):
        est = RobustScalarEstimator(window=5)
        self._poison(est, 4)
        assert est.quarantined
        assert est.ingest(0.0, consistent=False) is None  # degrade upstream

    def test_recovery_needs_consecutive_clean_windows(self):
        est = RobustScalarEstimator(window=5, min_confidence=0.5,
                                    recovery_windows=3)
        for v in [100.0, 100.0, 100.0]:
            est.ingest(v)
        self._poison(est, 5)
        assert est.quarantined
        est.ingest(100.0)
        est.ingest(100.0)
        assert est.quarantined  # streak of 2 < 3
        est.ingest(100.0)
        assert not est.quarantined
        # An interrupted streak resets.
        self._poison(est, 5)
        est.ingest(100.0)
        est.ingest(0.0, consistent=False)
        est.ingest(100.0)
        est.ingest(100.0)
        assert est.quarantined


class TestHysteresis:
    def test_flip_needs_n_consecutive(self):
        gate = HysteresisGate(initial=False, n=2)
        assert gate.update(True) is False  # first disagreement held
        assert gate.suppressed_flips == 1
        assert gate.update(True) is True   # second flips
        assert gate.update(False) is True
        assert gate.update(True) is True   # flap suppressed, streak reset
        assert gate.update(False) is True
        assert gate.update(False) is False

    def test_agreement_resets_streak(self):
        gate = HysteresisGate(initial=False, n=3)
        gate.update(True)
        gate.update(True)
        gate.update(False)  # agreement: streak resets
        gate.update(True)
        gate.update(True)
        assert gate.state is False


class TestTopologyQuarantine:
    def _view(self, pairs):
        view = TopologyView(4)
        for a, b in pairs:
            view.smt_siblings[a] = frozenset((a, b))
            view.smt_siblings[b] = frozenset((a, b))
        return view

    def test_first_and_unchanged_views_pass(self):
        q = TopologyQuarantine()
        v = self._view([(0, 1), (2, 3)])
        assert q.admit(v)
        assert q.admit(self._view([(0, 1), (2, 3)]))
        assert q.quarantined_views == 0

    def test_changed_view_needs_confirmation(self):
        q = TopologyQuarantine(confirmations=2)
        assert q.admit(self._view([(0, 1), (2, 3)]))
        changed = [(0, 2), (1, 3)]
        assert not q.admit(self._view(changed))  # one poisoned pass: held
        assert q.quarantined_views == 1
        assert q.admit(self._view(changed))      # confirmed: now published
        assert q.admit(self._view(changed))

    def test_flapping_views_never_admitted(self):
        q = TopologyQuarantine(confirmations=2)
        assert q.admit(self._view([(0, 1), (2, 3)]))
        for _ in range(3):
            assert not q.admit(self._view([(0, 2), (1, 3)]))
            assert not q.admit(self._view([(0, 3), (1, 2)]))


def test_determinism_under_make_rng():
    """Identical seeded poisoned streams produce identical decisions."""

    def run():
        rng = make_rng("robust-test")
        est = RobustScalarEstimator(window=5)
        outs = []
        for i in range(200):
            clean = rng.uniform(95.0, 105.0)
            if rng.uniform(0.0, 1.0) < 0.2:
                outs.append(est.ingest(clean * 5.0,
                                       consistent=bool(i % 3)))
            else:
                outs.append(est.ingest(clean))
        return (outs, est.rejected_samples, est.quarantine_entries,
                est.quarantined_windows)

    assert run() == run()
