"""Failure-injection tests: abrupt host events while vSched is live.

These emulate the nasty things a real cloud does mid-flight — topology
changes, capacity collapses, neighbours appearing and vanishing — and
check vSched (and the substrate) stays consistent and converges.
"""

import pytest

from repro.cluster import attach_scheduler, build_plain_vm, make_context, run_to_completion
from repro.guest.task import TaskState
from repro.hypervisor.entity import weight_for_nice
from repro.sim import MSEC, SEC
from repro.workloads import CpuBoundJob, LatencyWorkload


class TestAbruptHostChanges:
    def test_vcpu_migrated_mid_run_keeps_working(self):
        env = build_plain_vm(4, sockets=2, smt=1, cores_per_socket=4)
        vs = attach_scheduler(env, "vsched")
        ctx = make_context(env, vs, "inj-repin")
        env.engine.run_until(6 * SEC)
        wl = CpuBoundJob(threads=4, work_per_thread_ns=400 * MSEC)
        wl.start(ctx)
        # Move two vCPUs to the other socket mid-run.
        env.engine.call_in(100 * MSEC,
                           lambda: env.machine.repin(env.vm.vcpu(0), (4,)))
        env.engine.call_in(150 * MSEC,
                           lambda: env.machine.repin(env.vm.vcpu(1), (5,)))
        env.engine.run_until(env.engine.now + 30 * SEC)
        assert wl.done
        for t in wl.tasks:
            assert t.stats.work_done >= 400 * MSEC - 1

    def test_all_neighbours_vanish_mid_serving(self):
        env = build_plain_vm(4, host_slice_ns=5 * MSEC)
        tenants = [env.machine.add_host_task(f"t{i}", pinned=(i,))
                   for i in range(4)]
        vs = attach_scheduler(env, "vsched")
        ctx = make_context(env, vs, "inj-vanish")
        env.engine.run_until(6 * SEC)
        wl = LatencyWorkload("silo", workers=4, n_requests=200)
        wl.start(ctx)
        env.engine.call_in(200 * MSEC, lambda: [
            env.machine.remove_host_task(t) for t in tenants])
        env.engine.run_until(env.engine.now + 60 * SEC)
        assert wl.done
        # After the host frees up, probed latency converges back to ~0.
        env.engine.run_until(env.engine.now + 8 * SEC)
        assert vs.module.store[0].latency_ns < 1 * MSEC

    def test_capacity_collapse_triggers_rwc_then_recovers(self):
        # The collapse is applied with bandwidth control (quota cut to 5%),
        # the cleanest of the paper's knobs.  (An extreme nice -20 hog
        # would also starve vtop's probe overlap — see the quantum-slicing
        # limitation noted in DESIGN.md.)
        env = build_plain_vm(4)
        vs = attach_scheduler(env, "vsched")
        ctx = make_context(env, vs, "inj-collapse")
        env.engine.run_until(8 * SEC)
        env.machine.set_bandwidth(env.vm.vcpu(2), quota_ns=500_000,
                                  period_ns=10 * MSEC)
        env.engine.run_until(env.engine.now + 14 * SEC)  # EMA + hysteresis
        assert 2 in vs.rwc.stragglers
        env.machine.set_bandwidth(env.vm.vcpu(2), None)
        env.engine.run_until(env.engine.now + 10 * SEC)
        assert 2 not in vs.rwc.stragglers

    def test_vm_shutdown_mid_probe_is_clean(self):
        """Shutting the VM down while vtop probes are in flight must not
        raise or leave events firing into a dead VM."""
        env = build_plain_vm(8, sockets=2, smt=1)
        vs = attach_scheduler(env, "vsched")
        ctx = make_context(env, vs, "inj-shutdown")
        env.engine.run_until(2 * SEC + 60 * MSEC)  # mid-validation window
        env.vm.shutdown()
        env.engine.run_until(env.engine.now + 5 * SEC)  # must not blow up
        assert all(v.offline for v in env.vm.vcpus)

    def test_tasks_survive_rapid_mask_flapping(self):
        env = build_plain_vm(4)
        vs = attach_scheduler(env, "cfs")
        ctx = make_context(env, vs, "inj-flap")
        wl = CpuBoundJob(threads=3, work_per_thread_ns=200 * MSEC)
        wl.start(ctx)
        g = vs.workload_group

        masks = [frozenset({0, 1}), frozenset({2, 3}), frozenset({1, 2}),
                 None, frozenset({0, 3})]

        def flap(i=0):
            g.set_allowed(masks[i % len(masks)])
            env.kernel.apply_cpuset(g)
            if env.engine.now < 300 * MSEC:
                env.engine.call_in(17 * MSEC, flap, i + 1)

        env.engine.call_in(20 * MSEC, flap)
        env.engine.run_until(30 * SEC)
        assert wl.done
        for t in wl.tasks:
            assert t.state == TaskState.EXITED
            assert t.stats.work_done >= 200 * MSEC - 1
