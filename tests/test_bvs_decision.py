"""Unit tests of the bvs decision procedure (Figure 8), branch by branch.

The probed abstraction is injected directly so each acceptance branch of
the heuristic can be exercised deterministically.
"""

import pytest

from repro.cluster import build_plain_vm
from repro.core.bvs import BiasedVCpuSelection
from repro.core.module import VSchedModule
from repro.guest import Policy
from repro.sim import MSEC, SEC, USEC


def make_env(n=4):
    env = build_plain_vm(n)
    module = VSchedModule(env.kernel)
    bvs = BiasedVCpuSelection(env.kernel, module)
    env.kernel.select_rq_hook = bvs
    return env, module, bvs


def set_entry(module, cpu, capacity=1024.0, latency_ms=2.0, active_ms=5.0,
              cv=0.0):
    e = module.store[cpu]
    e.ema_capacity.value = capacity
    e.latency_ns = latency_ms * MSEC
    e.avg_active_ns = active_ms * MSEC
    e.latency_cv = cv


def small_task(env, **kw):
    def body(api):
        while True:
            yield api.sleep(5 * MSEC)
            yield api.run(100 * USEC)

    task = env.kernel.spawn(body, "small", latency_sensitive=True, **kw)
    return task


def spinner(env, cpu, policy=Policy.NORMAL):
    def body(api):
        while True:
            yield api.run(300 * USEC)

    return env.kernel.spawn(body, f"spin{cpu}", policy=policy, cpu=cpu,
                            allowed=(cpu,))


class TestSmallTaskGate:
    def test_unmarked_task_falls_through(self):
        env, module, bvs = make_env()
        for c in range(4):
            set_entry(module, c)

        def body(api):
            while True:
                yield api.sleep(MSEC)
                yield api.run(10 * USEC)

        env.kernel.spawn(body, "unmarked")  # no latency hint
        env.engine.run_until(200 * MSEC)
        assert bvs.hits == 0

    def test_marked_small_task_is_handled(self):
        env, module, bvs = make_env()
        for c in range(4):
            set_entry(module, c)
        env.engine.run_until(10 * MSEC)  # let idle_since age
        small_task(env)
        env.engine.run_until(200 * MSEC)
        assert bvs.hits > 0

    def test_marked_but_cpu_bound_falls_through(self):
        env, module, bvs = make_env()
        for c in range(4):
            set_entry(module, c)

        def body(api):
            yield api.run(1 * SEC)

        env.kernel.spawn(body, "hot", latency_sensitive=True,
                         initial_util=1000)
        env.engine.run_until(50 * MSEC)
        assert bvs.hits == 0


class TestEmptyRqBranch:
    def test_prefers_low_latency_idle_vcpu(self):
        env, module, bvs = make_env(4)
        # cpus 0,1 high latency; 2,3 low latency; all same capacity.
        set_entry(module, 0, latency_ms=8.0)
        set_entry(module, 1, latency_ms=8.0)
        set_entry(module, 2, latency_ms=1.0)
        set_entry(module, 3, latency_ms=1.0)
        env.engine.run_until(10 * MSEC)
        t = small_task(env)
        chosen = set()
        for _ in range(12):
            env.engine.run_until(env.engine.now + 6 * MSEC)
            if t.cpu is not None:
                chosen.add(t.cpu.index)
        assert chosen <= {2, 3}, chosen

    def test_low_capacity_vcpus_rejected(self):
        env, module, bvs = make_env(4)
        set_entry(module, 0, capacity=200.0, latency_ms=0.5)
        set_entry(module, 1, capacity=200.0, latency_ms=0.5)
        set_entry(module, 2, capacity=1024.0, latency_ms=3.0)
        set_entry(module, 3, capacity=1024.0, latency_ms=3.0)
        env.engine.run_until(10 * MSEC)
        t = small_task(env)
        chosen = set()
        for _ in range(12):
            env.engine.run_until(env.engine.now + 6 * MSEC)
            if t.cpu is not None:
                chosen.add(t.cpu.index)
        # The fast-but-weak vCPUs are out (runqueue-saturation guard).
        assert chosen <= {2, 3}, chosen

    def test_recently_idled_vcpu_not_chosen(self):
        env, module, bvs = make_env(2)
        set_entry(module, 0)
        set_entry(module, 1)
        env.engine.run_until(10 * MSEC)
        # Make cpu1 "just idled": a short burst that ends right before the
        # wake (idle_since fresh).
        def burst(api):
            yield api.run(9 * MSEC)

        env.kernel.spawn(burst, "burst", cpu=1, allowed=(1,))
        env.engine.run_until(19 * MSEC + 500 * USEC)  # burst just ended
        assert env.engine.now - env.kernel.cpus[1].idle_since < 2 * MSEC
        target = bvs(small_task_obj(env), None)
        # cpu0 qualifies (long idle), cpu1 does not (idle < LONG_IDLE_NS).
        assert target == 0


def small_task_obj(env):
    """A latency-marked task object without waking it (for direct calls)."""
    def body(api):
        yield api.run(10 * USEC)

    from repro.guest.task import Task
    t = Task(env.kernel, "probe", body, latency_sensitive=True)
    t.pelt.set_util(50, env.engine.now)
    return t


class TestSchedIdleBranch:
    def test_active_recent_sched_idle_vcpu_is_ideal(self):
        env, module, bvs = make_env(2)
        set_entry(module, 0, latency_ms=2.0, active_ms=6.0)
        set_entry(module, 1, latency_ms=2.0, active_ms=6.0)
        spinner(env, 1, policy=Policy.IDLE)  # best-effort occupies cpu1
        env.engine.run_until(30 * MSEC)
        # Mark cpu1 as recently active per the heartbeat estimate.
        env.kernel.cpus[1].active_since_est = env.engine.now - MSEC
        # cpu0 is guest-idle but "recently idled" (fails LONG_IDLE):
        env.kernel.cpus[0].idle_since = env.engine.now
        target = bvs(small_task_obj(env), None)
        assert target == 1

    def test_untrusted_cv_skips_prediction_branch(self):
        env, module, bvs = make_env(2)
        set_entry(module, 0, latency_ms=2.0, cv=2.0)   # erratic
        set_entry(module, 1, latency_ms=2.0, cv=0.0)
        spinner(env, 0, policy=Policy.IDLE)
        spinner(env, 1, policy=Policy.IDLE)
        env.engine.run_until(30 * MSEC)
        for c in (0, 1):
            env.kernel.cpus[c].active_since_est = env.engine.now - MSEC
        target = bvs(small_task_obj(env), None)
        assert target == 1  # the erratic vCPU is skipped

    def test_fallback_to_cfs_when_nothing_qualifies(self):
        env, module, bvs = make_env(2)
        set_entry(module, 0, latency_ms=9.0)
        set_entry(module, 1, latency_ms=9.0)
        # Latency of both far above... median == their value, so empty-rq
        # branch actually accepts; instead occupy both with normal tasks.
        spinner(env, 0)
        spinner(env, 1)
        env.engine.run_until(30 * MSEC)
        before = bvs.fallbacks
        assert bvs(small_task_obj(env), None) is None
        assert bvs.fallbacks == before + 1
