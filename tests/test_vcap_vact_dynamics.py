"""Dynamic-behaviour tests for vcap/vact: tracking change, not just steady
state (the adaptability property behind §5.7)."""

import pytest

from repro.cluster import attach_scheduler, build_plain_vm
from repro.sim import MSEC, SEC


def probed(env):
    vs = attach_scheduler(env, "enhanced",
                          overrides={"enable_vtop": False,
                                     "enable_rwc": False})
    return vs


class TestCapacityTracking:
    def test_capacity_drop_tracked_within_seconds(self):
        env = build_plain_vm(2)
        vs = probed(env)
        env.engine.run_until(8 * SEC)
        assert vs.module.store[0].capacity > 950
        # Host gives half the core to a new tenant.
        env.machine.add_host_task("tenant", pinned=(0,))
        env.engine.run_until(env.engine.now + 8 * SEC)
        assert vs.module.store[0].capacity < 650

    def test_capacity_recovery_tracked(self):
        env = build_plain_vm(2)
        tenant = env.machine.add_host_task("tenant", pinned=(0,))
        vs = probed(env)
        env.engine.run_until(10 * SEC)
        assert vs.module.store[0].capacity < 650
        env.machine.remove_host_task(tenant)
        env.engine.run_until(env.engine.now + 8 * SEC)
        assert vs.module.store[0].capacity > 900

    def test_spike_is_smoothed(self):
        """A one-second capacity spike must not swing the EMA fully."""
        env = build_plain_vm(2)
        tenant = env.machine.add_host_task("tenant", pinned=(0,))
        vs = probed(env)
        env.engine.run_until(10 * SEC)
        low = vs.module.store[0].capacity
        env.machine.remove_host_task(tenant)
        env.engine.run_until(env.engine.now + 1 * SEC)   # brief respite
        spike = vs.module.store[0].capacity
        env.machine.add_host_task("tenant2", pinned=(0,))
        env.engine.run_until(env.engine.now + 6 * SEC)
        settled = vs.module.store[0].capacity
        assert spike < 950  # did not jump all the way up
        assert abs(settled - low) < 150


class TestLatencyTracking:
    def test_latency_follows_slice_change(self):
        env = build_plain_vm(1, host_slice_ns=2 * MSEC)
        env.machine.add_host_task("tenant", pinned=(0,))
        vs = probed(env)
        env.engine.run_until(8 * SEC)
        assert vs.module.store[0].latency_ns < 3.2 * MSEC
        env.machine.set_slice(0, 8 * MSEC)
        env.engine.run_until(env.engine.now + 8 * SEC)
        assert vs.module.store[0].latency_ns > 5 * MSEC

    def test_cv_rises_under_erratic_interference(self):
        env = build_plain_vm(1, host_slice_ns=4 * MSEC)
        # Bursty tenant with irregular on/off times.
        env.machine.add_host_task("bursty", pinned=(0,),
                                  duty_on_ns=3 * MSEC, duty_off_ns=11 * MSEC)
        env.machine.add_host_task("bursty2", pinned=(0,),
                                  duty_on_ns=7 * MSEC, duty_off_ns=23 * MSEC)
        vs = probed(env)
        env.engine.run_until(12 * SEC)
        erratic_cv = vs.module.store[0].latency_cv

        env2 = build_plain_vm(1, host_slice_ns=4 * MSEC)
        env2.machine.add_host_task("steady", pinned=(0,))
        vs2 = probed(env2)
        env2.engine.run_until(12 * SEC)
        steady_cv = vs2.module.store[0].latency_cv
        assert steady_cv < 0.3
        assert erratic_cv > steady_cv
