"""Integration tests for the guest kernel: tasks, actions, scheduling."""

import pytest

from repro.cluster import build_plain_vm
from repro.guest import Barrier, Channel, Mutex, Policy, TaskState
from repro.sim import MSEC, SEC, USEC


def make_env(n=4, **kw):
    return build_plain_vm(n, **kw)


class TestRunAction:
    def test_work_completes_in_wall_time_on_dedicated_vcpu(self):
        env = make_env()
        done = []

        def body(api):
            yield api.run(50 * MSEC)
            done.append(api.now())

        env.kernel.spawn(body, "t")
        env.engine.run_until(1 * SEC)
        assert done and abs(done[0] - 50 * MSEC) < 2 * MSEC

    def test_two_tasks_one_vcpu_share_fairly(self):
        env = make_env(1)
        done = {}

        def body(name):
            def gen(api):
                yield api.run(100 * MSEC)
                done[name] = api.now()
            return gen

        env.kernel.spawn(body("a"), "a", cpu=0, allowed=(0,))
        env.kernel.spawn(body("b"), "b", cpu=0, allowed=(0,))
        env.engine.run_until(1 * SEC)
        # Both finish around 200 ms (interleaved fairly).
        assert abs(done["a"] - 200 * MSEC) < 20 * MSEC
        assert abs(done["b"] - 200 * MSEC) < 20 * MSEC

    def test_zero_work_run_is_fine(self):
        env = make_env()
        done = []

        def body(api):
            yield api.run(0)
            yield api.run(1000)
            done.append(True)

        env.kernel.spawn(body, "z")
        env.engine.run_until(MSEC)
        assert done


class TestSleepAction:
    def test_sleep_duration(self):
        env = make_env()
        times = []

        def body(api):
            times.append(api.now())
            yield api.sleep(30 * MSEC)
            times.append(api.now())

        env.kernel.spawn(body, "s")
        env.engine.run_until(1 * SEC)
        assert abs((times[1] - times[0]) - 30 * MSEC) < MSEC

    def test_sleeping_task_frees_the_cpu(self):
        env = make_env(1)
        progress = []

        def sleeper(api):
            yield api.sleep(100 * MSEC)

        def worker(api):
            yield api.run(50 * MSEC)
            progress.append(api.now())

        env.kernel.spawn(sleeper, "sleeper", cpu=0, allowed=(0,))
        env.kernel.spawn(worker, "worker", cpu=0, allowed=(0,))
        env.engine.run_until(1 * SEC)
        assert progress and progress[0] < 60 * MSEC


class TestChannels:
    def test_send_recv_roundtrip(self):
        env = make_env()
        ch = Channel("c")
        got = []

        def producer(api):
            yield api.send(ch, 42)

        def consumer(api):
            v = yield api.recv(ch)
            got.append(v)

        env.kernel.spawn(consumer, "c")
        env.engine.run_until(MSEC)
        env.kernel.spawn(producer, "p")
        env.engine.run_until(10 * MSEC)
        assert got == [42]

    def test_fifo_order(self):
        env = make_env()
        ch = Channel("c")
        got = []

        def producer(api):
            for i in range(5):
                yield api.send(ch, i)

        def consumer(api):
            for _ in range(5):
                v = yield api.recv(ch)
                got.append(v)
                yield api.run(100 * USEC)

        env.kernel.spawn(producer, "p")
        env.kernel.spawn(consumer, "c")
        env.engine.run_until(1 * SEC)
        assert got == [0, 1, 2, 3, 4]

    def test_capacity_backpressure(self):
        env = make_env()
        ch = Channel("c", capacity=2)
        produced = []

        def producer(api):
            for i in range(6):
                yield api.send(ch, i)
                produced.append(api.now())

        env.kernel.spawn(producer, "p")
        env.engine.run_until(50 * MSEC)
        # Only capacity+1 sends complete until someone consumes.
        assert len(produced) <= 3
        got = []

        def consumer(api):
            for _ in range(6):
                got.append((yield api.recv(ch)))

        env.kernel.spawn(consumer, "c")
        env.engine.run_until(100 * MSEC)
        assert got == list(range(6))

    def test_external_injection(self):
        env = make_env()
        ch = Channel("c")
        got = []

        def consumer(api):
            while True:
                got.append((yield api.recv(ch)))

        env.kernel.spawn(consumer, "c")
        env.engine.run_until(MSEC)
        env.kernel.send_external(ch, "hello")
        env.engine.run_until(10 * MSEC)
        assert got == ["hello"]


class TestMutex:
    def test_mutual_exclusion(self):
        env = make_env()
        m = Mutex("m")
        trace = []

        def body(name):
            def gen(api):
                yield api.lock(m)
                trace.append((name, "in", api.now()))
                yield api.run(10 * MSEC)
                trace.append((name, "out", api.now()))
                yield api.unlock(m)
            return gen

        env.kernel.spawn(body("a"), "a")
        env.kernel.spawn(body("b"), "b")
        env.engine.run_until(1 * SEC)
        # Critical sections must not overlap.
        ins = [t for n, k, t in trace if k == "in"]
        outs = [t for n, k, t in trace if k == "out"]
        assert len(ins) == 2
        assert min(outs) <= max(ins)
        intervals = sorted(zip(ins, outs))
        assert intervals[0][1] <= intervals[1][0]

    def test_unlock_not_owner_raises(self):
        env = make_env()
        m = Mutex("m")

        def bad(api):
            yield api.unlock(m)

        # The error surfaces as soon as the task first runs — which happens
        # synchronously during spawn on an idle dedicated vCPU.
        with pytest.raises(RuntimeError):
            env.kernel.spawn(bad, "bad")
            env.engine.run_until(10 * MSEC)

    def test_spin_mutex_burns_cpu(self):
        env = make_env(2)
        m = Mutex("m", spin=True)

        def holder(api):
            yield api.lock(m)
            yield api.run(20 * MSEC)
            yield api.unlock(m)

        def spinner(api):
            yield api.run(1 * MSEC)  # let the holder grab it first
            yield api.lock(m)
            yield api.unlock(m)

        h = env.kernel.spawn(holder, "h", cpu=0, allowed=(0,))
        s = env.kernel.spawn(spinner, "s", cpu=1, allowed=(1,))
        env.engine.run_until(100 * MSEC)
        # The spinner burned CPU while waiting (~19 ms of polling).
        assert s.stats.work_done > 10 * MSEC


class TestBarrier:
    def test_barrier_releases_all(self):
        env = make_env()
        b = Barrier(3)
        passed = []

        def body(i):
            def gen(api):
                yield api.run((i + 1) * MSEC)
                yield api.barrier(b)
                passed.append((i, api.now()))
            return gen

        for i in range(3):
            env.kernel.spawn(body(i), f"t{i}")
        env.engine.run_until(1 * SEC)
        assert len(passed) == 3
        times = [t for _, t in passed]
        # All pass at the last arrival (~3 ms).
        assert max(times) - min(times) < MSEC
        assert abs(max(times) - 3 * MSEC) < MSEC

    def test_barrier_reusable_across_generations(self):
        env = make_env()
        b = Barrier(2)
        rounds = []

        def body(api):
            for r in range(3):
                yield api.run(MSEC)
                yield api.barrier(b)
                rounds.append(r)

        env.kernel.spawn(body, "a")
        env.kernel.spawn(body, "b")
        env.engine.run_until(1 * SEC)
        assert sorted(rounds) == [0, 0, 1, 1, 2, 2]
        assert b.completed == 3


class TestSchedIdle:
    def test_normal_preempts_idle_policy(self):
        env = make_env(1)
        done = {}

        def spinner(api):
            while True:
                yield api.run(500 * USEC)

        def urgent(api):
            yield api.run(10 * MSEC)
            done["urgent"] = api.now()

        env.kernel.spawn(spinner, "be", policy=Policy.IDLE, cpu=0,
                         allowed=(0,))
        env.engine.run_until(50 * MSEC)
        env.kernel.spawn(urgent, "urgent", cpu=0, allowed=(0,))
        env.engine.run_until(1 * SEC)
        # The urgent task runs as if alone (idle task yields immediately).
        assert abs(done["urgent"] - 60 * MSEC) < 2 * MSEC

    def test_idle_task_gets_leftover_cpu(self):
        env = make_env(1)

        def spinner(api):
            while True:
                yield api.run(500 * USEC)

        be = env.kernel.spawn(spinner, "be", policy=Policy.IDLE, cpu=0,
                              allowed=(0,))
        env.engine.run_until(100 * MSEC)
        assert be.stats.work_done > 90 * MSEC


class TestExitAndStats:
    def test_exit_callback_and_state(self):
        env = make_env()
        exited = []

        def body(api):
            yield api.run(MSEC)

        t = env.kernel.spawn(body, "t")
        env.kernel.on_exit(t, lambda task: exited.append(task.name))
        env.engine.run_until(10 * MSEC)
        assert t.state == TaskState.EXITED
        assert exited == ["t"]

    def test_wakeup_and_dispatch_counters(self):
        env = make_env()

        def body(api):
            for _ in range(5):
                yield api.run(100 * USEC)
                yield api.sleep(1 * MSEC)

        t = env.kernel.spawn(body, "t")
        env.engine.run_until(1 * SEC)
        assert t.stats.wakeups >= 5
        assert t.stats.dispatches >= 5


class TestCpuset:
    def test_group_mask_constrains_placement(self):
        env = make_env(4)
        g = env.kernel.new_group("g")
        g.set_allowed(frozenset({2}))
        seen = set()

        def body(api):
            for _ in range(20):
                yield api.run(200 * USEC)
                seen.add(api.cpu_index())
                yield api.sleep(500 * USEC)

        env.kernel.spawn(body, "t", group=g)
        env.engine.run_until(1 * SEC)
        assert seen == {2}

    def test_apply_cpuset_evicts_running_task(self):
        env = make_env(4)
        g = env.kernel.new_group("g")

        def body(api):
            yield api.run(10 * SEC)

        t = env.kernel.spawn(body, "t", group=g, cpu=0)
        env.engine.run_until(10 * MSEC)
        assert t.cpu.index == 0
        g.set_allowed(frozenset({3}))
        env.kernel.apply_cpuset(g)
        env.engine.run_until(20 * MSEC)
        assert t.cpu.index == 3
        assert t.state == TaskState.RUNNING
