"""Unit tests for the hardware model: topology, cache, speed."""

import numpy as np
import pytest

from repro.hw import CacheModel, Distance, HostTopology, SpeedConfig


class TestTopology:
    def test_shape(self):
        topo = HostTopology(2, 4, smt=2)
        assert len(topo.sockets) == 2
        assert len(topo.cores) == 8
        assert len(topo.threads) == 16

    def test_thread_indices_are_sequential(self):
        topo = HostTopology(2, 2, smt=2)
        assert [t.index for t in topo.threads] == list(range(8))

    def test_sibling(self):
        topo = HostTopology(1, 2, smt=2)
        t0, t1, t2, t3 = topo.threads
        assert t0.sibling() is t1
        assert t1.sibling() is t0
        assert t2.sibling() is t3

    def test_sibling_none_without_smt(self):
        topo = HostTopology(1, 2, smt=1)
        assert topo.threads[0].sibling() is None

    def test_distance_classes(self):
        topo = HostTopology(2, 2, smt=2)
        t = topo.threads
        assert topo.distance(t[0], t[0]) == Distance.SAME_THREAD
        assert topo.distance(t[0], t[1]) == Distance.SMT_SIBLING
        assert topo.distance(t[0], t[2]) == Distance.SAME_SOCKET
        assert topo.distance(t[0], t[4]) == Distance.CROSS_SOCKET

    def test_distance_ordering(self):
        assert (Distance.SAME_THREAD < Distance.SMT_SIBLING
                < Distance.SAME_SOCKET < Distance.CROSS_SOCKET)

    def test_invalid_shapes_rejected(self):
        with pytest.raises(ValueError):
            HostTopology(0, 4)
        with pytest.raises(ValueError):
            HostTopology(1, 4, smt=3)


class TestCacheModel:
    def test_latency_hierarchy(self):
        cache = CacheModel()
        assert (cache.base_latency(Distance.SAME_THREAD)
                < cache.base_latency(Distance.SMT_SIBLING)
                < cache.base_latency(Distance.SAME_SOCKET)
                < cache.base_latency(Distance.CROSS_SOCKET))

    def test_sample_is_near_base(self):
        cache = CacheModel()
        rng = np.random.default_rng(0)
        samples = [cache.sample_latency(Distance.SAME_SOCKET, rng)
                   for _ in range(200)]
        assert all(30 < s < 70 for s in samples)
        assert abs(np.mean(samples) - cache.same_socket_ns) < 3

    def test_no_jitter(self):
        cache = CacheModel(jitter=0.0)
        rng = np.random.default_rng(0)
        assert cache.sample_latency(Distance.SMT_SIBLING, rng) == 6.0

    def test_stall_scales_with_lines(self):
        cache = CacheModel()
        one = cache.stall_cycles(Distance.CROSS_SOCKET, lines=1)
        many = cache.stall_cycles(Distance.CROSS_SOCKET, lines=10)
        assert many == 10 * one


class TestSpeedConfig:
    def test_nominal(self):
        cfg = SpeedConfig()
        assert cfg.factor(sibling_busy=False, warm=True) == 1.0

    def test_smt_contention(self):
        cfg = SpeedConfig()
        assert cfg.factor(sibling_busy=True, warm=True) == pytest.approx(0.62)

    def test_dvfs_cold_only_when_enabled(self):
        cfg = SpeedConfig(dvfs_enabled=False)
        assert cfg.factor(False, warm=False) == 1.0
        cfg = SpeedConfig(dvfs_enabled=True)
        assert cfg.factor(False, warm=False) == pytest.approx(0.85)

    def test_combined_effects(self):
        cfg = SpeedConfig(dvfs_enabled=True)
        assert cfg.factor(True, False) == pytest.approx(0.62 * 0.85)
