"""Unit tests for the overall-figure helpers and workload registry params."""

import math

import pytest

from repro.experiments.common import Table
from repro.experiments.overall import check_overall, geometric_means
from repro.workloads import build_workload
from repro.workloads.parsec import (
    BarrierWorkload,
    DataParallelWorkload,
    LockWorkload,
    PipelineWorkload,
    build_parsec,
)


def make_table(rows):
    t = Table("x", "t", ["benchmark", "kind", "CFS_pct", "enhanced_pct",
                         "vsched_pct"])
    for r in rows:
        t.add(*r)
    return t


class TestGeometricMeans:
    def test_geomean_math(self):
        t = make_table([
            ("a", "throughput", 100.0, 100.0, 400.0),
            ("b", "throughput", 100.0, 100.0, 100.0),
            ("c", "latency", 100.0, 200.0, 200.0),
        ])
        means = geometric_means(t)
        assert means["throughput"]["vsched"] == pytest.approx(200.0)
        assert means["throughput"]["enhanced"] == pytest.approx(100.0)
        assert means["latency"]["enhanced"] == pytest.approx(200.0)

    def test_check_overall_passes_good_shape(self):
        t = make_table([
            ("a", "throughput", 100.0, 130.0, 150.0),
            ("b", "latency", 100.0, 110.0, 160.0),
        ])
        check_overall(t, min_enhanced=110.0, min_vsched=120.0,
                      latency_min_vsched=120.0)

    def test_check_overall_rejects_regression(self):
        t = make_table([
            ("a", "throughput", 100.0, 130.0, 60.0),  # catastrophic row
            ("b", "latency", 100.0, 110.0, 160.0),
        ])
        with pytest.raises(AssertionError):
            check_overall(t, min_enhanced=50.0, min_vsched=50.0,
                          latency_min_vsched=50.0)


class TestRegistryParameters:
    def test_scale_shrinks_barrier_phases(self):
        big = build_parsec("bodytrack", threads=4, scale=1.0)
        small = build_parsec("bodytrack", threads=4, scale=0.1)
        assert isinstance(big, BarrierWorkload)
        assert small.phases < big.phases
        assert small.phase_work_ns == big.phase_work_ns  # granularity kept

    def test_scale_shrinks_chunks_not_chunk_size(self):
        big = build_parsec("swaptions", threads=4, scale=1.0)
        small = build_parsec("swaptions", threads=4, scale=0.1)
        assert isinstance(big, DataParallelWorkload)
        assert small.chunks < big.chunks
        assert small.chunk_work_ns == big.chunk_work_ns

    def test_sync_intensity_orders_granularity(self):
        coarse = build_parsec("facesim", threads=4, scale=1.0)     # 0.6
        fine = build_parsec("streamcluster", threads=4, scale=1.0)  # 2.2
        assert fine.phase_work_ns < coarse.phase_work_ns

    def test_threads_scale_worker_pools(self):
        wl4 = build_workload("dedup", threads=4, scale=0.1)
        wl8 = build_workload("dedup", threads=8, scale=0.1)
        assert isinstance(wl4, PipelineWorkload)
        assert wl8.threads > wl4.threads

    def test_lock_family_params(self):
        wl = build_parsec("fluidanimate", threads=4, scale=0.5)
        assert isinstance(wl, LockWorkload)
        assert wl.cs_work_ns < wl.outside_work_ns

    def test_latency_request_count_param(self):
        wl = build_workload("silo", threads=4, n_requests=77)
        assert wl.n_requests == 77
