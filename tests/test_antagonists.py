"""Tests for the antagonist family, the graze counter, and the
degradation metrics."""

import pytest

from repro.cluster import build_plain_vm, install_antagonist
from repro.core.module import VSchedModule
from repro.core.vsched import VSched, VSchedConfig
from repro.metrics.degradation import DegradationReport, GroundTruthTracker
from repro.probers import VAct, VCap
from repro.probers.vcap import _WindowState
from repro.sim import MSEC, SEC, USEC
from repro.workloads.antagonists import (
    ANTAGONIST_KINDS,
    AntagonistSpec,
    BurstPlan,
    DutyCyclePlan,
    QuotaPlan,
    build_plan,
)


def _spin(api):
    while True:
        yield api.run(MSEC)


def saturated_env(n=2, **kw):
    env = build_plain_vm(n, **kw)
    for c in range(n):
        env.kernel.spawn(_spin, f"sat{c}", cpu=c, allowed=(c,))
    return env


class TestPlans:
    def test_spec_validation(self):
        with pytest.raises(ValueError):
            AntagonistSpec(kind="nope")
        with pytest.raises(ValueError):
            AntagonistSpec(kind="tick_evader", intensity=1.5)

    def test_plans_are_deterministic_data(self):
        for kind in ANTAGONIST_KINDS:
            spec = AntagonistSpec(kind=kind, seed=f"det-{kind}")
            a = build_plan(spec, horizon_ns=20 * SEC)
            b = build_plan(spec, horizon_ns=20 * SEC)
            assert a == b
            assert repr(a) == repr(b)  # repr doubles as cache key

    def test_seed_changes_randomized_plans(self):
        a = build_plan(AntagonistSpec(kind="burst_thief", seed="s1"))
        b = build_plan(AntagonistSpec(kind="burst_thief", seed="s2"))
        assert a != b

    def test_tick_evader_stays_below_preempt_threshold(self):
        for intensity in (0.0, 0.5, 1.0):
            plan = build_plan(AntagonistSpec(kind="tick_evader",
                                             intensity=intensity))
            assert isinstance(plan, DutyCyclePlan)
            assert 25 * USEC < plan.on_ns < 200 * USEC
            assert plan.on_ns + plan.off_ns == MSEC  # tick-locked

    def test_burst_and_quota_schedules_cover_horizon(self):
        bp = build_plan(AntagonistSpec(kind="burst_thief"), horizon_ns=30 * SEC)
        assert isinstance(bp, BurstPlan) and len(bp.bursts) >= 5
        assert all(t + d <= 32 * SEC for t, d in bp.bursts)
        qp = build_plan(AntagonistSpec(kind="adaptive_quota"),
                        horizon_ns=30 * SEC)
        assert isinstance(qp, QuotaPlan) and len(qp.updates) >= 10
        assert all(0 < q <= p for _, q, p in qp.updates)


class TestInstaller:
    def test_duty_cycler_steals_time(self):
        env = saturated_env(2)
        install_antagonist(env, AntagonistSpec(kind="steal_flapper"),
                           horizon_ns=3 * SEC)
        env.engine.run_until(3 * SEC)
        assert all(v.steal_ns(env.engine.now) > 50 * MSEC
                   for v in env.vm.vcpus)

    def test_burst_thief_quiet_between_bursts(self):
        env = saturated_env(1)
        ant = install_antagonist(env, AntagonistSpec(kind="burst_thief",
                                                     seed="bt-test"),
                                 horizon_ns=10 * SEC)
        env.engine.run_until(10 * SEC)
        stolen = env.vm.vcpus[0].steal_ns(env.engine.now)
        burst_total = sum(d for _, d in ant.plan.bursts if _ < 10 * SEC)
        # Theft happens, but only during the scheduled bursts (the 4x
        # weight means the thief takes ~80% of a burst).
        assert 0 < stolen < burst_total

    def test_adaptive_quota_installs_bandwidth(self):
        env = saturated_env(2)
        install_antagonist(env, AntagonistSpec(kind="adaptive_quota"),
                           horizon_ns=5 * SEC)
        env.engine.run_until(5 * SEC)
        assert all(v.bandwidth is not None for v in env.vm.vcpus)
        assert all(v.steal_ns(env.engine.now) > 0 for v in env.vm.vcpus)

    def test_remove_stops_theft(self):
        env = saturated_env(1)
        ant = install_antagonist(env, AntagonistSpec(kind="steal_flapper"),
                                 horizon_ns=10 * SEC)
        env.engine.run_until(2 * SEC)
        ant.remove()
        stolen = env.vm.vcpus[0].steal_ns(env.engine.now)
        env.engine.run_until(4 * SEC)
        assert env.vm.vcpus[0].steal_ns(env.engine.now) == stolen


class TestGrazeCounter:
    def test_tick_evader_grazes_without_preemptions(self):
        """The evasion itself: sub-threshold per-tick steal raises the
        graze counter while the preemption counter stays ~flat."""
        env = saturated_env(1)
        install_antagonist(env, AntagonistSpec(kind="tick_evader"),
                           horizon_ns=3 * SEC)
        env.engine.run_until(3 * SEC)
        cpu = env.kernel.cpus[0]
        cpu._catch_up()
        assert cpu.steal_graze_count > 500
        assert cpu.preempt_count < cpu.steal_graze_count / 10

    def test_clean_run_has_no_grazes(self):
        env = saturated_env(1)
        env.engine.run_until(2 * SEC)
        cpu = env.kernel.cpus[0]
        cpu._catch_up()
        assert cpu.steal_graze_count == 0


class TestDegenerateWindowGuard:
    def test_zero_elapsed_window_counted_not_crashed(self):
        env = build_plain_vm(1)
        module = VSchedModule(env.kernel)
        vcap = VCap(env.kernel, module)
        task = env.kernel.spawn(_spin, "t0", cpu=0, allowed=(0,))
        env.engine.run_until(MSEC)
        now = env.kernel.now()
        win = _WindowState(heavy=False, cpus=[0])
        win.probers = {0: task}
        win.steal_before = {0: env.kernel.steal_of(0)}
        win.preempt_before = {0: 0}
        win.graze_before = {0: 0}
        win.spawn_time = {0: now}  # spawn stalled to the end instant
        vcap._end_window(win)
        assert vcap.degenerate_windows == 1
        assert module.store[0].capacity > 0  # finite, no inf/NaN


class TestDegradation:
    def test_report_json_roundtrip(self):
        rep = DegradationReport(label="x", samples=10, cap_err=0.125,
                                act_err=0.5, samples_rejected=3,
                                quarantined_windows=2, degenerate_windows=1)
        again = DegradationReport.from_json(rep.to_json())
        assert again == rep
        assert again.combined_err == pytest.approx(0.3125)

    def test_tracker_clean_env_near_zero_error(self):
        env = saturated_env(2)
        cfg = VSchedConfig.enhanced().with_(enable_rwc=False)
        vs = VSched(env.kernel, cfg)
        vs.start()
        tracker = GroundTruthTracker(env, vs.module.store)
        tracker.start(delay_ns=4 * SEC)
        env.engine.run_until(8 * SEC)
        rep = tracker.report("clean", vcap=vs.vcap)
        assert rep.samples > 0
        assert rep.cap_err < 0.05
        assert rep.act_err < 0.05

    def test_hardened_beats_naive_under_poisoner(self):
        """The tentpole claim at unit scale: one antagonist, both prober
        configurations, hardened strictly better."""
        results = {}
        for robust in (False, True):
            env = saturated_env(2)
            cfg = VSchedConfig.enhanced().with_(enable_rwc=False,
                                                robust_probers=robust)
            vs = VSched(env.kernel, cfg)
            install_antagonist(env, AntagonistSpec(kind="probe_poisoner"),
                               horizon_ns=12 * SEC)
            vs.start()
            tracker = GroundTruthTracker(env, vs.module.store)
            tracker.start(delay_ns=4 * SEC)
            env.engine.run_until(12 * SEC)
            results[robust] = tracker.report("p", vcap=vs.vcap)
        assert results[True].combined_err < results[False].combined_err
        assert results[True].samples_rejected > 0

    def test_hardened_run_is_deterministic(self):
        def once():
            env = saturated_env(1)
            cfg = VSchedConfig.enhanced().with_(enable_rwc=False,
                                                robust_probers=True)
            vs = VSched(env.kernel, cfg)
            install_antagonist(env, AntagonistSpec(kind="burst_thief",
                                                   seed="det"),
                               horizon_ns=6 * SEC)
            vs.start()
            tracker = GroundTruthTracker(env, vs.module.store)
            tracker.start(delay_ns=2 * SEC)
            env.engine.run_until(6 * SEC)
            return tracker.report("d", vcap=vs.vcap)

        assert once() == once()
