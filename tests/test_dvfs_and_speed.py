"""Tests for the DVFS ramp and SMT speed dynamics end to end."""

import pytest

from repro.cluster import build_plain_vm
from repro.hw.speed import SpeedConfig
from repro.sim import MSEC, SEC, USEC


class TestDvfs:
    def test_cold_core_runs_slower_then_ramps(self):
        env = build_plain_vm(1, speed=SpeedConfig(dvfs_enabled=True))
        done = []

        def body(api):
            yield api.run(10 * MSEC)
            done.append(api.now())

        env.kernel.spawn(body, "t")
        env.engine.run_until(SEC)
        elapsed = done[0]
        # First 200 us at 0.85 then 1.0:
        # work = 0.2*0.85 + (t-0.2)*1.0 = 10ms -> t = 10ms + 0.2*0.15/1.0
        expected = 10 * MSEC + int(200 * USEC * 0.15 / 0.85 * 0.85)  # ~30 us
        assert elapsed == pytest.approx(expected, abs=40 * USEC)
        assert elapsed > 10 * MSEC  # strictly slower than a warm core

    def test_warm_core_stays_warm_across_short_gaps(self):
        env = build_plain_vm(1, speed=SpeedConfig(dvfs_enabled=True))
        stamps = []

        def body(api):
            yield api.run(5 * MSEC)     # warms the core
            stamps.append(api.now())
            yield api.sleep(500 * USEC)  # shorter than the cooldown
            yield api.run(5 * MSEC)
            stamps.append(api.now())

        env.kernel.spawn(body, "t")
        env.engine.run_until(SEC)
        second_burst = stamps[1] - stamps[0] - 500 * USEC
        # No cold penalty on the second burst.
        assert second_burst == pytest.approx(5 * MSEC, abs=20 * USEC)

    def test_core_cools_after_long_idle(self):
        env = build_plain_vm(1, speed=SpeedConfig(dvfs_enabled=True))
        stamps = []

        def body(api):
            yield api.run(5 * MSEC)
            stamps.append(api.now())
            yield api.sleep(20 * MSEC)  # longer than the 2 ms cooldown
            yield api.run(5 * MSEC)
            stamps.append(api.now())

        env.kernel.spawn(body, "t")
        env.engine.run_until(SEC)
        second_burst = stamps[1] - stamps[0] - 20 * MSEC
        assert second_burst > 5 * MSEC + 20 * USEC  # paid the ramp again


class TestSmtDynamics:
    def test_sibling_activity_slows_and_recovers(self):
        env = build_plain_vm(2, smt=2, cores_per_socket=1)
        done = []

        def burner(api):
            yield api.run(100 * MSEC)
            done.append(api.now())

        def intruder(api):
            yield api.sleep(20 * MSEC)
            yield api.run(31 * MSEC)  # busy sibling for ~50ms wall at 0.62

        env.kernel.spawn(burner, "burn", cpu=0, allowed=(0,))
        env.kernel.spawn(intruder, "in", cpu=1, allowed=(1,))
        env.engine.run_until(SEC)
        elapsed = done[0]
        # burner: 20ms solo + 50ms at 0.62 (losing 19ms of work) + rest solo.
        assert elapsed > 115 * MSEC
        assert elapsed < 145 * MSEC

    def test_smt_work_conservation(self):
        """Two siblings each lose speed but the core's combined throughput
        exceeds a single thread (0.62 * 2 > 1)."""
        env = build_plain_vm(2, smt=2, cores_per_socket=1)
        tasks = []

        def spin(api):
            while True:
                yield api.run(MSEC)

        for i in range(2):
            tasks.append(env.kernel.spawn(spin, f"t{i}", cpu=i, allowed=(i,)))
        env.engine.run_until(1 * SEC)
        total = sum(t.stats.work_done for t in tasks)
        assert total == pytest.approx(2 * 0.62 * SEC, rel=0.02)
