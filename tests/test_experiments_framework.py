"""Tests for the experiment framework and CLI plumbing (no heavy runs)."""

import pytest

from repro.experiments.common import (
    EXPERIMENTS,
    Table,
    check_experiment,
    load_experiment,
    run_experiment,
)
from repro.experiments.cli import ALL_ORDER, main


class TestTable:
    def test_add_and_column(self):
        t = Table("x", "title", ["a", "b"])
        t.add("r1", 1.5)
        t.add("r2", 2.5)
        assert t.column("b") == [1.5, 2.5]
        assert t.cell("r2", "b") == 2.5

    def test_row_width_enforced(self):
        t = Table("x", "t", ["a", "b"])
        with pytest.raises(ValueError):
            t.add("only-one")

    def test_missing_row_key(self):
        t = Table("x", "t", ["a", "b"])
        t.add("r", 1)
        with pytest.raises(KeyError):
            t.cell("nope", "b")

    def test_render_contains_everything(self):
        t = Table("fig0", "demo", ["name", "value"],
                  paper_expectation="should be big")
        t.add("alpha", 12.345)
        t.notes.append("a note")
        out = t.render()
        assert "fig0" in out and "demo" in out
        assert "alpha" in out and "12.35" in out
        assert "note: a note" in out
        assert "paper: should be big" in out


class TestRegistry:
    def test_all_paper_artifacts_present(self):
        expected = {"fig2", "fig3", "fig4", "fig10a", "fig10b", "tab2",
                    "fig11", "fig12", "fig13", "fig14", "tab3", "fig15",
                    "tab4", "fig16", "fig17", "fig18", "fig19", "fig20",
                    "fig21", "figA1"}
        assert set(EXPERIMENTS) == expected
        assert set(ALL_ORDER) == expected

    def test_every_module_loads_with_run_and_check(self):
        for exp_id in EXPERIMENTS:
            mod = load_experiment(exp_id)
            runner = getattr(mod, f"run_{exp_id}", None) or mod.run
            checker = getattr(mod, f"check_{exp_id}", None) or mod.check
            assert callable(runner) and callable(checker)

    def test_unknown_experiment_rejected(self):
        with pytest.raises(KeyError):
            load_experiment("fig99")

    def test_cli_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig18" in out and "tab4" in out


class TestSmallestExperimentEndToEnd:
    def test_fig3_runs_and_checks(self):
        table = run_experiment("fig3", fast=True)
        check_experiment("fig3", table)
        assert table.cell("migration", "vcpu_utilization_pct") > 90.0
