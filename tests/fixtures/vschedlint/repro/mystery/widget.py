"""Fixture: module in a subpackage missing from the layer graph.

Expected findings: layer-unknown (x1).
"""

VALUE = 1
