"""Fixture: monotonic clocks are allowed in the experiments layer.

Must produce no findings: time.monotonic()/perf_counter() measure real
host time for deadlines and progress, which is the experiments layer's
job.  (time.time() would still be flagged — that is bad_wallclock.py.)
"""

import time


def deadline_in(seconds: float) -> float:
    return time.monotonic() + seconds


def elapsed(t0: float) -> float:
    return time.perf_counter() - t0
