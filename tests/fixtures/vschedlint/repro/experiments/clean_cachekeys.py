"""Cache-key-sound experiment module: zero findings expected.

Every input of the unit body flows through ``(config, seed)``; the only
environment read sits in CLI orchestration no work unit can reach, which
the experiments-layer scoping deliberately leaves alone.
"""

import os


def _scenario(mode, fast):
    scale = 0.2 if fast else 1.0
    return {"mode": mode, "scale": scale}


def scenarios(fast):
    return [WorkUnit(exp_id="figY", label=mode, func=_scenario,
                     config=(mode, fast), seed=f"figY-{mode}")
            for mode in ("cfs", "vsched")]


def _worker_count():
    return int(os.getenv("REPRO_JOBS", "4"))
