"""Hidden result inputs and fingerprint gaps in a work-unit body.

Expected on a standalone lint: fingerprint-gap x1 (scipy is neither
stdlib nor pinned), hidden-env-input x2 (module-level read plus one in
the unit-reachable body), hidden-file-input x2 (``open()`` in the body,
``.read_text()`` in a helper the body calls).  The orchestration-only
``_worker_count`` read stays quiet: it is not reachable from any work
unit.  Linted together with the ``repro/__init__.py`` fixture (a full
scan) the unresolvable ``repro.experiments.missing_tables`` import adds
one more fingerprint-gap.
"""

import os
import scipy.optimize
from pathlib import Path

from repro.experiments.missing_tables import LUT

_DEBUG = os.environ.get("REPRO_DEBUG", "")


def _load_lut(name):
    return Path(name).read_text()


def _scenario(mode, fast):
    scale = float(os.getenv("REPRO_SCALE", "1.0"))
    with open("tables/latency.csv") as fh:
        rows = fh.read()
    return {"mode": mode, "scale": scale, "rows": len(rows),
            "lut": _load_lut("tables/lut.bin")}


def scenarios(fast):
    return [WorkUnit(exp_id="figX", label=mode, func=_scenario,
                     config=(mode, fast), seed=f"figX-{mode}")
            for mode in ("cfs", "vsched")]


def _worker_count():
    # Host-side concurrency knob: never feeds a result value.
    return int(os.getenv("REPRO_JOBS", "4"))
