"""Fixture: wall-clock reads are banned even in the experiments layer.

Expected findings: wall-clock (x2).
"""

import time
from datetime import datetime


def stamp() -> float:
    return time.time()


def label() -> str:
    return datetime.now().isoformat()
