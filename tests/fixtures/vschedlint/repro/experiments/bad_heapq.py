"""Fixture: heapq/_heap use outside repro.sim (heap-encapsulation x3)."""

import heapq


def peek_engine_store(engine):
    entry = engine._heap[0]
    heapq.heappush(engine._heap, entry)
    return entry
