"""Fixture: neutral-module import from a lower-ranked layer — clean.

repro.core.weights is rank 3 by package but declared layer-neutral, so the
hypervisor (rank 2) may import it without a layer-order finding.
"""

from repro.core.weights import NICE0_WEIGHT, weight_for_nice


def default_weight() -> int:
    return weight_for_nice(0) or NICE0_WEIGHT
