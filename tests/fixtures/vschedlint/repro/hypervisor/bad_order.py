"""Fixture: hypervisor (rank 2) importing guest (rank 3).

Expected findings: layer-order (x1).
"""

from repro.guest.task import Task


def wrap(t: Task):
    return t
