"""Fixture: layering-clean guest module — must produce no findings."""

from repro.core.weights import weight_for_nice
from repro.sim.engine import MSEC


def observe(vm):
    vcpu = vm.vcpus[0]
    vcpu.kick()
    lat = vm.machine.cache.base_latency
    d = vm.machine.topology.distance(0, 1)
    return vcpu.steal_ns + vcpu.active + lat + d + weight_for_nice(0) + MSEC
