"""Fixture: elision-disciplined access — no findings.

Every touch of a registered field happens after a sync call, and
__init__ may initialize fields freely.
"""


class Sampler:
    def __init__(self):
        self._tick_due = 0
        self.last_tick_time = 0

    def read_synced(self):
        self._catch_up()
        return self._tick_due

    def sweep(self, kernel):
        kernel.sync_ticks()
        return [c.preempt_count for c in kernel.cpus]
