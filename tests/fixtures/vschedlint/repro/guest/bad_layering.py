"""Fixture: layering violations.

Expected findings:
* layer-order (x1) — guest (rank 3) importing experiments (rank 6).
* guest-isolation (x2) — guest layer importing repro.hypervisor.
* guest-abi (x1) — reaching past the vCPU ABI for host entity state.
"""

from repro.experiments.cli import main            # layer-order
from repro.hypervisor.entity import HostEntity    # guest-isolation
from repro.hypervisor.machine import Machine      # guest-isolation


def peek_host_queue(vm):
    vcpu = vm.vcpus[0]
    return vcpu.entity.vruntime                   # guest-abi: oracle read
