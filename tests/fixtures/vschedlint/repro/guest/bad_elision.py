"""Fixture: tick-replayed state touched without materialization.

Expected findings: elision-sync (x2) — one read and one write of
registered fields with no prior _catch_up()/sync_ticks() in the function.
"""


class Sampler:
    def read_stale(self):
        return self._tick_due

    def write_stale(self, now):
        self.last_tick_time = now
