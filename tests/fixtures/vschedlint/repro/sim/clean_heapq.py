"""Fixture: repro.sim owns the event store; heapq/_heap use is sanctioned."""

import heapq


class MiniBackend:
    def __init__(self):
        self._heap = []

    def push(self, entry):
        heapq.heappush(self._heap, entry)
