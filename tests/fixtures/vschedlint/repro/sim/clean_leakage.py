"""Unit-local state only: zero findings expected.

Instance attributes, locals, and caller-provided containers may all
mutate freely — none of them survives the unit that owns them.
"""


class Telemetry:
    def __init__(self):
        self.counts = {}
        self.events = []

    def bump(self, key):
        self.counts[key] = self.counts.get(key, 0) + 1

    def log(self, event):
        self.events.append(event)


def fill(sink, items):
    out = []
    for item in items:
        out.append(item)
        sink.append(item)
    return out
