"""Fixture: determinism violations in a simulation layer.

Expected findings:
* wall-clock (x2) — time.time() and time.monotonic() (sim layer).
* unseeded-rng (x2) — random.random() and np.random.rand().
* identity-key (x1) — id() as a sort key.
* unordered-iter (x2) — set iteration into call_at; set comprehension
  iterating a set-typed parameter into a list.
"""

import random
import time


def stamp():
    return time.time() + time.monotonic()


def draw(np):
    return random.random() + np.random.rand()


def ranked(items):
    return sorted(items, key=lambda t: id(t))


def schedule_all(engine, pending):
    ready = set(pending)
    for item in ready:
        engine.call_at(0, item)


def snapshot(flags: set):
    return [f for f in flags]
