"""Registers an *imported* callable with a mutable default argument.

Expected, when linted together with ``helper_defaults.py``:
snapshot-mutable-default x1 — the project index resolves ``drain``
through the import and sees its default.  Linted alone the import cannot
be resolved and the linter stays quiet: the call graph under-approximates
rather than guesses.
"""

from repro.sim.helper_defaults import drain


def wire(engine):
    engine.call_at(1000, drain)
