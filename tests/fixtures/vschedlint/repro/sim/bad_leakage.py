"""Process-level state written at simulation time.

Expected findings: cross-unit-state x3 (module-dict store, module-list
append, global rebind), class-attr-state x2 (write via the class name,
write via ``cls``).  All five outlive a work unit in a warm pooled
worker.
"""

_RESULT_MEMO = {}
_TRACE = []
_RUNS = 0


class WarmPool:
    reused = 0

    def mark_reuse(self):
        WarmPool.reused += 1

    @classmethod
    def reset(cls):
        cls.reused = 0


def memoize(key, value):
    _RESULT_MEMO[key] = value


def trace(event):
    _TRACE.append(event)


def bump_runs():
    global _RUNS
    _RUNS += 1
