"""Fixture: broken suppressions.

Expected findings:
* bad-suppression (x2) — missing reason; unknown rule.
* wall-clock (x1) — the reasonless suppression does not silence.
* unused-suppression (x1) — a valid suppression matching nothing.
"""

import time


def no_reason():
    return time.time()  # vschedlint: disable=wall-clock


def unknown_rule():
    return 1  # vschedlint: disable=not-a-rule -- reason present but rule bogus


def unused():
    return 2  # vschedlint: disable=wall-clock -- nothing here to silence
