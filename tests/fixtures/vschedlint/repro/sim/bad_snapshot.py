"""Copy-unsafe callables at registration sites.

Expected findings: snapshot-closure x3 (lambda, named nested closure,
factory-returned closure), snapshot-bound-builtin x1,
snapshot-mutable-default x1, snapshot-generator x2 (genexp arg, live
generator arg).  Mirrors every rejection class of guard_world.
"""


def make_cb(tag):
    def inner():
        return tag  # closes over the factory argument
    return inner


def gen_events():
    yield 1
    yield 2


def has_mutable_default(acc=[]):
    acc.append(1)


def wire(engine, sink):
    leak = []
    engine.call_at(1000, lambda: leak.append(1))        # closure (lambda)

    def nested():
        return len(leak)                                # closure (nested def)
    engine.call_at(2000, nested)

    engine.call_at(3000, make_cb("x"))                  # factory closure
    engine.call_at(4000, sink.append)                   # bound builtin
    engine.call_in(5000, has_mutable_default)           # mutable default
    engine.call_at(6000, print, (x for x in leak))      # genexp argument
    engine.call_at(7000, print, gen_events())           # live generator
