"""Copy-safe registration forms: none of these may fire VSL4xx.

Bound methods of ordinary objects deep-copy through the memo; module-level
functions are atoms by design; functools.partial over either is fine;
@snapshot_safe vouches for the rest at runtime and statically.
"""

from functools import partial

from repro.sim.snapshot import snapshot_safe


def on_fire(world, n):
    world.note(n)


_shared_total = 0


@snapshot_safe
def vouched_bump():
    global _shared_total
    _shared_total += 1  # vschedlint: disable=cross-unit-state -- fixture: @snapshot_safe silences VSL4xx only; the write is a separate (intended-for-this-file) concern


class Ticker:
    def __init__(self, engine, period):
        self.engine = engine
        self.period = period
        self.count = 0

    def _tick(self):
        self.count += 1
        self.engine.call_in(self.period, self._tick)


def wire(engine, world):
    t = Ticker(engine, 1000)
    engine.call_in(t.period, t._tick)          # bound method: safe
    engine.call_at(2000, on_fire, world, 3)    # module function + args
    engine.call_at(3000, partial(on_fire, world))  # partial over module fn
    engine.call_at(4000, vouched_bump)         # decorator-vouched
    engine.add_sync_hook(t._tick)              # bound method hook
