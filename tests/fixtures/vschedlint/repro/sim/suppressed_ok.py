"""Fixture: valid suppressions — no findings.

A same-line suppression silences that line; a def-line suppression covers
the whole function body.
"""

import time


def stamped():
    return time.time()  # vschedlint: disable=wall-clock -- fixture: sanctioned display-only read


def covered():  # vschedlint: disable=wall-clock -- fixture: whole-function scope
    a = time.time()
    b = time.time()
    return a + b
