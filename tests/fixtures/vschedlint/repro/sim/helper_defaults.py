"""Imported-callable half of the cross-module VSL403 pair.

The mutable default only becomes a finding at a registration site (see
``bad_crossmod.py``), so this module on its own is clean.
"""


def drain(backlog=[]):
    while backlog:
        backlog.pop()
