"""Fixture: determinism-clean simulation module — no findings.

Set iterations feed only order-insensitive consumers, randomness goes
through the sanctioned factory, and ordering keys are total.
"""

from repro.sim.rng import make_rng


def draw(seed: int) -> int:
    rng = make_rng(seed)
    return int(rng.integers(10))


def ordered(pending) -> list:
    return sorted(set(pending))


def count_live(flags: set) -> int:
    return sum(1 for f in flags if f)


def extremes(values: frozenset):
    return min(values), max(values), len(values)


def schedule_sorted(engine, waiters: set) -> None:
    for w in sorted(waiters):
        engine.call_in(1, w)
