"""Package-root marker for *full-scan* fixture lints.

Linting this file alongside a fixture puts ``repro`` itself in the
project index, which is how the linter decides the whole package was
scanned — arming the repro-tree branch of the fingerprint-gap rule
(partial scans would see every sibling import as a false gap).
"""
