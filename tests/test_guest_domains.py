"""Unit tests for schedule domains and the cgroup cpuset model."""

import pytest

from repro.guest.cgroup import TaskGroup
from repro.guest.domains import DomainLevel, SchedDomains


class TestDomainLevel:
    def test_group_of(self):
        level = DomainLevel("smt", [[0, 1], [2, 3]])
        assert level.group_of(0) == frozenset({0, 1})
        assert level.group_of(3) == frozenset({2, 3})
        assert level.group_of(7) is None

    def test_overlapping_groups_rejected(self):
        with pytest.raises(ValueError):
            DomainLevel("bad", [[0, 1], [1, 2]])


class TestSchedDomains:
    def test_flat_default(self):
        d = SchedDomains.flat(8)
        assert not d.has_smt_level()
        assert d.llc_domain(3) == frozenset(range(8))
        assert d.smt_siblings(3) == frozenset({3})

    def test_from_topology_lists(self):
        smt = {0: frozenset({0, 1}), 1: frozenset({0, 1}),
               2: frozenset({2, 3}), 3: frozenset({2, 3}),
               4: frozenset({4, 5}), 5: frozenset({4, 5}),
               6: frozenset({6}), 7: frozenset({7})}
        sock = {c: frozenset({0, 1, 2, 3}) for c in range(4)}
        sock.update({c: frozenset({4, 5, 6, 7}) for c in range(4, 8)})
        d = SchedDomains.from_topology_lists(8, smt, sock)
        assert d.has_smt_level()
        assert d.smt_siblings(0) == frozenset({0, 1})
        assert d.smt_siblings(6) == frozenset({6})
        assert d.llc_domain(2) == frozenset({0, 1, 2, 3})
        assert d.llc_domain(7) == frozenset({4, 5, 6, 7})

    def test_single_socket_has_no_llc_level(self):
        smt = {c: frozenset({c}) for c in range(4)}
        sock = {c: frozenset(range(4)) for c in range(4)}
        d = SchedDomains.from_topology_lists(4, smt, sock)
        assert [l.name for l in d.levels] == ["machine"]

    def test_inconsistent_sibling_lists_rejected(self):
        smt = {0: frozenset({0, 1}), 1: frozenset({1, 2}),
               2: frozenset({2}), 3: frozenset({3})}
        sock = {c: frozenset(range(4)) for c in range(4)}
        with pytest.raises(ValueError):
            SchedDomains.from_topology_lists(4, smt, sock)


class TestTaskGroup:
    def test_mask_intersection_with_task_affinity(self):
        from repro.cluster import build_plain_vm
        env = build_plain_vm(4)
        g = env.kernel.new_group("g")
        g.set_allowed(frozenset({1, 2}))

        def body(api):
            yield api.run(1000)

        t = env.kernel.spawn(body, "t", group=g, allowed=(2, 3))
        assert t.effective_allowed() == frozenset({2})
        assert t.may_run_on(2)
        assert not t.may_run_on(1)
        assert not t.may_run_on(3)

    def test_none_mask_means_everywhere(self):
        from repro.cluster import build_plain_vm
        env = build_plain_vm(4)

        def body(api):
            yield api.run(1000)

        t = env.kernel.spawn(body, "t")
        assert t.effective_allowed() is None
        assert all(t.may_run_on(c) for c in range(4))
