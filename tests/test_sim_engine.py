"""Unit tests for the event engine.

Engine-behaviour tests run against both event-store backends (binary heap
and hierarchical timer wheel): the backend protocol promises identical
observable semantics, so every test here is a conformance check.
Backend-specific internals (heap compaction) are pinned separately below.
"""

import pytest

from repro.sim import Engine, MSEC, SEC, USEC


@pytest.fixture(params=["heap", "wheel"])
def make_engine(request):
    """Engine factory parametrized over event-store backends."""
    def make():
        return Engine(backend=request.param)
    return make


def test_time_constants():
    assert USEC == 1_000
    assert MSEC == 1_000_000
    assert SEC == 1_000_000_000


def test_backend_selection(monkeypatch):
    assert Engine(backend="heap").backend == "heap"
    assert Engine(backend="wheel").backend == "wheel"
    monkeypatch.delenv("VSCHED_REPRO_ENGINE", raising=False)
    assert Engine().backend == "heap"  # the reference backend is default
    monkeypatch.setenv("VSCHED_REPRO_ENGINE", "wheel")
    assert Engine().backend == "wheel"
    monkeypatch.setenv("VSCHED_REPRO_ENGINE", "splay")
    with pytest.raises(ValueError):
        Engine()
    with pytest.raises(ValueError):
        Engine(backend="btree")


def test_events_fire_in_time_order(make_engine):
    eng = make_engine()
    fired = []
    eng.call_in(30, lambda: fired.append("c"))
    eng.call_in(10, lambda: fired.append("a"))
    eng.call_in(20, lambda: fired.append("b"))
    eng.run_until(100)
    assert fired == ["a", "b", "c"]


def test_same_time_events_fire_in_insertion_order(make_engine):
    eng = make_engine()
    fired = []
    for label in "abcde":
        eng.call_in(50, lambda l=label: fired.append(l))
    eng.run_until(50)
    assert fired == list("abcde")


def test_run_until_advances_clock_even_without_events(make_engine):
    eng = make_engine()
    eng.run_until(123456)
    assert eng.now == 123456


def test_run_until_does_not_fire_future_events(make_engine):
    eng = make_engine()
    fired = []
    eng.call_in(200, lambda: fired.append(1))
    eng.run_until(100)
    assert fired == []
    eng.run_until(300)
    assert fired == [1]


def test_cancelled_event_does_not_fire(make_engine):
    eng = make_engine()
    fired = []
    ev = eng.call_in(10, lambda: fired.append(1))
    ev.cancel()
    eng.run_until(100)
    assert fired == []
    assert not ev.active


def test_event_callback_args(make_engine):
    eng = make_engine()
    got = []
    eng.call_in(5, lambda a, b: got.append((a, b)), 1, "x")
    eng.run_until(10)
    assert got == [(1, "x")]


def test_scheduling_in_the_past_raises(make_engine):
    eng = make_engine()
    eng.run_until(100)
    with pytest.raises(ValueError):
        eng.call_at(50, lambda: None)
    with pytest.raises(ValueError):
        eng.call_in(-1, lambda: None)


def test_callbacks_can_schedule_more_events(make_engine):
    eng = make_engine()
    fired = []

    def chain(n):
        fired.append(n)
        if n < 5:
            eng.call_in(10, chain, n + 1)

    eng.call_in(10, chain, 1)
    eng.run_until(SEC)
    assert fired == [1, 2, 3, 4, 5]


def test_stop_halts_processing(make_engine):
    eng = make_engine()
    fired = []
    eng.call_in(10, lambda: (fired.append(1), eng.stop()))
    eng.call_in(20, lambda: fired.append(2))
    eng.run_until(100)
    assert fired == [1]


def test_pending_counts_uncancelled(make_engine):
    eng = make_engine()
    ev1 = eng.call_in(10, lambda: None)
    eng.call_in(20, lambda: None)
    ev1.cancel()
    assert eng.pending() == 1


def test_run_drains_queue(make_engine):
    eng = make_engine()
    fired = []
    for i in range(10):
        eng.call_in(i + 1, lambda i=i: fired.append(i))
    count = eng.run()
    assert count == 10
    assert fired == list(range(10))


def test_engine_not_reentrant(make_engine):
    eng = make_engine()

    def bad():
        eng.run_until(100)

    eng.call_in(1, bad)
    with pytest.raises(RuntimeError):
        eng.run_until(10)


# ----------------------------------------------------------------------
# Edge cases around lazy cancellation and O(1) pending
# ----------------------------------------------------------------------
def test_cancel_after_fire_is_harmless(make_engine):
    eng = make_engine()
    fired = []
    ev = eng.call_in(10, lambda: fired.append(1))
    eng.run_until(100)
    assert fired == [1]
    before = eng.pending()
    ev.cancel()  # already popped: must not corrupt the pending count
    ev.cancel()  # idempotent
    assert eng.pending() == before == 0


def test_cancel_from_inside_callback_same_instant(make_engine):
    """A callback cancelling a later event at the same timestamp wins."""
    eng = make_engine()
    fired = []
    evs = {}
    evs["b"] = None

    def first():
        fired.append("a")
        evs["b"].cancel()

    eng.call_in(10, first)
    evs["b"] = eng.call_in(10, lambda: fired.append("b"))
    eng.run_until(100)
    assert fired == ["a"]


def test_stop_mid_run_then_resume(make_engine):
    eng = make_engine()
    fired = []
    eng.call_in(10, lambda: (fired.append(1), eng.stop()))
    eng.call_in(20, lambda: fired.append(2))
    eng.run_until(100)
    assert fired == [1]
    assert eng.now == 100  # clock still advances to the deadline
    assert eng.pending() == 1  # the unprocessed event survives stop()
    eng.run_until(100)  # a fresh run resumes where stop() left off
    assert fired == [1, 2]
    assert eng.pending() == 0


def test_scheduling_at_now_is_allowed(make_engine):
    eng = make_engine()
    eng.run_until(50)
    fired = []
    eng.call_at(50, lambda: fired.append(1))
    eng.run_until(50)
    assert fired == [1]


def test_mass_cancellation_preserves_order_and_pending(make_engine):
    """Mass cancellation (heap: compaction territory) leaves survivors
    firing in (time, seq) order and pending() exact throughout."""
    eng = make_engine()
    fired = []
    keep, drop = [], []
    for i in range(300):
        ev = eng.call_in(1000 + i, lambda i=i: fired.append(i))
        (keep if i % 5 == 0 else drop).append((i, ev))
    assert eng.pending() == 300
    for _, ev in drop:
        ev.cancel()
    assert eng.pending() == len(keep)
    eng.run_until(SEC)
    assert fired == [i for i, _ in keep]
    assert eng.pending() == 0


def test_heap_compaction_bounds_dead_entries():
    """Heap-specific: crossing the compaction threshold actually sweeps
    the dead entries out of the underlying heap list."""
    eng = Engine(backend="heap")
    fired = []
    keep, drop = [], []
    for i in range(300):
        ev = eng.call_in(1000 + i, lambda i=i: fired.append(i))
        (keep if i % 5 == 0 else drop).append((i, ev))
    for _, ev in drop:
        ev.cancel()  # 240 cancels: crosses the compaction threshold
    # Compaction ran (possibly more than once); at most a sub-threshold
    # residue of dead entries may remain in the heap.
    heap = eng._backend._heap
    assert len(heap) < 300
    assert len(heap) - len(keep) < 64
    eng.run_until(SEC)
    assert fired == [i for i, _ in keep]


def test_cancel_heavy_same_timestamp_tiebreak(make_engine):
    """Cancel-heavy churn at one instant must not disturb insertion order."""
    eng = make_engine()
    fired = []
    survivors = []
    for i in range(200):
        ev = eng.call_at(777, lambda i=i: fired.append(i))
        if i % 3 == 0:
            survivors.append(i)
        else:
            ev.cancel()
    eng.run_until(777)
    assert fired == survivors


def test_pending_exact_through_mixed_churn(make_engine):
    eng = make_engine()
    events = [eng.call_in(i + 1, lambda: None) for i in range(50)]
    assert eng.pending() == 50
    for ev in events[::2]:
        ev.cancel()
    assert eng.pending() == 25
    eng.run_until(10)  # fires the live half of the first 10
    assert eng.pending() == 20
    eng.run_until(SEC)
    assert eng.pending() == 0


def test_events_fired_counters(make_engine):
    base = Engine.total_events_fired
    eng = make_engine()
    for i in range(7):
        eng.call_in(i + 1, lambda: None)
    eng.run_until(100)
    assert eng.events_fired == 7
    assert Engine.total_events_fired - base == 7


def test_push_cancel_counters_backend_invariant():
    """pushes/cancels/fired are API-level counts: identical per backend."""
    deltas = {}
    for backend in ("heap", "wheel"):
        before = Engine.counters()
        eng = Engine(backend=backend)
        evs = [eng.call_in(10 * (i + 1), lambda: None) for i in range(20)]
        for ev in evs[::2]:
            ev.cancel()
        eng.run_until(SEC)
        after = Engine.counters()
        deltas[backend] = {k: after[k] - before[k] for k in after}
    for backend, d in deltas.items():
        assert d["pushes"] == 20, backend
        assert d["cancels"] == 10, backend
        assert d["fired"] == 10, backend
        # Fully drained: every cancelled entry was physically discarded.
        assert d["dead_drops"] == 10, backend
    assert deltas["heap"]["cascades"] == 0
