"""Unit tests for the event engine."""

import pytest

from repro.sim import Engine, MSEC, SEC, USEC


def test_time_constants():
    assert USEC == 1_000
    assert MSEC == 1_000_000
    assert SEC == 1_000_000_000


def test_events_fire_in_time_order():
    eng = Engine()
    fired = []
    eng.call_in(30, lambda: fired.append("c"))
    eng.call_in(10, lambda: fired.append("a"))
    eng.call_in(20, lambda: fired.append("b"))
    eng.run_until(100)
    assert fired == ["a", "b", "c"]


def test_same_time_events_fire_in_insertion_order():
    eng = Engine()
    fired = []
    for label in "abcde":
        eng.call_in(50, lambda l=label: fired.append(l))
    eng.run_until(50)
    assert fired == list("abcde")


def test_run_until_advances_clock_even_without_events():
    eng = Engine()
    eng.run_until(123456)
    assert eng.now == 123456


def test_run_until_does_not_fire_future_events():
    eng = Engine()
    fired = []
    eng.call_in(200, lambda: fired.append(1))
    eng.run_until(100)
    assert fired == []
    eng.run_until(300)
    assert fired == [1]


def test_cancelled_event_does_not_fire():
    eng = Engine()
    fired = []
    ev = eng.call_in(10, lambda: fired.append(1))
    ev.cancel()
    eng.run_until(100)
    assert fired == []
    assert not ev.active


def test_event_callback_args():
    eng = Engine()
    got = []
    eng.call_in(5, lambda a, b: got.append((a, b)), 1, "x")
    eng.run_until(10)
    assert got == [(1, "x")]


def test_scheduling_in_the_past_raises():
    eng = Engine()
    eng.run_until(100)
    with pytest.raises(ValueError):
        eng.call_at(50, lambda: None)
    with pytest.raises(ValueError):
        eng.call_in(-1, lambda: None)


def test_callbacks_can_schedule_more_events():
    eng = Engine()
    fired = []

    def chain(n):
        fired.append(n)
        if n < 5:
            eng.call_in(10, chain, n + 1)

    eng.call_in(10, chain, 1)
    eng.run_until(SEC)
    assert fired == [1, 2, 3, 4, 5]


def test_stop_halts_processing():
    eng = Engine()
    fired = []
    eng.call_in(10, lambda: (fired.append(1), eng.stop()))
    eng.call_in(20, lambda: fired.append(2))
    eng.run_until(100)
    assert fired == [1]


def test_pending_counts_uncancelled():
    eng = Engine()
    ev1 = eng.call_in(10, lambda: None)
    eng.call_in(20, lambda: None)
    ev1.cancel()
    assert eng.pending() == 1


def test_run_drains_queue():
    eng = Engine()
    fired = []
    for i in range(10):
        eng.call_in(i + 1, lambda i=i: fired.append(i))
    count = eng.run()
    assert count == 10
    assert fired == list(range(10))


def test_engine_not_reentrant():
    eng = Engine()

    def bad():
        eng.run_until(100)

    eng.call_in(1, bad)
    with pytest.raises(RuntimeError):
        eng.run_until(10)
