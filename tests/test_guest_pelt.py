"""Unit and property tests for PELT utilization tracking."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.guest.pelt import PELT_PERIOD_NS, PELT_Y, Pelt, UTIL_SCALE
from repro.sim import MSEC, SEC


class TestPeltBasics:
    def test_starts_at_zero(self):
        p = Pelt()
        assert p.util_avg == 0.0

    def test_half_life_is_32_periods(self):
        assert PELT_Y ** 32 == pytest.approx(0.5)

    def test_continuous_running_converges_to_full_scale(self):
        p = Pelt()
        t = 0
        for _ in range(1000):
            t += PELT_PERIOD_NS
            p.update(t, running=True)
        assert p.util_avg == pytest.approx(UTIL_SCALE, rel=1e-3)

    def test_idle_decays_to_zero(self):
        p = Pelt()
        p.update(100 * MSEC, running=True)
        p.update(2 * SEC, running=False)
        assert p.util_avg < 1.0

    def test_50_percent_duty_converges_to_half(self):
        p = Pelt()
        t = 0
        for _ in range(2000):
            t += MSEC
            p.update(t, running=True)
            t += MSEC
            p.update(t, running=False)
        assert p.util_avg == pytest.approx(UTIL_SCALE / 2, rel=0.1)

    def test_decay_half_after_32_periods_idle(self):
        p = Pelt()
        t = 500 * MSEC
        p.update(t, running=True)  # saturate-ish
        u0 = p.util_avg
        t += 32 * PELT_PERIOD_NS
        p.update(t, running=False)
        assert p.util_avg == pytest.approx(u0 / 2, rel=1e-6)

    def test_peek_does_not_mutate(self):
        p = Pelt()
        p.update(10 * MSEC, running=True)
        u = p.util_avg
        peeked = p.peek(100 * MSEC, running=False)
        assert p.util_avg == u
        assert peeked < u

    def test_peek_matches_update(self):
        p1, p2 = Pelt(), Pelt()
        p1.update(10 * MSEC, True)
        p2.update(10 * MSEC, True)
        peeked = p1.peek(50 * MSEC, True)
        p2.update(50 * MSEC, True)
        assert peeked == pytest.approx(p2.util_avg)

    def test_set_util_clamps(self):
        p = Pelt()
        p.set_util(5000, 0)
        assert p.util_avg == UTIL_SCALE
        p.set_util(-10, 0)
        assert p.util_avg == 0.0


class TestPeltProperties:
    @given(st.lists(st.tuples(st.integers(1, 10 * MSEC), st.booleans()),
                    min_size=1, max_size=200))
    @settings(max_examples=100, deadline=None)
    def test_util_always_in_range(self, steps):
        p = Pelt()
        t = 0
        for delta, running in steps:
            t += delta
            u = p.update(t, running)
            assert 0.0 <= u <= UTIL_SCALE + 1e-6

    @given(st.integers(1, SEC), st.integers(1, SEC))
    @settings(max_examples=60, deadline=None)
    def test_split_update_equals_single_update(self, d1, d2):
        """Charging [0,d1)+[d1,d1+d2) running equals charging [0,d1+d2)."""
        a, b = Pelt(), Pelt()
        a.update(d1, True)
        a.update(d1 + d2, True)
        b.update(d1 + d2, True)
        assert a.util_avg == pytest.approx(b.util_avg, rel=1e-9)

    @given(st.integers(0, 100))
    @settings(max_examples=30, deadline=None)
    def test_monotone_rampup(self, n):
        p = Pelt()
        prev = 0.0
        t = 0
        for _ in range(n):
            t += PELT_PERIOD_NS
            u = p.update(t, True)
            assert u >= prev - 1e-9
            prev = u

    @given(st.integers(1, 64))
    @settings(max_examples=30, deadline=None)
    def test_stale_update_is_noop(self, delta):
        p = Pelt()
        p.update(10 * MSEC, True)
        u = p.util_avg
        p.update(10 * MSEC - delta, True)  # time went backwards: ignore
        assert p.util_avg == u
