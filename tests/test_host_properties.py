"""Property-based tests of host-scheduler invariants."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.hw import HostTopology
from repro.hypervisor import EntityState, Machine
from repro.sim import Engine, MSEC, SEC


@given(
    weights=st.lists(st.sampled_from([110, 335, 1024, 3121, 9548]),
                     min_size=1, max_size=5),
    slice_ms=st.sampled_from([1, 2, 4, 8]),
)
@settings(max_examples=40, deadline=None)
def test_cpu_time_conservation_and_weighted_fairness(weights, slice_ms):
    """Always-runnable entities on one thread: (a) total run time equals
    wall time, (b) each share is proportional to weight, (c) run + steal
    equals wall time per entity."""
    eng = Engine()
    m = Machine(eng, HostTopology(1, 1, smt=1), host_slice_ns=slice_ms * MSEC)
    tasks = [m.add_host_task(f"t{i}", weight=w, pinned=(0,))
             for i, w in enumerate(weights)]
    horizon = 4 * SEC
    eng.run_until(horizon)
    runs = [t.run_ns(eng.now) for t in tasks]
    assert sum(runs) == pytest.approx(horizon, abs=2 * MSEC)
    total_w = sum(weights)
    for w, r, t in zip(weights, runs, tasks):
        expected = horizon * w / total_w
        # Weighted fairness within a couple of slices of slack.
        assert r == pytest.approx(expected, abs=3 * slice_ms * MSEC + 0.02 * horizon)
        assert r + t.steal_ns(eng.now) == pytest.approx(horizon, abs=2 * MSEC)


@given(
    quota_ms=st.integers(1, 9),
    period_ms=st.integers(10, 20),
)
@settings(max_examples=30, deadline=None)
def test_bandwidth_throttling_bounds_consumption(quota_ms, period_ms):
    eng = Engine()
    m = Machine(eng, HostTopology(1, 1, smt=1))
    vm = m.new_vm("vm", 1, pinned_map=[(0,)])
    v = vm.vcpu(0)
    m.set_bandwidth(v, quota_ns=quota_ms * MSEC, period_ns=period_ms * MSEC)
    v.kick()
    horizon = 2 * SEC
    eng.run_until(horizon)
    expected = horizon * quota_ms / period_ms
    assert v.run_ns(eng.now) == pytest.approx(expected, rel=0.05)
    # Run + steal covers the whole horizon (it always wanted the CPU).
    assert v.run_ns(eng.now) + v.steal_ns(eng.now) == pytest.approx(
        horizon, abs=2 * MSEC)


@given(n_entities=st.integers(1, 4), n_threads=st.integers(1, 4))
@settings(max_examples=25, deadline=None)
def test_single_runner_per_thread(n_entities, n_threads):
    """At any sampled instant, each hardware thread runs at most one entity
    and every RUNNING entity is some thread's current."""
    eng = Engine()
    m = Machine(eng, HostTopology(1, n_threads, smt=1), host_slice_ns=2 * MSEC)
    tasks = [m.add_host_task(f"t{i}", pinned=(i % n_threads,))
             for i in range(n_entities)]
    violations = []

    def check():
        running = [t for t in tasks if t.state == EntityState.RUNNING]
        currents = [rq.current for rq in m.runqueues if rq.current is not None]
        if len(currents) != len(set(id(c) for c in currents)):
            violations.append("duplicate current")
        for t in running:
            if t not in currents:
                violations.append("running entity not current anywhere")
        if eng.now < 200 * MSEC:
            eng.call_in(MSEC, check)

    eng.call_in(MSEC, check)
    eng.run_until(250 * MSEC)
    assert not violations


def test_steal_never_decreases():
    eng = Engine()
    m = Machine(eng, HostTopology(1, 1, smt=1), host_slice_ns=2 * MSEC)
    a = m.add_host_task("a", pinned=(0,))
    b = m.add_host_task("b", pinned=(0,))
    last = [0, 0]
    bad = []

    def check():
        for i, t in enumerate((a, b)):
            s = t.steal_ns(eng.now)
            if s < last[i]:
                bad.append((eng.now, i, s, last[i]))
            last[i] = s
        if eng.now < 500 * MSEC:
            eng.call_in(700_000, check)

    eng.call_in(700_000, check)
    eng.run_until(600 * MSEC)
    assert not bad
