"""Tests for the ASCII timeline renderer."""

from repro.sim import Engine, MSEC
from repro.sim.timeline import ACTIVE, EMPTY, FULL, render_task_timeline
from repro.sim.tracing import Tracer


def make_trace():
    tr = Tracer(enabled=True)
    # vCPU0 hosts 'job' for [0, 10ms), then idles; host active [0, 20ms).
    tr.record(0, "host.run", 0, "vm/vcpu0")
    tr.record(0, "guest.run", 0, "job")
    tr.record(10 * MSEC, "guest.idle", 0)
    tr.record(20 * MSEC, "host.stop", 0, "vm/vcpu0")
    return tr


def test_render_marks_task_host_and_idle_cells():
    tr = make_trace()
    out = render_task_timeline(tr, "job", 1, 0, 40 * MSEC, width=4)
    row = out.splitlines()[1]
    cells = row.split("|")[1]
    assert cells == FULL + ACTIVE + EMPTY + EMPTY


def test_render_covers_all_lanes():
    tr = make_trace()
    out = render_task_timeline(tr, "job", 3, 0, 40 * MSEC, width=8)
    lines = out.splitlines()
    assert len(lines) == 4  # header + 3 lanes
    assert lines[2].split("|")[1] == EMPTY * 8  # vCPU1 never used


def test_open_interval_extends_to_end():
    tr = Tracer(enabled=True)
    tr.record(0, "guest.run", 0, "job")  # never ends
    out = render_task_timeline(tr, "job", 1, 0, 10 * MSEC, width=5)
    assert out.splitlines()[1].split("|")[1] == FULL * 5
