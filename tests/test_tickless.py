"""Tickless timer elision: engine primitives, guest fast-forward, and
A/B byte-identity of experiment tables with elision on vs off."""

from __future__ import annotations

import os

import pytest

from repro.cluster import build_plain_vm
from repro.experiments.common import run_experiment
from repro.sim.engine import MSEC, SEC, Engine


# ----------------------------------------------------------------------
# Engine primitives
# ----------------------------------------------------------------------
class TestLanes:
    def test_lane_orders_before_prio0_at_same_instant(self):
        eng = Engine()
        lane = eng.alloc_lane()
        order = []
        eng.call_at(10, order.append, "normal")
        eng.call_at(10, order.append, "lane", prio=lane)
        eng.run_until(10)
        assert order == ["lane", "normal"]

    def test_lane_position_is_history_independent(self):
        # A lane timer cancelled and re-armed at the same instant keeps
        # its slot among same-instant events even though its sequence
        # number is now larger — the property elision correctness rests on.
        eng = Engine()
        lane = eng.alloc_lane()
        order = []
        ev = eng.call_at(10, order.append, "first-armed", prio=lane)
        eng.call_at(10, order.append, "normal")
        ev.cancel()
        eng.call_at(10, order.append, "re-armed", prio=lane)
        eng.run_until(10)
        assert order == ["re-armed", "normal"]

    def test_lanes_are_unique_and_negative(self):
        eng = Engine()
        lanes = [eng.alloc_lane() for _ in range(10)]
        assert len(set(lanes)) == 10
        assert all(l < 0 for l in lanes)

    def test_current_key_inside_and_outside_dispatch(self):
        eng = Engine()
        lane = eng.alloc_lane()
        seen = []
        eng.call_at(25, lambda: seen.append(eng.current_key()), prio=lane)
        eng.run_until(50)
        assert seen == [(25, lane)]
        assert eng.current_key() is None

    def test_current_key_is_instant_high_water_not_own_prio(self):
        # An event armed *during* the current instant (an overdue timer
        # re-armed at now by a resume) runs after everything that already
        # popped, whatever its lane.  Its replay limit must therefore be
        # the instant's high-water priority, not its own.
        eng = Engine()
        lane_a = eng.alloc_lane()  # -1
        lane_b = eng.alloc_lane()  # -2
        seen = []

        def prio0():
            # Arm a lane event at the current instant, mid-dispatch.
            eng.call_at(eng.now, lambda: seen.append(eng.current_key()),
                        prio=lane_b)

        eng.call_at(10, lambda: None, prio=lane_a)
        eng.call_at(10, prio0)
        eng.run_until(10)
        # The late lane_b event executes last; a lane_a elided timer due at
        # t=10 would already have popped, so the limit must sit at prio 0.
        assert seen == [(10, 0)]

    def test_instant_high_water_resets_at_new_instant(self):
        eng = Engine()
        lane = eng.alloc_lane()
        seen = []
        eng.call_at(10, lambda: None)  # prio 0 raises the mark at t=10
        eng.call_at(20, lambda: seen.append(eng.current_key()), prio=lane)
        eng.run_until(30)
        assert seen == [(20, lane)]


class TestPopEpoch:
    def test_max_prio_popped_since_sees_later_pops_only(self):
        # Three same-instant events pop deepest-lane first; an epoch
        # recorded during the first sees exactly the pops that follow it,
        # maxed by priority — the query _catch_up uses to decide whether a
        # timer armed mid-instant would already have fired.
        eng = Engine()
        la = eng.alloc_lane()   # -1
        lb = eng.alloc_lane()   # -2
        seen = []
        epoch = {}

        def deep():
            epoch['e'] = eng.pop_epoch
            seen.append(eng.max_prio_popped_since(epoch['e']))

        eng.call_at(10, deep, prio=lb)
        eng.call_at(10, lambda: seen.append(
            eng.max_prio_popped_since(epoch['e'])), prio=la)
        eng.call_at(10, lambda: seen.append(
            eng.max_prio_popped_since(epoch['e'])))
        eng.run_until(10)
        assert seen == [None, la, 0]

    def test_epoch_marks_reset_at_new_instant(self):
        eng = Engine()
        epoch = {}
        seen = []
        eng.call_at(10, lambda: epoch.setdefault('e', eng.pop_epoch))
        eng.call_at(20, lambda: seen.append(
            eng.max_prio_popped_since(epoch['e'])))
        eng.run_until(30)
        # The t=20 pop itself happened after the recorded epoch.
        assert seen == [0]


class TestElidedCounters:
    def test_note_elided_accumulates(self):
        eng = Engine()
        total0 = Engine.total_events_elided
        eng.note_elided(7, test_sync_hooks_run_after_each_run)
        eng.note_elided(2, test_sync_hooks_run_after_each_run)
        assert eng.events_elided == 9
        assert Engine.total_events_elided - total0 == 9


class TestProfiler:
    def test_off_by_default(self):
        assert Engine.profiling is False

    def test_slots_fired_cancelled_elided(self):
        eng = Engine()
        Engine.profile_reset()
        Engine.profiling = True
        try:
            def cb():
                pass

            eng.call_at(5, cb)
            eng.call_at(6, cb).cancel()
            eng.note_elided(3, cb)
            eng.run_until(10)
        finally:
            Engine.profiling = False
        name = cb.__qualname__
        assert Engine.profile_data[name] == [1, 1, 3]
        table = Engine.profile_table()
        assert "fired" in table and name in table
        Engine.profile_reset()

    def test_profiler_off_collects_nothing(self):
        eng = Engine()
        Engine.profile_reset()

        def cb():
            pass

        eng.call_at(5, cb)
        eng.call_at(6, cb).cancel()
        eng.note_elided(1, cb)
        eng.run_until(10)
        assert Engine.profile_data == {}

    def test_table_order_is_insertion_independent(self):
        # Registration order differs between elided and eager runs, so a
        # fired-count tie must break by name, not by insertion order.
        Engine.profile_reset()
        Engine.profile_data = {"b": [5, 0, 0], "a": [5, 0, 0], "c": [7, 0, 0]}
        t1 = Engine.profile_table()
        Engine.profile_data = {"c": [7, 0, 0], "a": [5, 0, 0], "b": [5, 0, 0]}
        t2 = Engine.profile_table()
        Engine.profile_reset()
        assert t1 == t2
        names = [line.split()[0] for line in t1.splitlines()[1:]]
        assert names == ["c", "a", "b"]


def test_sync_hooks_run_after_each_run():
    eng = Engine()
    calls = []
    eng.add_sync_hook(lambda: calls.append(eng.now))
    eng.run_until(100)
    assert calls == [100]
    eng.call_at(150, lambda: None)
    eng.run(max_events=1)
    assert calls == [100, 150]


# ----------------------------------------------------------------------
# Guest tickless fast-forward (micro-level)
# ----------------------------------------------------------------------
def _spin_vm(monkeypatch, tickless: bool):
    """One pinned vCPU spinning alone for 1 s; returns run stats."""
    monkeypatch.setenv("VSCHED_REPRO_TICKLESS", "1" if tickless else "0")
    env = build_plain_vm(2)

    def body(api):
        while True:
            yield api.run(10 * MSEC)

    task = env.kernel.spawn(body, name="spin", cpu=0)
    env.engine.run_until(1 * SEC)
    return (env.engine.events_fired, env.engine.events_elided,
            task.stats.work_done, env.kernel.stats.ticks,
            env.kernel.cpus[0].last_tick_time)


def test_lone_spinner_elides_ticks_without_changing_accounting(monkeypatch):
    fired_on, elided_on, work_on, ticks_on, ltt_on = \
        _spin_vm(monkeypatch, True)
    fired_off, elided_off, work_off, ticks_off, ltt_off = \
        _spin_vm(monkeypatch, False)
    # A lone runnable task takes its ticks arithmetically: same work,
    # same tick count, same heartbeat stamp — far fewer heap events.
    assert work_on == work_off
    assert ticks_on == ticks_off
    assert ltt_on == ltt_off
    assert elided_off == 0
    assert elided_on > 0
    assert fired_on + elided_on >= fired_off
    assert fired_on < fired_off


def test_host_balance_quiescent_vm_takes_no_balance_ticks(monkeypatch):
    # An unpinned, fully idle machine: the eager chain fires every
    # interval forever; the elided chain arms nothing.
    from repro.hw.topology import HostTopology
    from repro.hypervisor.machine import Machine

    def build(tickless):
        monkeypatch.setenv("VSCHED_REPRO_TICKLESS",
                           "1" if tickless else "0")
        eng = Engine()
        machine = Machine(eng, HostTopology(1, 2, smt=1))
        machine.add_host_task("t", pinned=None, start=False)
        eng.run_until(1 * SEC)
        return eng.events_fired

    assert build(True) == 0
    assert build(False) > 100


# ----------------------------------------------------------------------
# A/B byte-identity on real experiments
# ----------------------------------------------------------------------
def _table_bytes(table):
    return repr(table.columns) + "\n".join(repr(r) for r in table.rows)


@pytest.mark.parametrize("exp_id", ["fig2", "fig4", "fig11"])
def test_experiment_tables_byte_identical_with_elision(exp_id, monkeypatch):
    monkeypatch.setenv("VSCHED_REPRO_TICKLESS", "1")
    elided0 = Engine.total_events_elided
    fired0 = Engine.total_events_fired
    on = _table_bytes(run_experiment(exp_id, fast=True))
    elided = Engine.total_events_elided - elided0
    fired_on = Engine.total_events_fired - fired0

    monkeypatch.setenv("VSCHED_REPRO_TICKLESS", "0")
    fired0 = Engine.total_events_fired
    off = _table_bytes(run_experiment(exp_id, fast=True))
    fired_off = Engine.total_events_fired - fired0

    assert on == off, f"{exp_id}: table diverged under elision"
    assert elided > 0
    assert fired_on < fired_off


# ----------------------------------------------------------------------
# Mid-run observers must materialize elided state before baselining
# ----------------------------------------------------------------------
def test_vcap_window_baselines_identical_with_elision(monkeypatch):
    """vcap's staggered spawn_one baselines steal/preempt from a mid-run
    callback, where no engine sync hook has intervened; it must
    _catch_up() first so elided runs capture exactly the baselines eager
    runs do."""
    from repro.cluster import attach_scheduler
    from repro.probers.vcap import VCap

    orig = VCap._end_window

    def run(tickless):
        monkeypatch.setenv("VSCHED_REPRO_TICKLESS", "1" if tickless else "0")
        env = build_plain_vm(2)
        env.machine.add_host_task("tenant", pinned=(0,))
        attach_scheduler(env, "enhanced",
                         overrides={"enable_vtop": False,
                                    "enable_rwc": False})
        log = []

        def spy(self, win):
            log.append((win.heavy, sorted(win.steal_before.items()),
                        sorted(win.preempt_before.items()),
                        sorted(win.graze_before.items()),
                        sorted(win.spawn_time.items())))
            return orig(self, win)

        monkeypatch.setattr(VCap, "_end_window", spy)
        env.engine.run_until(5 * SEC)
        return log

    on = run(True)
    off = run(False)
    assert len(on) >= 5
    assert on == off
