"""Tests for the work-unit decomposition, flat scheduler, and result cache.

The cache key must be a faithful content address: identical (code, config,
seed, fast) inputs hit; any change to any of them misses.  The flat
scheduler must render byte-identically to the serial path and propagate
unit failures.
"""

import sys
import types

import pytest

from repro.experiments import parallel
from repro.experiments.cache import ResultCache, code_fingerprint, unit_key
from repro.experiments.common import EXPERIMENTS, Table
from repro.experiments.units import (
    WorkUnit,
    check_config_is_data,
    execute_serial,
)


def _times10(x):
    return x * 10


def _boom(x):
    raise ValueError(f"boom {x}")


def _unit(**kw):
    defaults = dict(exp_id="figx", label="u", func=_times10, config=(1,),
                    cost_hint=1.0, seed="figx-1")
    defaults.update(kw)
    return WorkUnit(**defaults)


FP = "f" * 64  # stand-in code fingerprint


class TestUnitKey:
    def test_identical_inputs_hit(self):
        assert unit_key(_unit(), True, FP) == unit_key(_unit(), True, FP)

    def test_config_change_misses(self):
        assert unit_key(_unit(config=(1,)), True, FP) != \
            unit_key(_unit(config=(2,)), True, FP)

    def test_seed_change_misses(self):
        assert unit_key(_unit(seed="a"), True, FP) != \
            unit_key(_unit(seed="b"), True, FP)

    def test_code_fingerprint_change_misses(self):
        assert unit_key(_unit(), True, "a" * 64) != \
            unit_key(_unit(), True, "b" * 64)

    def test_fast_and_full_keys_isolated(self):
        assert unit_key(_unit(), True, FP) != unit_key(_unit(), False, FP)

    def test_identity_fields_isolate(self):
        assert unit_key(_unit(exp_id="figy"), True, FP) != \
            unit_key(_unit(), True, FP)
        assert unit_key(_unit(label="v"), True, FP) != \
            unit_key(_unit(), True, FP)


class TestCodeFingerprint:
    def test_stable_and_sensitive(self, tmp_path):
        (tmp_path / "a.py").write_text("x = 1\n")
        (tmp_path / "sub").mkdir()
        (tmp_path / "sub" / "b.py").write_text("y = 2\n")
        first = code_fingerprint(str(tmp_path))
        assert first == code_fingerprint(str(tmp_path))
        (tmp_path / "a.py").write_text("x = 2\n")
        edited = code_fingerprint(str(tmp_path))
        assert edited != first
        (tmp_path / "c.py").write_text("")
        assert code_fingerprint(str(tmp_path)) != edited

    def test_non_python_files_ignored(self, tmp_path):
        (tmp_path / "a.py").write_text("x = 1\n")
        before = code_fingerprint(str(tmp_path))
        (tmp_path / "notes.txt").write_text("irrelevant")
        assert code_fingerprint(str(tmp_path)) == before

    def test_default_root_is_memoized(self):
        assert code_fingerprint() == code_fingerprint()


class TestResultCache:
    def test_roundtrip(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        key = unit_key(_unit(), True, FP)
        hit, _ = cache.lookup(key)
        assert not hit
        cache.store(key, {"p95": 1.5})
        hit, value = cache.lookup(key)
        assert hit and value == {"p95": 1.5}
        assert (cache.hits, cache.misses, cache.stores) == (1, 1, 1)

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        key = unit_key(_unit(), True, FP)
        cache.store(key, 42)
        (tmp_path / f"{key}.pkl").write_bytes(b"not a pickle")
        hit, _ = cache.lookup(key)
        assert not hit

    def test_store_overwrites(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        cache.store("k", 1)
        cache.store("k", 2)
        assert cache.lookup("k") == (True, 2)

    def test_store_failure_degrades_instead_of_raising(self, tmp_path,
                                                       capsys):
        # The cache is an accelerator, never a point of failure: an
        # unwritable store must warn and count, not abort the campaign.
        cache = ResultCache(str(tmp_path))
        cache.store("k", lambda: None)  # unpicklable value
        assert cache.store_errors == 1
        assert cache.stores == 0
        assert "warning" in capsys.readouterr().err
        assert "store-errors=1" in cache.summary()
        cache.store("k", 2)  # still works afterwards
        assert cache.lookup("k") == (True, 2)


class TestConfigIsData:
    def test_accepts_plain_data(self):
        check_config_is_data(_unit(config=("a", 1, 2.5, False, None,
                                           (1, "b"))))

    def test_rejects_identity_reprs(self):
        with pytest.raises(TypeError):
            check_config_is_data(_unit(config=(_times10,)))

    def test_all_catalogue_units_are_data(self):
        for exp_id in EXPERIMENTS:
            units, _assemble = parallel.decompose(exp_id, True)
            for unit in units:
                check_config_is_data(unit)
                assert "0x" not in repr(unit.config), (exp_id, unit.label)


# ----------------------------------------------------------------------
# Flat scheduler mechanics on a synthetic experiment (no simulation).
# ----------------------------------------------------------------------
def _fake_scenarios(fast):
    return [WorkUnit(exp_id="figx", label=f"u{i}", func=_times10,
                     config=(i,), cost_hint=float(i), seed=f"figx-{i}")
            for i in range(5)]


def _fake_assemble(fast, results):
    table = Table("figx", "fake", ["i", "v"])
    for i, v in enumerate(results):
        table.add(i, v)
    return table


def _failing_scenarios(fast):
    return [WorkUnit(exp_id="figx", label="bad", func=_boom, config=(3,))]


@pytest.fixture
def fake_experiment(monkeypatch):
    mod = types.ModuleType("_vsched_fake_exp")
    mod.scenarios = _fake_scenarios
    mod.assemble = _fake_assemble
    mod.run = lambda fast=False: _fake_assemble(
        fast, execute_serial(_fake_scenarios(fast)))
    mod.check = lambda table: None
    monkeypatch.setitem(sys.modules, "_vsched_fake_exp", mod)
    monkeypatch.setitem(EXPERIMENTS, "figx", "_vsched_fake_exp")
    return mod


class TestFlatScheduler:
    def test_serial_and_pooled_render_identically(self, fake_experiment):
        serial, = parallel.run_units(["figx"], fast=True, jobs=1)
        pooled, = parallel.run_units(["figx"], fast=True, jobs=2)
        assert serial.rendered == pooled.rendered
        assert serial.n_units == pooled.n_units == 5
        assert serial.ok and pooled.ok

    def test_cold_then_warm_cache(self, fake_experiment, tmp_path):
        cold_cache = ResultCache(str(tmp_path))
        cold, = parallel.run_units(["figx"], fast=True, jobs=1,
                                   cache=cold_cache)
        assert (cold_cache.hits, cold_cache.misses) == (0, 5)
        assert cold.cache_hits == 0
        warm_cache = ResultCache(str(tmp_path))
        warm, = parallel.run_units(["figx"], fast=True, jobs=2,
                                   cache=warm_cache)
        assert (warm_cache.hits, warm_cache.misses) == (5, 0)
        assert warm.cache_hits == 5
        assert warm.rendered == cold.rendered

    def test_fast_and_full_cached_separately(self, fake_experiment,
                                             tmp_path):
        cache = ResultCache(str(tmp_path))
        list(parallel.run_units(["figx"], fast=True, cache=cache))
        list(parallel.run_units(["figx"], fast=False, cache=cache))
        assert (cache.hits, cache.misses) == (0, 10)

    def test_unit_failure_propagates(self, fake_experiment, monkeypatch):
        monkeypatch.setattr(sys.modules["_vsched_fake_exp"], "scenarios",
                            _failing_scenarios)
        with pytest.raises(RuntimeError, match="figx/bad.*boom 3"):
            list(parallel.run_units(["figx"], fast=True, jobs=1))

    def test_check_failure_is_reported_not_raised(self, fake_experiment,
                                                  monkeypatch):
        def bad_check(table):
            raise AssertionError("wrong shape")
        monkeypatch.setattr(sys.modules["_vsched_fake_exp"], "check",
                            bad_check)
        res, = parallel.run_units(["figx"], fast=True, jobs=1)
        assert not res.ok and "wrong shape" in res.check_error


class TestDecompose:
    def test_unmigrated_experiment_is_one_whole_unit(self):
        units, assemble = parallel.decompose("fig12", True)
        assert len(units) == 1
        assert units[0].label == "__whole__"
        sentinel = Table("fig12", "t", ["a"])
        assert assemble(True, [sentinel]) is sentinel

    def test_migrated_experiments_decompose(self):
        for exp_id, n_min in (("fig2", 24), ("fig4", 18), ("fig11", 4),
                              ("fig13", 6), ("fig14", 20), ("fig15", 24),
                              ("fig16", 8), ("fig17", 2), ("fig18", 30),
                              ("fig19", 30), ("fig20", 12)):
            units, _assemble = parallel.decompose(exp_id, True)
            assert len(units) == n_min, exp_id
            assert len({u.label for u in units}) == len(units), exp_id

    def test_heavy_experiments_no_longer_monolithic(self):
        # The PR 1 critical path: these four dominated the serial suite.
        for exp_id in ("fig16", "fig17", "fig18", "fig19"):
            units, _assemble = parallel.decompose(exp_id, True)
            assert len(units) >= 2, exp_id


class TestDefaultJobsEnv:
    def test_malformed_env_warns_and_falls_back(self, monkeypatch, capsys):
        monkeypatch.setenv(parallel.JOBS_ENV_VAR, "many")
        parallel.set_default_jobs(None)
        assert parallel.default_jobs() == 1
        err = capsys.readouterr().err
        assert "malformed" in err and "many" in err

    def test_valid_env_still_parses(self, monkeypatch, capsys):
        monkeypatch.setenv(parallel.JOBS_ENV_VAR, "3")
        parallel.set_default_jobs(None)
        assert parallel.default_jobs() == 3
        assert capsys.readouterr().err == ""
