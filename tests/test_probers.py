"""Tests for the vProbers: vcap, vact, vtop."""

import math

import pytest

from repro.cluster import build_plain_vm
from repro.core.module import VSchedModule
from repro.guest import GuestKernel
from repro.guest.kernel import VCpuHostState
from repro.hw import HostTopology
from repro.hypervisor import Machine
from repro.probers import PairProbe, VAct, VCap, VTop, classify
from repro.probers.vtop import CLS_CROSS, CLS_SMT, CLS_SOCKET, CLS_STACK
from repro.sim import Engine, MSEC, SEC, make_rng


def probed_env(n=4, **kw):
    env = build_plain_vm(n, **kw)
    module = VSchedModule(env.kernel)
    vact = VAct(env.kernel, module)
    vcap = VCap(env.kernel, module, vact=vact)
    return env, module, vcap, vact


class TestVCap:
    def test_dedicated_vcpu_probes_full_capacity(self):
        env, module, vcap, _ = probed_env(2)
        vcap.start()
        env.engine.run_until(12 * SEC)
        assert module.store[0].capacity > 980
        assert module.store[1].capacity > 980

    def test_bandwidth_limited_capacity(self):
        env, module, vcap, _ = probed_env(2)
        env.machine.set_bandwidth(env.vm.vcpu(0), quota_ns=3 * MSEC,
                                  period_ns=10 * MSEC)
        vcap.start()
        env.engine.run_until(15 * SEC)
        assert abs(module.store[0].capacity - 0.3 * 1024) < 60
        assert module.store[1].capacity > 980

    def test_contention_limited_capacity(self):
        env, module, vcap, _ = probed_env(2)
        env.machine.add_host_task("stress", pinned=(0,))
        vcap.start()
        env.engine.run_until(15 * SEC)
        assert abs(module.store[0].capacity - 512) < 80

    def test_heavy_sampling_measures_core_capacity_under_smt(self):
        env, module, vcap, _ = probed_env(2, smt=2, cores_per_socket=1)
        # Sibling hardware thread busy: core speed factor 0.62.
        env.machine.add_host_task("sib", pinned=(1,))
        vcap.start()
        env.engine.run_until(15 * SEC)
        assert abs(module.store[0].core_capacity - 0.62 * 1024) < 80

    def test_sampling_stops_cleanly(self):
        env, module, vcap, _ = probed_env(2)
        vcap.start()
        env.engine.run_until(3 * SEC)
        vcap.stop()
        n = vcap.windows_completed
        env.engine.run_until(6 * SEC)
        assert vcap.windows_completed <= n + 1


class TestVAct:
    def test_latency_matches_inactive_period(self):
        env, module, vcap, _ = probed_env(2)
        env.machine.set_bandwidth(env.vm.vcpu(0), quota_ns=4 * MSEC,
                                  period_ns=8 * MSEC)
        vcap.start()
        env.engine.run_until(10 * SEC)
        assert 2.5 * MSEC < module.store[0].latency_ns < 6 * MSEC
        assert module.store[1].latency_ns < 0.5 * MSEC

    def test_latency_cv_low_for_periodic_pattern(self):
        env, module, vcap, _ = probed_env(1)
        env.machine.set_bandwidth(env.vm.vcpu(0), quota_ns=4 * MSEC,
                                  period_ns=8 * MSEC)
        vcap.start()
        env.engine.run_until(10 * SEC)
        assert module.store[0].latency_cv < 0.4

    def test_state_query_tracks_activity(self):
        env = build_plain_vm(1)
        k = env.kernel

        def spin(api):
            while True:
                yield api.run(500_000)

        k.spawn(spin, "spin", cpu=0)
        env.engine.run_until(50 * MSEC)
        state, _ = k.vcpu_state(0)
        assert state == VCpuHostState.ACTIVE
        # Preempt the vCPU for a long time: heartbeat goes stale.
        from repro.hypervisor.entity import weight_for_nice
        env.machine.add_host_task("hog", weight=weight_for_nice(-20),
                                  pinned=(0,))
        env.engine.run_until(120 * MSEC)
        state, _ = k.vcpu_state(0)
        assert state == VCpuHostState.INACTIVE


class TestVTopClassify:
    def test_thresholds(self):
        assert classify(6.0) == CLS_SMT
        assert classify(48.0) == CLS_SOCKET
        assert classify(112.0) == CLS_CROSS
        assert classify(math.inf) == CLS_STACK


class TestPairProbe:
    def _machine(self):
        eng = Engine()
        m = Machine(eng, HostTopology(2, 2, smt=2))  # 8 threads
        return eng, m

    def _probe(self, eng, kernel, a, b, **kw):
        results = []
        probe = PairProbe(kernel, kernel.root_group, a, b, make_rng("pp"),
                          on_done=lambda p: results.append(p), **kw)
        probe.start()
        eng.run_until(eng.now + 10 * SEC)
        assert results, "probe did not finish"
        return results[0]

    def test_smt_pair(self):
        eng, m = self._machine()
        vm = m.new_vm("vm", 2, pinned_map=[(0,), (1,)])
        k = GuestKernel(vm)
        p = self._probe(eng, k, 0, 1)
        assert classify(p.result_latency_ns) == CLS_SMT

    def test_cross_socket_pair(self):
        eng, m = self._machine()
        vm = m.new_vm("vm", 2, pinned_map=[(0,), (4,)])
        k = GuestKernel(vm)
        p = self._probe(eng, k, 0, 1)
        assert classify(p.result_latency_ns) == CLS_CROSS

    def test_stacked_pair_times_out_to_infinity(self):
        eng, m = self._machine()
        vm = m.new_vm("vm", 2, pinned_map=[(0,), (0,)])
        k = GuestKernel(vm)
        p = self._probe(eng, k, 0, 1)
        assert math.isinf(p.result_latency_ns)
        assert p.extensions == p.max_extensions

    def test_interference_does_not_cause_stack_misjudgement(self):
        # Both vCPUs heavily contended: overlap is rare, but the timeout
        # extension must still find enough transfers (§3.1).
        eng, m = self._machine()
        # Same socket, different cores (threads 0 and 2), each contended.
        m.add_host_task("s0", pinned=(0,))
        m.add_host_task("s1", pinned=(2,))
        vm = m.new_vm("vm", 2, pinned_map=[(0,), (2,)])
        k = GuestKernel(vm)
        p = self._probe(eng, k, 0, 1)
        assert not math.isinf(p.result_latency_ns)
        assert classify(p.result_latency_ns) == CLS_SOCKET


class TestVTopFull:
    def test_discovers_smt_socket_and_stack(self):
        eng = Engine()
        m = Machine(eng, HostTopology(2, 4, smt=2))
        pins = [(0,), (1,), (2,), (3,), (8,), (9,), (10,), (10,)]
        vm = m.new_vm("vm", 8, pinned_map=pins)
        k = GuestKernel(vm)
        module = VSchedModule(k)
        vtop = VTop(k, module, make_rng("t"))
        done = {}
        vtop.probe_full(lambda v: done.update(v=v))
        eng.run_until(30 * SEC)
        view = done["v"]
        assert sorted(view.smt_siblings[0]) == [0, 1]
        assert sorted(view.smt_siblings[4]) == [4, 5]
        assert [sorted(g) for g in view.stack_groups] == [[6, 7]]
        socks = sorted({tuple(sorted(s)) for s in view.socket_siblings.values()})
        assert socks == [(0, 1, 2, 3), (4, 5, 6, 7)]
        # The probed topology is installed into the scheduler domains.
        assert k.domains.has_smt_level()

    def test_validation_confirms_and_is_faster(self):
        eng = Engine()
        m = Machine(eng, HostTopology(2, 4, smt=2))
        pins = [(0,), (1,), (2,), (3,), (8,), (9,), (10,), (11,)]
        vm = m.new_vm("vm", 8, pinned_map=pins)
        k = GuestKernel(vm)
        module = VSchedModule(k)
        vtop = VTop(k, module, make_rng("t2"))
        vtop.probe_full()
        eng.run_until(30 * SEC)
        full = vtop.last_full_ns
        vtop.validate()
        eng.run_until(eng.now + 30 * SEC)
        assert vtop.validations == 1
        assert vtop.last_validate_ns < full

    def test_validation_detects_topology_change(self):
        eng = Engine()
        m = Machine(eng, HostTopology(2, 4, smt=2))
        pins = [(0,), (1,), (2,), (3,)]
        vm = m.new_vm("vm", 4, pinned_map=pins)
        k = GuestKernel(vm)
        module = VSchedModule(k)
        vtop = VTop(k, module, make_rng("t3"))
        vtop.probe_full()
        eng.run_until(30 * SEC)
        assert sorted(vtop.view.smt_siblings[2]) == [2, 3]
        # Move vCPU3 to the other socket; validation must re-probe.
        m.repin(vm.vcpu(3), (8,))
        vtop.validate()
        eng.run_until(eng.now + 60 * SEC)
        assert vtop.full_probes == 2
        socks = {tuple(sorted(s)) for s in vtop.view.socket_siblings.values()}
        assert (0, 1, 2) in socks and (3,) in socks
