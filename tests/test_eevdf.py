"""Tests for the EEVDF guest-scheduler port (the paper's §4 claim)."""

import pytest

from repro.cluster import attach_scheduler, build_plain_vm, make_context, run_to_completion
from repro.guest import GuestConfig
from repro.guest.eevdf import EevdfRunqueue
from repro.sim import MSEC, SEC, USEC
from repro.workloads import CpuBoundJob, LatencyWorkload


def eevdf_vm(n=4, **kw):
    return build_plain_vm(n, guest_config=GuestConfig(scheduler="eevdf"), **kw)


class TestEevdfBasics:
    def test_runqueue_class_selected(self):
        env = eevdf_vm(2)
        assert isinstance(env.kernel.cpus[0].rq, EevdfRunqueue)

    def test_fairness_matches_cfs(self):
        env = eevdf_vm(1)
        tasks = []

        def spin(api):
            while True:
                yield api.run(500 * USEC)

        for i in range(3):
            tasks.append(env.kernel.spawn(spin, f"t{i}", cpu=0, allowed=(0,)))
        env.engine.run_until(2 * SEC)
        works = [t.stats.work_done for t in tasks]
        assert max(works) - min(works) < 0.06 * sum(works)

    def test_sched_idle_still_yields_to_normal(self):
        from repro.guest import Policy
        env = eevdf_vm(1)
        done = {}

        def be(api):
            while True:
                yield api.run(500 * USEC)

        def urgent(api):
            yield api.run(10 * MSEC)
            done["t"] = api.now()

        env.kernel.spawn(be, "be", policy=Policy.IDLE, cpu=0, allowed=(0,))
        env.engine.run_until(20 * MSEC)
        env.kernel.spawn(urgent, "u", cpu=0, allowed=(0,))
        env.engine.run_until(SEC)
        assert abs(done["t"] - 30 * MSEC) < 2 * MSEC

    def test_virtual_time_is_weighted_average(self):
        env = eevdf_vm(1)

        def spin(api):
            while True:
                yield api.run(MSEC)

        a = env.kernel.spawn(spin, "a", cpu=0, allowed=(0,))
        b = env.kernel.spawn(spin, "b", cpu=0, allowed=(0,))
        env.engine.run_until(50 * MSEC)
        rq = env.kernel.cpus[0].rq
        v = rq.virtual_time()
        vrs = sorted(t.vruntime for t in (a, b))
        assert vrs[0] - 1 <= v <= vrs[1] + 1

    def test_work_conserved(self):
        env = eevdf_vm(2)
        from repro.cluster import attach_scheduler as att
        vs = att(env, "cfs")
        ctx = make_context(env, vs, "eevdf-wc")
        wl = CpuBoundJob(threads=2, work_per_thread_ns=100 * MSEC)
        run_to_completion(env, [wl], ctx)
        for t in wl.tasks:
            assert t.stats.work_done == pytest.approx(100 * MSEC, rel=1e-6)


class TestVSchedOnEevdf:
    """The portability claim: vSched's techniques work unchanged."""

    def test_ivh_harvests_on_eevdf(self):
        def elapsed(mode):
            env = eevdf_vm(4, host_slice_ns=5 * MSEC)
            for i in range(4):
                env.machine.add_host_task(f"c{i}", pinned=(i,))
            vs = attach_scheduler(env, mode)
            ctx = make_context(env, vs, f"eevdf-ivh-{mode}")
            env.engine.run_until(4 * SEC)
            done = []

            def burn(api):
                yield api.run(SEC)
                done.append(api.now())

            env.kernel.spawn(burn, "b", group=vs.workload_group,
                             initial_util=900)
            env.engine.run_until(40 * SEC)
            assert done
            return done[0] - 4 * SEC

        cfs_base = elapsed("cfs")
        vsched = elapsed("vsched")
        assert vsched < cfs_base * 0.75

    def test_bvs_reduces_tails_on_eevdf(self):
        def p95(with_bvs):
            env = eevdf_vm(8, wakeup_gran_ns=None)
            for i in range(8):
                env.machine.set_slice(i, 3 * MSEC if i < 4 else 6 * MSEC)
                env.machine.add_host_task(f"s{i}", pinned=(i,))
            overrides = {"enable_ivh": False, "enable_rwc": False}
            if not with_bvs:
                overrides["enable_bvs"] = False
            vs = attach_scheduler(env, "vsched", overrides=overrides)
            ctx = make_context(env, vs, f"eevdf-bvs-{with_bvs}")
            env.engine.run_until(6 * SEC)
            wl = LatencyWorkload("masstree", workers=6, n_requests=200)
            run_to_completion(env, [wl], ctx, timeout_ns=240 * SEC)
            return wl.p95_ns()

        base = p95(False)
        biased = p95(True)
        assert biased < base * 0.95, (base, biased)
