"""Tests for metrics helpers, VM-type builders, and scenario utilities."""

import pytest

from repro.cluster import (
    HCLL,
    LCHL,
    MODES,
    attach_scheduler,
    build_hpvm,
    build_plain_vm,
    build_rcvm,
    make_context,
    overcommit_with_stress,
    run_to_completion,
)
from repro.metrics import CycleMeter, normalize, p50, p95
from repro.sim import MSEC, SEC
from repro.workloads import CpuBoundJob


class TestMeasures:
    def test_percentiles(self):
        values = list(range(1, 101))
        assert p50(values) == pytest.approx(50.5)
        assert p95(values) == pytest.approx(95.05)

    def test_percentiles_empty(self):
        import math
        assert math.isnan(p95([]))

    def test_normalize(self):
        assert normalize([50, 100, 200], 100) == [50.0, 100.0, 200.0]
        assert all(v != v for v in normalize([1.0], 0))  # NaN on zero base

    def test_cycle_meter(self):
        env = build_plain_vm(2)
        vs = attach_scheduler(env, "cfs")
        ctx = make_context(env, vs, "cm")
        meter = CycleMeter(env)
        meter.start()
        wl = CpuBoundJob(threads=2, work_per_thread_ns=100 * MSEC)
        run_to_completion(env, [wl], ctx)
        sample = meter.sample()
        # Two dedicated vCPUs fully busy for ~100 ms each.
        assert sample.cycles == pytest.approx(200 * MSEC, rel=0.05)
        assert sample.work_ns == pytest.approx(200 * MSEC, rel=0.05)
        # run_to_completion polls in 250 ms steps, so the wall window is at
        # least the job's 100 ms; CPS is bounded by full 2-vCPU utilization.
        assert 0 < sample.cps <= 2 * SEC * 1.05
        assert 0.9 < sample.ipc_proxy <= 1.0


class TestVmClasses:
    def test_quota_period_math(self):
        quota, period = HCLL.quota_period()
        assert quota / period == pytest.approx(0.66, abs=0.01)
        assert period - quota == HCLL.latency_ns
        quota, period = LCHL.quota_period()
        assert quota / period == pytest.approx(0.33, abs=0.01)

    def test_rcvm_shape(self):
        env = build_rcvm()
        assert env.n_vcpus == 12
        assert env.stacked_pairs == [(10, 11)]
        assert env.straggler_vcpus == [8, 9]
        # Stacked pair shares one hardware thread.
        assert env.vm.vcpu(10).pinned == env.vm.vcpu(11).pinned
        # Straggler vCPUs face a massive co-runner once it starts.
        env.engine.run_until(100 * MSEC)
        tenants = {t.pinned[0]: t for t in env.machine.host_tasks}
        assert tenants[8].weight > 10 * 1024

    def test_hpvm_shape(self):
        env = build_hpvm()
        assert env.n_vcpus == 32
        # Last group (24-31) is dedicated: no co-runner on its threads.
        env.engine.run_until(100 * MSEC)
        contended = {t.pinned[0] for t in env.machine.host_tasks}
        assert not (contended & set(range(24, 32)))
        assert set(range(0, 8)) <= contended
        # Four sockets of 8 vCPUs.
        sockets = {env.vm.vcpu(i).pinned[0] // 8 for i in range(8)}
        assert sockets == {0}

    def test_rcvm_capacity_classes_probed(self):
        env = build_rcvm()
        vs = attach_scheduler(env, "enhanced")
        env.engine.run_until(14 * SEC)
        st = vs.module.store
        # hcll (vCPU0) has roughly double the capacity of lcll (vCPU2).
        assert st[0].capacity > 1.5 * st[2].capacity
        # hcll has noticeably lower latency than hchl (vCPU1).
        assert st[0].latency_ns < 0.6 * st[1].latency_ns
        # Stragglers are far below the median.
        assert st[8].capacity < 0.35 * st.median_capacity()


class TestScenarioHelpers:
    def test_modes_list(self):
        assert MODES == ("cfs", "enhanced", "vsched")

    def test_attach_scheduler_rejects_unknown(self):
        env = build_plain_vm(2)
        with pytest.raises(ValueError):
            attach_scheduler(env, "bogus")

    def test_overcommit_with_stress_halves_capacity(self):
        env = build_plain_vm(2)
        overcommit_with_stress(env, slice_ns=5 * MSEC)
        vs = attach_scheduler(env, "cfs")
        ctx = make_context(env, vs, "oc")
        wl = CpuBoundJob(threads=2, work_per_thread_ns=100 * MSEC)
        run_to_completion(env, [wl], ctx)
        # ~50% capacity: the job takes about twice its work.
        assert wl.elapsed_ns() == pytest.approx(200 * MSEC, rel=0.15)

    def test_run_to_completion_timeout(self):
        env = build_plain_vm(1)
        vs = attach_scheduler(env, "cfs")
        ctx = make_context(env, vs, "to")
        wl = CpuBoundJob(threads=1, work_per_thread_ns=10 * SEC)
        with pytest.raises(TimeoutError):
            run_to_completion(env, [wl], ctx, timeout_ns=100 * MSEC)
