"""Unit tests for vSched core: EMA, abstraction store, module, rwc."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster import build_plain_vm, build_rcvm
from repro.core import (
    AbstractionStore,
    Ema,
    TopologyView,
    VSched,
    VSchedConfig,
    VSchedModule,
    alpha_for_halflife,
)
from repro.sim import MSEC, SEC


class TestEma:
    def test_first_sample_adopted(self):
        e = Ema(0.3)
        assert e.update(10.0) == 10.0

    def test_halflife_semantics(self):
        alpha = alpha_for_halflife(2.0)
        e = Ema(alpha, initial=100.0)
        e.update(0.0)
        e.update(0.0)
        assert e.get() == pytest.approx(50.0)

    def test_invalid_alpha(self):
        with pytest.raises(ValueError):
            Ema(0.0)
        with pytest.raises(ValueError):
            Ema(1.5)
        with pytest.raises(ValueError):
            alpha_for_halflife(0)

    @given(st.lists(st.floats(0, 1024), min_size=1, max_size=100))
    @settings(max_examples=50, deadline=None)
    def test_ema_stays_within_sample_range(self, samples):
        e = Ema(0.29, initial=512.0)
        lo = min(samples + [512.0])
        hi = max(samples + [512.0])
        for s in samples:
            v = e.update(s)
            assert lo - 1e-9 <= v <= hi + 1e-9


class TestAbstractionStore:
    def test_medians(self):
        store = AbstractionStore(4)
        for i, cap in enumerate((100, 200, 300, 400)):
            store[i].ema_capacity.value = float(cap)
            store[i].latency_ns = float(i)
        assert store.median_capacity() == 250.0
        assert store.median_latency() == 1.5
        assert store.mean_capacity() == 250.0

    def test_topology_view_stacked_partners(self):
        view = TopologyView(4)
        view.stack_groups = [frozenset({2, 3})]
        assert view.stacked_partners(2) == frozenset({3})
        assert view.stacked_partners(0) == frozenset()

    def test_topology_equality(self):
        a, b = TopologyView(4), TopologyView(4)
        assert a.equals(b)
        b.stack_groups = [frozenset({0, 1})]
        assert not a.equals(b)


class TestModule:
    def test_capacity_provider_installation(self):
        env = build_plain_vm(2)
        module = VSchedModule(env.kernel)
        module.publish_capacity(0, 333.0)
        assert env.kernel.capacity_of(0) != pytest.approx(333.0, abs=1)
        module.install_capacity_provider()
        # EMA from 1024 toward 333 with the 2-period half-life.
        assert env.kernel.capacity_of(0) < 1024.0
        for _ in range(8):
            module.publish_capacity(0, 333.0)
        assert abs(env.kernel.capacity_of(0) - 333.0) < 60

    def test_topology_publish_rebuilds_domains(self):
        env = build_plain_vm(4)
        module = VSchedModule(env.kernel)
        assert not env.kernel.domains.has_smt_level()
        view = TopologyView(4)
        view.smt_siblings = {0: frozenset({0, 1}), 1: frozenset({0, 1}),
                             2: frozenset({2, 3}), 3: frozenset({2, 3})}
        view.socket_siblings = {c: frozenset(range(4)) for c in range(4)}
        module.publish_topology(view)
        assert env.kernel.domains.has_smt_level()
        assert env.kernel.domains.smt_siblings(0) == frozenset({0, 1})

    def test_subscribers_notified(self):
        env = build_plain_vm(2)
        module = VSchedModule(env.kernel)
        calls = []
        module.subscribe(lambda: calls.append(1))
        module.sampling_complete()
        module.publish_topology(TopologyView(2))
        assert len(calls) == 2


class TestVSchedConfig:
    def test_presets(self):
        base = VSchedConfig.baseline()
        assert not any((base.enable_vcap, base.enable_bvs, base.enable_ivh,
                        base.enable_rwc, base.enable_vtop, base.enable_vact))
        enh = VSchedConfig.enhanced()
        assert enh.enable_vcap and enh.enable_rwc
        assert not enh.enable_bvs and not enh.enable_ivh
        full = VSchedConfig.full()
        assert full.enable_bvs and full.enable_ivh

    def test_with_override(self):
        cfg = VSchedConfig.full().with_(enable_ivh=False)
        assert not cfg.enable_ivh
        assert cfg.enable_bvs

    def test_techniques_require_probers(self):
        env = build_plain_vm(2)
        with pytest.raises(ValueError):
            VSched(env.kernel, VSchedConfig.baseline().with_(enable_bvs=True))


class TestRwc:
    def test_stacked_vcpus_hidden(self):
        env = build_rcvm()
        vs = VSched(env.kernel, VSchedConfig.enhanced())
        vs.start()
        env.engine.run_until(10 * SEC)
        hidden = vs.rwc.hidden_cpus()
        # One of the stacked pair (10, 11) must be hidden.
        assert len(hidden & {10, 11}) == 1
        allowed = vs.workload_group.allowed
        assert allowed is not None
        assert not (hidden & allowed)

    def test_straggler_hidden_with_hysteresis(self):
        env = build_plain_vm(4)
        from repro.hypervisor.entity import weight_for_nice
        env.machine.add_host_task("hog", weight=weight_for_nice(-20),
                                  pinned=(0,))
        vs = VSched(env.kernel, VSchedConfig.enhanced())
        vs.start()
        env.engine.run_until(12 * SEC)
        assert 0 in vs.rwc.stragglers
        assert 0 not in vs.workload_group.allowed
        # Best-effort tasks may still use the straggler.
        assert (vs.besteffort_group.allowed is None
                or 0 in vs.besteffort_group.allowed)

    def test_straggler_unbanned_on_recovery(self):
        env = build_plain_vm(4)
        from repro.hypervisor.entity import weight_for_nice
        hog = env.machine.add_host_task("hog", weight=weight_for_nice(-20),
                                        pinned=(0,))
        vs = VSched(env.kernel, VSchedConfig.enhanced())
        vs.start()
        env.engine.run_until(12 * SEC)
        assert 0 in vs.rwc.stragglers
        env.machine.remove_host_task(hog)
        env.engine.run_until(env.engine.now + 10 * SEC)
        assert 0 not in vs.rwc.stragglers
        assert 0 in vs.workload_group.allowed
