"""Every named benchmark of the paper's suite runs to completion.

One tiny instance per catalogue entry — catches generator bugs (deadlocked
pipelines, wrong poison pills, bad parameter derivations) across all 34
names without the cost of full-size runs.
"""

import pytest

from repro.cluster import attach_scheduler, build_plain_vm, make_context, run_to_completion
from repro.sim import SEC
from repro.workloads import (
    OVERALL_LATENCY,
    OVERALL_THROUGHPUT,
    build_workload,
)

EXTRA = ["hackbench", "fio", "matmul"]


@pytest.mark.parametrize("name", OVERALL_THROUGHPUT + EXTRA)
def test_throughput_benchmark_completes(name):
    env = build_plain_vm(4)
    vs = attach_scheduler(env, "cfs")
    ctx = make_context(env, vs, f"cat-{name}")
    wl = build_workload(name, threads=4, scale=0.02)
    run_to_completion(env, [wl], ctx, timeout_ns=300 * SEC)
    assert wl.done
    assert wl.elapsed_ns() > 0


@pytest.mark.parametrize("name", OVERALL_LATENCY)
def test_latency_benchmark_completes(name):
    env = build_plain_vm(4)
    vs = attach_scheduler(env, "cfs")
    ctx = make_context(env, vs, f"cat-{name}")
    wl = build_workload(name, threads=4, n_requests=50)
    run_to_completion(env, [wl], ctx, timeout_ns=300 * SEC)
    assert wl.done
    assert len(wl.requests) > 0
    assert wl.p95_ns() > 0


@pytest.mark.parametrize("name", OVERALL_THROUGHPUT[:6])
def test_benchmark_completes_under_full_vsched(name):
    """A subset also runs under the full vSched stack (hook safety)."""
    env = build_plain_vm(4)
    vs = attach_scheduler(env, "vsched")
    ctx = make_context(env, vs, f"catv-{name}")
    env.engine.run_until(4 * SEC)
    wl = build_workload(name, threads=4, scale=0.02)
    run_to_completion(env, [wl], ctx, timeout_ns=300 * SEC)
    assert wl.done
