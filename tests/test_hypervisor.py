"""Unit and integration tests for the hypervisor layer."""

import pytest

from repro.hw import HostTopology
from repro.hypervisor import (
    EntityState,
    HostTask,
    Machine,
    NICE0_WEIGHT,
    weight_for_nice,
)
from repro.sim import Engine, MSEC, SEC, USEC


def make_machine(sockets=1, cores=4, smt=1, **kw):
    eng = Engine()
    return eng, Machine(eng, HostTopology(sockets, cores, smt=smt), **kw)


class TestWeights:
    def test_nice0(self):
        assert weight_for_nice(0) == 1024

    def test_table_values(self):
        assert weight_for_nice(-10) == 9548
        assert weight_for_nice(19) == 15

    def test_monotonic(self):
        weights = [weight_for_nice(n) for n in range(-20, 20)]
        assert weights == sorted(weights, reverse=True)


class TestFairSharing:
    def test_two_equal_tasks_share_evenly(self):
        eng, m = make_machine()
        a = m.add_host_task("a", pinned=(0,))
        b = m.add_host_task("b", pinned=(0,))
        eng.run_until(2 * SEC)
        assert abs(a.run_ns(eng.now) - b.run_ns(eng.now)) < 20 * MSEC
        total = a.run_ns(eng.now) + b.run_ns(eng.now)
        assert abs(total - 2 * SEC) < MSEC

    def test_weighted_sharing(self):
        eng, m = make_machine()
        hi = m.add_host_task("hi", weight=weight_for_nice(-10), pinned=(0,))
        lo = m.add_host_task("lo", pinned=(0,))
        eng.run_until(4 * SEC)
        share = lo.run_ns(eng.now) / (4 * SEC)
        expected = 1024 / (1024 + 9548)
        assert abs(share - expected) < 0.03

    def test_three_way_split(self):
        eng, m = make_machine()
        tasks = [m.add_host_task(f"t{i}", pinned=(0,)) for i in range(3)]
        eng.run_until(3 * SEC)
        for t in tasks:
            assert abs(t.run_ns(eng.now) - SEC) < 30 * MSEC

    def test_tasks_on_different_threads_do_not_interact(self):
        eng, m = make_machine()
        a = m.add_host_task("a", pinned=(0,))
        b = m.add_host_task("b", pinned=(1,))
        eng.run_until(SEC)
        assert a.run_ns(eng.now) == pytest.approx(SEC, abs=MSEC)
        assert b.run_ns(eng.now) == pytest.approx(SEC, abs=MSEC)


class TestBandwidthControl:
    def test_quota_caps_consumption(self):
        eng, m = make_machine()
        vm = m.new_vm("vm", 1, pinned_map=[(0,)])
        v = vm.vcpu(0)
        m.set_bandwidth(v, quota_ns=3 * MSEC, period_ns=10 * MSEC)
        v.kick()
        eng.run_until(1 * SEC)
        assert abs(v.run_ns(eng.now) - 300 * MSEC) < 15 * MSEC

    def test_steal_accrues_while_throttled(self):
        eng, m = make_machine()
        vm = m.new_vm("vm", 1, pinned_map=[(0,)])
        v = vm.vcpu(0)
        m.set_bandwidth(v, quota_ns=5 * MSEC, period_ns=10 * MSEC)
        v.kick()
        eng.run_until(1 * SEC)
        assert abs(v.steal_ns(eng.now) - 500 * MSEC) < 15 * MSEC

    def test_no_steal_when_blocked(self):
        eng, m = make_machine()
        vm = m.new_vm("vm", 1, pinned_map=[(0,)])
        v = vm.vcpu(0)
        m.set_bandwidth(v, quota_ns=5 * MSEC, period_ns=10 * MSEC)
        eng.run_until(1 * SEC)  # never kicked: blocked, wants nothing
        assert v.steal_ns(eng.now) == 0
        assert v.run_ns(eng.now) == 0

    def test_quota_change_takes_effect(self):
        eng, m = make_machine()
        vm = m.new_vm("vm", 1, pinned_map=[(0,)])
        v = vm.vcpu(0)
        m.set_bandwidth(v, quota_ns=2 * MSEC, period_ns=10 * MSEC)
        v.kick()
        eng.run_until(1 * SEC)
        r1 = v.run_ns(eng.now)
        m.set_bandwidth(v, quota_ns=8 * MSEC, period_ns=10 * MSEC)
        eng.run_until(2 * SEC)
        r2 = v.run_ns(eng.now) - r1
        assert abs(r1 - 200 * MSEC) < 20 * MSEC
        assert abs(r2 - 800 * MSEC) < 30 * MSEC

    def test_invalid_bandwidth_rejected(self):
        eng, m = make_machine()
        vm = m.new_vm("vm", 1, pinned_map=[(0,)])
        with pytest.raises(ValueError):
            m.set_bandwidth(vm.vcpu(0), quota_ns=11 * MSEC, period_ns=10 * MSEC)


class TestStealAccounting:
    def test_contention_splits_run_and_steal(self):
        eng, m = make_machine()
        m.add_host_task("stress", pinned=(0,))
        vm = m.new_vm("vm", 1, pinned_map=[(0,)])
        v = vm.vcpu(0)
        v.kick()
        eng.run_until(2 * SEC)
        assert abs(v.run_ns(eng.now) - SEC) < 30 * MSEC
        assert abs(v.steal_ns(eng.now) - SEC) < 30 * MSEC

    def test_slice_controls_inactive_period(self):
        # With an 8 ms slice the vCPU alternates 8 ms on / 8 ms off.
        eng, m = make_machine(host_slice_ns=8 * MSEC)
        m.add_host_task("stress", pinned=(0,))
        vm = m.new_vm("vm", 1, pinned_map=[(0,)])
        v = vm.vcpu(0)
        v.kick()
        eng.run_until(2 * SEC)
        # ~125 preemption resumes over 2 s (one per 16 ms cycle)
        assert 100 < v.preemption_resumes < 160


class TestSmtSpeed:
    def test_sibling_contention_slows_execution(self):
        eng, m = make_machine(cores=1, smt=2)
        vm = m.new_vm("vm", 1, pinned_map=[(0,)])
        v = vm.vcpu(0)

        class Ctx:
            rate = None

            def host_resumed(self, now, rate):
                Ctx.rate = rate

            def host_preempted(self, now):
                pass

            def host_rate_changed(self, now, rate):
                Ctx.rate = rate

        v.guest_cpu = Ctx()
        v.kick()
        eng.run_until(MSEC)
        assert Ctx.rate == 1.0
        m.add_host_task("sib", pinned=(1,))
        eng.run_until(2 * MSEC)
        assert Ctx.rate == pytest.approx(0.62)


class TestDutyCycle:
    def test_duty_task_runs_half_time(self):
        eng, m = make_machine()
        t = m.add_host_task("duty", pinned=(0,), duty_on_ns=5 * MSEC,
                            duty_off_ns=5 * MSEC)
        eng.run_until(1 * SEC)
        assert abs(t.run_ns(eng.now) - 500 * MSEC) < 20 * MSEC


class TestRepin:
    def test_repin_moves_running_entity(self):
        eng, m = make_machine()
        vm = m.new_vm("vm", 1, pinned_map=[(0,)])
        v = vm.vcpu(0)
        v.kick()
        eng.run_until(10 * MSEC)
        assert v.last_thread.index == 0
        m.repin(v, (2,))
        eng.run_until(20 * MSEC)
        assert v.last_thread.index == 2
        assert v.state == EntityState.RUNNING

    def test_repin_stacks_two_vcpus(self):
        eng, m = make_machine()
        vm = m.new_vm("vm", 2, pinned_map=[(0,), (1,)])
        for v in vm.vcpus:
            v.kick()
        eng.run_until(10 * MSEC)
        m.repin(vm.vcpu(1), (0,))
        eng.run_until(1 * SEC)
        # Both now share thread 0.
        r0 = vm.vcpu(0).run_ns(eng.now)
        r1 = vm.vcpu(1).run_ns(eng.now)
        assert abs(r0 - r1) < 60 * MSEC


class TestVmShutdown:
    def test_shutdown_stops_execution(self):
        eng, m = make_machine()
        vm = m.new_vm("vm", 2, pinned_map=[(0,), (1,)])
        for v in vm.vcpus:
            v.kick()
        eng.run_until(100 * MSEC)
        r_before = vm.total_run_ns()
        vm.shutdown()
        vm.vcpu(0).kick()  # ignored: offline
        eng.run_until(SEC)
        assert vm.total_run_ns() == pytest.approx(r_before, abs=MSEC)


class TestUnpinnedPlacement:
    def test_unpinned_tasks_spread_over_threads(self):
        eng, m = make_machine(cores=4)
        tasks = [m.add_host_task(f"t{i}") for i in range(4)]
        eng.run_until(1 * SEC)
        for t in tasks:
            assert t.run_ns(eng.now) > 900 * MSEC

    def test_host_balance_fills_idle_threads(self):
        eng, m = make_machine(cores=2)
        tasks = [m.add_host_task(f"t{i}") for i in range(4)]
        eng.run_until(2 * SEC)
        total = sum(t.run_ns(eng.now) for t in tasks)
        assert total == pytest.approx(4 * SEC, rel=0.05)
