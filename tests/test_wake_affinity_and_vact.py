"""Wake-affinity placement and vact kernel-function behaviours."""

import pytest

from repro.cluster import build_plain_vm
from repro.guest import Channel, GuestConfig
from repro.guest.domains import DomainLevel, SchedDomains
from repro.guest.kernel import VCpuHostState
from repro.sim import MSEC, SEC, USEC


class TestWakeAffinity:
    def _two_socket_env(self):
        env = build_plain_vm(8, sockets=2)
        env.kernel.domains = SchedDomains(8, [
            DomainLevel("llc", [range(0, 4), range(4, 8)]),
            DomainLevel("machine", [range(8)]),
        ])
        return env

    def test_woken_task_pulled_into_waker_domain(self):
        """Affinity pulls when the waker's domain is no more loaded than
        the wakee's home domain (the waker itself counts, so the home
        domain needs comparable background load for the pull to win)."""
        env = self._two_socket_env()

        def spin(api):
            while True:
                yield api.run(MSEC)

        env.kernel.spawn(spin, "bg", cpu=7, allowed=(7,))  # load socket 1
        ch = Channel("c", lines=1)
        placements = []

        def producer(api):
            for _ in range(40):
                yield api.run(300 * USEC)
                yield api.send(ch, 1)
                yield api.sleep(500 * USEC)  # intermittent, like real wakers

        def consumer(api):
            while True:
                yield api.recv(ch)
                placements.append(api.cpu_index())
                yield api.run(100 * USEC)

        # Producer starts in socket 0; consumer's prev is socket 1.
        env.kernel.spawn(producer, "p", cpu=0, allowed=(0, 1, 2, 3))
        env.kernel.spawn(consumer, "c", cpu=6, allowed=None)
        env.engine.run_until(1 * SEC)
        # After warm-up, wake affinity keeps the consumer in socket 0.
        tail = placements[5:]
        in_socket0 = sum(1 for c in tail if c < 4)
        assert in_socket0 > len(tail) * 0.8, placements

    def test_busy_waker_domain_does_not_pull(self):
        env = self._two_socket_env()
        # Fill socket 0 with spinners so its load is higher.
        def spin(api):
            while True:
                yield api.run(MSEC)

        for i in range(4):
            env.kernel.spawn(spin, f"s{i}", cpu=i, allowed=(i,))
        ch = Channel("c", lines=1)
        placements = []

        def producer(api):
            for _ in range(30):
                yield api.run(300 * USEC)
                yield api.send(ch, 1)

        def consumer(api):
            while True:
                yield api.recv(ch)
                placements.append(api.cpu_index())
                yield api.run(100 * USEC)

        env.kernel.spawn(producer, "p", cpu=0, allowed=(0,))
        env.kernel.spawn(consumer, "c", cpu=6, allowed=None)
        env.engine.run_until(1 * SEC)
        # Socket 0 is loaded: the consumer stays home in socket 1.
        tail = placements[5:]
        in_socket1 = sum(1 for c in tail if c >= 4)
        assert in_socket1 > len(tail) * 0.8, placements


class TestVactKernelFunction:
    def test_small_steal_jumps_filtered(self):
        # Interference bursts shorter than the 200 us threshold must not
        # count as preemptions.
        env = build_plain_vm(1)
        env.machine.add_host_task("blip", pinned=(0,),
                                  duty_on_ns=100 * USEC,
                                  duty_off_ns=4900 * USEC)

        def spin(api):
            while True:
                yield api.run(500 * USEC)

        env.kernel.spawn(spin, "t", cpu=0)
        env.engine.run_until(1 * SEC)
        # ~200 blips occurred; nearly none should register.
        assert env.kernel.cpus[0].preempt_count < 20

    def test_large_jumps_counted(self):
        env = build_plain_vm(1)
        env.machine.add_host_task("burst", pinned=(0,),
                                  duty_on_ns=2 * MSEC, duty_off_ns=8 * MSEC)

        def spin(api):
            while True:
                yield api.run(500 * USEC)

        env.kernel.spawn(spin, "t", cpu=0)
        env.engine.run_until(1 * SEC)
        assert 70 < env.kernel.cpus[0].preempt_count < 130

    def test_state_query_since_tracks_resume(self):
        env = build_plain_vm(1, host_slice_ns=5 * MSEC)
        env.machine.add_host_task("stress", pinned=(0,))

        def spin(api):
            while True:
                yield api.run(500 * USEC)

        env.kernel.spawn(spin, "t", cpu=0)
        env.engine.run_until(500 * MSEC)
        state, since = env.kernel.vcpu_state(0)
        if state == VCpuHostState.ACTIVE:
            # 'since' must be recent: within one activity cycle.
            assert env.engine.now - since < 12 * MSEC

    def test_custom_config_thresholds_apply(self):
        cfg = GuestConfig(steal_jump_threshold_ns=5 * MSEC)
        env = build_plain_vm(1, host_slice_ns=2 * MSEC, guest_config=cfg)
        env.machine.add_host_task("stress", pinned=(0,))

        def spin(api):
            while True:
                yield api.run(500 * USEC)

        env.kernel.spawn(spin, "t", cpu=0)
        env.engine.run_until(1 * SEC)
        # 2 ms steal jumps < 5 ms threshold: filtered out entirely.
        assert env.kernel.cpus[0].preempt_count == 0
