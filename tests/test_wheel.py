"""Conformance tests for the timer-wheel backend against the heap.

The backend contract is pop-order equality: for any program of arms,
cancels, and runs, the wheel must dispatch the exact ``(time, prio, seq)``
sequence the reference heap dispatches.  These tests target the edges
where the two implementations diverge structurally — cancel-then-rearm
inside one instant, far-future timers crossing cascade boundaries, lane
priorities under pop-epoch replay queries, zero-delay arms mid-dispatch,
and deadlines that split a wheel unit.
"""

import random

import pytest

from repro.sim import Engine, MSEC, SEC, USEC
from repro.sim.wheel import BITS, LEVELS, SHIFT, SLOTS, TOP_SHIFT

BACKENDS = ("heap", "wheel")


def run_both(scenario):
    """Run ``scenario(engine, log)`` per backend; return the two logs."""
    logs = []
    for backend in BACKENDS:
        eng = Engine(backend=backend)
        log = []
        scenario(eng, log)
        logs.append(log)
    return logs


def assert_identical(scenario):
    heap_log, wheel_log = run_both(scenario)
    assert heap_log == wheel_log
    return heap_log


# ----------------------------------------------------------------------
# ISSUE edge cases
# ----------------------------------------------------------------------
def test_cancel_then_rearm_same_instant():
    """A callback cancels a later same-instant event and re-arms a
    replacement at the same instant: the replacement's fresh seq must
    order it after every older same-instant arm, on both backends."""

    def scenario(eng, log):
        state = {}

        def killer():
            log.append(("killer", eng.now))
            state["victim"].cancel()
            # Re-arm at the very same instant, default lane: runs last.
            eng.call_at(eng.now, lambda: log.append(("rearmed", eng.now)))

        eng.call_at(5 * USEC, killer)
        state["victim"] = eng.call_at(
            5 * USEC, lambda: log.append(("victim", eng.now)))
        eng.call_at(5 * USEC, lambda: log.append(("bystander", eng.now)))
        eng.run_until(MSEC)
        log.append(("pending", eng.pending()))

    log = assert_identical(scenario)
    assert [tag for tag, _ in log] == [
        "killer", "bystander", "rearmed", "pending"]


def test_lane_rearm_same_instant_orders_by_lane():
    """With a lane priority, a mid-instant re-arm lands at its lane
    position among the *not yet popped* same-instant events."""

    def scenario(eng, log):
        lane = eng.alloc_lane()  # negative: fires before prio-0 events

        def opener():
            log.append("opener")
            # Lane entry armed mid-instant: every prio-0 event still
            # pending at this instant must yield to it.
            eng.call_at(eng.now, lambda: log.append("lane"), prio=lane)

        eng.call_at(7 * USEC, opener)
        eng.call_at(7 * USEC, lambda: log.append("plain-1"))
        eng.call_at(7 * USEC, lambda: log.append("plain-2"))
        eng.run_until(MSEC)

    log = assert_identical(scenario)
    assert log == ["opener", "lane", "plain-1", "plain-2"]


def test_far_future_timers_cross_cascade_boundaries():
    """Arms at every level boundary (and into overflow) fire in exact
    time order; the wheel pays cascades, the heap none — but the fired
    sequence is identical."""
    unit = 1 << SHIFT
    delays = []
    for lvl in range(1, LEVELS):
        span = unit << (BITS * lvl)  # first delay served by level `lvl`
        delays += [span - unit, span, span + unit, 3 * span + 7]
    top_span = unit << TOP_SHIFT
    delays += [SLOTS * top_span - unit,      # last in-wheel unit
               SLOTS * top_span + 5 * SEC,   # overflow list
               2 * SLOTS * top_span]         # deep overflow
    delays += [0, 1, unit - 1, unit, 17 * unit + 3]

    def scenario(eng, log):
        for i, d in enumerate(delays):
            eng.call_in(d, lambda i=i: log.append((eng.now, i)))
        eng.run()
        log.append(("pending", eng.pending()))

    before = Engine.total_cascades
    log = assert_identical(scenario)
    assert Engine.total_cascades > before  # the wheel really cascaded
    times = [t for t, _ in log[:-1]]
    assert times == sorted(times)
    assert len(log) == len(delays) + 1


def test_cancel_across_cascade_boundary():
    """Cancelling a far-future timer after it was filed upper-level (and
    re-arming nearby) must not leave ghosts when the cascade sweeps."""

    def scenario(eng, log):
        far = eng.call_in(300 * MSEC, lambda: log.append("far"))
        eng.call_in(USEC, lambda: log.append("near"))
        eng.run_until(2 * USEC)   # wheel: far is now slot-resident
        far.cancel()
        eng.call_in(299 * MSEC, lambda: log.append("replacement"))
        eng.run_until(SEC)
        log.append(("pending", eng.pending()))

    log = assert_identical(scenario)
    assert log == ["near", "replacement", ("pending", 0)]


def test_lane_priority_ordering_under_pop_epoch_replay():
    """The replay-limit queries (current_key, pop_epoch,
    max_prio_popped_since) observe identical values under both backends —
    they are pure functions of the pop sequence."""

    def scenario(eng, log):
        lane_a = eng.alloc_lane()
        lane_b = eng.alloc_lane()
        epochs = {}

        def observe(tag):
            log.append((tag, eng.now, eng.current_key(), eng.pop_epoch))

        def arm_and_record(tag):
            observe(tag)
            epochs[tag] = eng.pop_epoch

        def probe(tag):
            observe(tag)
            for k, e in sorted(epochs.items()):
                log.append((tag, k, eng.max_prio_popped_since(e)))

        t = 9 * USEC
        eng.call_at(t, arm_and_record, "first", prio=lane_b)
        eng.call_at(t, arm_and_record, "second", prio=lane_a)
        eng.call_at(t, probe, "plain")
        eng.call_at(t, probe, "late")
        eng.run_until(MSEC)
        log.append(("outside", eng.current_key()))

    assert_identical(scenario)


def test_zero_delay_call_in_during_dispatch():
    """call_in(0, ...) from inside a callback fires later in the same
    run at the same instant, after already-armed same-instant events."""

    def scenario(eng, log):
        def opener():
            log.append("opener")
            eng.call_in(0, lambda: log.append("zero-1"))
            eng.call_in(0, lambda: (log.append("zero-2"),
                                    eng.call_in(0, lambda:
                                                log.append("nested"))))

        eng.call_at(3 * USEC, opener)
        eng.call_at(3 * USEC, lambda: log.append("sibling"))
        eng.call_at(3 * USEC + 1, lambda: log.append("next-ns"))
        eng.run_until(MSEC)

    log = assert_identical(scenario)
    assert log == ["opener", "sibling", "zero-1", "zero-2", "nested",
                   "next-ns"]


def test_run_until_deadline_splits_a_wheel_unit():
    """Events inside one 2**SHIFT-ns wheel unit straddling the deadline:
    only the due part fires now, the rest exactly on the next run."""
    unit = 1 << SHIFT

    def scenario(eng, log):
        base = 10 * unit
        for off in (0, 3, 7, unit - 1):
            eng.call_at(base + off,
                        lambda off=off: log.append(("fire", off)))
        eng.run_until(base + 3)
        log.append(("mid", eng.now, eng.pending()))
        eng.run_until(base + unit)
        log.append(("end", eng.pending()))

    log = assert_identical(scenario)
    assert log == [("fire", 0), ("fire", 3), ("mid", 10 * unit + 3, 2),
                   ("fire", 7), ("fire", unit - 1), ("end", 0)]


# ----------------------------------------------------------------------
# Differential fuzz (seeded, both backends, one op program)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("trial", range(25))
def test_differential_random_programs(trial):
    def scenario(eng, log):
        rnd = random.Random(1000 + trial)
        handles = []

        def cb(tag):
            log.append((eng.now, tag))

        for i in range(rnd.randint(1, 60)):
            horizon = rnd.choice(
                [50, 5_000, 1_000_000, 80_000_000, 3_000_000_000, 2 ** 41])
            handles.append(eng.call_in(rnd.randint(0, horizon), cb, i,
                                       prio=rnd.choice([0, 0, 0, -1, -2])))
        for step in range(rnd.randint(1, 40)):
            r = rnd.random()
            if r < 0.45:
                eng.run_until(eng.now + rnd.choice(
                    [10_000, 10 ** 7, 10 ** 9, 2 ** 41]))
            elif r < 0.8:
                handles.append(eng.call_in(
                    rnd.randint(0, 10_000_000), cb, 100 + step))
            else:
                rnd.choice(handles).cancel()
        eng.run()
        log.append(("pending", eng.pending(),
                    "fired", eng.events_fired))

    assert_identical(scenario)
