"""Tests for the deterministic fault-injection (chaos) harness.

Chaos decisions must be pure functions of ``(unit tag, attempt)``, so a
chaos campaign is reproducible; and when every injected fault is
transient and the retry budget covers it, a pooled chaos campaign must
render byte-identically to a clean serial run.
"""

import sys
import time
import types

import pytest

from repro.experiments import parallel
from repro.experiments.chaos import CHAOS_ENV_VAR, ChaosPlan
from repro.experiments.common import EXPERIMENTS, Table
from repro.experiments.units import TransientUnitError, WorkUnit


def _times10(x):
    time.sleep(0.02)
    return x * 10


def _assemble(fast, results):
    table = Table("figc", "fake", ["i", "v"])
    for i, v in enumerate(results):
        table.add(i, v)
    return table


def _units(n=4):
    return [WorkUnit(exp_id="figc", label=f"u{i}", func=_times10,
                     config=(i,), cost_hint=1.0, seed=f"figc-{i}")
            for i in range(n)]


@pytest.fixture
def fake_experiment(monkeypatch):
    mod = types.ModuleType("_vsched_fake_chaos")
    mod.scenarios = lambda fast: _units()
    mod.assemble = _assemble
    mod.check = lambda table: None
    monkeypatch.setitem(sys.modules, "_vsched_fake_chaos", mod)
    monkeypatch.setitem(EXPERIMENTS, "figc", "_vsched_fake_chaos")


class TestParse:
    def test_full_spec(self):
        plan = ChaosPlan.parse("crash:0.2,hang:0.1,flaky:0.5,hang_s=30")
        assert plan == ChaosPlan(crash=0.2, hang=0.1, flaky=0.5,
                                 hang_s=30.0)

    def test_partial_spec_defaults(self):
        plan = ChaosPlan.parse("flaky:1.0")
        assert plan.flaky == 1.0 and plan.crash == 0.0
        assert plan.hang_s == 3600.0

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="unknown mode"):
            ChaosPlan.parse("explode:0.5")

    def test_bad_probability_rejected(self):
        with pytest.raises(ValueError, match="probability"):
            ChaosPlan.parse("crash:1.5")
        with pytest.raises(ValueError, match="malformed"):
            ChaosPlan.parse("crash:lots")

    def test_from_env(self, monkeypatch):
        monkeypatch.delenv(CHAOS_ENV_VAR, raising=False)
        assert ChaosPlan.from_env() is None
        monkeypatch.setenv(CHAOS_ENV_VAR, "crash:0.0")
        assert ChaosPlan.from_env() is None  # all-zero = disabled
        monkeypatch.setenv(CHAOS_ENV_VAR, "crash:0.3")
        assert ChaosPlan.from_env() == ChaosPlan(crash=0.3)

    def test_malformed_env_fails_fast_in_parent(self, monkeypatch,
                                                fake_experiment):
        monkeypatch.setenv(CHAOS_ENV_VAR, "explode:0.5")
        with pytest.raises(ValueError, match="unknown mode"):
            list(parallel.run_units(["figc"], fast=True, jobs=2))


class TestDecide:
    def test_decisions_are_deterministic(self):
        plan = ChaosPlan(crash=0.3, hang=0.3, flaky=0.5)
        decisions = [plan.decide(f"tag{i}", a)
                     for i in range(50) for a in range(3)]
        again = [plan.decide(f"tag{i}", a)
                 for i in range(50) for a in range(3)]
        assert decisions == again
        assert any(d == "crash" for d in decisions)
        assert any(d == "hang" for d in decisions)
        assert any(d is None for d in decisions)

    def test_flaky_fires_only_on_first_attempt(self):
        plan = ChaosPlan(flaky=1.0)
        for i in range(10):
            assert plan.decide(f"tag{i}", 0) == "flaky"
            assert plan.decide(f"tag{i}", 1) is None

    def test_flaky_injection_raises_transient(self):
        plan = ChaosPlan(flaky=1.0)
        with pytest.raises(TransientUnitError, match="chaos"):
            plan.maybe_inject("tag", 0)
        plan.maybe_inject("tag", 1)  # second attempt: no-op


class TestChaosCampaigns:
    """Drive each chaos mode through a 2-worker campaign."""

    def test_flaky_campaign_recovers_and_matches_serial(
            self, monkeypatch, fake_experiment):
        monkeypatch.delenv(CHAOS_ENV_VAR, raising=False)
        clean, = parallel.run_units(["figc"], fast=True, jobs=1)
        monkeypatch.setenv(CHAOS_ENV_VAR, "flaky:1.0")
        chaotic, = parallel.run_units(["figc"], fast=True, jobs=2,
                                      max_retries=2)
        assert chaotic.ok
        assert chaotic.rendered == clean.rendered
        # flaky:1.0 fails every unit exactly once.
        assert all(u["attempts"] == 2 for u in chaotic.unit_stats)
        assert chaotic.retries == len(chaotic.unit_stats)

    def test_crash_campaign_recovers_and_matches_serial(
            self, monkeypatch, fake_experiment):
        monkeypatch.delenv(CHAOS_ENV_VAR, raising=False)
        clean, = parallel.run_units(["figc"], fast=True, jobs=1)
        monkeypatch.setenv(CHAOS_ENV_VAR, "crash:0.4")
        chaotic, = parallel.run_units(["figc"], fast=True, jobs=2,
                                      max_retries=5, keep_going=True)
        assert chaotic.ok, chaotic.rendered
        assert chaotic.rendered == clean.rendered
        stats = parallel.last_campaign_stats()
        # crash:0.4 over 4 units deterministically kills at least one
        # attempt (seeded on unit tags, reproducible run to run).
        assert stats.crashes >= 1
        assert stats.respawns >= 1

    def test_hang_campaign_deadline_kills_then_recovers(
            self, monkeypatch, fake_experiment):
        monkeypatch.delenv(CHAOS_ENV_VAR, raising=False)
        clean, = parallel.run_units(["figc"], fast=True, jobs=1)
        monkeypatch.setenv(CHAOS_ENV_VAR, "hang:0.5,hang_s=120")
        started = time.monotonic()
        chaotic, = parallel.run_units(["figc"], fast=True, jobs=2,
                                      unit_timeout=1.0, max_retries=5,
                                      keep_going=True)
        assert time.monotonic() - started < 60
        assert chaotic.ok, chaotic.rendered
        assert chaotic.rendered == clean.rendered
        stats = parallel.last_campaign_stats()
        assert stats.timeouts >= 1
        assert stats.kills >= 1

    def test_hopeless_crash_campaign_fails_with_report(
            self, monkeypatch, fake_experiment):
        monkeypatch.setenv(CHAOS_ENV_VAR, "crash:1.0")
        res, = parallel.run_units(["figc"], fast=True, jobs=2,
                                  max_retries=1, keep_going=True)
        assert not res.ok
        assert len(res.failed_units) == len(_units())
        for fu in res.failed_units:
            assert "worker died" in fu.error
            assert fu.attempts == 2
            assert "gave up" in fu.fate

    def test_serial_campaign_ignores_chaos(self, monkeypatch,
                                           fake_experiment):
        # crash:1.0 in-process would kill pytest itself; the serial path
        # must not inject.
        monkeypatch.setenv(CHAOS_ENV_VAR, "crash:1.0")
        res, = parallel.run_units(["figc"], fast=True, jobs=1)
        assert res.ok
