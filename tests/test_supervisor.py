"""Tests for the fault-tolerant campaign supervisor.

The supervisor must survive the faults PR 2's fire-and-forget pool could
not: a worker SIGKILLed mid-unit (requeue + respawn), a hung unit
(deadline kill), transient exceptions (bounded deterministic retry), and
permanent failures under --keep-going (failure panels + report instead of
an aborted campaign) — all without perturbing results, which stay pure
functions of ``(code, config, seed)``.
"""

import multiprocessing as mp
import os
import signal
import sys
import time
import types

import pytest

from repro.experiments import parallel
from repro.experiments.cache import ResultCache
from repro.experiments.common import EXPERIMENTS, Table
from repro.experiments.supervisor import (
    CampaignInterrupted,
    DeadlinePolicy,
    RetryPolicy,
    UNIT_TIMEOUT_ENV_VAR,
)
from repro.experiments.units import TransientUnitError, WorkUnit


# ----------------------------------------------------------------------
# Module-level unit bodies (must be picklable by reference).
# ----------------------------------------------------------------------
def _times10(x):
    return x * 10


def _slow_times10(x):
    time.sleep(0.05)
    return x * 10


def _kill_self_once(marker, x):
    """SIGKILL our own worker on the first attempt; succeed afterwards."""
    if not os.path.exists(marker):
        open(marker, "w").close()
        os.kill(os.getpid(), signal.SIGKILL)
    return x * 10


def _hang_once(marker, x):
    """Hang (past any test deadline) on the first attempt only."""
    if not os.path.exists(marker):
        open(marker, "w").close()
        time.sleep(60)
    return x * 10


def _always_hangs(x):
    time.sleep(60)
    return x * 10


def _flaky_once(marker, x):
    """Raise a retryable error on the first attempt only."""
    if not os.path.exists(marker):
        open(marker, "w").close()
        raise TransientUnitError("flaky once")
    return x * 10


def _always_fails(x):
    raise ValueError(f"boom {x}")


def _always_transient(x):
    raise TransientUnitError(f"never settles {x}")


def _assemble(fast, results):
    table = Table("figx", "fake", ["i", "v"])
    for i, v in enumerate(results):
        table.add(i, v)
    return table


def _install(monkeypatch, units, exp_id="figx"):
    """Register a synthetic experiment built from ``units``."""
    mod = types.ModuleType(f"_vsched_fake_{exp_id}")
    mod.scenarios = lambda fast, _u=list(units): list(_u)
    mod.assemble = _assemble
    mod.check = lambda table: None
    monkeypatch.setitem(sys.modules, f"_vsched_fake_{exp_id}", mod)
    monkeypatch.setitem(EXPERIMENTS, exp_id, f"_vsched_fake_{exp_id}")


def _plain_units(n, exp_id="figx", func=_slow_times10):
    return [WorkUnit(exp_id=exp_id, label=f"u{i}", func=func, config=(i,),
                     cost_hint=1.0, seed=f"{exp_id}-{i}")
            for i in range(n)]


def _expected_rendered(n):
    return _assemble(True, [i * 10 for i in range(n)]).render()


# ----------------------------------------------------------------------
# Crash recovery (the PR 2 hang: a dead worker deadlocked the campaign)
# ----------------------------------------------------------------------
class TestCrashRecovery:
    def test_sigkilled_worker_is_requeued_and_campaign_completes(
            self, monkeypatch, tmp_path):
        marker = str(tmp_path / "killed")
        units = _plain_units(4)
        units[1] = WorkUnit(exp_id="figx", label="killer",
                            func=_kill_self_once, config=(marker, 1),
                            cost_hint=2.0, seed="figx-killer")
        _install(monkeypatch, units)
        res, = parallel.run_units(["figx"], fast=True, jobs=2)
        assert res.ok
        assert res.rendered == _expected_rendered(4)
        stats = parallel.last_campaign_stats()
        assert stats.crashes >= 1
        assert stats.requeues >= 1
        assert stats.respawns >= 1
        killer = [u for u in res.unit_stats if u["label"] == "killer"]
        assert killer[0]["attempts"] == 2

    def test_crash_with_no_retries_fails_that_unit_only(
            self, monkeypatch, tmp_path):
        marker = str(tmp_path / "killed")
        units = _plain_units(3)
        units[0] = WorkUnit(exp_id="figx", label="killer",
                            func=_kill_self_once, config=(marker, 0),
                            cost_hint=2.0, seed="figx-killer",
                            max_retries=0)
        _install(monkeypatch, units)
        res, = parallel.run_units(["figx"], fast=True, jobs=2,
                                  keep_going=True)
        assert not res.ok
        assert len(res.failed_units) == 1
        fu = res.failed_units[0]
        assert fu.label == "killer"
        assert "worker died" in fu.error
        assert fu.attempts == 1

    def test_no_leaked_worker_processes(self, monkeypatch):
        _install(monkeypatch, _plain_units(4))
        list(parallel.run_units(["figx"], fast=True, jobs=2))
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline:
            leftovers = [p for p in mp.active_children()
                         if p.name.startswith("vsched-unit-")]
            if not leftovers:
                break
            time.sleep(0.05)
        assert not leftovers


# ----------------------------------------------------------------------
# Deadlines
# ----------------------------------------------------------------------
class TestDeadlines:
    def test_hung_unit_is_killed_and_retried(self, monkeypatch, tmp_path):
        marker = str(tmp_path / "hung")
        units = _plain_units(3)
        units[2] = WorkUnit(exp_id="figx", label="hanger", func=_hang_once,
                            config=(marker, 2), cost_hint=2.0,
                            seed="figx-hanger")
        _install(monkeypatch, units)
        started = time.monotonic()
        res, = parallel.run_units(["figx"], fast=True, jobs=2,
                                  unit_timeout=1.5)
        assert time.monotonic() - started < 30
        assert res.ok
        assert res.rendered == _expected_rendered(3)
        stats = parallel.last_campaign_stats()
        assert stats.timeouts >= 1
        assert stats.kills >= 1

    def test_hopeless_hang_exhausts_retries_and_fails(self, monkeypatch,
                                                      tmp_path):
        units = [WorkUnit(exp_id="figx", label="hang", func=_always_hangs,
                          config=(0,), cost_hint=2.0, seed="figx-h"),
                 WorkUnit(exp_id="figx", label="fine", func=_times10,
                          config=(1,), cost_hint=1.0, seed="figx-fine")]
        _install(monkeypatch, units)
        res, = parallel.run_units(["figx"], fast=True, jobs=2,
                                  unit_timeout=1.0, max_retries=1,
                                  keep_going=True)
        assert not res.ok
        assert len(res.failed_units) == 1
        fu = res.failed_units[0]
        assert "deadline" in fu.error
        assert fu.attempts == 2
        assert "gave up" in fu.fate

    def test_derived_deadline_clamps_and_overrides(self):
        pol = DeadlinePolicy(multiplier=10.0, floor_s=5.0, ceil_s=100.0)
        tiny = WorkUnit(exp_id="e", label="l", func=_times10,
                        cost_hint=0.01)
        huge = WorkUnit(exp_id="e", label="l", func=_times10,
                        cost_hint=1e6)
        mid = WorkUnit(exp_id="e", label="l", func=_times10, cost_hint=2.0)
        assert pol.timeout_for(tiny, fast=True) == 5.0
        assert pol.timeout_for(huge, fast=True) == 100.0
        assert pol.timeout_for(mid, fast=True) == 20.0
        # Full mode scales the derived value and ceiling, not the floor.
        assert pol.timeout_for(mid, fast=False) > 20.0
        # Per-unit explicit timeout wins over derivation...
        explicit = WorkUnit(exp_id="e", label="l", func=_times10,
                            cost_hint=2.0, timeout_s=42.0)
        assert pol.timeout_for(explicit, fast=True) == 42.0
        # ...and the campaign-wide override wins over everything.
        over = DeadlinePolicy(multiplier=10.0, floor_s=5.0, ceil_s=100.0,
                              override_s=7.0)
        assert over.timeout_for(explicit, fast=True) == 7.0

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv(UNIT_TIMEOUT_ENV_VAR, "12.5")
        assert DeadlinePolicy.from_env().override_s == 12.5
        monkeypatch.setenv(UNIT_TIMEOUT_ENV_VAR, "soon")
        with pytest.raises(ValueError, match="malformed"):
            DeadlinePolicy.from_env()


# ----------------------------------------------------------------------
# Retry policy and deterministic backoff
# ----------------------------------------------------------------------
class TestRetryPolicy:
    def test_transient_error_is_retried(self, monkeypatch, tmp_path):
        marker = str(tmp_path / "flaked")
        units = _plain_units(2)
        units[0] = WorkUnit(exp_id="figx", label="flaky", func=_flaky_once,
                            config=(marker, 0), cost_hint=2.0,
                            seed="figx-flaky")
        _install(monkeypatch, units)
        res, = parallel.run_units(["figx"], fast=True, jobs=2,
                                  max_retries=1)
        assert res.ok
        assert res.rendered == _expected_rendered(2)
        assert res.retries == 1
        flaky = [u for u in res.unit_stats if u["label"] == "flaky"][0]
        assert flaky["attempts"] == 2

    def test_plain_exception_is_not_retried(self, monkeypatch):
        units = [WorkUnit(exp_id="figx", label="bad", func=_always_fails,
                          config=(3,), seed="figx-bad")]
        _install(monkeypatch, units)
        res, = parallel.run_units(["figx"], fast=True, jobs=2,
                                  max_retries=5, keep_going=True)
        fu = res.failed_units[0]
        assert fu.attempts == 1
        assert "boom 3" in fu.error
        assert "not retryable" in fu.fate

    def test_retry_budget_is_bounded(self, monkeypatch):
        units = [WorkUnit(exp_id="figx", label="t", func=_always_transient,
                          config=(1,), seed="figx-t")]
        _install(monkeypatch, units)
        res, = parallel.run_units(["figx"], fast=True, jobs=2,
                                  max_retries=2, keep_going=True)
        fu = res.failed_units[0]
        assert fu.attempts == 3
        assert "gave up" in fu.fate

    def test_serial_path_retries_too(self, monkeypatch, tmp_path):
        marker = str(tmp_path / "flaked")
        units = [WorkUnit(exp_id="figx", label="flaky", func=_flaky_once,
                          config=(marker, 0), seed="figx-flaky")]
        _install(monkeypatch, units)
        res, = parallel.run_units(["figx"], fast=True, jobs=1,
                                  max_retries=1)
        assert res.ok and res.retries == 1

    def test_backoff_is_deterministic_and_bounded(self):
        pol = RetryPolicy(max_retries=3, backoff_base_s=0.1,
                          backoff_cap_s=5.0)
        first = pol.backoff_s("figx/u|seed", 1)
        assert first == pol.backoff_s("figx/u|seed", 1)
        assert pol.backoff_s("figx/u|seed", 2) != first  # new attempt draw
        assert 0.05 <= first < 0.15
        assert all(pol.backoff_s("t", a) <= 5.0 for a in range(1, 12))

    def test_per_unit_overrides(self):
        pol = RetryPolicy(max_retries=3)
        assert pol.retries_for(WorkUnit("e", "l", _times10)) == 3
        assert pol.retries_for(
            WorkUnit("e", "l", _times10, max_retries=0)) == 0
        assert pol.retries_for(
            WorkUnit("e", "l", _times10, retryable=False)) == 0


# ----------------------------------------------------------------------
# Keep-going partial campaigns
# ----------------------------------------------------------------------
class TestKeepGoing:
    def test_healthy_experiments_stream_past_a_failure(self, monkeypatch):
        _install(monkeypatch, _plain_units(3, exp_id="figok"),
                 exp_id="figok")
        bad = [WorkUnit(exp_id="figbad", label="bad", func=_always_fails,
                        config=(7,), seed="figbad-bad")]
        bad += _plain_units(2, exp_id="figbad")[1:]
        _install(monkeypatch, bad, exp_id="figbad")
        results = list(parallel.run_units(["figok", "figbad"], fast=True,
                                          jobs=2, keep_going=True))
        assert [r.exp_id for r in results] == ["figok", "figbad"]
        ok, failed = results
        assert ok.ok and ok.rendered == _expected_rendered(3)
        assert not failed.ok
        assert "FAILED" in failed.rendered
        assert "boom 7" in failed.rendered
        assert failed.failed_units[0].label == "bad"

    def test_keep_going_still_caches_successes(self, monkeypatch,
                                               tmp_path):
        bad = [WorkUnit(exp_id="figbad", label="bad", func=_always_fails,
                        config=(7,), seed="figbad-bad"),
               WorkUnit(exp_id="figbad", label="good", func=_times10,
                        config=(1,), seed="figbad-good")]
        _install(monkeypatch, bad, exp_id="figbad")
        cache = ResultCache(str(tmp_path))
        res, = parallel.run_units(["figbad"], fast=True, jobs=2,
                                  keep_going=True, cache=cache)
        assert not res.ok
        assert cache.stores == 1  # the healthy unit, not the failed one

    def test_without_keep_going_raises_at_assembly(self, monkeypatch):
        units = [WorkUnit(exp_id="figx", label="bad", func=_always_fails,
                          config=(3,), seed="figx-bad")]
        _install(monkeypatch, units)
        with pytest.raises(RuntimeError, match="figx/bad.*boom 3"):
            list(parallel.run_units(["figx"], fast=True, jobs=2))


# ----------------------------------------------------------------------
# Determinism under faults
# ----------------------------------------------------------------------
class TestFaultDeterminism:
    def test_recovered_campaign_matches_clean_serial_run(
            self, monkeypatch, tmp_path):
        """Crash + hang + flaky recoveries must not perturb the table."""
        k_marker = str(tmp_path / "k")
        h_marker = str(tmp_path / "h")
        f_marker = str(tmp_path / "f")
        units = _plain_units(6)
        units[1] = WorkUnit(exp_id="figx", label="killer",
                            func=_kill_self_once, config=(k_marker, 1),
                            cost_hint=3.0, seed="figx-k")
        units[3] = WorkUnit(exp_id="figx", label="hanger", func=_hang_once,
                            config=(h_marker, 3), cost_hint=2.0,
                            seed="figx-h")
        units[5] = WorkUnit(exp_id="figx", label="flaky", func=_flaky_once,
                            config=(f_marker, 5), cost_hint=1.0,
                            seed="figx-f")
        _install(monkeypatch, units)
        faulty, = parallel.run_units(["figx"], fast=True, jobs=2,
                                     unit_timeout=1.5, max_retries=2)
        assert faulty.ok
        # Clean serial reference: pre-create the markers so no unit
        # misbehaves, then run in-process.
        for m in (k_marker, h_marker, f_marker):
            open(m, "w").close()
        clean, = parallel.run_units(["figx"], fast=True, jobs=1)
        assert faulty.rendered == clean.rendered


# ----------------------------------------------------------------------
# Ctrl-C
# ----------------------------------------------------------------------
class TestInterrupt:
    def test_interrupt_tears_down_and_reports_progress(self, monkeypatch):
        import _thread
        import threading
        units = _plain_units(2) + [
            WorkUnit(exp_id="figx", label=f"slow{i}", func=_always_hangs,
                     config=(i,), cost_hint=5.0,
                     seed=f"figx-slow{i}") for i in range(2)]
        _install(monkeypatch, units)
        timer = threading.Timer(1.0, _thread.interrupt_main)
        timer.start()
        try:
            with pytest.raises(CampaignInterrupted) as info:
                list(parallel.run_units(["figx"], fast=True, jobs=2,
                                        unit_timeout=300.0))
        finally:
            timer.cancel()
        assert 0 <= info.value.done < info.value.total == 4
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline:
            leftovers = [p for p in mp.active_children()
                         if p.name.startswith("vsched-unit-")]
            if not leftovers:
                break
            time.sleep(0.05)
        assert not leftovers
