"""Edge-case tests for synchronization objects and the interpreter."""

import pytest

from repro.cluster import build_plain_vm
from repro.guest import Barrier, Channel, Mutex, TaskState
from repro.sim import MSEC, SEC, USEC


class TestChannelEdges:
    def test_recv_then_send_handoff_bypasses_queue(self):
        env = build_plain_vm(2)
        ch = Channel("c")
        got = []

        def consumer(api):
            got.append((yield api.recv(ch)))

        def producer(api):
            yield api.run(5 * MSEC)
            yield api.send(ch, "x")

        env.kernel.spawn(consumer, "c0")
        env.kernel.spawn(producer, "p0")
        env.engine.run_until(100 * MSEC)
        assert got == ["x"]
        assert not ch.items  # direct handoff, nothing queued

    def test_multiple_waiting_consumers_fifo(self):
        env = build_plain_vm(4)
        ch = Channel("c")
        order = []

        def consumer(i):
            def gen(api):
                yield api.run(i * 100 * USEC)  # stagger arrival at recv
                v = yield api.recv(ch)
                order.append((i, v))
            return gen

        for i in range(3):
            env.kernel.spawn(consumer(i), f"c{i}")
        env.engine.run_until(10 * MSEC)
        for v in ("a", "b", "c"):
            env.kernel.send_external(ch, v)
        env.engine.run_until(50 * MSEC)
        assert sorted(order) == [(0, "a"), (1, "b"), (2, "c")]

    def test_send_waiter_promoted_when_slot_frees(self):
        env = build_plain_vm(2)
        ch = Channel("c", capacity=1)
        events = []

        def producer(api):
            for i in range(3):
                yield api.send(ch, i)
                events.append(("sent", i, api.now()))

        def consumer(api):
            yield api.sleep(10 * MSEC)
            for _ in range(3):
                v = yield api.recv(ch)
                events.append(("got", v, api.now()))
                yield api.run(MSEC)

        env.kernel.spawn(producer, "p")
        env.kernel.spawn(consumer, "c")
        env.engine.run_until(SEC)
        got = [e for e in events if e[0] == "got"]
        assert [g[1] for g in got] == [0, 1, 2]

    def test_total_sent_counts_deliveries(self):
        env = build_plain_vm(2)
        ch = Channel("c", capacity=8)

        def producer(api):
            for i in range(5):
                yield api.send(ch, i)

        env.kernel.spawn(producer, "p")
        env.engine.run_until(10 * MSEC)
        assert ch.total_sent == 5


class TestMutexEdges:
    def test_handoff_chain_is_fifo(self):
        env = build_plain_vm(4)
        m = Mutex("m")
        order = []

        def body(i):
            def gen(api):
                yield api.run((i + 1) * 100 * USEC)  # stagger lock attempts
                yield api.lock(m)
                order.append(i)
                yield api.run(2 * MSEC)
                yield api.unlock(m)
            return gen

        for i in range(4):
            env.kernel.spawn(body(i), f"t{i}", cpu=i, allowed=(i,))
        env.engine.run_until(SEC)
        assert order == [0, 1, 2, 3]
        assert m.contentions == 3

    def test_spin_and_block_mutexes_both_exclusive(self):
        for spin in (False, True):
            env = build_plain_vm(4)
            m = Mutex("m", spin=spin)
            inside = [0]
            max_inside = [0]

            def body(api):
                for _ in range(10):
                    yield api.lock(m)
                    inside[0] += 1
                    max_inside[0] = max(max_inside[0], inside[0])
                    yield api.run(200 * USEC)
                    inside[0] -= 1
                    yield api.unlock(m)
                    yield api.run(100 * USEC)

            for i in range(4):
                env.kernel.spawn(body, f"t{i}")
            env.engine.run_until(SEC)
            assert max_inside[0] == 1, f"spin={spin}"


class TestBarrierEdges:
    def test_single_party_barrier_never_blocks(self):
        env = build_plain_vm(1)
        b = Barrier(1)
        laps = []

        def body(api):
            for i in range(5):
                yield api.barrier(b)
                laps.append(i)

        env.kernel.spawn(body, "solo")
        env.engine.run_until(10 * MSEC)
        assert laps == [0, 1, 2, 3, 4]
        assert b.completed == 5

    def test_mixed_spin_and_arrival_order(self):
        env = build_plain_vm(4)
        b = Barrier(3, spin=True)
        passed = []

        def body(i):
            def gen(api):
                yield api.run((i + 1) * MSEC)
                yield api.barrier(b)
                passed.append((i, api.now()))
            return gen

        for i in range(3):
            env.kernel.spawn(body(i), f"t{i}")
        env.engine.run_until(SEC)
        assert len(passed) == 3
        # Spinners burned CPU while waiting (they never slept).
        t0 = [t for t in env.kernel.tasks if t.name == "t0"][0]
        assert t0.stats.work_done > 2 * MSEC  # 1ms work + ~2ms spinning

    def test_barrier_with_stalled_member_blocks_all(self):
        env = build_plain_vm(4)
        # Make cpu3 effectively dead for a while.
        env.machine.set_bandwidth(env.vm.vcpu(3), quota_ns=500 * USEC,
                                  period_ns=50 * MSEC)
        b = Barrier(4)
        passed = []

        def body(i):
            def gen(api):
                yield api.run(MSEC)
                yield api.barrier(b)
                passed.append(api.now())
            return gen

        for i in range(4):
            env.kernel.spawn(body(i), f"t{i}", cpu=i, allowed=(i,))
        env.engine.run_until(40 * MSEC)
        # Nobody passes until the throttled member arrives.
        if passed:
            assert min(passed) > 2 * MSEC


class TestInterpreterEdges:
    def test_yield_cpu_lets_peer_run(self):
        env = build_plain_vm(1)
        seen = []

        def polite(api):
            for i in range(5):
                seen.append(("p", api.now()))
                yield api.run(100 * USEC)
                yield api.yield_cpu()

        def peer(api):
            yield api.run(3 * MSEC)
            seen.append(("done", api.now()))

        env.kernel.spawn(polite, "polite", cpu=0, allowed=(0,))
        env.kernel.spawn(peer, "peer", cpu=0, allowed=(0,))
        env.engine.run_until(SEC)
        assert ("done" in [s[0] for s in seen])

    def test_migrate_to_same_cpu_is_noop(self):
        env = build_plain_vm(2)
        done = []

        def body(api):
            yield api.run(MSEC)
            yield api.migrate_to(api.cpu_index())  # no-op
            yield api.run(MSEC)
            done.append(api.cpu_index())

        t = env.kernel.spawn(body, "t", cpu=1, allowed=None)
        env.engine.run_until(100 * MSEC)
        assert done and t.stats.migrations <= 1

    def test_immediate_exit_task(self):
        env = build_plain_vm(1)

        def body(api):
            return
            yield  # pragma: no cover

        t = env.kernel.spawn(body, "empty")
        env.engine.run_until(MSEC)
        assert t.state == TaskState.EXITED
