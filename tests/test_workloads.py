"""Tests for the workload generators."""

import pytest

from repro.cluster import attach_scheduler, build_plain_vm, make_context, run_to_completion
from repro.sim import MSEC, SEC, USEC
from repro.workloads import (
    BarrierWorkload,
    BestEffortFiller,
    CpuBoundJob,
    DataParallelWorkload,
    Fio,
    Hackbench,
    LatencyWorkload,
    LockWorkload,
    Matmul,
    NginxServer,
    OVERALL_LATENCY,
    OVERALL_THROUGHPUT,
    PARSEC_SPECS,
    Pbzip2,
    PipelineWorkload,
    SelfMigratingJob,
    SysbenchCpu,
    TAILBENCH,
    build_parsec,
    build_workload,
)


def run_workload(wl, n=8, timeout=120 * SEC, extra=None):
    env = build_plain_vm(n)
    vs = attach_scheduler(env, "cfs")
    ctx = make_context(env, vs, f"wl-{wl.name}")
    workloads = [wl] + (extra or [])
    run_to_completion(env, workloads, ctx, timeout_ns=timeout, wait_for=[wl])
    return env, wl


class TestCatalogue:
    def test_overall_lists_cover_the_paper(self):
        assert len(OVERALL_THROUGHPUT) == 23  # 10 PARSEC + 11 SPLASH + 2
        assert len(OVERALL_LATENCY) == 8
        assert len(TAILBENCH) == 8
        assert len(PARSEC_SPECS) >= 21

    def test_build_workload_knows_every_name(self):
        for name in OVERALL_THROUGHPUT + OVERALL_LATENCY + ["hackbench",
                                                            "fio", "matmul",
                                                            "sysbench"]:
            wl = build_workload(name, threads=4, scale=0.05)
            assert wl is not None

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            build_workload("doom", threads=4)


class TestThroughputFamilies:
    def test_cpu_bound_job_completes_exact_work(self):
        env, wl = run_workload(CpuBoundJob(threads=4, work_per_thread_ns=50 * MSEC))
        assert wl.done
        for t in wl.tasks:
            assert t.stats.work_done == pytest.approx(50 * MSEC, rel=1e-6)

    def test_barrier_workload_phases_complete(self):
        wl = BarrierWorkload("b", threads=4, phases=10, phase_work_ns=2 * MSEC)
        env, wl = run_workload(wl)
        assert wl.done
        assert wl.barrier.completed == 10

    def test_barrier_straggler_dominates(self):
        # With one vCPU 10x slower, a barrier job is straggler-bound.
        env = build_plain_vm(4)
        env.machine.set_bandwidth(env.vm.vcpu(0), quota_ns=1 * MSEC,
                                  period_ns=10 * MSEC)
        vs = attach_scheduler(env, "cfs")
        ctx = make_context(env, vs, "strag")
        wl = BarrierWorkload("b", threads=4, phases=10,
                             phase_work_ns=2 * MSEC, jitter=0.0)
        for i, _ in enumerate(range(4)):
            pass
        # Pin one thread per vCPU so one lands on the slow vCPU.
        wl.start(ctx)
        for i, t in enumerate(wl.tasks):
            pass
        env.engine.run_until(5 * SEC)
        assert wl.done
        # Perfect host would need ~20 ms; the straggler stretches phases.
        assert wl.elapsed_ns() > 30 * MSEC

    def test_dataparallel_all_chunks_processed(self):
        wl = DataParallelWorkload("d", threads=4, chunks=40,
                                  chunk_work_ns=1 * MSEC)
        env, wl = run_workload(wl)
        assert wl.done
        total = sum(t.stats.work_done for t in wl.tasks)
        assert total >= 40 * 0.5 * MSEC

    def test_pipeline_delivers_all_items(self):
        wl = PipelineWorkload("p", items=50, stages=[
            ("a", 1, 100 * USEC), ("b", 2, 300 * USEC), ("c", 1, 100 * USEC)])
        env, wl = run_workload(wl)
        assert wl.done

    def test_lock_workload_completes(self):
        wl = LockWorkload("l", threads=4, iterations=20,
                          cs_work_ns=50 * USEC, outside_work_ns=200 * USEC)
        env, wl = run_workload(wl)
        assert wl.done
        assert wl.lock.owner is None

    def test_parsec_builder_families(self):
        assert isinstance(build_parsec("streamcluster", 4, 0.05), BarrierWorkload)
        assert isinstance(build_parsec("blackscholes", 4, 0.05), DataParallelWorkload)
        assert isinstance(build_parsec("dedup", 4, 0.05), PipelineWorkload)
        assert isinstance(build_parsec("canneal", 4, 0.05), LockWorkload)
        assert build_parsec("streamcluster", 4, 0.05).spin
        assert not build_parsec("bodytrack", 4, 0.05).spin


class TestLatencyFamilies:
    def test_latency_workload_records_components(self):
        wl = LatencyWorkload("silo", workers=4, n_requests=60,
                             warmup_requests=5)
        env, wl = run_workload(wl)
        assert wl.done
        assert len(wl.requests) == 55
        for r in wl.requests[:10]:
            assert r.queue_ns >= 0
            assert r.service_ns > 0
            assert r.e2e_ns == r.queue_ns + r.service_ns
        assert wl.p95_ns() > 0

    def test_nginx_throughput_series(self):
        env = build_plain_vm(8)
        vs = attach_scheduler(env, "cfs")
        ctx = make_context(env, vs, "ng")
        wl = NginxServer(workers=4, service_ns=300 * USEC,
                         rate_per_sec=2000.0, duration_ns=3 * SEC)
        wl.start(ctx)
        env.engine.run_until(4 * SEC)
        series = wl.throughput_series(1 * SEC, t0=0, t1=3 * SEC)
        assert len(series) == 3
        for rps in series:
            assert 1700 < rps < 2300

    def test_nginx_saturates_at_capacity(self):
        env = build_plain_vm(2)
        vs = attach_scheduler(env, "cfs")
        ctx = make_context(env, vs, "ng2")
        # 2 workers x 1 ms service = 2000/s capacity; offer 5000/s.
        wl = NginxServer(workers=2, service_ns=1 * MSEC, rate_per_sec=5000.0,
                         duration_ns=3 * SEC)
        wl.start(ctx)
        env.engine.run_until(4 * SEC)
        served = wl.served_between(1 * SEC, 3 * SEC) / 2.0
        assert served == pytest.approx(2000.0, rel=0.1)


class TestApps:
    def test_hackbench_completes_and_communicates(self):
        wl = Hackbench(groups=2, pairs_per_group=2, messages=30)
        env, wl = run_workload(wl)
        assert wl.done
        assert env.kernel.stats.wakeups > 100

    def test_fio_mostly_sleeps(self):
        wl = Fio(threads=4, iterations=50, cpu_ns=20 * USEC,
                 io_wait_ns=500 * USEC)
        env, wl = run_workload(wl)
        assert wl.done
        busy = sum(t.stats.work_done for t in wl.tasks)
        assert busy < 0.2 * wl.elapsed_ns() * 4

    def test_pbzip2_is_pipeline(self):
        wl = Pbzip2(threads=6, blocks=40)
        env, wl = run_workload(wl)
        assert wl.done

    def test_sysbench_counts_events(self):
        env = build_plain_vm(4)
        vs = attach_scheduler(env, "cfs")
        ctx = make_context(env, vs, "sb")
        wl = SysbenchCpu(threads=4, event_work_ns=500 * USEC)
        wl.start(ctx)
        env.engine.run_until(1 * SEC)
        assert wl.events == pytest.approx(8000, rel=0.05)

    def test_matmul_and_selfmigrating(self):
        env, wl = run_workload(Matmul(threads=4, blocks=8,
                                      block_work_ns=2 * MSEC))
        assert wl.done
        env, wl = run_workload(SelfMigratingJob(work_ns=20 * MSEC,
                                                migrate_every_ns=2 * MSEC))
        assert wl.done
        assert wl.tasks[0].stats.migrations > 5

    def test_best_effort_filler_runs_at_idle_priority(self):
        env = build_plain_vm(2)
        vs = attach_scheduler(env, "cfs")
        ctx = make_context(env, vs, "be")
        filler = BestEffortFiller()
        filler.start(ctx)
        wl = CpuBoundJob(threads=2, work_per_thread_ns=100 * MSEC)
        wl.start(ctx)
        env.engine.run_until(5 * SEC)
        assert wl.done
        # The CPU-bound job ran essentially undisturbed.
        assert wl.elapsed_ns() < 110 * MSEC
