"""Unit tests of ivh's prediction and target-scoring logic (Figure 9)."""

import pytest

from repro.cluster import build_plain_vm
from repro.core.ivh import IntraVmHarvesting
from repro.core.module import VSchedModule
from repro.guest import Policy
from repro.sim import MSEC, SEC, USEC


def make_env(n=4):
    env = build_plain_vm(n)
    module = VSchedModule(env.kernel)
    ivh = IntraVmHarvesting(env.kernel, module)
    return env, module, ivh


def set_entry(module, cpu, capacity=1024.0, latency_ms=5.0, active_ms=5.0):
    e = module.store[cpu]
    e.ema_capacity.value = capacity
    e.latency_ns = latency_ms * MSEC
    e.avg_active_ns = active_ms * MSEC


def occupy(env, cpu, policy=Policy.NORMAL):
    def body(api):
        while True:
            yield api.run(300 * USEC)

    return env.kernel.spawn(body, f"occ{cpu}", policy=policy, cpu=cpu,
                            allowed=(cpu,))


class TestSoonInactive:
    def test_fresh_activity_not_soon(self):
        env, module, ivh = make_env()
        set_entry(module, 0, active_ms=6.0)
        occupy(env, 0)
        env.engine.run_until(20 * MSEC)
        cpu = env.kernel.cpus[0]
        cpu.active_since_est = env.engine.now - MSEC  # 5 ms remaining
        assert not ivh._soon_inactive(cpu, module.store[0], env.engine.now)

    def test_tail_of_window_is_soon(self):
        env, module, ivh = make_env()
        set_entry(module, 0, active_ms=6.0)
        occupy(env, 0)
        env.engine.run_until(20 * MSEC)
        cpu = env.kernel.cpus[0]
        cpu.active_since_est = env.engine.now - 5 * MSEC  # 1 ms remaining
        assert ivh._soon_inactive(cpu, module.store[0], env.engine.now)

    def test_no_activity_data_means_no_prediction(self):
        env, module, ivh = make_env()
        module.store[0].avg_active_ns = 0.0
        occupy(env, 0)
        env.engine.run_until(20 * MSEC)
        cpu = env.kernel.cpus[0]
        assert not ivh._soon_inactive(cpu, module.store[0], env.engine.now)


class TestTargetScore:
    def test_halted_vcpu_scored_by_banked_idle_credit(self):
        env, module, ivh = make_env()
        set_entry(module, 1, active_ms=6.0)
        env.engine.run_until(20 * MSEC)
        cpu1 = env.kernel.cpus[1]
        cpu1.idle_since = env.engine.now - 4 * MSEC
        score = ivh._target_score(1, cpu1, env.engine.now)
        assert score is not None
        assert score[0] == pytest.approx(4 * MSEC)

    def test_freshly_idled_vcpu_rejected(self):
        env, module, ivh = make_env()
        set_entry(module, 1, active_ms=6.0)
        env.engine.run_until(20 * MSEC)
        cpu1 = env.kernel.cpus[1]
        cpu1.idle_since = env.engine.now - 200 * USEC  # < MIN_USEFUL
        assert ivh._target_score(1, cpu1, env.engine.now) is None

    def test_busy_normal_vcpu_is_not_a_target(self):
        env, module, ivh = make_env()
        set_entry(module, 1, active_ms=6.0)
        occupy(env, 1)
        env.engine.run_until(20 * MSEC)
        cpu1 = env.kernel.cpus[1]
        assert ivh._target_score(1, cpu1, env.engine.now) is None

    def test_sched_idle_vcpu_active_scored_with_discount(self):
        env, module, ivh = make_env()
        set_entry(module, 1, active_ms=6.0)
        occupy(env, 1, policy=Policy.IDLE)
        env.engine.run_until(20 * MSEC)
        cpu1 = env.kernel.cpus[1]
        env.kernel.cpus[1].last_heartbeat = env.engine.now
        cpu1.active_since_est = env.engine.now - MSEC  # 5 ms remaining
        score = ivh._target_score(1, cpu1, env.engine.now)
        assert score is not None
        assert score[0] == pytest.approx(5 * MSEC * 0.6, rel=0.05)

    def test_stale_active_estimate_clamped_not_rejected(self):
        env, module, ivh = make_env()
        set_entry(module, 1, active_ms=6.0)
        occupy(env, 1, policy=Policy.IDLE)
        env.engine.run_until(50 * MSEC)
        cpu1 = env.kernel.cpus[1]
        env.kernel.cpus[1].last_heartbeat = env.engine.now
        cpu1.active_since_est = env.engine.now - 100 * MSEC  # ancient
        score = ivh._target_score(1, cpu1, env.engine.now)
        assert score is not None
        assert score[0] == pytest.approx(6 * MSEC * 0.5 * 0.6, rel=0.05)


class TestLoadGateAndBackoff:
    def test_loaded_system_disables_harvesting(self):
        env, module, ivh = make_env(4)
        for c in range(4):
            set_entry(module, c)
            occupy(env, c)
        env.engine.run_until(20 * MSEC)
        assert ivh._system_loaded()

    def test_underloaded_system_enables_harvesting(self):
        env, module, ivh = make_env(4)
        for c in range(4):
            set_entry(module, c)
        occupy(env, 0)
        env.engine.run_until(20 * MSEC)
        assert not ivh._system_loaded()

    def test_success_ema_drifts_back_optimistic(self):
        env, module, ivh = make_env(2)
        set_entry(module, 0)
        occupy(env, 0)
        env.engine.run_until(10 * MSEC)
        ivh._success_ema = 0.1
        ivh._ema_touch = env.engine.now
        env.engine.run_until(env.engine.now + 8 * SEC)
        # Two half-lives of drift toward 0.85.
        ivh(env.kernel.cpus[0], env.engine.now)
        assert ivh._success_ema > 0.5
