"""CLI and tooling smoke tests (fast paths only)."""

import subprocess
import sys

import pytest

from repro.experiments.cli import main


def test_cli_run_single_experiment(capsys, tmp_path):
    out_file = tmp_path / "out.txt"
    rc = main(["run", "fig3", "--fast", "--out", str(out_file)])
    assert rc == 0
    captured = capsys.readouterr().out
    assert "fig3" in captured
    assert "shape check OK" in captured
    assert "fig3" in out_file.read_text()


def test_cli_no_check_flag(capsys):
    rc = main(["run", "fig10b", "--fast", "--no-check"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "shape check OK" not in out


def test_cli_unknown_experiment_raises():
    with pytest.raises(KeyError):
        main(["run", "fig99", "--fast"])


def test_module_entrypoint_runs():
    proc = subprocess.run(
        [sys.executable, "-m", "repro.experiments", "list"],
        capture_output=True, text=True, timeout=120)
    assert proc.returncode == 0
    assert "fig21" in proc.stdout
