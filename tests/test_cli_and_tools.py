"""CLI and tooling smoke tests (fast paths only)."""

import subprocess
import sys
import types

import pytest

from repro.experiments import parallel
from repro.experiments.cli import main
from repro.experiments.common import EXPERIMENTS, Table
from repro.experiments.units import WorkUnit


def test_cli_run_single_experiment(capsys, tmp_path):
    out_file = tmp_path / "out.txt"
    rc = main(["run", "fig3", "--fast", "--out", str(out_file)])
    assert rc == 0
    captured = capsys.readouterr().out
    assert "fig3" in captured
    assert "shape check OK" in captured
    assert "fig3" in out_file.read_text()


def test_cli_no_check_flag(capsys):
    rc = main(["run", "fig10b", "--fast", "--no-check"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "shape check OK" not in out


def test_cli_unknown_experiment_raises():
    with pytest.raises(KeyError):
        main(["run", "fig99", "--fast"])


def test_module_entrypoint_runs():
    proc = subprocess.run(
        [sys.executable, "-m", "repro.experiments", "list"],
        capture_output=True, text=True, timeout=120)
    assert proc.returncode == 0
    assert "fig21" in proc.stdout


# ----------------------------------------------------------------------
# Supervision flags: --keep-going, mid-stream abort, Ctrl-C reporting
# ----------------------------------------------------------------------
def _ok_unit(x):
    return x * 10


def _bad_unit(x):
    raise ValueError(f"boom {x}")


def _fake_assemble(fast, results):
    table = Table("figcli", "fake", ["i", "v"])
    for i, v in enumerate(results):
        table.add(i, v)
    return table


def _register(monkeypatch, exp_id, funcs):
    mod = types.ModuleType(f"_vsched_cli_{exp_id}")
    units = [WorkUnit(exp_id=exp_id, label=f"u{i}", func=f, config=(i,),
                      seed=f"{exp_id}-{i}") for i, f in enumerate(funcs)]
    mod.scenarios = lambda fast, _u=units: list(_u)
    mod.assemble = _fake_assemble
    mod.check = lambda table: None
    monkeypatch.setitem(sys.modules, f"_vsched_cli_{exp_id}", mod)
    monkeypatch.setitem(EXPERIMENTS, exp_id, f"_vsched_cli_{exp_id}")


def test_cli_keep_going_streams_healthy_and_reports(monkeypatch, capsys):
    _register(monkeypatch, "figgood", [_ok_unit, _ok_unit])
    _register(monkeypatch, "figbadx", [_bad_unit, _ok_unit])
    rc = main(["run", "figgood,figbadx", "--fast", "--jobs", "2",
               "--keep-going"])
    out = capsys.readouterr().out
    assert rc == 1
    assert "== figcli: fake ==" in out        # healthy table streamed
    assert "FAILED" in out
    assert "campaign failure report" in out
    assert "figbadx/u0: ValueError: boom 0" in out
    assert "attempts=1" in out


def test_cli_abort_still_prints_cache_summary_and_completed(
        monkeypatch, capsys, tmp_path):
    _register(monkeypatch, "figgood", [_ok_unit, _ok_unit])
    _register(monkeypatch, "figbadx", [_bad_unit])
    rc = main(["run", "figgood,figbadx", "--fast", "--jobs", "2",
               "--cache", "--cache-dir", str(tmp_path)])
    out = capsys.readouterr().out
    assert rc == 1
    assert "[cache] hits=" in out
    assert "campaign aborted" in out
    assert "experiments completed before abort: figgood" in out


def test_cli_interrupt_prints_progress_summary(monkeypatch, capsys):
    def fake_run_units(*args, **kwargs):
        raise parallel.CampaignInterrupted(3, 10)
        yield  # pragma: no cover - make it a generator

    monkeypatch.setattr(parallel, "run_units", fake_run_units)
    rc = main(["run", "fig3", "--fast", "--jobs", "2"])
    out = capsys.readouterr().out
    assert rc == 130
    assert "interrupted after 3/10 units (cached results preserved)" in out


def test_cli_retry_flags_are_plumbed(monkeypatch, capsys):
    seen = {}
    real_run_units = parallel.run_units

    def spy(*args, **kwargs):
        seen.update(kwargs)
        return real_run_units(*args, **kwargs)

    monkeypatch.setattr(parallel, "run_units", spy)
    _register(monkeypatch, "figgood", [_ok_unit, _ok_unit])
    rc = main(["run", "figgood", "--fast", "--jobs", "2",
               "--max-retries", "4", "--unit-timeout", "90"])
    assert rc == 0
    assert seen["max_retries"] == 4
    assert seen["unit_timeout"] == 90.0
    assert seen["keep_going"] is False
