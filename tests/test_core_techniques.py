"""Behavioural tests for bvs and ivh against controlled hosts."""

import numpy as np
import pytest

from repro.cluster import attach_scheduler, build_plain_vm, make_context, run_to_completion
from repro.core import VSchedConfig
from repro.guest import Channel
from repro.sim import MSEC, SEC, USEC


class TestBvs:
    def _latency_env(self):
        """8 vCPUs, symmetric capacity, vCPUs 0-3 with 2x lower latency."""
        env = build_plain_vm(8, wakeup_gran_ns=None)
        for i in range(8):
            env.machine.set_slice(i, 3 * MSEC if i < 4 else 6 * MSEC)
            env.machine.add_host_task(f"s{i}", pinned=(i,))
        return env

    def _measure(self, bvs: bool) -> float:
        env = self._latency_env()
        overrides = {"enable_ivh": False, "enable_rwc": False}
        if not bvs:
            overrides["enable_bvs"] = False
        vs = attach_scheduler(env, "vsched", overrides=overrides)
        ctx = make_context(env, vs, f"bvs-{bvs}")
        env.engine.run_until(6 * SEC)
        ch = Channel("req")
        lat = []

        def worker(api):
            while True:
                arrival = yield api.recv(ch)
                yield api.run(200 * USEC)
                lat.append(api.now() - arrival)

        for w in range(6):
            env.kernel.spawn(worker, f"w{w}", group=vs.workload_group,
                             latency_sensitive=True)
        rng = np.random.default_rng(11)
        t = env.engine.now
        for _ in range(300):
            t += int(rng.exponential(8 * MSEC))
            env.engine.call_at(t, lambda: env.kernel.send_external(ch, env.engine.now))
        env.engine.run_until(t + 500 * MSEC)
        return float(np.percentile(lat, 95))

    def test_bvs_reduces_tail_latency(self):
        base = self._measure(False)
        with_bvs = self._measure(True)
        assert with_bvs < base * 0.92, (base, with_bvs)

    def test_bvs_ignores_unmarked_and_cpu_bound_tasks(self):
        env = self._latency_env()
        vs = attach_scheduler(env, "vsched",
                              overrides={"enable_ivh": False,
                                         "enable_rwc": False})
        ctx = make_context(env, vs, "bvs-cpu")
        env.engine.run_until(6 * SEC)
        hits0 = vs.bvs.hits

        def burn(api):
            yield api.run(2 * SEC)

        env.kernel.spawn(burn, "burn", group=vs.workload_group,
                         initial_util=1000)
        env.engine.run_until(env.engine.now + 2 * SEC)
        # The CPU-bound task only goes through bvs before its utilization
        # signal ramps past the small-task threshold (it never sleeps, so
        # it wakes at most a handful of times via balancer evictions).
        assert vs.bvs.hits - hits0 < 25


class TestIvh:
    def _contended_env(self):
        env = build_plain_vm(4, host_slice_ns=5 * MSEC)
        for i in range(4):
            env.machine.add_host_task(f"c{i}", pinned=(i,))
        return env

    def _elapsed(self, ivh: bool, work_ns: int) -> float:
        env = self._contended_env()
        overrides = {"enable_bvs": False, "enable_rwc": False}
        if not ivh:
            overrides["enable_ivh"] = False
        vs = attach_scheduler(env, "vsched", overrides=overrides)
        ctx = make_context(env, vs, f"ivh-{ivh}")
        env.engine.run_until(4 * SEC)
        done = []

        def burn(api):
            yield api.run(work_ns)
            done.append(api.now())

        env.kernel.spawn(burn, "burn", group=vs.workload_group,
                         initial_util=900)
        env.engine.run_until(env.engine.now + 30 * SEC)
        assert done
        return done[0] - 4 * SEC

    def test_harvesting_speeds_up_single_thread(self):
        base = self._elapsed(False, 1 * SEC)
        harvested = self._elapsed(True, 1 * SEC)
        assert harvested < base * 0.75, (base, harvested)

    def test_ivh_abandons_late_pulls_without_corruption(self):
        env = self._contended_env()
        vs = attach_scheduler(env, "vsched",
                              overrides={"enable_bvs": False,
                                         "enable_rwc": False})
        ctx = make_context(env, vs, "ivh-abort")
        env.engine.run_until(4 * SEC)
        done = []

        def burn(api):
            yield api.run(500 * MSEC)
            done.append(api.now())

        env.kernel.spawn(burn, "burn", group=vs.workload_group,
                         initial_util=900)
        env.engine.run_until(env.engine.now + 30 * SEC)
        assert done  # the task completed despite any aborted migrations
        # Work conservation: exactly the requested work was executed.
        wl_tasks = [t for t in env.kernel.tasks if t.name == "burn"]
        assert wl_tasks[0].stats.work_done == pytest.approx(500 * MSEC, rel=1e-6)

    def test_activity_unaware_variant_is_slower(self):
        def run(aware: bool) -> float:
            env = self._contended_env()
            vs = attach_scheduler(env, "vsched", overrides={
                "enable_bvs": False, "enable_rwc": False,
                "ivh_activity_aware": aware})
            ctx = make_context(env, vs, f"ivh-aw-{aware}")
            env.engine.run_until(4 * SEC)
            done = []

            def burn(api):
                yield api.run(SEC)
                done.append(api.now())

            env.kernel.spawn(burn, "b", group=vs.workload_group,
                             initial_util=900)
            env.engine.run_until(env.engine.now + 30 * SEC)
            return done[0]

        aware = run(True)
        unaware = run(False)
        assert aware <= unaware * 1.05, (aware, unaware)
