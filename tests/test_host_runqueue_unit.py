"""Unit tests for host runqueue mechanics not covered elsewhere."""

import pytest

from repro.hw import HostTopology
from repro.hypervisor import EntityState, Machine
from repro.sim import Engine, MSEC, SEC, USEC


def make(slice_ms=4, threads=2):
    eng = Engine()
    m = Machine(eng, HostTopology(1, threads, smt=1),
                host_slice_ns=slice_ms * MSEC)
    return eng, m


class TestSliceMechanics:
    def test_set_slice_changes_rotation_period(self):
        eng, m = make(slice_ms=2)
        a = m.add_host_task("a", pinned=(0,))
        b = m.add_host_task("b", pinned=(0,))
        eng.run_until(200 * MSEC)
        resumes_small = a.preemption_resumes
        m.set_slice(0, 16 * MSEC)
        eng.run_until(600 * MSEC)
        # 400 ms at 32 ms/cycle ~ 12 resumes vs 100 ms would have been 50.
        resumes_big = a.preemption_resumes - resumes_small
        assert resumes_big < resumes_small

    def test_lone_entity_never_preempted(self):
        eng, m = make()
        a = m.add_host_task("a", pinned=(0,))
        eng.run_until(1 * SEC)
        assert a.preemption_resumes == 0
        assert a.steal_ns(eng.now) == 0


class TestWakeupPreemption:
    def test_sleeper_preempts_with_gran(self):
        eng, m = make()
        m.add_host_task("hog", pinned=(0,))
        duty = m.add_host_task("duty", pinned=(0,), duty_on_ns=1 * MSEC,
                               duty_off_ns=9 * MSEC)
        eng.run_until(1 * SEC)
        # The duty task gets its 1 ms bursts promptly: ~100 ms total.
        assert duty.run_ns(eng.now) == pytest.approx(100 * MSEC, rel=0.2)

    def test_no_preemption_when_gran_disabled(self):
        eng = Engine()
        m = Machine(eng, HostTopology(1, 1, smt=1), host_slice_ns=8 * MSEC,
                    wakeup_gran_ns=None)
        m.add_host_task("hog", pinned=(0,))
        duty = m.add_host_task("duty", pinned=(0,), duty_on_ns=1 * MSEC,
                               duty_off_ns=9 * MSEC)
        eng.run_until(1 * SEC)
        # Waking must wait out the hog's slice: it gets far fewer bursts.
        assert duty.run_ns(eng.now) < 70 * MSEC


class TestThrottleInteractions:
    def test_throttled_then_blocked_entity_wakes_cleanly(self):
        eng, m = make()
        vm = m.new_vm("vm", 1, pinned_map=[(0,)])
        v = vm.vcpu(0)
        m.set_bandwidth(v, quota_ns=2 * MSEC, period_ns=10 * MSEC)
        v.kick()
        eng.run_until(5 * MSEC)   # throttled by now
        assert v.state == EntityState.THROTTLED
        v.halt()                   # guest goes idle while throttled
        assert v.state == EntityState.BLOCKED
        eng.run_until(25 * MSEC)
        v.kick()                   # fresh quota: should run immediately
        eng.run_until(26 * MSEC)
        assert v.state == EntityState.RUNNING

    def test_kick_while_exhausted_defers_to_refresh(self):
        eng, m = make()
        vm = m.new_vm("vm", 1, pinned_map=[(0,)])
        v = vm.vcpu(0)
        m.set_bandwidth(v, quota_ns=2 * MSEC, period_ns=10 * MSEC)
        v.kick()
        eng.run_until(3 * MSEC)
        v.halt()
        v.kick()  # quota exhausted: must go THROTTLED, not QUEUED
        assert v.state == EntityState.THROTTLED
        eng.run_until(11 * MSEC)  # refresh at 10 ms; quota lasts to 12 ms
        assert v.state == EntityState.RUNNING

    def test_double_kick_is_idempotent(self):
        eng, m = make()
        vm = m.new_vm("vm", 1, pinned_map=[(0,)])
        v = vm.vcpu(0)
        v.kick()
        v.kick()
        eng.run_until(10 * MSEC)
        assert v.state == EntityState.RUNNING
        assert v.run_ns(eng.now) == pytest.approx(10 * MSEC, abs=100 * USEC)

    def test_double_halt_is_idempotent(self):
        eng, m = make()
        vm = m.new_vm("vm", 1, pinned_map=[(0,)])
        v = vm.vcpu(0)
        v.kick()
        eng.run_until(5 * MSEC)
        v.halt()
        v.halt()
        assert v.state == EntityState.BLOCKED


class TestMultiPin:
    def test_multi_thread_affinity_places_on_least_loaded(self):
        eng, m = make(threads=3)
        m.add_host_task("busy", pinned=(0,))
        t = m.add_host_task("flex", pinned=(0, 1))
        eng.run_until(100 * MSEC)
        # flex should have chosen thread 1 (idle) over thread 0 (busy).
        assert t.rq.thread.index == 1
        assert t.run_ns(eng.now) == pytest.approx(100 * MSEC, rel=0.05)
