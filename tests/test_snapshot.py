"""Snapshot/fork determinism: a forked world resumes byte-identically.

The warm-start contract (docs/INTERNALS.md §15) has three layers, each
tested here against its cold-path twin:

* engine layer — ``Engine.snapshot()/restore()`` replay the identical
  event sequence, across both backends and with tickless elision on or
  off (including the restore-then-``_catch_up`` case: elided guest ticks
  materialize before the freeze, and elision resumes after the fork);
* world layer — :class:`WorldSnapshot` freezes engine + roots in one
  deep copy, the guard rejects copy-unsafe callbacks loudly, and every
  fork is independent of its siblings and of the frozen image;
* store layer — :class:`SnapshotStore` keys on
  (code fingerprint, prefix chain, fast, backend, tickless), hits after
  one miss, and ``execute_unit`` produces identical results with
  snapshotting on and off.
"""

from __future__ import annotations

import copy

import pytest

from repro.cluster import attach_scheduler, build_plain_vm, make_context
from repro.experiments.snapstore import (
    PrefixSpec,
    SnapshotStore,
    execute_unit,
    prefix_store_key,
    process_store,
    reset_process_store,
)
from repro.sim.engine import MSEC, SEC, Engine
from repro.sim.rng import make_rng, rng_signature
from repro.sim.snapshot import SnapshotError, WorldSnapshot, guard_world
from repro.workloads import SysbenchCpu

FP = "f" * 64  # stand-in code fingerprint (key tests only)


# ----------------------------------------------------------------------
# A compact but fully real world: 4-vCPU VM, vsched, 2 stressor threads.
# Two vCPUs stay idle so tickless runs actually elide guest ticks.
# ----------------------------------------------------------------------
def _world(seed: str = "snaptest", mode: str = "vsched",
           event_work_ns: int = 500_000):
    env = build_plain_vm(4)
    env.machine.add_host_task("stress0", pinned=(0,))
    vs = attach_scheduler(env, mode)
    ctx = make_context(env, vs, seed=seed)
    wl = SysbenchCpu(threads=2, event_work_ns=event_work_ns)
    wl.start(ctx)
    return {"engine": env.engine, "env": env, "vs": vs, "ctx": ctx,
            "wl": wl}


def _sig(roots):
    """Everything a divergent fork could corrupt, in one tuple."""
    env, wl, ctx = roots["env"], roots["wl"], roots["ctx"]
    return (env.engine.now, env.engine.events_fired,
            env.engine.events_elided, wl.events,
            env.kernel.stats.migrations, rng_signature(ctx.rng))


@pytest.mark.parametrize("backend", ["heap", "wheel"])
@pytest.mark.parametrize("tickless", ["1", "0"])
class TestForkMatchesColdRun:
    def test_fork_resumes_byte_identically(self, backend, tickless,
                                           monkeypatch):
        monkeypatch.setenv("VSCHED_REPRO_ENGINE", backend)
        monkeypatch.setenv("VSCHED_REPRO_TICKLESS", tickless)

        cold = _world()
        cold["engine"].run_until(2 * SEC)
        want = _sig(cold)

        warm = _world()
        warm["engine"].run_until(1 * SEC)
        snap = WorldSnapshot(warm["engine"], warm)
        at_freeze = _sig(warm)

        # Two sibling forks, both run to the cold horizon.
        for _ in range(2):
            _eng, fork = snap.fork()
            fork["engine"].run_until(2 * SEC)
            assert _sig(fork) == want
        # The original world and the frozen image are untouched by the
        # forks' divergence.
        assert _sig(warm) == at_freeze


@pytest.mark.parametrize("backend", ["heap", "wheel"])
class TestForkResumesElision:
    def test_elided_ticks_survive_freeze_and_fork(self, backend,
                                                  monkeypatch):
        # The restore-then-_catch_up case: freezing materializes every
        # elided tick (WorldSnapshot calls engine.materialize()), and the
        # fork keeps eliding from that baseline.  A long-chunk CFS world
        # elides nearly every tick (vsched's 1 ms prober cadence would
        # keep the tick horizon short), so the counters prove the span
        # machinery really ran on both sides of the freeze.
        monkeypatch.setenv("VSCHED_REPRO_ENGINE", backend)
        monkeypatch.setenv("VSCHED_REPRO_TICKLESS", "1")

        cold = _world(mode="cfs", event_work_ns=20 * MSEC)
        cold["engine"].run_until(2 * SEC)
        want = _sig(cold)

        warm = _world(mode="cfs", event_work_ns=20 * MSEC)
        warm["engine"].run_until(1 * SEC)
        snap = WorldSnapshot(warm["engine"], warm)
        at_freeze = _sig(warm)
        assert want[2] > at_freeze[2] > 0  # elision on both sides

        _eng, fork = snap.fork()
        fork["engine"].run_until(2 * SEC)
        assert _sig(fork) == want


class TestEngineRestore:
    def test_restore_replays_identical_event_sequence(self):
        roots = _world()
        eng = roots["engine"]
        eng.run_until(1 * SEC)
        frozen = eng.snapshot()
        eng.run_until(2 * SEC)
        first = (eng.now, eng.events_fired, eng.events_elided)

        eng.restore(frozen)
        assert (eng.now, eng.events_fired, eng.events_elided) != first
        eng.run_until(2 * SEC)
        assert (eng.now, eng.events_fired, eng.events_elided) == first

    def test_snapshot_refused_while_running(self):
        eng = Engine()
        seen = []

        def freeze_mid_run():
            with pytest.raises(RuntimeError, match="running"):
                eng.snapshot()
            seen.append("tried")

        eng.call_at(10, freeze_mid_run)
        eng.run_until(20)
        assert seen == ["tried"]


class TestGuard:
    def test_closure_callback_is_named(self):
        eng = Engine()
        leak = []
        eng.call_at(1000, lambda: leak.append(1))
        with pytest.raises(SnapshotError) as exc:
            guard_world(eng)
        assert "closure" in str(exc.value)
        assert "t=1000" in str(exc.value)

    def test_all_offenders_reported_at_once(self):
        eng = Engine()
        a, b = [], []
        eng.call_at(1, lambda: a.append(1))
        eng.call_at(2, lambda: b.append(1))
        eng.call_at(3, b.append)  # bound builtin: shares the receiver
        with pytest.raises(SnapshotError) as exc:
            guard_world(eng)
        msg = str(exc.value)
        assert msg.count("closure") == 2
        assert "bound builtin" in msg

    def test_cancelled_offenders_are_ignored(self):
        eng = Engine()
        ev = eng.call_at(1, lambda: None)
        ev.cancel()
        guard_world(eng)  # does not raise

    def test_real_world_is_guard_clean(self):
        roots = _world()
        roots["engine"].run_until(1 * SEC)
        guard_world(roots["engine"])  # does not raise


class TestRngFork:
    def test_fork_copies_stream_then_diverges_identically(self):
        rng = make_rng("snap-rng")
        rng.normal()
        sig = rng_signature(rng)
        clone = copy.deepcopy(rng)
        assert rng_signature(clone) == sig
        assert clone.normal() == rng.normal()
        assert rng_signature(clone) == rng_signature(rng) != sig


# ----------------------------------------------------------------------
# Store keying and accounting, on a synthetic (cheap) prefix.
# ----------------------------------------------------------------------
class _Ticker:
    """Periodic bound-method event source — deep-copy safe by design."""

    def __init__(self, engine: Engine, period: int):
        self.engine = engine
        self.period = period
        self.count = 0
        engine.call_in(period, self._tick)

    def _tick(self):
        self.count += 1
        self.engine.call_in(self.period, self._tick)


def _ticker_prefix(period: int):
    eng = Engine()
    ticker = _Ticker(eng, period)
    eng.run_until(10 * period)
    return {"engine": eng, "ticker": ticker}


def _ticker_extend(roots, extra_periods: int):
    eng = roots["engine"]
    eng.run_until(eng.now + extra_periods * roots["ticker"].period)
    return roots

def _ticker_unit(roots, horizon: int):
    roots["engine"].run_until(horizon)
    return (roots["engine"].now, roots["ticker"].count)


_SPEC = PrefixSpec(key="ticker", func=_ticker_prefix, config=(100,),
                   seed="t-100")


class TestStoreKey:
    def test_chain_fast_and_fingerprint_isolate(self):
        base = prefix_store_key(_SPEC, True, FP)
        assert prefix_store_key(_SPEC, True, FP) == base
        assert prefix_store_key(_SPEC, False, FP) != base
        assert prefix_store_key(_SPEC, True, "a" * 64) != base
        other = PrefixSpec(key="ticker", func=_ticker_prefix, config=(200,),
                           seed="t-100")
        assert prefix_store_key(other, True, FP) != base
        chained = PrefixSpec(key="ext", func=_ticker_extend, config=(5,),
                             parent=_SPEC)
        assert prefix_store_key(chained, True, FP) != base

    def test_engine_mode_knobs_isolate(self, monkeypatch):
        # A frozen world bakes the backend and elision mode in at
        # construction; an in-process env toggle must miss, not fork a
        # world built under the other mode.
        monkeypatch.delenv("VSCHED_REPRO_ENGINE", raising=False)
        monkeypatch.delenv("VSCHED_REPRO_TICKLESS", raising=False)
        base = prefix_store_key(_SPEC, True, FP)
        monkeypatch.setenv("VSCHED_REPRO_ENGINE", "wheel")
        assert prefix_store_key(_SPEC, True, FP) != base
        monkeypatch.delenv("VSCHED_REPRO_ENGINE")
        monkeypatch.setenv("VSCHED_REPRO_TICKLESS", "0")
        assert prefix_store_key(_SPEC, True, FP) != base


class TestSnapshotStore:
    def test_miss_then_hit_accounting(self):
        store = SnapshotStore()
        store.fork(_SPEC, True, FP)
        store.fork(_SPEC, True, FP)
        assert (store.misses, store.hits, store.forks) == (1, 1, 2)
        assert store.build_seconds > 0
        assert store.saved_seconds > 0

    def test_forks_are_independent(self):
        store = SnapshotStore()
        a = store.fork(_SPEC, True, FP)
        b = store.fork(_SPEC, True, FP)
        a["engine"].run_until(20_000)
        assert b["ticker"].count == 10  # sibling unmoved by a's divergence
        b["engine"].run_until(20_000)
        assert a["ticker"].count == b["ticker"].count == 200

    def test_chained_prefix_forks_parent_once(self):
        store = SnapshotStore()
        chained = PrefixSpec(key="ext", func=_ticker_extend, config=(5,),
                             parent=_SPEC)
        roots = store.fork(chained, True, FP)
        assert roots["engine"].now == 1500
        assert roots["ticker"].count == 15
        # parent miss + chained miss; one fork to extend, one to hand out.
        assert (store.misses, store.forks) == (2, 2)
        store.fork(chained, True, FP)
        assert (store.misses, store.hits, store.forks) == (2, 1, 3)


class TestExecuteUnit:
    @pytest.fixture(autouse=True)
    def fresh_store(self):
        reset_process_store()
        yield
        reset_process_store()

    def test_prefixless_unit_is_plain_call(self):
        assert execute_unit(int, ("7",), None, True) == 7

    def test_on_and_off_paths_agree(self, monkeypatch):
        monkeypatch.setenv("VSCHED_REPRO_SNAPSHOT", "1")
        forked = [execute_unit(_ticker_unit, (h,), _SPEC, True)
                  for h in (2_000, 3_000)]
        on_store = process_store()
        assert (on_store.hits, on_store.misses) == (1, 1)
        assert on_store.cold_builds == 0

        reset_process_store()
        monkeypatch.setenv("VSCHED_REPRO_SNAPSHOT", "0")
        cold = [execute_unit(_ticker_unit, (h,), _SPEC, True)
                for h in (2_000, 3_000)]
        off_store = process_store()
        assert off_store.cold_builds == 2
        assert (off_store.hits, off_store.misses, off_store.forks) == \
            (0, 0, 0)
        assert forked == cold == [(2_000, 20), (3_000, 30)]
