"""Regression tests for scheduler bugs found (and fixed) during development.

Each test pins a specific failure mode:

1. stale ``min_vruntime`` letting a waking entity monopolize the CPU;
2. dispatcher re-entrancy corrupting ``current`` during the interpreter;
3. active-balance hand-off losing a task (RUNNING with no CPU);
4. ``wake()`` discarding the residual work of a task evicted mid-``Run``;
5. new-idle balance stealing an ivh-migrated task straight back;
6. vcap probers phase-locking every core's co-runner schedule.
"""

import pytest

from repro.cluster import attach_scheduler, build_plain_vm, make_context, run_to_completion
from repro.guest import Channel, GuestKernel, Mutex, Policy, TaskState
from repro.hw import HostTopology
from repro.hypervisor import Machine
from repro.sim import Engine, MSEC, SEC, USEC


def test_min_vruntime_tracks_long_running_entity():
    """A host entity that runs for a long time without rescheduling must
    not leave min_vruntime stale: a newly woken competitor would otherwise
    inherit unbounded credit and monopolize the thread."""
    eng = Engine()
    m = Machine(eng, HostTopology(1, 1, smt=1), host_slice_ns=4 * MSEC)
    a = m.add_host_task("a", pinned=(0,))
    eng.run_until(900 * MSEC)  # a runs alone, no rescheduling at all
    b = m.add_host_task("b", pinned=(0,))
    t0 = eng.now
    eng.run_until(t0 + 100 * MSEC)
    # b must not get more than ~half plus one sleeper-credit slice.
    assert b.run_ns(eng.now) - b.run_ns(t0) < 60 * MSEC


def test_unlock_wake_onto_own_cpu_does_not_corrupt_current():
    """A task releasing a lock wakes a waiter that may be placed on the
    *same* CPU; the wake path re-entering the dispatcher used to clobber
    ``current`` and leave a RUNNING task with no CPU."""
    env = build_plain_vm(1)
    m = Mutex("m")
    finished = []

    def body(name):
        def gen(api):
            for _ in range(30):
                yield api.lock(m)
                yield api.run(200 * USEC)
                yield api.unlock(m)
                yield api.run(100 * USEC)
            finished.append(name)
        return gen

    for i in range(3):
        env.kernel.spawn(body(i), f"t{i}", cpu=0, allowed=(0,))
    env.engine.run_until(5 * SEC)
    assert len(finished) == 3
    # Invariant: nobody is RUNNING without being some CPU's current.
    for t in env.kernel.tasks:
        if t.state == TaskState.RUNNING:
            assert t.cpu is not None and t.cpu.current is t


def test_no_task_is_running_without_a_cpu_under_churn():
    """Heavy balancing churn (pipelines + contention + misfit pushes) must
    never leave a task in the RUNNING state unattached."""
    env = build_plain_vm(8, host_slice_ns=4 * MSEC)
    from repro.hypervisor.entity import weight_for_nice
    env.machine.add_host_task("hog", weight=weight_for_nice(-10), pinned=(0,))
    vs = attach_scheduler(env, "vsched")
    ctx = make_context(env, vs, "churn")
    env.engine.run_until(6 * SEC)
    from repro.workloads import build_parsec
    wl = build_parsec("dedup", threads=8, scale=0.06)
    wl.start(ctx)
    bad = []
    stop = env.engine.now + 3 * SEC

    def check():
        for t in wl.tasks:
            if t.state == TaskState.RUNNING:
                if t.cpu is None or t.cpu.current is not t:
                    bad.append((env.engine.now, t.name))
        if env.engine.now < stop and not wl.done:
            env.engine.call_in(3 * MSEC, check)

    env.engine.call_in(3 * MSEC, check)
    env.engine.run_until(stop)
    assert not bad


def test_eviction_mid_run_preserves_remaining_work():
    """A task evicted from its CPU in the middle of a Run action (cpuset
    change) must finish the remaining work, not skip it."""
    env = build_plain_vm(4)
    g = env.kernel.new_group("g")
    done = []

    def body(api):
        yield api.run(100 * MSEC)
        done.append(api.now())

    t = env.kernel.spawn(body, "t", group=g, cpu=0)
    env.engine.run_until(30 * MSEC)
    assert not done
    g.set_allowed(frozenset({3}))
    env.kernel.apply_cpuset(g)
    env.engine.run_until(SEC)
    assert done
    # 30 ms ran on CPU0 + ~70 ms on CPU3 (+ migration slack).
    assert done[0] == pytest.approx(100 * MSEC, rel=0.05)
    assert t.stats.work_done >= 100 * MSEC - 1


def test_ivh_migration_not_stolen_back_by_newidle_balance():
    """After an ivh migration the source goes idle; its new-idle balance
    must not immediately steal the task back (cache-hot cooldown)."""
    env = build_plain_vm(4, host_slice_ns=5 * MSEC)
    for i in range(4):
        env.machine.add_host_task(f"c{i}", pinned=(i,))
    vs = attach_scheduler(env, "vsched")
    ctx = make_context(env, vs, "steal-back")
    env.engine.run_until(4 * SEC)
    done = []

    def burn(api):
        yield api.run(500 * MSEC)
        done.append(api.now())

    env.kernel.spawn(burn, "burn", group=vs.workload_group, initial_util=900)
    env.engine.run_until(30 * SEC)
    assert done
    # Harvesting must actually pay off — if migrations bounce straight
    # back, elapsed degenerates to the ~1 s stalled baseline.
    elapsed = done[0] - 4 * SEC
    assert elapsed < 750 * MSEC
    assert env.kernel.stats.ivh_migrations > 20


def test_vcap_windows_do_not_phase_lock_corunners():
    """Prober spawns are staggered: co-runner activity across cores must
    not end up synchronized (which would make harvesting impossible and
    is an artifact, not physics)."""
    env = build_plain_vm(4, host_slice_ns=5 * MSEC)
    for i in range(4):
        env.machine.add_host_task(f"c{i}", pinned=(i,))
    vs = attach_scheduler(env, "enhanced")
    ctx = make_context(env, vs, "lockstep")
    env.engine.run_until(5 * SEC + 50 * MSEC)  # inside a sampling window
    # Sample joint activity: with staggered probers, "all four vCPUs
    # simultaneously inactive" should be rare.
    all_inactive = 0
    samples = 0

    def sample():
        nonlocal all_inactive, samples
        samples += 1
        if not any(v.active for v in env.vm.vcpus):
            all_inactive += 1
        if samples < 80:
            env.engine.call_in(USEC * 700, sample)

    env.engine.call_in(0, sample)
    env.engine.run_until(env.engine.now + 70 * MSEC)
    assert samples >= 80
    assert all_inactive < samples * 0.5


def test_wake_affinity_domain_load_is_capacity_normalized():
    """fig19 regression: once vtop installs real LLC domains *and* vcap
    reports real per-vCPU capacities, raw task counts misrank domains —
    wake affinity then crams communicating tasks onto a low-capacity
    socket that merely *queues* fewer tasks.  Domain load must be the
    capacity-normalized comparison of update_sg_lb_stats."""
    from repro.guest.domains import DomainLevel, SchedDomains

    env = build_plain_vm(8, sockets=2)
    env.kernel.domains = SchedDomains(8, [
        DomainLevel("llc", [range(0, 4), range(4, 8)]),
        DomainLevel("machine", [range(8)]),
    ])
    env.kernel.capacity_provider = lambda c: 1024.0 if c < 4 else 256.0

    def spin(api):
        while True:
            yield api.run(MSEC)

    # Two tasks queued in the strong socket, one in the weak socket.
    env.kernel.spawn(spin, "s0", cpu=0, allowed=(0,))
    env.kernel.spawn(spin, "s1", cpu=1, allowed=(1,))
    env.kernel.spawn(spin, "w0", cpu=4, allowed=(4,))
    env.engine.run_until(10 * MSEC)
    placer = env.kernel.placer
    strong = env.kernel.domains.llc_domain(0)
    weak = env.kernel.domains.llc_domain(4)
    # Raw counts say the strong socket (2 tasks) is busier than the weak
    # one (1 task); per unit of capacity it is the other way around.
    assert placer._domain_load(weak) > placer._domain_load(strong)


def test_wake_affinity_domain_load_reduces_to_counts_when_uniform():
    """With uniform capacities the normalized load must equal the raw
    task count — the CFS-baseline behaviour fig18/fig19 rely on."""
    from repro.guest.domains import DomainLevel, SchedDomains

    env = build_plain_vm(8, sockets=2)
    env.kernel.domains = SchedDomains(8, [
        DomainLevel("llc", [range(0, 4), range(4, 8)]),
        DomainLevel("machine", [range(8)]),
    ])

    def spin(api):
        while True:
            yield api.run(MSEC)

    env.kernel.spawn(spin, "s0", cpu=0, allowed=(0,))
    env.kernel.spawn(spin, "s1", cpu=1, allowed=(1,))
    env.engine.run_until(5 * MSEC)
    placer = env.kernel.placer
    strong = env.kernel.domains.llc_domain(0)
    raw = sum(env.kernel.cpus[c].rq.nr_total() for c in strong)
    assert placer._domain_load(strong) == pytest.approx(raw)
