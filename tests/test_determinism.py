"""Regression tests for the determinism contract (docs/INTERNALS.md §8).

Every scenario seeds all of its randomness from an explicit string, and the
engine breaks same-instant ties by insertion order, so an experiment must
render byte-identically run over run — and a flat-scheduled, pooled, or
warm-cache campaign must render byte-identically to a serial one.
"""

from repro.experiments import parallel
from repro.experiments.cache import ResultCache
from repro.experiments.common import run_experiment
from repro.experiments.fig02_vcpu_latency import _one_run


def test_fig2_fast_is_reproducible():
    first = run_experiment("fig2", fast=True).render()
    second = run_experiment("fig2", fast=True).render()
    assert first == second


def test_fig2_parallel_matches_serial():
    serial = run_experiment("fig2", fast=True).render()
    parallel.set_default_jobs(2)
    try:
        fanned = run_experiment("fig2", fast=True).render()
    finally:
        parallel.set_default_jobs(None)
    assert fanned == serial


def test_run_scenarios_preserves_input_order():
    configs = [("img-dnn", 4, False, 8, 40), ("img-dnn", 8, False, 8, 40),
               ("silo", 4, True, 8, 40)]
    serial = [_one_run(*cfg) for cfg in configs]
    fanned = parallel.run_scenarios(_one_run, configs, jobs=2)
    assert fanned == serial


def test_run_scenarios_serial_paths():
    assert parallel.run_scenarios(lambda: 7, [()], jobs=4) == [7]
    assert parallel.run_scenarios(lambda a, b: a + b,
                                  [(1, 2), (3, 4)], jobs=1) == [3, 7]
    assert parallel.run_scenarios(lambda x: x, [], jobs=3) == []


def test_flat_scheduler_matches_serial():
    """Unit-level fan-out renders byte-identically to a plain run()."""
    serial = run_experiment("fig2", fast=True).render()
    pooled, = parallel.run_units(["fig2"], fast=True, check=False, jobs=2)
    assert pooled.rendered == serial
    assert pooled.n_units > 1  # fig2 really decomposed


def test_warm_cache_renders_identically(tmp_path):
    """Serial, pooled and warm-cache runs are byte-identical; the warm
    rerun of an unchanged tree is 100% unit cache hits."""
    serial = run_experiment("fig2", fast=True).render()
    cold_cache = ResultCache(str(tmp_path))
    cold, = parallel.run_units(["fig2"], fast=True, check=False, jobs=2,
                               cache=cold_cache)
    assert cold.rendered == serial
    assert cold_cache.hits == 0 and cold_cache.misses == cold.n_units
    warm_cache = ResultCache(str(tmp_path))
    warm, = parallel.run_units(["fig2"], fast=True, check=False, jobs=2,
                               cache=warm_cache)
    assert warm.rendered == serial
    assert warm.cache_hits == warm.n_units
    assert warm_cache.misses == 0 and warm_cache.hits == warm.n_units
