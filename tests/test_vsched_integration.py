"""End-to-end integration tests: the full vSched stack under load.

These check *safety* properties — no lost work, no stuck tasks, masks
respected — with every feature enabled at once, on the paper's VM types.
"""

import pytest

from repro.cluster import (
    attach_scheduler,
    build_hpvm,
    build_plain_vm,
    build_rcvm,
    make_context,
    run_to_completion,
)
from repro.guest.task import TaskState
from repro.sim import MSEC, SEC
from repro.workloads import (
    CpuBoundJob,
    Hackbench,
    LatencyWorkload,
    build_parsec,
)


class TestFullStackSafety:
    @pytest.mark.parametrize("builder,threads", [(build_rcvm, 12),
                                                 (build_hpvm, 16)])
    def test_cpu_bound_work_is_conserved(self, builder, threads):
        env = builder()
        vs = attach_scheduler(env, "vsched")
        ctx = make_context(env, vs, "safety")
        env.engine.run_until(8 * SEC)
        wl = CpuBoundJob(threads=threads, work_per_thread_ns=150 * MSEC)
        run_to_completion(env, [wl], ctx, timeout_ns=300 * SEC)
        for t in wl.tasks:
            # Balancer migrations charge a small cache-refill cost that is
            # executed as extra work; nothing may be lost.
            assert t.stats.work_done >= 150 * MSEC - 1
            assert t.stats.work_done < 150 * MSEC * 1.03
            assert t.state == TaskState.EXITED

    def test_mixed_workloads_complete_under_full_vsched(self):
        env = build_rcvm()
        vs = attach_scheduler(env, "vsched")
        ctx = make_context(env, vs, "mixed")
        env.engine.run_until(8 * SEC)
        jobs = [
            build_parsec("dedup", threads=6, scale=0.05),
            LatencyWorkload("silo", workers=4, n_requests=80),
            Hackbench("hb", groups=1, pairs_per_group=2, messages=40),
        ]
        run_to_completion(env, jobs, ctx, timeout_ns=300 * SEC)
        assert all(j.done for j in jobs)

    def test_rwc_mask_is_respected_under_load(self):
        env = build_rcvm()
        vs = attach_scheduler(env, "vsched")
        ctx = make_context(env, vs, "mask")
        env.engine.run_until(10 * SEC)
        hidden = vs.rwc.hidden_cpus()
        assert hidden, "rcvm must have hidden vCPUs (stacked pair at least)"
        violations = []
        wl = CpuBoundJob(threads=12, work_per_thread_ns=200 * MSEC)
        wl.start(ctx)
        stop = env.engine.now + 2 * SEC

        def check():
            banned = vs.rwc.banned_stacked
            for t in wl.tasks:
                if (t.state == TaskState.RUNNING and t.cpu is not None
                        and t.cpu.index in banned):
                    violations.append((env.engine.now, t.name, t.cpu.index))
            if env.engine.now < stop:
                env.engine.call_in(5 * MSEC, check)

        env.engine.call_in(5 * MSEC, check)
        env.engine.run_until(stop)
        assert not violations

    def test_no_task_left_behind_after_long_run(self):
        """After all workloads finish, no workload task is stuck RUNNABLE
        or RUNNING anywhere (catches lost-task scheduler bugs)."""
        env = build_plain_vm(8, host_slice_ns=5 * MSEC)
        for i in range(8):
            env.machine.add_host_task(f"c{i}", pinned=(i,))
        vs = attach_scheduler(env, "vsched")
        ctx = make_context(env, vs, "leak")
        env.engine.run_until(6 * SEC)
        wl = build_parsec("ocean_cp", threads=8, scale=0.05)
        run_to_completion(env, [wl], ctx, timeout_ns=300 * SEC)
        env.engine.run_until(env.engine.now + SEC)
        for t in wl.tasks:
            assert t.state == TaskState.EXITED, t

    def test_vsched_stop_detaches_hooks(self):
        env = build_plain_vm(4)
        vs = attach_scheduler(env, "vsched")
        assert env.kernel.select_rq_hook is not None
        assert env.kernel.tick_hook is not None
        vs.stop()
        assert env.kernel.select_rq_hook is None
        assert env.kernel.tick_hook is None

    def test_deterministic_across_runs(self):
        """Identical seeds give bit-identical results."""
        def once():
            env = build_rcvm()
            vs = attach_scheduler(env, "vsched")
            ctx = make_context(env, vs, "det")
            env.engine.run_until(6 * SEC)
            wl = LatencyWorkload("masstree", workers=6, n_requests=60)
            run_to_completion(env, [wl], ctx, timeout_ns=300 * SEC)
            return [(r.arrival, r.start, r.finish) for r in wl.requests]

        assert once() == once()
