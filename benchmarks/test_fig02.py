"""Benchmark: regenerate Figure 2 - impact of vCPU latency on tail latency.

Runs the experiment in fast mode under pytest-benchmark (one round — the
experiment is itself a full simulation campaign), prints the regenerated
table, and asserts the paper's qualitative shape.  Use
``python -m repro.experiments run fig2`` for the full-size version.
"""

import pytest

from repro.experiments.common import check_experiment, run_experiment

RESULTS = {}


@pytest.mark.benchmark(group="fig2")
def test_fig02(benchmark):
    table = benchmark.pedantic(
        run_experiment, args=("fig2",), kwargs={"fast": True},
        rounds=1, iterations=1)
    RESULTS["fig2"] = table
    print()
    print(table.render())
    check_experiment("fig2", table)
