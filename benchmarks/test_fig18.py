"""Benchmark: regenerate Figure 18 - overall improvement on rcvm.

Runs the experiment in fast mode under pytest-benchmark (one round — the
experiment is itself a full simulation campaign), prints the regenerated
table, and asserts the paper's qualitative shape.  Use
``python -m repro.experiments run fig18`` for the full-size version.
"""

import pytest

from repro.experiments.common import check_experiment, run_experiment

RESULTS = {}


@pytest.mark.benchmark(group="fig18")
def test_fig18(benchmark):
    table = benchmark.pedantic(
        run_experiment, args=("fig18",), kwargs={"fast": True},
        rounds=1, iterations=1)
    RESULTS["fig18"] = table
    print()
    print(table.render())
    check_experiment("fig18", table)
