"""Benchmark: regenerate Figure 21 - vSched overhead on a dedicated VM.

Runs the experiment in fast mode under pytest-benchmark (one round — the
experiment is itself a full simulation campaign), prints the regenerated
table, and asserts the paper's qualitative shape.  Use
``python -m repro.experiments run fig21`` for the full-size version.
"""

import pytest

from repro.experiments.common import check_experiment, run_experiment

RESULTS = {}


@pytest.mark.benchmark(group="fig21")
def test_fig21(benchmark):
    table = benchmark.pedantic(
        run_experiment, args=("fig21",), kwargs={"fast": True},
        rounds=1, iterations=1)
    RESULTS["fig21"] = table
    print()
    print(table.render())
    check_experiment("fig21", table)
