"""Benchmark: regenerate Figure 3 - stalled running task vs proactive migration.

Runs the experiment in fast mode under pytest-benchmark (one round — the
experiment is itself a full simulation campaign), prints the regenerated
table, and asserts the paper's qualitative shape.  Use
``python -m repro.experiments run fig3`` for the full-size version.
"""

import pytest

from repro.experiments.common import check_experiment, run_experiment

RESULTS = {}


@pytest.mark.benchmark(group="fig3")
def test_fig03(benchmark):
    table = benchmark.pedantic(
        run_experiment, args=("fig3",), kwargs={"fast": True},
        rounds=1, iterations=1)
    RESULTS["fig3"] = table
    print()
    print(table.render())
    check_experiment("fig3", table)
