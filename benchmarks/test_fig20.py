"""Benchmark: regenerate Figure 20 - vSched cost (cycles and CPS).

Runs the experiment in fast mode under pytest-benchmark (one round — the
experiment is itself a full simulation campaign), prints the regenerated
table, and asserts the paper's qualitative shape.  Use
``python -m repro.experiments run fig20`` for the full-size version.
"""

import pytest

from repro.experiments.common import check_experiment, run_experiment

RESULTS = {}


@pytest.mark.benchmark(group="fig20")
def test_fig20(benchmark):
    table = benchmark.pedantic(
        run_experiment, args=("fig20",), kwargs={"fast": True},
        rounds=1, iterations=1)
    RESULTS["fig20"] = table
    print()
    print(table.render())
    check_experiment("fig20", table)
