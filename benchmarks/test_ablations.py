"""Ablation benches: what each vSched technique contributes.

Beyond the paper's own figures, these ablations isolate the design choices
DESIGN.md calls out: each scenario is chosen so exactly one technique
matters, and the bench asserts that removing it forfeits the win.
"""

import pytest

from repro.cluster import (
    attach_scheduler,
    build_plain_vm,
    build_rcvm,
    make_context,
    run_to_completion,
)
from repro.sim import MSEC, SEC
from repro.workloads import LatencyWorkload, build_parsec


def _harvest_elapsed(overrides):
    """1 CPU-bound thread on a 4-vCPU VM at 50% share: ivh's home turf."""
    env = build_plain_vm(4, host_slice_ns=5 * MSEC)
    for i in range(4):
        env.machine.add_host_task(f"c{i}", pinned=(i,))
    vs = attach_scheduler(env, "vsched", overrides=overrides)
    ctx = make_context(env, vs, f"abl-harvest-{sorted(overrides.items())}")
    env.engine.run_until(4 * SEC)
    done = []

    def burn(api):
        yield api.run(1 * SEC)
        done.append(api.now())

    env.kernel.spawn(burn, "burn", group=vs.workload_group, initial_util=900)
    env.engine.run_until(40 * SEC)
    assert done
    return done[0] - 4 * SEC


def _latency_p95(overrides):
    """Asymmetric-latency VM serving masstree: bvs's home turf."""
    env = build_plain_vm(8, wakeup_gran_ns=None)
    for i in range(8):
        env.machine.set_slice(i, 3 * MSEC if i < 4 else 6 * MSEC)
        env.machine.add_host_task(f"s{i}", pinned=(i,))
    vs = attach_scheduler(env, "vsched", overrides=overrides)
    ctx = make_context(env, vs, f"abl-lat-{sorted(overrides.items())}")
    env.engine.run_until(6 * SEC)
    wl = LatencyWorkload("masstree", workers=6, n_requests=150)
    run_to_completion(env, [wl], ctx, timeout_ns=240 * SEC)
    return wl.p95_ns()


def _stacked_elapsed(overrides):
    """Sync-intensive job on a fully stacked VM: rwc's unique win is hiding
    one vCPU of each stack (capacity-aware balancing already dodges
    stragglers, but only rwc prevents double-scheduling on stacks)."""
    from repro.guest.kernel import GuestKernel
    from repro.cluster.vmtypes import VmEnvironment
    from repro.hw.topology import HostTopology
    from repro.hypervisor.machine import Machine
    from repro.sim.engine import Engine

    engine = Engine()
    machine = Machine(engine, HostTopology(1, 8, smt=1))
    pins = [(i // 2,) for i in range(16)]  # vCPUs 2k,2k+1 stacked
    vm = machine.new_vm("vm", 16, pinned_map=pins)
    kernel = GuestKernel(vm)
    env = VmEnvironment(engine, machine, vm, kernel,
                        stacked_pairs=[(2 * k, 2 * k + 1) for k in range(8)])
    vs = attach_scheduler(env, "vsched", overrides=overrides)
    ctx = make_context(env, vs, f"abl-stack-{sorted(overrides.items())}")
    env.engine.run_until(9 * SEC)
    wl = build_parsec("canneal", threads=16, scale=0.1)
    run_to_completion(env, [wl], ctx, timeout_ns=600 * SEC)
    return wl.elapsed_ns()


@pytest.mark.benchmark(group="ablation")
def test_ablate_ivh(benchmark):
    def run():
        full = _harvest_elapsed({})
        no_ivh = _harvest_elapsed({"enable_ivh": False})
        return full, no_ivh

    full, no_ivh = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nharvesting scenario: vSched {full / 1e6:.0f} ms, "
          f"without ivh {no_ivh / 1e6:.0f} ms")
    assert full < no_ivh * 0.75  # ivh carries the harvesting win


@pytest.mark.benchmark(group="ablation")
def test_ablate_bvs(benchmark):
    def run():
        full = _latency_p95({"enable_ivh": False, "enable_rwc": False})
        no_bvs = _latency_p95({"enable_ivh": False, "enable_rwc": False,
                               "enable_bvs": False})
        return full, no_bvs

    full, no_bvs = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nasymmetric-latency scenario: p95 with bvs {full / 1e6:.2f} ms, "
          f"without {no_bvs / 1e6:.2f} ms")
    assert full < no_bvs * 0.92  # bvs carries the tail-latency win


@pytest.mark.benchmark(group="ablation")
def test_ablate_rwc(benchmark):
    def run():
        full = _stacked_elapsed({"enable_ivh": False, "enable_bvs": False})
        no_rwc = _stacked_elapsed({"enable_ivh": False, "enable_bvs": False,
                                   "enable_rwc": False})
        return full, no_rwc

    full, no_rwc = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nstacked-VM scenario: with rwc {full / 1e6:.0f} ms, "
          f"without {no_rwc / 1e6:.0f} ms")
    assert full < no_rwc * 0.92  # hiding one vCPU per stack carries the win
