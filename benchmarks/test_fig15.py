"""Benchmark: regenerate Figure 15 - throughput improvement with ivh.

Runs the experiment in fast mode under pytest-benchmark (one round — the
experiment is itself a full simulation campaign), prints the regenerated
table, and asserts the paper's qualitative shape.  Use
``python -m repro.experiments run fig15`` for the full-size version.
"""

import pytest

from repro.experiments.common import check_experiment, run_experiment

RESULTS = {}


@pytest.mark.benchmark(group="fig15")
def test_fig15(benchmark):
    table = benchmark.pedantic(
        run_experiment, args=("fig15",), kwargs={"fast": True},
        rounds=1, iterations=1)
    RESULTS["fig15"] = table
    print()
    print(table.render())
    check_experiment("fig15", table)
