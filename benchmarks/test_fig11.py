"""Benchmark: regenerate Figure 11 - vcap effect on capacity-aware scheduling.

Runs the experiment in fast mode under pytest-benchmark (one round — the
experiment is itself a full simulation campaign), prints the regenerated
table, and asserts the paper's qualitative shape.  Use
``python -m repro.experiments run fig11`` for the full-size version.
"""

import pytest

from repro.experiments.common import check_experiment, run_experiment

RESULTS = {}


@pytest.mark.benchmark(group="fig11")
def test_fig11(benchmark):
    table = benchmark.pedantic(
        run_experiment, args=("fig11",), kwargs={"fast": True},
        rounds=1, iterations=1)
    RESULTS["fig11"] = table
    print()
    print(table.render())
    check_experiment("fig11", table)
