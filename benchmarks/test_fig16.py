"""Benchmark: regenerate Figure 16 - adaptability to vCPU changes.

Runs the experiment in fast mode under pytest-benchmark (one round — the
experiment is itself a full simulation campaign), prints the regenerated
table, and asserts the paper's qualitative shape.  Use
``python -m repro.experiments run fig16`` for the full-size version.
"""

import pytest

from repro.experiments.common import check_experiment, run_experiment

RESULTS = {}


@pytest.mark.benchmark(group="fig16")
def test_fig16(benchmark):
    table = benchmark.pedantic(
        run_experiment, args=("fig16",), kwargs={"fast": True},
        rounds=1, iterations=1)
    RESULTS["fig16"] = table
    print()
    print(table.render())
    check_experiment("fig16", table)
