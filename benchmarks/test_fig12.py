"""Benchmark: regenerate Figure 12 - SMT-aware scheduling with vtop.

Runs the experiment in fast mode under pytest-benchmark (one round — the
experiment is itself a full simulation campaign), prints the regenerated
table, and asserts the paper's qualitative shape.  Use
``python -m repro.experiments run fig12`` for the full-size version.
"""

import pytest

from repro.experiments.common import check_experiment, run_experiment

RESULTS = {}


@pytest.mark.benchmark(group="fig12")
def test_fig12(benchmark):
    table = benchmark.pedantic(
        run_experiment, args=("fig12",), kwargs={"fast": True},
        rounds=1, iterations=1)
    RESULTS["fig12"] = table
    print()
    print(table.render())
    check_experiment("fig12", table)
