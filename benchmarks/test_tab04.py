"""Benchmark: regenerate Table 4 - activity-aware vs unaware ivh.

Runs the experiment in fast mode under pytest-benchmark (one round — the
experiment is itself a full simulation campaign), prints the regenerated
table, and asserts the paper's qualitative shape.  Use
``python -m repro.experiments run tab4`` for the full-size version.
"""

import pytest

from repro.experiments.common import check_experiment, run_experiment

RESULTS = {}


@pytest.mark.benchmark(group="tab4")
def test_tab04(benchmark):
    table = benchmark.pedantic(
        run_experiment, args=("tab4",), kwargs={"fast": True},
        rounds=1, iterations=1)
    RESULTS["tab4"] = table
    print()
    print(table.render())
    check_experiment("tab4", table)
