"""Benchmark: regenerate Figure 13 - LLC-aware optimizations with vtop.

Runs the experiment in fast mode under pytest-benchmark (one round — the
experiment is itself a full simulation campaign), prints the regenerated
table, and asserts the paper's qualitative shape.  Use
``python -m repro.experiments run fig13`` for the full-size version.
"""

import pytest

from repro.experiments.common import check_experiment, run_experiment

RESULTS = {}


@pytest.mark.benchmark(group="fig13")
def test_fig13(benchmark):
    table = benchmark.pedantic(
        run_experiment, args=("fig13",), kwargs={"fast": True},
        rounds=1, iterations=1)
    RESULTS["fig13"] = table
    print()
    print(table.render())
    check_experiment("fig13", table)
