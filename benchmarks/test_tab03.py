"""Benchmark: regenerate Table 3 - Masstree latency breakdown.

Runs the experiment in fast mode under pytest-benchmark (one round — the
experiment is itself a full simulation campaign), prints the regenerated
table, and asserts the paper's qualitative shape.  Use
``python -m repro.experiments run tab3`` for the full-size version.
"""

import pytest

from repro.experiments.common import check_experiment, run_experiment

RESULTS = {}


@pytest.mark.benchmark(group="tab3")
def test_tab03(benchmark):
    table = benchmark.pedantic(
        run_experiment, args=("tab3",), kwargs={"fast": True},
        rounds=1, iterations=1)
    RESULTS["tab3"] = table
    print()
    print(table.render())
    check_experiment("tab3", table)
