"""Benchmark: regenerate Figure 10a - vcap EMA capacity accuracy.

Runs the experiment in fast mode under pytest-benchmark (one round — the
experiment is itself a full simulation campaign), prints the regenerated
table, and asserts the paper's qualitative shape.  Use
``python -m repro.experiments run fig10a`` for the full-size version.
"""

import pytest

from repro.experiments.common import check_experiment, run_experiment

RESULTS = {}


@pytest.mark.benchmark(group="fig10a")
def test_fig10(benchmark):
    table = benchmark.pedantic(
        run_experiment, args=("fig10a",), kwargs={"fast": True},
        rounds=1, iterations=1)
    RESULTS["fig10a"] = table
    print()
    print(table.render())
    check_experiment("fig10a", table)
