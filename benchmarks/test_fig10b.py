"""Benchmark: regenerate Figure 10b - vtop cache-line latency matrix.

Runs the experiment in fast mode under pytest-benchmark (one round — the
experiment is itself a full simulation campaign), prints the regenerated
table, and asserts the paper's qualitative shape.  Use
``python -m repro.experiments run fig10b`` for the full-size version.
"""

import pytest

from repro.experiments.common import check_experiment, run_experiment

RESULTS = {}


@pytest.mark.benchmark(group="fig10b")
def test_fig10b(benchmark):
    table = benchmark.pedantic(
        run_experiment, args=("fig10b",), kwargs={"fast": True},
        rounds=1, iterations=1)
    RESULTS["fig10b"] = table
    print()
    print(table.render())
    check_experiment("fig10b", table)
