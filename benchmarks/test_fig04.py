"""Benchmark: regenerate Figure 4 - work-conserving vs non-work-conserving.

Runs the experiment in fast mode under pytest-benchmark (one round — the
experiment is itself a full simulation campaign), prints the regenerated
table, and asserts the paper's qualitative shape.  Use
``python -m repro.experiments run fig4`` for the full-size version.
"""

import pytest

from repro.experiments.common import check_experiment, run_experiment

RESULTS = {}


@pytest.mark.benchmark(group="fig4")
def test_fig04(benchmark):
    table = benchmark.pedantic(
        run_experiment, args=("fig4",), kwargs={"fast": True},
        rounds=1, iterations=1)
    RESULTS["fig4"] = table
    print()
    print(table.render())
    check_experiment("fig4", table)
