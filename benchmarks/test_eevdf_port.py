"""Extension bench: vSched ported onto an EEVDF guest scheduler.

The paper (§4) implements on CFS but claims the port to EEVDF is easy;
this bench runs the harvesting scenario under both guest schedulers and
asserts vSched's win carries over.
"""

import pytest

from repro.cluster import attach_scheduler, build_plain_vm, make_context
from repro.guest import GuestConfig
from repro.sim import MSEC, SEC


def _harvest(scheduler: str, mode: str) -> int:
    env = build_plain_vm(4, host_slice_ns=5 * MSEC,
                         guest_config=GuestConfig(scheduler=scheduler))
    for i in range(4):
        env.machine.add_host_task(f"c{i}", pinned=(i,))
    vs = attach_scheduler(env, mode)
    ctx = make_context(env, vs, f"eevdf-bench-{scheduler}-{mode}")
    env.engine.run_until(4 * SEC)
    done = []

    def burn(api):
        yield api.run(1 * SEC)
        done.append(api.now())

    env.kernel.spawn(burn, "burn", group=vs.workload_group, initial_util=900)
    env.engine.run_until(40 * SEC)
    assert done
    return done[0] - 4 * SEC


@pytest.mark.benchmark(group="eevdf-port")
def test_vsched_gain_on_both_guest_schedulers(benchmark):
    def run():
        return {(s, m): _harvest(s, m)
                for s in ("cfs", "eevdf") for m in ("cfs", "vsched")}

    r = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    for s in ("cfs", "eevdf"):
        speedup = r[(s, "cfs")] / r[(s, "vsched")]
        print(f"guest scheduler {s}: vSched speedup {speedup:.2f}x")
        assert speedup > 1.3
