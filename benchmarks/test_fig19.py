"""Benchmark: regenerate Figure 19 - overall improvement on hpvm.

Runs the experiment in fast mode under pytest-benchmark (one round — the
experiment is itself a full simulation campaign), prints the regenerated
table, and asserts the paper's qualitative shape.  Use
``python -m repro.experiments run fig19`` for the full-size version.
"""

import pytest

from repro.experiments.common import check_experiment, run_experiment

RESULTS = {}


@pytest.mark.benchmark(group="fig19")
def test_fig19(benchmark):
    table = benchmark.pedantic(
        run_experiment, args=("fig19",), kwargs={"fast": True},
        rounds=1, iterations=1)
    RESULTS["fig19"] = table
    print()
    print(table.render())
    check_experiment("fig19", table)
