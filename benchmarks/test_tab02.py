"""Benchmark: regenerate Table 2 - vtop probing time.

Runs the experiment in fast mode under pytest-benchmark (one round — the
experiment is itself a full simulation campaign), prints the regenerated
table, and asserts the paper's qualitative shape.  Use
``python -m repro.experiments run tab2`` for the full-size version.
"""

import pytest

from repro.experiments.common import check_experiment, run_experiment

RESULTS = {}


@pytest.mark.benchmark(group="tab2")
def test_tab02(benchmark):
    table = benchmark.pedantic(
        run_experiment, args=("tab2",), kwargs={"fast": True},
        rounds=1, iterations=1)
    RESULTS["tab2"] = table
    print()
    print(table.render())
    check_experiment("tab2", table)
