"""Benchmark: regenerate Figure 14 - latency reduction with bvs.

Runs the experiment in fast mode under pytest-benchmark (one round — the
experiment is itself a full simulation campaign), prints the regenerated
table, and asserts the paper's qualitative shape.  Use
``python -m repro.experiments run fig14`` for the full-size version.
"""

import pytest

from repro.experiments.common import check_experiment, run_experiment

RESULTS = {}


@pytest.mark.benchmark(group="fig14")
def test_fig14(benchmark):
    table = benchmark.pedantic(
        run_experiment, args=("fig14",), kwargs={"fast": True},
        rounds=1, iterations=1)
    RESULTS["fig14"] = table
    print()
    print(table.render())
    check_experiment("fig14", table)
