"""Benchmark: regenerate Figure 17 - multi-tenant interference.

Runs the experiment in fast mode under pytest-benchmark (one round — the
experiment is itself a full simulation campaign), prints the regenerated
table, and asserts the paper's qualitative shape.  Use
``python -m repro.experiments run fig17`` for the full-size version.
"""

import pytest

from repro.experiments.common import check_experiment, run_experiment

RESULTS = {}


@pytest.mark.benchmark(group="fig17")
def test_fig17(benchmark):
    table = benchmark.pedantic(
        run_experiment, args=("fig17",), kwargs={"fast": True},
        rounds=1, iterations=1)
    RESULTS["fig17"] = table
    print()
    print(table.render())
    check_experiment("fig17", table)
