"""The two representative cloud VM types of the evaluation (§5.1).

* **rcvm** — resource-constrained VM: 12 vCPUs; vCPUs 0–9 on 5 SMT sibling
  pairs, vCPUs 10–11 stacked on one hardware thread; two stragglers; the
  remaining eight split into hchl / hcll / lchl / lcll pairs (high/low
  capacity × high/low latency).
* **hpvm** — high-performance VM: 32 vCPUs over 4 sockets × 4 SMT pairs;
  three socket groups mirror rcvm's four classes, the last group uses its
  cores dedicatedly; no stragglers or stacking.

Capacity and latency classes are manufactured the way the paper does
(§5.1): each classed vCPU competes with a CPU-bound co-runner whose weight
sets the vCPU's share and whose slice sets the inactive period (vCPU
latency), with host wakeup preemption disabled so a waking vCPU genuinely
waits — the source of extended runqueue latency.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import partial
from typing import Dict, List, Optional, Tuple

from repro.guest.config import GuestConfig
from repro.guest.kernel import GuestKernel
from repro.hw.speed import SpeedConfig
from repro.hw.topology import HostTopology
from repro.hypervisor.machine import Machine
from repro.hypervisor.vcpu import VM
from repro.sim.engine import Engine, MSEC, USEC
from repro.sim.tracing import Tracer


@dataclass
class VCpuClass:
    """A (share, latency) class realized the way the paper does (§5.1):
    the vCPU competes with a CPU-bound co-runner whose weight sets the
    vCPU's share and whose slice (the min-granularity analogue) sets the
    inactive period, with wakeup preemption disabled on those threads so
    a waking vCPU really waits out the co-runner (extended runqueue
    latency).  Bandwidth-control parameters are also derivable for
    experiments that prefer quotas."""

    name: str
    share: float          # fraction of a hardware thread
    latency_ns: int       # inactive period per cycle

    def quota_period(self) -> Tuple[int, int]:
        period = int(self.latency_ns / (1.0 - self.share))
        quota = period - self.latency_ns
        return quota, period

    def competitor(self, vcpu_weight: int = 1024) -> Tuple[int, int]:
        """(weight, slice_ns) of the co-runner realizing this class.

        With slice-quantum rotation the heavier entity takes consecutive
        turns: a busy vCPU's inactive period is ``slice * max(1,
        w_stress / w_vcpu)``, so the slice is derated for heavy
        co-runners; the share follows from the weights alone.
        """
        if self.share >= 1.0:
            raise ValueError("dedicated class has no competitor")
        w_stress = max(16, int(vcpu_weight * (1.0 - self.share) / self.share))
        slice_ns = int(self.latency_ns * min(1.0, vcpu_weight / w_stress))
        return w_stress, max(250_000, slice_ns)


#: The four classes of §5.1.  hcll has 2× the capacity and 1/3 the latency
#: of lchl, matching the paper's example.
HCLL = VCpuClass("hcll", 0.66, 2 * MSEC)
HCHL = VCpuClass("hchl", 0.66, 6 * MSEC)
LCLL = VCpuClass("lcll", 0.33, 2 * MSEC)
LCHL = VCpuClass("lchl", 0.33, 6 * MSEC)
STRAGGLER = VCpuClass("straggler", 0.06, 9 * MSEC)
DEDICATED = VCpuClass("dedicated", 1.0, 0)


@dataclass
class VmEnvironment:
    """A fully-built simulation environment for one VM."""

    engine: Engine
    machine: Machine
    vm: VM
    kernel: GuestKernel
    vcpu_classes: List[str] = field(default_factory=list)
    stacked_pairs: List[Tuple[int, int]] = field(default_factory=list)
    straggler_vcpus: List[int] = field(default_factory=list)

    @property
    def n_vcpus(self) -> int:
        return self.vm.n_vcpus


def _apply_class(machine: Machine, vcpu, klass: VCpuClass,
                 stagger_ns: int = 0) -> None:
    """Install a class by adding its co-runner on the vCPU's thread and
    tuning that thread's slice.  ``stagger_ns`` desynchronizes co-runner
    start times (real tenants do not begin in lock-step)."""
    if klass.share >= 1.0:
        return
    thread = vcpu.pinned[0]
    weight, slice_ns = klass.competitor()
    machine.set_slice(thread, slice_ns)
    # A partial over the bound method (not a lambda): snapshot forks
    # rebind it to the copied machine if the stagger is still pending.
    machine.engine.call_at(
        machine.engine.now + stagger_ns,
        partial(machine.add_host_task, f"tenant-{vcpu.name}",
                weight=weight, pinned=(thread,)))


def build_rcvm(engine: Optional[Engine] = None,
               tracer: Optional[Tracer] = None,
               guest_config: Optional[GuestConfig] = None) -> VmEnvironment:
    """The resource-constrained VM on a contended edge-style host."""
    engine = engine or Engine()
    topo = HostTopology(1, 6, smt=2)  # 12 hardware threads
    # The paper tunes wakeup granularity so waking vCPUs wait out their
    # co-runners — that is what creates extended runqueue latency.
    machine = Machine(engine, topo, speed=SpeedConfig(), tracer=tracer,
                      wakeup_gran_ns=None)
    # vCPUs 0-9 pinned to threads 0-9 (5 SMT pairs); 10 and 11 stacked on
    # thread 10.
    pins = [(i,) for i in range(10)] + [(10,), (10,)]
    vm = machine.new_vm("rcvm", 12, pinned_map=pins)
    classes = ["hcll", "hchl", "lcll", "lchl",
               "hcll", "hchl", "lcll", "lchl",
               "straggler", "straggler", "stacked", "stacked"]
    class_map = {"hcll": HCLL, "hchl": HCHL, "lcll": LCLL, "lchl": LCHL,
                 "straggler": STRAGGLER}
    for i, cname in enumerate(classes):
        if cname == "stacked":
            continue  # the stacked pair contends with itself on thread 10
        _apply_class(machine, vm.vcpu(i), class_map[cname],
                     stagger_ns=(i * 1337 * USEC))
    kernel = GuestKernel(vm, guest_config)
    return VmEnvironment(engine, machine, vm, kernel,
                         vcpu_classes=classes,
                         stacked_pairs=[(10, 11)],
                         straggler_vcpus=[8, 9])


def build_hpvm(engine: Optional[Engine] = None,
               tracer: Optional[Tracer] = None,
               guest_config: Optional[GuestConfig] = None) -> VmEnvironment:
    """The high-performance VM spanning four sockets."""
    engine = engine or Engine()
    topo = HostTopology(4, 4, smt=2)  # 32 hardware threads
    machine = Machine(engine, topo, speed=SpeedConfig(), tracer=tracer,
                      wakeup_gran_ns=None)
    pins = [(i,) for i in range(32)]
    vm = machine.new_vm("hpvm", 32, pinned_map=pins)
    group_classes = ["hcll", "hchl", "lcll", "lchl",
                     "hcll", "hchl", "lcll", "lchl"]
    class_map = {"hcll": HCLL, "hchl": HCHL, "lcll": LCLL, "lchl": LCHL}
    classes: List[str] = []
    for g in range(4):
        for j in range(8):
            i = g * 8 + j
            if g == 3:
                classes.append("dedicated")
                continue
            cname = group_classes[j]
            classes.append(cname)
            _apply_class(machine, vm.vcpu(i), class_map[cname],
                         stagger_ns=(i * 911 * USEC))
    kernel = GuestKernel(vm, guest_config)
    return VmEnvironment(engine, machine, vm, kernel,
                         vcpu_classes=classes)


def build_plain_vm(n_vcpus: int, engine: Optional[Engine] = None,
                   sockets: int = 1, smt: int = 1,
                   tracer: Optional[Tracer] = None,
                   host_slice_ns: int = 4 * MSEC,
                   wakeup_gran_ns: Optional[int] = 1 * MSEC,
                   guest_config: Optional[GuestConfig] = None,
                   speed: Optional[SpeedConfig] = None,
                   pin_offset: int = 0,
                   cores_per_socket: Optional[int] = None) -> VmEnvironment:
    """A VM with one vCPU per hardware thread — the canvas most individual
    experiments paint their host conditions onto."""
    engine = engine or Engine()
    threads_per_socket = -(-n_vcpus // sockets)
    if cores_per_socket is None:
        cores_per_socket = -(-threads_per_socket // smt)
    topo = HostTopology(sockets, cores_per_socket, smt=smt)
    machine = Machine(engine, topo, speed=speed or SpeedConfig(),
                      tracer=tracer, host_slice_ns=host_slice_ns,
                      wakeup_gran_ns=wakeup_gran_ns)
    pins = [(pin_offset + i,) for i in range(n_vcpus)]
    vm = machine.new_vm("vm", n_vcpus, pinned_map=pins)
    kernel = GuestKernel(vm, guest_config)
    return VmEnvironment(engine, machine, vm, kernel)
