"""Antagonist installation: replay an attack plan on the host machine.

:mod:`repro.workloads.antagonists` defines the adversary family as pure
plans; this module is the half allowed to touch the hypervisor.  An
:class:`InstalledAntagonist` materializes one spec against one VM's
hardware threads — duty-cycling host tasks, a seeded burst schedule, or
an online bandwidth-retuning controller — entirely from public
:class:`~repro.hypervisor.machine.Machine` APIs, so every antagonist run
is an ordinary deterministic event-graph the campaign cache can key on.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.cluster.vmtypes import VmEnvironment
from repro.hypervisor.entity import HostTask
from repro.sim.engine import SEC
from repro.workloads.antagonists import (
    AntagonistSpec,
    BurstPlan,
    DutyCyclePlan,
    QuotaPlan,
    build_plan,
)


class InstalledAntagonist:
    """One antagonist spec, installed and running against a VM."""

    def __init__(self, env: VmEnvironment, spec: AntagonistSpec,
                 threads: Optional[Sequence[int]] = None,
                 horizon_ns: int = 60 * SEC):
        self.env = env
        self.spec = spec
        #: Hardware threads under attack: default every thread hosting one
        #: of the VM's (pinned) vCPUs.
        if threads is None:
            threads = sorted({v.pinned[0] for v in env.vm.vcpus
                              if v.pinned is not None})
        self.threads = tuple(threads)
        self.plan = build_plan(spec, horizon_ns)
        self.tasks: List[HostTask] = []
        self._installed = False

    # ------------------------------------------------------------------
    def install(self) -> "InstalledAntagonist":
        if self._installed:
            return self
        self._installed = True
        if isinstance(self.plan, DutyCyclePlan):
            self._install_duty(self.plan)
        elif isinstance(self.plan, BurstPlan):
            self._install_bursts(self.plan)
        elif isinstance(self.plan, QuotaPlan):
            self._install_quota(self.plan)
        else:  # pragma: no cover - build_plan is exhaustive
            raise TypeError(f"unknown plan {self.plan!r}")
        return self

    def remove(self) -> None:
        """Stop the co-runner tasks (phase end).  Bandwidth retunes that
        are already scheduled still fire; the quota class models a host
        controller, not a removable tenant."""
        machine = self.env.machine
        for task in self.tasks:
            machine.remove_host_task(task)

    # ------------------------------------------------------------------
    def _install_duty(self, plan: DutyCyclePlan) -> None:
        machine = self.env.machine
        for t in self.threads:
            self.tasks.append(machine.add_host_task(
                f"{self.spec.kind}-{t}", weight=plan.weight, pinned=(t,),
                duty_on_ns=plan.on_ns, duty_off_ns=plan.off_ns,
                phase_ns=plan.phase_ns))

    def _install_bursts(self, plan: BurstPlan) -> None:
        machine = self.env.machine
        engine = self.env.engine
        for t in self.threads:
            task = machine.add_host_task(
                f"{self.spec.kind}-{t}", weight=plan.weight, pinned=(t,),
                start=False)
            self.tasks.append(task)
            for start, duration in plan.bursts:
                engine.call_in(start, machine.wake_entity, task)
                engine.call_in(start + duration, machine.block_entity, task)

    def _install_quota(self, plan: QuotaPlan) -> None:
        machine = self.env.machine
        engine = self.env.engine
        # The controller retunes the whole VM: every vCPU gets the same
        # quota/period, phase-staggered by index as real per-thread cgroup
        # refresh timers are.
        for at, quota, period in plan.updates:
            for i, vcpu in enumerate(self.env.vm.vcpus):
                engine.call_in(at, machine.set_bandwidth, vcpu, quota,
                               period, (i * 173) % period)


def install_antagonist(env: VmEnvironment, spec: AntagonistSpec,
                       threads: Optional[Sequence[int]] = None,
                       horizon_ns: int = 60 * SEC) -> InstalledAntagonist:
    """Build and install one antagonist; returns the installed handle."""
    return InstalledAntagonist(env, spec, threads=threads,
                               horizon_ns=horizon_ns).install()
