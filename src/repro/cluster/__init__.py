"""VM-type builders (rcvm / hpvm) and experiment scenario helpers."""

from repro.cluster.antagonists import InstalledAntagonist, install_antagonist
from repro.cluster.scenarios import (
    MODES,
    attach_scheduler,
    make_context,
    overcommit_with_stress,
    run_to_completion,
    warmup,
)
from repro.cluster.vmtypes import (
    DEDICATED,
    HCHL,
    HCLL,
    LCHL,
    LCLL,
    STRAGGLER,
    VCpuClass,
    VmEnvironment,
    build_hpvm,
    build_plain_vm,
    build_rcvm,
)

__all__ = [
    "VmEnvironment",
    "VCpuClass",
    "build_rcvm",
    "build_hpvm",
    "build_plain_vm",
    "HCLL",
    "HCHL",
    "LCLL",
    "LCHL",
    "STRAGGLER",
    "DEDICATED",
    "MODES",
    "attach_scheduler",
    "make_context",
    "overcommit_with_stress",
    "run_to_completion",
    "warmup",
    "InstalledAntagonist",
    "install_antagonist",
]
