"""Scenario helpers shared by the experiments.

These functions reproduce the host conditions of the paper's individual
experiments — overcommit via co-located stress, straggler cores, stacked
vCPU layouts — and the standard run loop (attach a vSched configuration,
warm the probers up, run workloads to completion, collect results).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, List, Optional

import numpy as np

from repro.cluster.vmtypes import VmEnvironment, build_plain_vm
from repro.core.vsched import VSched, VSchedConfig
from repro.sim.engine import MSEC, SEC
from repro.sim.rng import make_rng, split_rng
from repro.workloads.base import Workload, WorkloadContext


def overcommit_with_stress(env: VmEnvironment, slice_ns: int = 5 * MSEC,
                           cpus: Optional[Iterable[int]] = None,
                           weight: int = 1024) -> None:
    """Co-locate a CPU-bound competitor on each vCPU's hardware thread —
    the 'other VM stressed its vCPUs using Sysbench' setup (§2.3)."""
    indices = range(env.n_vcpus) if cpus is None else cpus
    for i in indices:
        thread = env.vm.vcpu(i).pinned[0]
        env.machine.set_slice(thread, slice_ns)
        env.machine.add_host_task(f"stress{i}", pinned=(thread,),
                                  weight=weight)


MODES = ("cfs", "enhanced", "vsched")


def attach_scheduler(env: VmEnvironment, mode: str,
                     overrides: Optional[dict] = None) -> VSched:
    """Attach one of the three evaluation configurations to the VM."""
    if mode == "cfs":
        cfg = VSchedConfig.baseline()
    elif mode == "enhanced":
        cfg = VSchedConfig.enhanced()
    elif mode == "vsched":
        cfg = VSchedConfig.full()
    else:
        raise ValueError(f"unknown mode {mode!r}")
    if overrides:
        cfg = cfg.with_(**overrides)
    vs = VSched(env.kernel, cfg)
    vs.start()
    return vs


def make_context(env: VmEnvironment, vs: VSched, seed: str) -> WorkloadContext:
    return WorkloadContext(
        kernel=env.kernel,
        group=vs.workload_group,
        besteffort_group=vs.besteffort_group,
        rng=make_rng(seed))


def warmup(env: VmEnvironment, duration_ns: int = 8 * SEC) -> None:
    """Let the probers converge before measurement (the paper's warm-up
    runs).  Harmless for baseline CFS (nothing is probing)."""
    env.engine.run_until(env.engine.now + duration_ns)


def run_to_completion(env: VmEnvironment, workloads: List[Workload],
                      ctx: WorkloadContext,
                      timeout_ns: int = 120 * SEC,
                      wait_for: Optional[List[Workload]] = None) -> None:
    """Start ``workloads``; run until the ``wait_for`` subset (default all)
    completes, or raise on timeout."""
    for wl in workloads:
        wl.start(ctx)
    waited = workloads if wait_for is None else wait_for
    deadline = env.engine.now + timeout_ns
    step = 250 * MSEC
    while env.engine.now < deadline:
        if all(wl.done for wl in waited):
            return
        env.engine.run_until(min(deadline, env.engine.now + step))
    unfinished = [wl.name for wl in waited if not wl.done]
    if unfinished:
        raise TimeoutError(
            f"workloads did not finish within {timeout_ns / SEC:.0f}s "
            f"simulated: {unfinished}")
