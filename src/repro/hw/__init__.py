"""Host hardware model: topology, cache distances, execution speed."""

from repro.hw.cache import CacheModel
from repro.hw.speed import SpeedConfig
from repro.hw.topology import Core, Distance, HostTopology, HwThread, Socket

__all__ = [
    "CacheModel",
    "SpeedConfig",
    "HostTopology",
    "Socket",
    "Core",
    "HwThread",
    "Distance",
]
