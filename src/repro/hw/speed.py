"""Execution-speed model: base frequency, SMT contention, DVFS ramp.

A hardware thread executes work at a dimensionless *speed factor*; guest
work amounts are expressed in nanoseconds-at-nominal-speed, so a thread at
factor 1.0 retires 1 ns of work per wall-clock ns.

Two dynamic effects are modelled, both of which the paper identifies as
sources of vCPU-capacity variation (§2.1):

* **SMT contention** — when both hardware threads of a core are busy, each
  runs at ``smt_factor`` of nominal (per-core resources are shared).
* **DVFS** — a core that has been idle runs at ``dvfs_cold_factor`` until it
  has been continuously busy for ``dvfs_ramp_ns``.  This is what makes
  "probing keeps vCPUs active and increases core frequency" (§5.9) visible
  in the overhead experiment.  DVFS is disabled by default because most
  experiments in the paper control capacity with host knobs instead.

The dynamics (who is busy when) live in the hypervisor machine; this module
only holds the configuration and the pure speed computation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.engine import MSEC, USEC


@dataclass
class SpeedConfig:
    """Static configuration of the host execution-speed model."""

    #: Nominal per-thread speed factor.
    base: float = 1.0
    #: Per-thread factor when the SMT sibling is simultaneously busy.
    smt_factor: float = 0.62
    #: Enable the DVFS cold/warm ramp.
    dvfs_enabled: bool = False
    #: Speed factor of a cold (recently idle) core.
    dvfs_cold_factor: float = 0.85
    #: Continuous busy time needed to reach nominal speed.
    dvfs_ramp_ns: int = 200 * USEC
    #: Idle time after which a core drops back to cold.
    dvfs_cooldown_ns: int = 2 * MSEC

    def factor(self, sibling_busy: bool, warm: bool) -> float:
        """Speed factor for a running thread given the dynamic state."""
        f = self.base
        if sibling_busy:
            f *= self.smt_factor
        if self.dvfs_enabled and not warm:
            f *= self.dvfs_cold_factor
        return f
