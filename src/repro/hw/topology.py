"""Physical host topology: sockets, cores, hardware threads.

The topology is the ground truth the hypervisor schedules on and the thing
vtop tries to rediscover from inside the guest.  Distances between hardware
threads determine cache-line transfer latencies (see :mod:`repro.hw.cache`).
"""

from __future__ import annotations

import enum
from typing import List, Optional


class Distance(enum.IntEnum):
    """Topological distance between two hardware threads.

    Ordered so that larger values mean farther apart (higher latency).
    ``STACKED`` is not a physical distance — it is what two vCPUs pinned to
    the *same* hardware thread look like to a cache-line prober (they can
    never run simultaneously), and is included here so probers and the cache
    model share one vocabulary.
    """

    SAME_THREAD = 0
    SMT_SIBLING = 1
    SAME_SOCKET = 2
    CROSS_SOCKET = 3


class HwThread:
    """One hardware thread (logical CPU) of the host."""

    __slots__ = ("index", "core", "runqueue")

    def __init__(self, index: int, core: "Core"):
        self.index = index
        self.core = core
        #: Host runqueue attached by the hypervisor layer.
        self.runqueue = None

    @property
    def socket(self) -> "Socket":
        return self.core.socket

    def sibling(self) -> Optional["HwThread"]:
        """The SMT sibling thread, or None on a non-SMT core."""
        for t in self.core.threads:
            if t is not self:
                return t
        return None

    def __repr__(self) -> str:
        return f"<HwThread {self.index} core={self.core.index} socket={self.socket.index}>"


class Core:
    """A physical core holding one or two hardware threads."""

    __slots__ = ("index", "socket", "threads")

    def __init__(self, index: int, socket: "Socket"):
        self.index = index
        self.socket = socket
        self.threads: List[HwThread] = []


class Socket:
    """A package sharing a last-level cache."""

    __slots__ = ("index", "cores")

    def __init__(self, index: int):
        self.index = index
        self.cores: List[Core] = []

    @property
    def threads(self) -> List[HwThread]:
        return [t for c in self.cores for t in c.threads]


class HostTopology:
    """The full host: ``sockets × cores_per_socket × smt`` hardware threads."""

    def __init__(self, sockets: int, cores_per_socket: int, smt: int = 2):
        if sockets < 1 or cores_per_socket < 1 or smt not in (1, 2):
            raise ValueError("invalid topology shape")
        self.smt = smt
        self.sockets: List[Socket] = []
        self.cores: List[Core] = []
        self.threads: List[HwThread] = []
        thread_idx = 0
        core_idx = 0
        for s in range(sockets):
            sock = Socket(s)
            self.sockets.append(sock)
            for _ in range(cores_per_socket):
                core = Core(core_idx, sock)
                core_idx += 1
                sock.cores.append(core)
                self.cores.append(core)
                for _ in range(smt):
                    t = HwThread(thread_idx, core)
                    thread_idx += 1
                    core.threads.append(t)
                    self.threads.append(t)

    def thread(self, index: int) -> HwThread:
        return self.threads[index]

    def distance(self, a: HwThread, b: HwThread) -> Distance:
        """Topological distance between two hardware threads."""
        if a is b:
            return Distance.SAME_THREAD
        if a.core is b.core:
            return Distance.SMT_SIBLING
        if a.socket is b.socket:
            return Distance.SAME_SOCKET
        return Distance.CROSS_SOCKET

    def __repr__(self) -> str:
        return (
            f"<HostTopology {len(self.sockets)} sockets x "
            f"{len(self.sockets[0].cores)} cores x {self.smt} threads>"
        )
