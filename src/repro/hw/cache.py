"""Cache-line transfer latency model.

vtop discovers topology by timing atomic ping-pong on a shared cache line
(§3.1 of the paper).  The latencies below reproduce the structure of the
paper's measured matrix (Figure 10b): single-digit nanoseconds between SMT
siblings that share an L1/L2, tens of nanoseconds within a socket (transfer
through the LLC), and ~100 ns across the inter-socket bus.  Stacked vCPUs
produce effectively no transfers because they never run simultaneously; the
prober reports infinity for them — that is an emergent behaviour of the
activity model, not something this module returns.

The same distances feed the communication-stall model used for the
LLC-aware experiments (Figure 13): a task consuming a message produced on a
distant vCPU stalls for a number of cycles proportional to the transfer
latency.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

import numpy as np

from repro.hw.topology import Distance


@dataclass
class CacheModel:
    """Latency (ns) of moving one cache line between two hardware threads."""

    #: Same hardware thread: the line is already in L1.
    same_thread_ns: float = 2.0
    #: SMT siblings share L1/L2.
    smt_sibling_ns: float = 6.0
    #: Same socket: transfer via LLC / on-die interconnect.
    same_socket_ns: float = 48.0
    #: Different socket: inter-socket bus.
    cross_socket_ns: float = 112.0
    #: Multiplicative jitter applied per measurement (std dev, fraction).
    jitter: float = 0.04

    _table: Dict[Distance, float] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self._table = {
            Distance.SAME_THREAD: self.same_thread_ns,
            Distance.SMT_SIBLING: self.smt_sibling_ns,
            Distance.SAME_SOCKET: self.same_socket_ns,
            Distance.CROSS_SOCKET: self.cross_socket_ns,
        }

    def base_latency(self, distance: Distance) -> float:
        """Noise-free transfer latency for a distance class."""
        return self._table[distance]

    def sample_latency(self, distance: Distance, rng: np.random.Generator) -> float:
        """One measured transfer latency, with measurement jitter."""
        base = self._table[distance]
        if self.jitter <= 0:
            return base
        return max(0.5, base * (1.0 + rng.normal(0.0, self.jitter)))

    def stall_cycles(self, distance: Distance, lines: int = 1) -> int:
        """Pipeline stall (in ns-at-nominal-speed) for pulling remote data.

        Used by the communication model: consuming ``lines`` cache lines
        produced at ``distance`` stalls the consumer this long.
        """
        return int(self._table[distance] * lines)
