"""Workload framework.

A :class:`Workload` spawns guest tasks into a VM and records results.  Two
result families cover everything the paper measures:

* **throughput** — a job of known total work; the metric is elapsed time
  (or its inverse).  ``done`` flips when the job completes.
* **latency** — an open-loop request stream; per-request queue/service/
  end-to-end times are recorded for percentile reporting.

Workloads receive a :class:`WorkloadContext` naming the kernel, the cgroup
to spawn into (so rwc's cpusets apply), and the experiment RNG.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

import numpy as np

from repro.guest.cgroup import TaskGroup
from repro.guest.kernel import GuestKernel
from repro.guest.task import Policy, StatefulBody, Task
from repro.sim.engine import MSEC, SEC, USEC


@dataclass
class WorkloadContext:
    """Everything a workload needs to install itself in a VM."""

    kernel: GuestKernel
    group: TaskGroup
    besteffort_group: Optional[TaskGroup]
    rng: np.random.Generator

    @property
    def engine(self):
        return self.kernel.engine

    def now(self) -> int:
        return self.kernel.now()


@dataclass
class RequestRecord:
    """One served request of a latency-sensitive workload."""

    arrival: int
    start: int
    finish: int

    @property
    def queue_ns(self) -> int:
        return self.start - self.arrival

    @property
    def service_ns(self) -> int:
        return self.finish - self.start

    @property
    def e2e_ns(self) -> int:
        return self.finish - self.arrival


class Workload:
    """Base class; subclasses implement :meth:`start`."""

    #: Family tag used by experiment tables ("throughput" / "latency").
    kind = "throughput"

    def __init__(self, name: str):
        self.name = name
        self.ctx: Optional[WorkloadContext] = None
        self.started_at = 0
        self.finished_at: Optional[int] = None
        self.tasks: List[Task] = []
        self.requests: List[RequestRecord] = []
        self._on_done: List[Callable] = []

    # ------------------------------------------------------------------
    def start(self, ctx: WorkloadContext) -> None:
        raise NotImplementedError

    def on_done(self, callback: Callable) -> None:
        self._on_done.append(callback)

    def _mark_done(self) -> None:
        if self.finished_at is None:
            self.finished_at = self.ctx.now()
            for cb in self._on_done:
                cb(self)

    @property
    def done(self) -> bool:
        return self.finished_at is not None

    # ------------------------------------------------------------------
    # Result accessors
    # ------------------------------------------------------------------
    def elapsed_ns(self) -> Optional[int]:
        if self.finished_at is None:
            return None
        return self.finished_at - self.started_at

    def p95_ns(self, component: str = "e2e") -> float:
        if not self.requests:
            return float("nan")
        values = [getattr(r, f"{component}_ns") for r in self.requests]
        return float(np.percentile(values, 95))

    def mean_ns(self, component: str = "e2e") -> float:
        if not self.requests:
            return float("nan")
        values = [getattr(r, f"{component}_ns") for r in self.requests]
        return float(np.mean(values))

    # ------------------------------------------------------------------
    # Spawn helpers
    # ------------------------------------------------------------------
    def _spawn(self, factory, name: str, policy: Policy = Policy.NORMAL,
               initial_util: float = 0.0, group: Optional[TaskGroup] = None,
               cpu: Optional[int] = None,
               latency_sensitive: bool = False) -> Task:
        task = self.ctx.kernel.spawn(
            factory, name, policy=policy,
            group=group or self.ctx.group, initial_util=initial_util, cpu=cpu,
            latency_sensitive=latency_sensitive)
        self.tasks.append(task)
        return task

    def _join_counter(self, parties: int) -> "JoinCounter":
        """Returns a decrement callable; marks the workload done at zero."""
        return JoinCounter(self, parties)


class JoinCounter:
    """Countdown latch marking its workload done when the last party
    arrives.  An object rather than a closure so snapshot forks copy the
    count and rebind to the forked workload instead of aliasing the
    frozen one."""

    def __init__(self, workload: Workload, parties: int):
        self.workload = workload
        self.remaining = parties

    def __call__(self, _task=None) -> None:
        self.remaining -= 1
        if self.remaining == 0:
            self.workload._mark_done()


class BestEffortFiller(Workload):
    """Low-priority background work harvesting free vCPU cycles (§2.3).

    One sched_idle spinner per vCPU, used by the "with best-effort tasks"
    variants of the latency experiments.
    """

    def __init__(self, name: str = "besteffort"):
        super().__init__(name)

    def start(self, ctx: WorkloadContext) -> None:
        self.ctx = ctx
        self.started_at = ctx.now()
        group = ctx.besteffort_group or ctx.group
        for c in range(len(ctx.kernel.cpus)):
            self._spawn(_FillerBody, f"{self.name}-{c}", policy=Policy.IDLE,
                        group=group, cpu=c)


class _FillerBody(StatefulBody):
    """Endless best-effort spinning: nothing observes the chunk
    boundaries, so grow the chunk (bounded) to keep the filler's event
    footprint small.  Preemption by normal tasks is immediate on their
    wake-up regardless of chunk size.  An explicit state machine (not a
    generator) so snapshot forks carry the grown chunk instead of
    restarting it at the minimum."""

    def __init__(self, api):
        self.api = api
        self.chunk = 500 * USEC

    def send(self, value):
        action = self.api.run(self.chunk)
        if self.chunk < 4 * MSEC:
            self.chunk *= 2
        return action
