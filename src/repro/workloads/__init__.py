"""Workload generators for the paper's 34-benchmark evaluation suite."""

from repro.workloads.antagonists import (
    ANTAGONIST_KINDS,
    AntagonistSpec,
    BurstPlan,
    DutyCyclePlan,
    QuotaPlan,
    build_plan,
)
from repro.workloads.apps import Fio, Hackbench, Pbzip2
from repro.workloads.base import BestEffortFiller, RequestRecord, Workload, WorkloadContext
from repro.workloads.parsec import (
    BarrierWorkload,
    DataParallelWorkload,
    LockWorkload,
    PARSEC_SPECS,
    PipelineWorkload,
    build_parsec,
)
from repro.workloads.registry import (
    OVERALL_LATENCY,
    OVERALL_THROUGHPUT,
    PARSEC_NAMES,
    SPLASH_NAMES,
    TAILBENCH_NAMES,
    build_workload,
)
from repro.workloads.server import NginxServer
from repro.workloads.synthetic import CpuBoundJob, Matmul, SelfMigratingJob, SysbenchCpu
from repro.workloads.tailbench import TAILBENCH, LatencyWorkload, TailbenchSpec

__all__ = [
    "ANTAGONIST_KINDS",
    "AntagonistSpec",
    "DutyCyclePlan",
    "BurstPlan",
    "QuotaPlan",
    "build_plan",
    "Workload",
    "WorkloadContext",
    "RequestRecord",
    "BestEffortFiller",
    "CpuBoundJob",
    "SysbenchCpu",
    "SelfMigratingJob",
    "Matmul",
    "LatencyWorkload",
    "TailbenchSpec",
    "TAILBENCH",
    "BarrierWorkload",
    "DataParallelWorkload",
    "PipelineWorkload",
    "LockWorkload",
    "PARSEC_SPECS",
    "build_parsec",
    "NginxServer",
    "Pbzip2",
    "Fio",
    "Hackbench",
    "build_workload",
    "PARSEC_NAMES",
    "SPLASH_NAMES",
    "TAILBENCH_NAMES",
    "OVERALL_THROUGHPUT",
    "OVERALL_LATENCY",
]
