"""Nginx-style server workload: open-loop requests, live throughput.

Used by the adaptability (§5.7) and multi-tenant (§5.8) experiments, which
plot requests/second over time while host conditions change, and by the
mixed-workload SMT experiment (§5.3).
"""

from __future__ import annotations

from typing import List, Optional

from functools import partial

from repro.guest.sync import Channel
from repro.guest.task import StatefulBody
from repro.sim.engine import MSEC, SEC, USEC
from repro.workloads.base import RequestRecord, Workload, WorkloadContext


class NginxServer(Workload):
    """``workers`` event-loop workers serving small requests.

    Open loop: requests arrive at ``rate_per_sec`` regardless of progress
    (excess queues up, throughput saturates at capacity — the paper's live
    throughput curves).  ``throughput_series(window)`` returns requests
    completed per window.
    """

    kind = "latency"

    def __init__(self, name: str = "nginx", workers: int = 16,
                 service_ns: int = 400 * USEC, rate_per_sec: float = 3000.0,
                 duration_ns: Optional[int] = None, record_requests: bool = False):
        super().__init__(name)
        self.workers = workers
        self.service_ns = service_ns
        self.rate_per_sec = rate_per_sec
        self.duration_ns = duration_ns
        self.record_requests = record_requests
        self.completions: List[int] = []   # completion timestamps
        self._stopped = False

    # ------------------------------------------------------------------
    def start(self, ctx: WorkloadContext) -> None:
        self.ctx = ctx
        self.started_at = ctx.now()
        self.channel = Channel(f"{self.name}-req", capacity=4096, lines=8)
        factory = partial(_NginxWorkerBody, workload=self)
        for i in range(self.workers):
            self._spawn(factory, f"{self.name}-w{i}", latency_sensitive=True)
        self._schedule_arrival()
        if self.duration_ns is not None:
            ctx.engine.call_in(self.duration_ns, self.stop)

    def stop(self) -> None:
        self._stopped = True
        self._mark_done()

    def set_rate(self, rate_per_sec: float) -> None:
        self.rate_per_sec = rate_per_sec

    def _schedule_arrival(self) -> None:
        if self._stopped:
            return
        gap = max(1, int(self.ctx.rng.exponential(SEC / self.rate_per_sec)))
        self.ctx.engine.call_in(gap, self._arrive)

    def _arrive(self) -> None:
        if self._stopped:
            return
        # Drop rather than queue unboundedly when saturated (the channel
        # capacity models the listen backlog).
        if not self.channel.full():
            self.ctx.kernel.send_external(self.channel, self.ctx.now())
        self._schedule_arrival()

    # ------------------------------------------------------------------
    def throughput_series(self, window_ns: int = 1 * SEC,
                          t0: Optional[int] = None,
                          t1: Optional[int] = None) -> List[float]:
        """Requests/sec per window over [t0, t1)."""
        t0 = self.started_at if t0 is None else t0
        t1 = (self.finished_at or self.ctx.now()) if t1 is None else t1
        n_windows = max(1, (t1 - t0) // window_ns)
        counts = [0] * n_windows
        for c in self.completions:
            idx = (c - t0) // window_ns
            if 0 <= idx < n_windows:
                counts[idx] += 1
        return [cnt / (window_ns / SEC) for cnt in counts]

    def served_between(self, t0: int, t1: int) -> int:
        return sum(1 for c in self.completions if t0 <= c < t1)


class _NginxWorkerBody(StatefulBody):
    """Event-loop worker as an explicit state machine.

    The three phases (idle → waiting-for-request → serving) replace the
    generator's suspension points, so a snapshot can park a worker
    mid-service and a fork resumes it bit-identically.
    """

    def __init__(self, api, *, workload: "NginxServer"):
        self.api = api
        self.workload = workload
        self.phase = "idle"
        self.arrival = 0
        self.service_start = 0

    def send(self, value):
        wl = self.workload
        if self.phase == "serving":
            finish = self.api.now()
            wl.completions.append(finish)
            if wl.record_requests:
                wl.requests.append(
                    RequestRecord(self.arrival, self.service_start, finish))
            self.phase = "waiting"
            return self.api.recv(wl.channel)
        if self.phase == "waiting":
            if value is None:
                raise StopIteration
            self.arrival = value
            self.service_start = self.api.now()
            self.phase = "serving"
            return self.api.run(wl.service_ns)
        self.phase = "waiting"
        return self.api.recv(wl.channel)
