"""Name → workload builders for the full 34-benchmark catalogue (§5.1)."""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.sim.engine import MSEC
from repro.workloads.apps import Fio, Hackbench, Pbzip2
from repro.workloads.base import Workload
from repro.workloads.parsec import PARSEC_SPECS, build_parsec
from repro.workloads.server import NginxServer
from repro.workloads.synthetic import Matmul, SysbenchCpu
from repro.workloads.tailbench import TAILBENCH, LatencyWorkload

#: PARSEC names used in the overall-evaluation figures.
PARSEC_NAMES: List[str] = [
    "blackscholes", "bodytrack", "canneal", "dedup", "facesim",
    "fluidanimate", "freqmine", "streamcluster", "swaptions", "x264",
]

#: SPLASH-2x names used in the overall-evaluation figures.
SPLASH_NAMES: List[str] = [
    "barnes", "fft", "lu_cb", "lu_ncb", "ocean_cp", "ocean_ncp",
    "radiosity", "radix", "raytrace", "volrend", "water_spatial",
]

#: Tailbench names used in the overall-evaluation figures.
TAILBENCH_NAMES: List[str] = [
    "img-dnn", "moses", "masstree", "silo", "shore", "specjbb",
    "sphinx", "xapian",
]

#: The full Figure 18/19 row order.
OVERALL_THROUGHPUT = PARSEC_NAMES + SPLASH_NAMES + ["pbzip2", "nginx"]
OVERALL_LATENCY = TAILBENCH_NAMES


def build_workload(name: str, threads: int, scale: float = 1.0,
                   n_requests: int = 300) -> Workload:
    """Instantiate any catalogued benchmark by name.

    ``threads`` sizes parallel workloads; latency benchmarks use it as the
    worker-pool size.  ``scale`` shrinks throughput jobs for fast runs.
    """
    if name in PARSEC_SPECS:
        return build_parsec(name, threads=threads, scale=scale)
    if name in TAILBENCH:
        return LatencyWorkload(name, workers=threads, n_requests=n_requests)
    if name == "pbzip2":
        return Pbzip2(threads=threads, blocks=max(40, int(300 * scale)))
    if name == "nginx":
        # In the throughput figures Nginx is a fixed-size serving job:
        # an accept thread feeding workers (completion time = throughput).
        from repro.workloads.parsec import PipelineWorkload
        workers = max(2, threads - 1)
        return PipelineWorkload(
            "nginx", items=max(120, int(workers * 900 * scale)),
            stages=[("accept", 1, 30_000), ("worker", workers, 400_000)],
            queue_capacity=4 * workers, lines=32)
    if name == "hackbench":
        return Hackbench(groups=max(1, threads // 8),
                         messages=max(40, int(200 * scale)))
    if name == "fio":
        return Fio(threads=threads, iterations=max(50, int(400 * scale)))
    if name == "matmul":
        return Matmul(threads=threads, blocks=max(8, int(64 * scale)))
    if name == "sysbench":
        return SysbenchCpu(threads=threads)
    raise KeyError(f"unknown benchmark {name!r}")


