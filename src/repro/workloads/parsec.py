"""PARSEC / SPLASH-2x style throughput workloads (§5.1).

Four families capture the scheduling-relevant structure of the suites:

* :class:`BarrierWorkload` — bulk-synchronous phases (ocean, fft, lu,
  bodytrack, facesim, streamcluster, ...): a straggler thread delays the
  whole phase, which is what makes straggler vCPUs and stalled running
  tasks so costly;
* :class:`DataParallelWorkload` — a bag of independent chunks
  (blackscholes, swaptions, freqmine, raytrace): almost pure throughput;
* :class:`PipelineWorkload` — staged producer/consumer with bounded queues
  (dedup, ferret, x264): inter-thread communication, sensitive to
  placement and LLC locality;
* :class:`LockWorkload` — lock-dominated iteration (canneal, fluidanimate,
  radiosity): sensitive to lock-holder delays.

``spin=True`` variants (streamcluster, volrend) use user-level spin
synchronization, reproducing the LHP-like pathology the paper observes for
them in hpvm (§5.6).

Per-benchmark parameters live in :data:`PARSEC_SPECS`; they encode each
benchmark's *shape* (sync style, granularity), not its absolute runtime.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.guest.sync import Barrier, Channel, Mutex
from repro.sim.engine import MSEC, SEC, USEC
from repro.workloads.base import Workload, WorkloadContext


class BarrierWorkload(Workload):
    """Bulk-synchronous: ``phases`` rounds of work + barrier."""

    def __init__(self, name: str, threads: int = 8, phases: int = 100,
                 phase_work_ns: int = 10 * MSEC, jitter: float = 0.15,
                 spin: bool = False):
        super().__init__(name)
        self.threads = threads
        self.phases = phases
        self.phase_work_ns = phase_work_ns
        self.jitter = jitter
        self.spin = spin

    def start(self, ctx: WorkloadContext) -> None:
        self.ctx = ctx
        self.started_at = ctx.now()
        barrier = Barrier(self.threads, f"{self.name}-bar", spin=self.spin)
        self.barrier = barrier
        join = self._join_counter(self.threads)
        rng = ctx.rng
        phases, mean, jit = self.phases, self.phase_work_ns, self.jitter

        def body(api):
            for _ in range(phases):
                work = max(50_000, int(rng.normal(mean, mean * jit)))
                yield api.run(work)
                yield api.barrier(barrier)

        for i in range(self.threads):
            t = self._spawn(body, f"{self.name}-{i}", initial_util=700)
            self.ctx.kernel.on_exit(t, join)


class DataParallelWorkload(Workload):
    """A bag of independent chunks pulled from a shared queue."""

    def __init__(self, name: str, threads: int = 8, chunks: int = 400,
                 chunk_work_ns: int = 4 * MSEC, jitter: float = 0.3):
        super().__init__(name)
        self.threads = threads
        self.chunks = chunks
        self.chunk_work_ns = chunk_work_ns
        self.jitter = jitter

    def start(self, ctx: WorkloadContext) -> None:
        self.ctx = ctx
        self.started_at = ctx.now()
        queue = Channel(f"{self.name}-q", lines=2)
        rng = ctx.rng
        for _ in range(self.chunks):
            work = max(50_000, int(rng.normal(
                self.chunk_work_ns, self.chunk_work_ns * self.jitter)))
            queue.items.append((work, None))
        for _ in range(self.threads):
            queue.items.append((None, None))  # poison pills
        join = self._join_counter(self.threads)

        def body(api):
            while True:
                work = yield api.recv(queue)
                if work is None:
                    return
                yield api.run(work)

        for i in range(self.threads):
            t = self._spawn(body, f"{self.name}-{i}", initial_util=700)
            self.ctx.kernel.on_exit(t, join)


class PipelineWorkload(Workload):
    """Staged pipeline with bounded inter-stage queues."""

    def __init__(self, name: str, items: int = 600,
                 stages: Optional[List[Tuple[str, int, int]]] = None,
                 queue_capacity: int = 16, lines: int = 16):
        super().__init__(name)
        self.items = items
        #: (stage name, worker count, per-item work ns)
        self.stages = stages or [
            ("read", 1, 300 * USEC),
            ("compress", 4, 2 * MSEC),
            ("write", 1, 300 * USEC),
        ]
        self.queue_capacity = queue_capacity
        self.lines = lines

    def start(self, ctx: WorkloadContext) -> None:
        self.ctx = ctx
        self.started_at = ctx.now()
        n_stages = len(self.stages)
        queues = [Channel(f"{self.name}-q{i}", capacity=self.queue_capacity,
                          lines=self.lines)
                  for i in range(n_stages + 1)]
        # Preload the source queue with item descriptors.
        for i in range(self.items):
            queues[0].items.append((i, None))
        total_workers = sum(w for _, w, _ in self.stages)
        sink_count = [0]
        wl = self

        def make_stage(idx: int, work_ns: int, last: bool):
            inq, outq = queues[idx], queues[idx + 1]

            def body(api):
                while True:
                    item = yield api.recv(inq)
                    if item is None:
                        return
                    yield api.run(work_ns)
                    if last:
                        sink_count[0] += 1
                        if sink_count[0] >= wl.items:
                            wl._mark_done()
                    else:
                        yield api.send(outq, item)

            return body

        for idx, (sname, workers, work_ns) in enumerate(self.stages):
            last = idx == n_stages - 1
            for w in range(workers):
                self._spawn(make_stage(idx, work_ns, last),
                            f"{self.name}-{sname}{w}", initial_util=400)

    @property
    def threads(self) -> int:
        return sum(w for _, w, _ in self.stages)


class LockWorkload(Workload):
    """Lock-dominated iteration: acquire, critical section, release, work."""

    def __init__(self, name: str, threads: int = 8, iterations: int = 300,
                 cs_work_ns: int = 400 * USEC, outside_work_ns: int = 2 * MSEC,
                 spin: bool = False):
        super().__init__(name)
        self.threads = threads
        self.iterations = iterations
        self.cs_work_ns = cs_work_ns
        self.outside_work_ns = outside_work_ns
        self.spin = spin

    def start(self, ctx: WorkloadContext) -> None:
        self.ctx = ctx
        self.started_at = ctx.now()
        lock = Mutex(f"{self.name}-lock", spin=self.spin)
        self.lock = lock
        join = self._join_counter(self.threads)
        iters, cs, out = self.iterations, self.cs_work_ns, self.outside_work_ns
        rng = ctx.rng

        def body(api):
            for _ in range(iters):
                yield api.run(max(20_000, int(rng.normal(out, out * 0.2))))
                yield api.lock(lock)
                yield api.run(cs)
                yield api.unlock(lock)

        for i in range(self.threads):
            t = self._spawn(body, f"{self.name}-{i}", initial_util=700)
            self.ctx.kernel.on_exit(t, join)


@dataclass(frozen=True)
class ParsecSpec:
    """Family + shape parameters for one named benchmark."""

    family: str                 # barrier | dataparallel | pipeline | lock
    sync_intensity: float = 1.0  # scales phase/chunk granularity (finer = more sync)
    spin: bool = False
    total_work_ms_per_thread: int = 1200


PARSEC_SPECS: Dict[str, ParsecSpec] = {
    # --- PARSEC ---------------------------------------------------------
    "blackscholes":  ParsecSpec("dataparallel", 0.3),
    "bodytrack":     ParsecSpec("barrier", 1.0),
    "canneal":       ParsecSpec("lock", 1.2),
    "dedup":         ParsecSpec("pipeline", 1.0),
    "facesim":       ParsecSpec("barrier", 0.6),
    "ferret":        ParsecSpec("pipeline", 1.2),
    "fluidanimate":  ParsecSpec("lock", 1.6),
    "freqmine":      ParsecSpec("dataparallel", 0.6),
    "streamcluster": ParsecSpec("barrier", 2.2, spin=True),
    "swaptions":     ParsecSpec("dataparallel", 0.25),
    "x264":          ParsecSpec("pipeline", 0.8),
    # --- SPLASH-2x -------------------------------------------------------
    "barnes":        ParsecSpec("barrier", 0.8),
    "fft":           ParsecSpec("barrier", 0.5),
    "lu_cb":         ParsecSpec("barrier", 0.9),
    "lu_ncb":        ParsecSpec("barrier", 1.1),
    "ocean_cp":      ParsecSpec("barrier", 1.4),
    "ocean_ncp":     ParsecSpec("barrier", 1.7),
    "radiosity":     ParsecSpec("lock", 1.0),
    "radix":         ParsecSpec("barrier", 0.7),
    "raytrace":      ParsecSpec("dataparallel", 0.5),
    "volrend":       ParsecSpec("lock", 1.4, spin=True),
    "water_spatial": ParsecSpec("barrier", 0.9),
}


def build_parsec(name: str, threads: int, scale: float = 1.0) -> Workload:
    """Instantiate a named PARSEC/SPLASH benchmark.

    ``scale`` shrinks total work for fast test runs while preserving the
    benchmark's synchronization granularity.
    """
    spec = PARSEC_SPECS[name]
    total_ns = int(spec.total_work_ms_per_thread * MSEC * scale)
    if spec.family == "barrier":
        phase_ns = max(500 * USEC, int(8 * MSEC / spec.sync_intensity))
        phases = max(3, total_ns // phase_ns)
        return BarrierWorkload(name, threads=threads, phases=phases,
                               phase_work_ns=phase_ns, spin=spec.spin)
    if spec.family == "dataparallel":
        chunk_ns = max(1 * MSEC, int(6 * MSEC / max(spec.sync_intensity, 0.1)))
        chunks = max(threads, threads * total_ns // chunk_ns)
        return DataParallelWorkload(name, threads=threads,
                                    chunks=int(chunks), chunk_work_ns=chunk_ns)
    if spec.family == "pipeline":
        mid_workers = max(1, threads - 2)
        per_item = max(300 * USEC, int(2 * MSEC / spec.sync_intensity))
        items = max(20, mid_workers * total_ns // per_item)
        stages = [("in", 1, per_item // 4),
                  ("work", mid_workers, per_item),
                  ("out", 1, per_item // 4)]
        return PipelineWorkload(name, items=int(items), stages=stages)
    if spec.family == "lock":
        outside_ns = max(300 * USEC, int(2 * MSEC / spec.sync_intensity))
        iters = max(10, total_ns // outside_ns)
        return LockWorkload(name, threads=threads, iterations=int(iters),
                            outside_work_ns=outside_ns,
                            cs_work_ns=max(50 * USEC, outside_ns // 6),
                            spin=spec.spin)
    raise ValueError(f"unknown family {spec.family}")
