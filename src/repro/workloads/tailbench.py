"""Tailbench-style latency-sensitive workloads (§5.1, §5.4).

An open-loop request generator (Poisson arrivals from "the network")
dispatches small requests to a pool of worker tasks.  Per-request queue /
service / end-to-end times are recorded — Table 3's breakdown.

Each named Tailbench benchmark maps to a service-time distribution and a
default arrival rate chosen to keep the system lightly loaded (as the paper
does: it reduces arrival rates so runqueue delay behind other requests is
negligible and the extended runqueue latency dominates).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.sim.engine import MSEC, SEC, USEC
from repro.workloads.base import RequestRecord, Workload, WorkloadContext
from repro.guest.sync import Channel


@dataclass(frozen=True)
class TailbenchSpec:
    """Service-time shape of one Tailbench benchmark."""

    service_mean_ns: int
    service_sigma_ns: int
    interarrival_mean_ns: int
    workers: int = 8


#: Benchmark catalogue.  Service times follow the relative magnitudes
#: reported for Tailbench (Kasture & Sanchez 2016): masstree/silo are
#: sub-millisecond key-value/OLTP, img-dnn ~ a millisecond, moses/sphinx
#: are heavyweight.
TAILBENCH: Dict[str, TailbenchSpec] = {
    "img-dnn":  TailbenchSpec(1100 * USEC, 200 * USEC, 25 * MSEC),
    "masstree": TailbenchSpec(350 * USEC, 80 * USEC, 12 * MSEC),
    "moses":    TailbenchSpec(2500 * USEC, 600 * USEC, 40 * MSEC),
    "silo":     TailbenchSpec(120 * USEC, 40 * USEC, 8 * MSEC),
    "shore":    TailbenchSpec(900 * USEC, 250 * USEC, 20 * MSEC),
    "specjbb":  TailbenchSpec(600 * USEC, 150 * USEC, 15 * MSEC),
    "sphinx":   TailbenchSpec(2800 * USEC, 900 * USEC, 50 * MSEC),
    "xapian":   TailbenchSpec(500 * USEC, 120 * USEC, 12 * MSEC),
}


class LatencyWorkload(Workload):
    """Open-loop request/worker latency benchmark."""

    kind = "latency"

    def __init__(self, name: str, spec: Optional[TailbenchSpec] = None,
                 n_requests: int = 400, workers: Optional[int] = None,
                 warmup_requests: int = 30):
        super().__init__(name)
        self.spec = spec or TAILBENCH[name]
        self.n_requests = n_requests
        self.workers = workers if workers is not None else self.spec.workers
        self.warmup_requests = warmup_requests
        self._sent = 0
        self._served = 0

    # ------------------------------------------------------------------
    def start(self, ctx: WorkloadContext) -> None:
        self.ctx = ctx
        self.started_at = ctx.now()
        self.channel = Channel(f"{self.name}-req", lines=8)
        spec = self.spec
        wl = self

        def worker(api):
            while True:
                req = yield api.recv(wl.channel)
                start = api.now()
                yield api.run(req["service"])
                finish = api.now()
                wl._served += 1
                if req["index"] >= wl.warmup_requests:
                    wl.requests.append(
                        RequestRecord(req["arrival"], start, finish))
                if wl._served >= wl.n_requests:
                    wl._mark_done()

        for i in range(self.workers):
            self._spawn(worker, f"{self.name}-w{i}", latency_sensitive=True)
        self._schedule_next_arrival()

    def _schedule_next_arrival(self) -> None:
        if self._sent >= self.n_requests:
            return
        gap = max(1, int(self.ctx.rng.exponential(self.spec.interarrival_mean_ns)))
        self.ctx.engine.call_in(gap, self._arrive)

    def _arrive(self) -> None:
        service = max(10_000, int(self.ctx.rng.normal(
            self.spec.service_mean_ns, self.spec.service_sigma_ns)))
        req = {"arrival": self.ctx.now(), "service": service,
               "index": self._sent}
        self._sent += 1
        self.ctx.kernel.send_external(self.channel, req)
        self._schedule_next_arrival()
