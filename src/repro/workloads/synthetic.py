"""Synthetic CPU-bound workloads: sysbench-style stressors and matmul.

These are the contention generators and throughput yardsticks of the
evaluation: Sysbench CPU (events/second of fixed-size work chunks), Matmul
(large CPU-bound chunks), and a plain fixed-work job used by the motivating
experiments.
"""

from __future__ import annotations

from functools import partial
from typing import Optional

from repro.guest.task import StatefulBody
from repro.sim.engine import MSEC, SEC, USEC
from repro.workloads.base import Workload, WorkloadContext

# The worker bodies here are explicit state machines (StatefulBody), not
# generator closures: a closure's free variables deep-copy by reference
# and a suspended generator cannot deep-copy at all, so neither survives
# a world snapshot.  Each body keeps its cross-iteration state in
# attributes, which the fork copies along with everything else.


class _ChunkedWorkBody(StatefulBody):
    """Retire ``total`` ns of compute in ``chunk``-sized steps."""

    def __init__(self, api, *, total: int, chunk: int):
        self.api = api
        self.remaining = total
        self.chunk = chunk

    def send(self, value):
        if self.remaining <= 0:
            raise StopIteration
        step = min(self.chunk, self.remaining)
        self.remaining -= step
        return self.api.run(step)


class CpuBoundJob(Workload):
    """``threads`` workers each retiring ``work_per_thread_ns`` of compute."""

    def __init__(self, name: str = "cpubound", threads: int = 1,
                 work_per_thread_ns: int = 1 * SEC, chunk_ns: int = 1 * MSEC):
        super().__init__(name)
        self.threads = threads
        self.work_per_thread_ns = work_per_thread_ns
        self.chunk_ns = chunk_ns

    def start(self, ctx: WorkloadContext) -> None:
        self.ctx = ctx
        self.started_at = ctx.now()
        join = self._join_counter(self.threads)
        factory = partial(_ChunkedWorkBody, total=self.work_per_thread_ns,
                          chunk=self.chunk_ns)
        for i in range(self.threads):
            t = self._spawn(factory, f"{self.name}-{i}", initial_util=800)
            self.ctx.kernel.on_exit(t, join)


class SysbenchCpu(Workload):
    """Open-ended CPU stress reporting events/second (sysbench cpu).

    Runs until the experiment ends; throughput is ``events()`` over the
    measurement window.
    """

    def __init__(self, name: str = "sysbench", threads: int = 4,
                 event_work_ns: int = 500 * USEC,
                 duration_ns: Optional[int] = None):
        super().__init__(name)
        self.threads = threads
        self.event_work_ns = event_work_ns
        self.duration_ns = duration_ns
        self.deadline: Optional[int] = None
        self.events = 0

    def start(self, ctx: WorkloadContext) -> None:
        self.ctx = ctx
        self.started_at = ctx.now()
        self.deadline = (None if self.duration_ns is None
                         else ctx.now() + self.duration_ns)
        join = self._join_counter(self.threads)
        factory = partial(_SysbenchBody, workload=self)
        for i in range(self.threads):
            t = self._spawn(factory, f"{self.name}-{i}", initial_util=800)
            self.ctx.kernel.on_exit(t, join)

    def events_per_sec(self, window_ns: int) -> float:
        return self.events / (window_ns / SEC)


class _SysbenchBody(StatefulBody):
    """One sysbench stressor thread.  ``issued`` tracks whether a work
    chunk is outstanding so the event counter still increments on
    *completion*, exactly like the original generator did on resume."""

    def __init__(self, api, *, workload: "SysbenchCpu"):
        self.api = api
        self.workload = workload
        self.issued = False

    def send(self, value):
        wl = self.workload
        if self.issued:
            wl.events += 1
        deadline = wl.deadline
        if deadline is not None and self.api.now() >= deadline:
            raise StopIteration
        self.issued = True
        return self.api.run(wl.event_work_ns)


class SelfMigratingJob(Workload):
    """The Figure 3 synthetic thread: CPU-intensive, optionally migrating
    itself circularly among idle vCPUs every ``migrate_every_ns``."""

    def __init__(self, name: str = "selfmig", work_ns: int = 1 * SEC,
                 migrate_every_ns: Optional[int] = 4 * MSEC):
        super().__init__(name)
        self.work_ns = work_ns
        self.migrate_every_ns = migrate_every_ns

    def start(self, ctx: WorkloadContext) -> None:
        self.ctx = ctx
        self.started_at = ctx.now()
        join = self._join_counter(1)
        factory = partial(_SelfMigratingBody, total=self.work_ns,
                          every=self.migrate_every_ns,
                          n_cpus=len(ctx.kernel.cpus))
        t = self._spawn(factory, self.name, initial_util=900)
        self.ctx.kernel.on_exit(t, join)


class _SelfMigratingBody(StatefulBody):
    """Run a chunk, then hop to the next vCPU, until the work is done."""

    def __init__(self, api, *, total: int, every: Optional[int], n_cpus: int):
        self.api = api
        self.remaining = total
        self.every = every
        self.n_cpus = n_cpus
        self.migrate_next = False

    def send(self, value):
        if self.migrate_next:
            self.migrate_next = False
            target = (self.api.cpu_index() + 1) % self.n_cpus
            return self.api.migrate_to(target)
        if self.remaining <= 0:
            raise StopIteration
        step = min(self.every or MSEC, self.remaining)
        self.remaining -= step
        if self.every is not None and self.remaining > 0:
            self.migrate_next = True
        return self.api.run(step)


class Matmul(Workload):
    """CPU-intensive matrix-multiply stand-in: large uninterrupted chunks."""

    def __init__(self, name: str = "matmul", threads: int = 16,
                 blocks: int = 64, block_work_ns: int = 20 * MSEC):
        super().__init__(name)
        self.threads = threads
        self.blocks = blocks
        self.block_work_ns = block_work_ns
        self.blocks_done = 0

    def start(self, ctx: WorkloadContext) -> None:
        self.ctx = ctx
        self.started_at = ctx.now()
        join = self._join_counter(self.threads)
        factory = partial(_MatmulBody, workload=self,
                          blocks=max(1, self.blocks // self.threads))
        for i in range(self.threads):
            t = self._spawn(factory, f"{self.name}-{i}", initial_util=900)
            self.ctx.kernel.on_exit(t, join)


class _MatmulBody(StatefulBody):
    """Retire ``blocks`` uninterrupted blocks, counting each only once
    its run completes (the ``issued`` flag mirrors the generator's
    increment-on-resume ordering)."""

    def __init__(self, api, *, workload: "Matmul", blocks: int):
        self.api = api
        self.workload = workload
        self.blocks_left = blocks
        self.issued = False

    def send(self, value):
        if self.issued:
            self.workload.blocks_done += 1
            self.issued = False
        if self.blocks_left <= 0:
            raise StopIteration
        self.blocks_left -= 1
        self.issued = True
        return self.api.run(self.workload.block_work_ns)
