"""Synthetic CPU-bound workloads: sysbench-style stressors and matmul.

These are the contention generators and throughput yardsticks of the
evaluation: Sysbench CPU (events/second of fixed-size work chunks), Matmul
(large CPU-bound chunks), and a plain fixed-work job used by the motivating
experiments.
"""

from __future__ import annotations

from typing import Optional

from repro.sim.engine import MSEC, SEC, USEC
from repro.workloads.base import Workload, WorkloadContext


class CpuBoundJob(Workload):
    """``threads`` workers each retiring ``work_per_thread_ns`` of compute."""

    def __init__(self, name: str = "cpubound", threads: int = 1,
                 work_per_thread_ns: int = 1 * SEC, chunk_ns: int = 1 * MSEC):
        super().__init__(name)
        self.threads = threads
        self.work_per_thread_ns = work_per_thread_ns
        self.chunk_ns = chunk_ns

    def start(self, ctx: WorkloadContext) -> None:
        self.ctx = ctx
        self.started_at = ctx.now()
        join = self._join_counter(self.threads)
        total = self.work_per_thread_ns
        chunk = self.chunk_ns

        def body(api):
            remaining = total
            while remaining > 0:
                step = min(chunk, remaining)
                yield api.run(step)
                remaining -= step

        for i in range(self.threads):
            t = self._spawn(body, f"{self.name}-{i}", initial_util=800)
            self.ctx.kernel.on_exit(t, join)


class SysbenchCpu(Workload):
    """Open-ended CPU stress reporting events/second (sysbench cpu).

    Runs until the experiment ends; throughput is ``events()`` over the
    measurement window.
    """

    def __init__(self, name: str = "sysbench", threads: int = 4,
                 event_work_ns: int = 500 * USEC,
                 duration_ns: Optional[int] = None):
        super().__init__(name)
        self.threads = threads
        self.event_work_ns = event_work_ns
        self.duration_ns = duration_ns
        self.events = 0

    def start(self, ctx: WorkloadContext) -> None:
        self.ctx = ctx
        self.started_at = ctx.now()
        deadline = (None if self.duration_ns is None
                    else ctx.now() + self.duration_ns)
        join = self._join_counter(self.threads)
        work = self.event_work_ns
        wl = self

        def body(api):
            while deadline is None or api.now() < deadline:
                yield api.run(work)
                wl.events += 1

        for i in range(self.threads):
            t = self._spawn(body, f"{self.name}-{i}", initial_util=800)
            self.ctx.kernel.on_exit(t, join)

    def events_per_sec(self, window_ns: int) -> float:
        return self.events / (window_ns / SEC)


class SelfMigratingJob(Workload):
    """The Figure 3 synthetic thread: CPU-intensive, optionally migrating
    itself circularly among idle vCPUs every ``migrate_every_ns``."""

    def __init__(self, name: str = "selfmig", work_ns: int = 1 * SEC,
                 migrate_every_ns: Optional[int] = 4 * MSEC):
        super().__init__(name)
        self.work_ns = work_ns
        self.migrate_every_ns = migrate_every_ns

    def start(self, ctx: WorkloadContext) -> None:
        self.ctx = ctx
        self.started_at = ctx.now()
        n_cpus = len(ctx.kernel.cpus)
        total = self.work_ns
        every = self.migrate_every_ns
        join = self._join_counter(1)

        def body(api):
            remaining = total
            target = 0
            while remaining > 0:
                step = min(every or MSEC, remaining)
                yield api.run(step)
                remaining -= step
                if every is not None and remaining > 0:
                    target = (api.cpu_index() + 1) % n_cpus
                    yield api.migrate_to(target)

        t = self._spawn(body, self.name, initial_util=900)
        self.ctx.kernel.on_exit(t, join)


class Matmul(Workload):
    """CPU-intensive matrix-multiply stand-in: large uninterrupted chunks."""

    def __init__(self, name: str = "matmul", threads: int = 16,
                 blocks: int = 64, block_work_ns: int = 20 * MSEC):
        super().__init__(name)
        self.threads = threads
        self.blocks = blocks
        self.block_work_ns = block_work_ns
        self.blocks_done = 0

    def start(self, ctx: WorkloadContext) -> None:
        self.ctx = ctx
        self.started_at = ctx.now()
        join = self._join_counter(self.threads)
        per_thread = max(1, self.blocks // self.threads)
        work = self.block_work_ns
        wl = self

        def body(api):
            for _ in range(per_thread):
                yield api.run(work)
                wl.blocks_done += 1

        for i in range(self.threads):
            t = self._spawn(body, f"{self.name}-{i}", initial_util=900)
            self.ctx.kernel.on_exit(t, join)
