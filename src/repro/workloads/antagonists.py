"""Adversarial co-tenant antagonists: the attack-plan library.

The vProbers infer capacity/activity/topology from timing signals, and a
co-located tenant (or a host-side controller) can shape those signals.
This module defines the scheduler-level adversary family as **pure,
seeded, deterministic plans** — plain frozen dataclasses whose ``repr``
doubles as a cache key, plus plan builders that derive every timing
parameter from an :class:`AntagonistSpec`.  Nothing here touches the
hypervisor; installation (driving the host machine) lives in
:mod:`repro.cluster.antagonists`, keeping this module guest-side clean.

The five classes:

* ``tick_evader`` — duty cycler phase-locked to the guest accounting
  grid: it steals a sub-threshold slice every tick, so each tick's steal
  jump lands *below* vact's preemption threshold.  Naive vact counts zero
  preemptions and concludes "dedicated vCPU" while capacity quietly leaks.
* ``probe_poisoner`` — spins (heavy weight) only during vcap's sampling
  windows, whose 1 Hz grid is observable.  Naive vcap's window share then
  measures the poisoner, not the normal share; outside the windows the
  vCPU runs nearly unmolested.
* ``steal_flapper`` — alternates heavy contention and silence with a
  period incommensurate with the sampling grid, whipsawing naive EMAs
  between extremes that never match the long-run average.
* ``burst_thief`` — theft-of-service neighbor: long quiet stretches, then
  short very-heavy bursts at seeded-random instants.  The long-run damage
  is small but each burst craters instantaneous estimates.
* ``adaptive_quota`` — a host-side bandwidth controller retuning a VM's
  quota/period online.  Not malicious, but the same failure mode: the
  capacity signal moves faster than naive smoothing can track.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.core.weights import weight_for_nice
from repro.sim.engine import MSEC, SEC, USEC
from repro.sim.rng import make_rng

#: The antagonist class names, in canonical order (figure rows, CI smoke).
ANTAGONIST_KINDS = ("tick_evader", "probe_poisoner", "steal_flapper",
                    "burst_thief", "adaptive_quota")


@dataclass(frozen=True)
class AntagonistSpec:
    """One adversary instance: class, strength, and RNG seed label.

    ``intensity`` scales each class's principal knob over [0, 1] (duty
    fraction, co-runner weight, burst length, retune amplitude); 1.0 is
    the default "clearly adversarial yet plausible tenant" point used by
    the figA1 sweep.  ``repr`` of this frozen dataclass is part of the
    experiment cache key, so every field must stay plain data.
    """

    kind: str
    intensity: float = 1.0
    seed: str = "antagonist"

    def __post_init__(self):
        if self.kind not in ANTAGONIST_KINDS:
            raise ValueError(f"unknown antagonist kind {self.kind!r}")
        if not 0.0 <= self.intensity <= 1.0:
            raise ValueError("intensity must lie in [0, 1]")


@dataclass(frozen=True)
class DutyCyclePlan:
    """Periodic on/off co-runner, one per targeted hardware thread."""

    on_ns: int
    off_ns: int
    phase_ns: int = 0
    weight: int = weight_for_nice(0)


@dataclass(frozen=True)
class BurstPlan:
    """Seeded burst schedule: ``bursts`` holds (start_ns, duration_ns)."""

    bursts: Tuple[Tuple[int, int], ...]
    weight: int


@dataclass(frozen=True)
class QuotaPlan:
    """Online bandwidth retuning: (at_ns, quota_ns, period_ns) updates."""

    updates: Tuple[Tuple[int, int, int], ...]


# ---------------------------------------------------------------------------
# Plan builders — pure functions of (spec, grid constants)
# ---------------------------------------------------------------------------
def tick_evader_plan(spec: AntagonistSpec,
                     tick_ns: int = 1 * MSEC,
                     graze_floor_ns: int = 25 * USEC,
                     preempt_threshold_ns: int = 200 * USEC) -> DutyCyclePlan:
    """Steal a per-tick slice inside [graze floor, preempt threshold).

    The on-time interpolates from just above the noise floor (intensity 0)
    to 80% of the preemption threshold (intensity 1) — never crossing it,
    which is the whole point of the evasion.
    """
    lo = int(1.6 * graze_floor_ns)
    hi = int(0.8 * preempt_threshold_ns)
    on = lo + int(spec.intensity * (hi - lo))
    return DutyCyclePlan(on_ns=on, off_ns=tick_ns - on,
                         weight=weight_for_nice(-5))


def probe_poisoner_plan(spec: AntagonistSpec,
                        window_interval_ns: int = 1 * SEC,
                        window_len_ns: int = 100 * MSEC,
                        window_start_ns: int = 10 * MSEC) -> DutyCyclePlan:
    """Spin at heavy weight across each vcap sampling window.

    The on-phase covers the window plus the spawn stagger slack, leading
    it slightly so the poisoner is already queued when probers spawn.
    Intensity sets the poisoner's weight: at 1.0 it outweighs a nice-0
    vCPU 3:1, collapsing the naive window share to ~25%.
    """
    lead = 2 * MSEC
    on = window_len_ns + 12 * MSEC + lead
    weight = int(weight_for_nice(0) * (0.5 + 2.5 * spec.intensity))
    return DutyCyclePlan(on_ns=on, off_ns=window_interval_ns - on,
                         phase_ns=max(0, window_start_ns - lead),
                         weight=weight)


def steal_flapper_plan(spec: AntagonistSpec) -> DutyCyclePlan:
    """Alternate contention/silence out of phase with the sampling grid.

    The 370/430 ms duty period shares no small common multiple with the
    1 s window grid, so consecutive windows sample wildly different duty
    phases and a naive EMA never settles.  Intensity sets the contending
    weight (0.5×–2× a nice-0 vCPU).
    """
    weight = int(weight_for_nice(0) * (0.5 + 1.5 * spec.intensity))
    return DutyCyclePlan(on_ns=370 * MSEC, off_ns=430 * MSEC, weight=weight)


def burst_thief_plan(spec: AntagonistSpec,
                     horizon_ns: int = 60 * SEC) -> BurstPlan:
    """Quiet stretches punctuated by short, very heavy bursts.

    Gap and burst lengths are drawn from ``make_rng(spec.seed)`` so the
    schedule is reproducible and cache-stable.  Intensity scales burst
    duration (80–480 ms at intensity 1).
    """
    rng = make_rng(spec.seed)
    bursts = []
    t = int(rng.uniform(0.3, 1.0) * SEC)
    while t < horizon_ns:
        dur = int((80 + 400 * spec.intensity * rng.uniform(0.3, 1.0)) * MSEC)
        bursts.append((t, dur))
        t += dur + int(rng.uniform(0.8, 2.4) * SEC)
    return BurstPlan(bursts=tuple(bursts), weight=4 * weight_for_nice(0))


def adaptive_quota_plan(spec: AntagonistSpec,
                        horizon_ns: int = 60 * SEC) -> QuotaPlan:
    """A host controller retuning quota/period every few hundred ms.

    Quota fraction wanders in [1 − 0.6·intensity, 1]; the period hops
    between 5/10/20 ms, which also moves the vCPU-latency signal.  All
    draws come from ``make_rng(spec.seed)``.
    """
    rng = make_rng(spec.seed)
    periods = (5 * MSEC, 10 * MSEC, 20 * MSEC)
    updates = []
    t = int(rng.uniform(0.2, 0.8) * SEC)
    while t < horizon_ns:
        frac = 1.0 - spec.intensity * rng.uniform(0.0, 0.6)
        period = periods[int(rng.uniform(0, len(periods))) % len(periods)]
        updates.append((t, int(frac * period), period))
        t += int(rng.uniform(0.5, 0.9) * SEC)
    return QuotaPlan(updates=tuple(updates))


def build_plan(spec: AntagonistSpec, horizon_ns: int = 60 * SEC):
    """Dispatch to the class's plan builder with grid defaults."""
    if spec.kind == "tick_evader":
        return tick_evader_plan(spec)
    if spec.kind == "probe_poisoner":
        return probe_poisoner_plan(spec)
    if spec.kind == "steal_flapper":
        return steal_flapper_plan(spec)
    if spec.kind == "burst_thief":
        return burst_thief_plan(spec, horizon_ns)
    return adaptive_quota_plan(spec, horizon_ns)
