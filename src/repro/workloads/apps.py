"""Remaining application workloads: Pbzip2, Fio, Hackbench.

* :class:`Pbzip2` — parallel file compression: a read stage feeding
  compression workers and a write stage (pipeline with coarse chunks).
* :class:`Fio` — I/O-intensive: threads alternating tiny CPU bursts with
  I/O waits; almost no CPU demand, sensitive only to wake-up latency.
* :class:`Hackbench` — scheduler stress: groups of senders and receivers
  exchanging many small messages; throughput is dominated by wake-up cost
  and communication distance (the LLC experiment of §5.3).
"""

from __future__ import annotations

from typing import List

from repro.guest.sync import Channel
from repro.sim.engine import MSEC, SEC, USEC
from repro.workloads.base import Workload, WorkloadContext
from repro.workloads.parsec import PipelineWorkload


class Pbzip2(PipelineWorkload):
    """Parallel bzip2: 1 reader, N compressors, 1 writer."""

    def __init__(self, name: str = "pbzip2", threads: int = 8,
                 blocks: int = 400, block_work_ns: int = 3 * MSEC):
        compressors = max(1, threads - 2)
        super().__init__(
            name, items=blocks,
            stages=[("read", 1, block_work_ns // 10),
                    ("bzip", compressors, block_work_ns),
                    ("write", 1, block_work_ns // 10)],
            queue_capacity=2 * compressors, lines=32)


class Fio(Workload):
    """Flexible I/O tester: submit, wait for completion, repeat."""

    def __init__(self, name: str = "fio", threads: int = 8,
                 iterations: int = 400, cpu_ns: int = 30 * USEC,
                 io_wait_ns: int = 800 * USEC):
        super().__init__(name)
        self.threads = threads
        self.iterations = iterations
        self.cpu_ns = cpu_ns
        self.io_wait_ns = io_wait_ns
        self.ios_done = 0

    def start(self, ctx: WorkloadContext) -> None:
        self.ctx = ctx
        self.started_at = ctx.now()
        join = self._join_counter(self.threads)
        rng = ctx.rng
        wl = self

        def body(api):
            for _ in range(wl.iterations):
                yield api.run(wl.cpu_ns)
                yield api.sleep(max(10_000, int(rng.exponential(wl.io_wait_ns))))
                wl.ios_done += 1

        for i in range(self.threads):
            t = self._spawn(body, f"{self.name}-{i}")
            self.ctx.kernel.on_exit(t, join)


class Hackbench(Workload):
    """Groups of sender/receiver pairs flooding small messages."""

    def __init__(self, name: str = "hackbench", groups: int = 4,
                 pairs_per_group: int = 4, messages: int = 200,
                 msg_work_ns: int = 10 * USEC, lines: int = 48):
        super().__init__(name)
        self.groups = groups
        self.pairs_per_group = pairs_per_group
        self.messages = messages
        self.msg_work_ns = msg_work_ns
        #: Cache lines per message (socket buffer + header footprint).
        self.lines = lines

    @property
    def threads(self) -> int:
        return self.groups * self.pairs_per_group * 2

    def start(self, ctx: WorkloadContext) -> None:
        self.ctx = ctx
        self.started_at = ctx.now()
        join = self._join_counter(self.groups * self.pairs_per_group * 2)
        wl = self

        for g in range(self.groups):
            for p in range(self.pairs_per_group):
                fwd = Channel(f"{self.name}-g{g}p{p}f", capacity=64,
                              lines=self.lines)
                ack = Channel(f"{self.name}-g{g}p{p}a", capacity=64,
                              lines=max(1, self.lines // 8))

                def sender(api, fwd=fwd, ack=ack):
                    for i in range(wl.messages):
                        yield api.run(wl.msg_work_ns)
                        yield api.send(fwd, i)
                        yield api.recv(ack)

                def receiver(api, fwd=fwd, ack=ack):
                    for _ in range(wl.messages):
                        yield api.recv(fwd)
                        yield api.run(wl.msg_work_ns)
                        yield api.send(ack, True)

                t1 = self._spawn(sender, f"{self.name}-s{g}.{p}")
                t2 = self._spawn(receiver, f"{self.name}-r{g}.{p}")
                self.ctx.kernel.on_exit(t1, join)
                self.ctx.kernel.on_exit(t2, join)
