"""vProbers: user-level microbenchmarks exposing accurate vCPU abstraction."""

from repro.probers.robust import (
    HysteresisGate,
    RobustScalarEstimator,
    TopologyQuarantine,
)
from repro.probers.vact import VAct
from repro.probers.vcap import VCap
from repro.probers.vtop import PairProbe, VTop, classify

__all__ = ["VCap", "VAct", "VTop", "PairProbe", "classify",
           "RobustScalarEstimator", "HysteresisGate", "TopologyQuarantine"]
