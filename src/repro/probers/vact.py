"""vact: the activity prober (§3.1).

The kernel half of vact lives in :class:`repro.guest.kernel.GuestKernel`:
a heartbeat timestamp per scheduler tick, a preemption counter incremented
on qualified steal-time jumps, and the vCPU-state query function.  This
user-space half turns the per-window counters (collected during vcap's
sampling periods, as in the paper) into the new abstraction:

* **vCPU latency** — average inactive period = steal_delta / preemptions;
* **average active period** — (window − steal_delta) / preemptions.

A window with no qualified preemptions means the vCPU ran undisturbed, so
its latency estimate converges to zero (a dedicated vCPU).
"""

from __future__ import annotations

from typing import Iterable, Tuple

from repro.core.module import VSchedModule
from repro.guest.kernel import GuestKernel, VCpuHostState


class VAct:
    """Activity estimation; fed by vcap's sampling windows."""

    def __init__(self, kernel: GuestKernel, module: VSchedModule):
        self.kernel = kernel
        self.module = module
        self.windows_processed = 0

    def on_window(self, samples: Iterable[Tuple[int, int, int, int]]) -> None:
        """Consume one sampling window.

        ``samples`` holds ``(cpu, steal_delta, preemptions, window_ns)``
        per probed vCPU.
        """
        for cpu, steal_delta, preempts, window in samples:
            if preempts > 0:
                latency = steal_delta / preempts
                active = max(0, window - steal_delta) / preempts
            else:
                # No preemption observed: vCPU behaved like a dedicated
                # core for the whole window.
                latency = 0.0
                active = float(window)
            self.module.publish_activity(cpu, latency, active)
        self.windows_processed += 1

    # ------------------------------------------------------------------
    # Convenience passthroughs for the optimizing techniques
    # ------------------------------------------------------------------
    def state(self, cpu_index: int):
        """(state, since) from the kernel's heartbeat query."""
        return self.kernel.vcpu_state(cpu_index)

    def is_active(self, cpu_index: int) -> bool:
        state, _ = self.kernel.vcpu_state(cpu_index)
        return state == VCpuHostState.ACTIVE
