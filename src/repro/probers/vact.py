"""vact: the activity prober (§3.1).

The kernel half of vact lives in :class:`repro.guest.kernel.GuestKernel`:
a heartbeat timestamp per scheduler tick, a preemption counter incremented
on qualified steal-time jumps, and the vCPU-state query function.  This
user-space half turns the per-window counters (collected during vcap's
sampling periods, as in the paper) into the new abstraction:

* **vCPU latency** — average inactive period = steal_delta / preemptions;
* **average active period** — (window − steal_delta) / preemptions.

A window with no qualified preemptions means the vCPU ran undisturbed, so
its latency estimate converges to zero (a dedicated vCPU).
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Tuple

from repro.core.module import VSchedModule
from repro.guest.kernel import GuestKernel, VCpuHostState
from repro.probers.robust import HysteresisGate, RobustScalarEstimator


class VAct:
    """Activity estimation; fed by vcap's sampling windows."""

    def __init__(self, kernel: GuestKernel, module: VSchedModule,
                 robust: Optional[dict] = None):
        self.kernel = kernel
        self.module = module
        self.windows_processed = 0
        #: Robust-estimation parameters (``VSchedConfig.robust_probers``);
        #: None keeps the stock direct-publish path bit-for-bit.
        self.robust = robust
        self._gates: Dict[int, HysteresisGate] = {}
        self._lat_est: Dict[int, RobustScalarEstimator] = {}
        self._act_est: Dict[int, RobustScalarEstimator] = {}

    def on_window(self, samples: Iterable[Tuple]) -> None:
        """Consume one sampling window.

        ``samples`` holds ``(cpu, steal_delta, preemptions, grazes,
        window_ns, grid_ok)`` per probed vCPU: ``grazes`` counts the ticks
        whose steal jump fell below the preemption threshold but above the
        noise floor, and ``grid_ok`` is vcap's tick-grid cross-check
        verdict for the same window.  Only the hardened path reads either.
        """
        for cpu, steal_delta, preempts, grazes, window, grid_ok in samples:
            if self.robust is not None:
                self._robust_window(cpu, steal_delta, preempts, grazes,
                                    window, grid_ok)
                continue
            if preempts > 0:
                latency = steal_delta / preempts
                active = max(0, window - steal_delta) / preempts
            else:
                # No preemption observed: vCPU behaved like a dedicated
                # core for the whole window.
                latency = 0.0
                active = float(window)
            self.module.publish_activity(cpu, latency, active)
        self.windows_processed += 1

    # ------------------------------------------------------------------
    # Hardened path (robust_probers)
    # ------------------------------------------------------------------
    def _robust_window(self, cpu: int, steal_delta: int, preempts: int,
                       grazes: int, window: int, grid_ok: bool) -> None:
        """Graze-aware, hysteresis-gated, median-filtered activity.

        A tick-evading co-runner shaves sub-threshold slices every tick:
        ``preempts`` stays 0 (naive vact concludes "dedicated", latency 0)
        while steal accumulates.  When grazes dominate the window's ticks
        they are re-qualified as the preemption count.  Regime flips
        (dedicated <-> contended) need two consecutive agreeing windows,
        and the contended latency/active estimates run through the
        median/MAD estimator with quarantine.  A window whose capacity
        half failed vcap's tick-grid cross-check (``grid_ok`` False) was
        probe-poisoned — its activity half is distrusted the same way.
        """
        ticks = max(1, window // self.kernel.config.tick_ns)
        effective = preempts
        if grazes >= max(2, ticks // 2):
            effective = preempts + grazes
        contended = effective > 0 and steal_delta > 0
        gate = self._gates.get(cpu)
        if gate is None:
            gate = self._gates[cpu] = HysteresisGate(
                initial=False, n=self.robust["hysteresis_windows"])
        if not gate.update(contended):
            self.module.publish_activity(cpu, 0.0, float(window))
            return
        if not contended:
            return  # regime held by hysteresis; freeze rather than flap
        latency = steal_delta / effective
        active = max(0, window - steal_delta) / effective
        lat_est = self._lat_est.get(cpu)
        if lat_est is None:
            lat_est = self._lat_est[cpu] = self._new_estimator()
            self._act_est[cpu] = self._new_estimator()
        lat = lat_est.ingest(latency, consistent=grid_ok)
        act = self._act_est[cpu].ingest(active, consistent=grid_ok)
        if lat is not None and act is not None:
            self.module.publish_activity(cpu, lat, act)

    def _new_estimator(self) -> RobustScalarEstimator:
        return RobustScalarEstimator(
            window=self.robust["window"],
            mad_k=self.robust["mad_k"],
            min_confidence=self.robust["min_confidence"],
            recovery_windows=self.robust["recovery_windows"])

    # ------------------------------------------------------------------
    # Convenience passthroughs for the optimizing techniques
    # ------------------------------------------------------------------
    def state(self, cpu_index: int):
        """(state, since) from the kernel's heartbeat query."""
        return self.kernel.vcpu_state(cpu_index)

    def is_active(self, cpu_index: int) -> bool:
        state, _ = self.kernel.vcpu_state(cpu_index)
        return state == VCpuHostState.ACTIVE
