"""Robust estimation for the vProbers (hardening, opt-in).

The probers infer capacity/activity/topology from timing signals an
adversarial co-tenant can game (Zhou et al.: tick-evading duty cycles,
probe-window poisoning, theft-of-service bursts).  This module holds the
estimator layer the probers route their raw window samples through when
``VSchedConfig.robust_probers`` is on:

* **median-of-windows** — the published value is the median of the last K
  accepted samples, so a single poisoned window moves nothing;
* **MAD outlier rejection** — a sample farther than ``mad_k`` robust
  standard deviations (median absolute deviation) from the window median
  is rejected instead of ingested;
* **quarantine with graceful degradation** — when the accepted fraction of
  recent samples drops below ``min_confidence``, the estimator stops
  believing its own signal: it freezes on the last stable estimate (or
  reports "no estimate" so the caller can fall back to a coarser,
  unspoofable source) until ``recovery_windows`` consecutive samples are
  clean again;
* **hysteresis** — regime flips (vact's dedicated vs. contended
  transition) require consecutive agreeing windows, so a flapping signal
  cannot whipsaw the published activity.

Everything here is pure arithmetic on values the probers already measure:
no new guest-visible surface, no hypervisor access, no RNG.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional


def _median(values: List[float]) -> float:
    ordered = sorted(values)
    n = len(ordered)
    mid = n // 2
    if n % 2:
        return ordered[mid]
    return 0.5 * (ordered[mid - 1] + ordered[mid])


class RobustScalarEstimator:
    """Median/MAD filter with quarantine for one scalar signal.

    Feed each raw window sample through :meth:`ingest`; the return value is
    what the caller should publish (the running median), the last stable
    estimate while quarantined, or ``None`` when no trustworthy estimate
    exists yet (the caller then degrades to its fallback source or skips
    the publish entirely).
    """

    def __init__(self, window: int = 5, mad_k: float = 3.5,
                 min_confidence: float = 0.5, recovery_windows: int = 3,
                 rel_floor: float = 0.04):
        if window < 3:
            raise ValueError("robust window must hold at least 3 samples")
        self.window = window
        self.mad_k = mad_k
        self.min_confidence = min_confidence
        self.recovery_windows = recovery_windows
        #: MAD floor as a fraction of the median, so a near-constant clean
        #: signal does not reject legitimate small moves as outliers.
        self.rel_floor = rel_floor
        self._samples: Deque[float] = deque(maxlen=window)
        self._decisions: Deque[bool] = deque(maxlen=window)
        self.quarantined = False
        self.last_stable: Optional[float] = None
        self._recovery_streak = 0
        # --- counters (degradation report / tests) ---------------------
        self.rejected_samples = 0
        self.quarantine_entries = 0
        self.quarantined_windows = 0

    # ------------------------------------------------------------------
    def is_outlier(self, value: float) -> bool:
        """MAD test against the accepted-sample window."""
        if len(self._samples) < 3:
            return False
        med = _median(list(self._samples))
        mad = _median([abs(x - med) for x in self._samples])
        scale = max(mad, abs(med) * self.rel_floor, 1e-9)
        return abs(value - med) > self.mad_k * scale

    def confidence(self) -> float:
        """Accepted fraction of the recent ingest decisions."""
        if not self._decisions:
            return 1.0
        return sum(self._decisions) / len(self._decisions)

    def ingest(self, value: float, consistent: bool = True) -> Optional[float]:
        """One raw window sample in, the value to publish out.

        ``consistent=False`` marks a sample the caller's own cross-check
        already distrusts (e.g. vcap's window share diverging from the
        tick-grid steal average); it is rejected regardless of the MAD
        test and counts against confidence the same way.
        """
        accept = consistent and not self.is_outlier(value)
        self._decisions.append(accept)
        if accept:
            self._samples.append(value)
        else:
            self.rejected_samples += 1

        if not self.quarantined:
            if (len(self._decisions) >= 3
                    and self.confidence() < self.min_confidence):
                self.quarantined = True
                self.quarantine_entries += 1
                self._recovery_streak = 0
        if self.quarantined:
            if accept:
                self._recovery_streak += 1
                if self._recovery_streak >= self.recovery_windows:
                    self.quarantined = False
            else:
                self._recovery_streak = 0
            if self.quarantined:
                self.quarantined_windows += 1
                return self.last_stable

        if not self._samples:
            return self.last_stable
        estimate = _median(list(self._samples))
        self.last_stable = estimate
        return estimate


class HysteresisGate:
    """Debounce a boolean regime signal: flip only after ``n`` consecutive
    windows agree on the new regime (vact's dedicated/contended edge)."""

    def __init__(self, initial: bool = False, n: int = 2):
        self.state = initial
        self.n = n
        self._streak = 0
        self.suppressed_flips = 0

    def update(self, observed: bool) -> bool:
        if observed == self.state:
            self._streak = 0
            return self.state
        self._streak += 1
        if self._streak >= self.n:
            self.state = observed
            self._streak = 0
        else:
            self.suppressed_flips += 1
        return self.state


class TopologyQuarantine:
    """Confirmation gate for probed topology views.

    A topology that *differs* from the last published one is held back
    until the identical view is probed again on the next round: one
    poisoned probe pass (inflated pair latencies misclassifying siblings)
    then changes nothing.  An unchanged view always passes through.
    """

    def __init__(self, confirmations: int = 2):
        self.confirmations = confirmations
        self._published_sig = None
        self._pending_sig = None
        self._pending_count = 0
        self.quarantined_views = 0

    @staticmethod
    def signature(view) -> tuple:
        return (tuple(tuple(sorted(view.smt_siblings[c]))
                      for c in range(view.n_cpus)),
                tuple(tuple(sorted(view.socket_siblings[c]))
                      for c in range(view.n_cpus)),
                tuple(sorted(tuple(sorted(g)) for g in view.stack_groups)))

    def admit(self, view) -> bool:
        """True when ``view`` may be published now."""
        sig = self.signature(view)
        if self._published_sig is None or sig == self._published_sig:
            self._published_sig = sig
            self._pending_sig = None
            self._pending_count = 0
            return True
        if sig == self._pending_sig:
            self._pending_count += 1
        else:
            self._pending_sig = sig
            self._pending_count = 1
        if self._pending_count >= self.confirmations:
            self._published_sig = sig
            self._pending_sig = None
            self._pending_count = 0
            return True
        self.quarantined_views += 1
        return False
