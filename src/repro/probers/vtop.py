"""vtop: the topology prober (§3.1).

vCPU distance is probed by timing atomic ping-pong on a shared cache line
between two prober threads.  The physics: transfers only complete while
*both* vCPUs are simultaneously host-active, at a rate set by the
round-trip cache-line latency of the two hosting hardware threads.  Two
stacked vCPUs never overlap, so the probe times out with ~no transfers
and reports infinite distance.

:class:`PairProbe` runs one measurement as real guest tasks (high priority,
pinned), accumulating transfer/attempt progress event-driven from the two
vCPUs' activity transitions.  :class:`VTop` composes probes into full
topology discovery and the lighter periodic validation, with the paper's
three optimizations: inference skipping, socket-first with intra-socket
parallelism, and validation periods with timeout extension to avoid
mislabelling non-stacked vCPUs.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, FrozenSet, List, Optional, Tuple

from repro.core.abstraction import TopologyView
from repro.core.module import VSchedModule
from repro.guest.cgroup import TaskGroup
from repro.guest.kernel import GuestKernel
from repro.guest.task import Policy
from repro.core.weights import weight_for_nice
from repro.probers.robust import TopologyQuarantine
from repro.sim.engine import MSEC, SEC, USEC

#: Classification outcomes for a measured pair latency.
CLS_SMT = "smt"
CLS_SOCKET = "socket"
CLS_CROSS = "cross"
CLS_STACK = "stack"

#: Latency thresholds (ns) separating the distance classes.
SMT_MAX_NS = 20.0
SOCKET_MAX_NS = 80.0


def classify(latency_ns: float) -> str:
    if math.isinf(latency_ns):
        return CLS_STACK
    if latency_ns < SMT_MAX_NS:
        return CLS_SMT
    if latency_ns < SOCKET_MAX_NS:
        return CLS_SOCKET
    return CLS_CROSS


class PairProbe:
    """One cache-line ping-pong measurement between two vCPUs."""

    def __init__(
        self,
        kernel: GuestKernel,
        group: TaskGroup,
        cpu_a: int,
        cpu_b: int,
        rng,
        target_transfers: int = 500,
        timeout_attempts: int = 15000,
        attempt_ns: int = 3000,
        max_extensions: int = 4,
        stack_threshold: int = 1,
        weight: int = weight_for_nice(-10),
        setup_cost_ns: int = 3 * MSEC,
        on_done: Optional[Callable] = None,
    ):
        self.kernel = kernel
        self.group = group
        self.cpu_a = cpu_a
        self.cpu_b = cpu_b
        self.rng = rng
        self.target_transfers = target_transfers
        self.timeout_attempts = timeout_attempts
        self.attempt_ns = attempt_ns
        self.max_extensions = max_extensions
        self.stack_threshold = stack_threshold
        self.weight = weight
        #: Spawn/pin/synchronize cost before measurement begins — dominates
        #: short probes, as on real systems.
        self.setup_cost_ns = setup_cost_ns
        self.on_done = on_done

        self.transfers = 0.0
        self.attempts = 0.0
        self.extensions = 0
        self.started_at = 0
        self.elapsed_ns = 0
        self.result_latency_ns: Optional[float] = None
        self._finished = False
        self._stop_flag = [False]
        self._tasks = []
        self._listeners = []
        self._last_update = 0
        self._deadline_event = None

    # ------------------------------------------------------------------
    def start(self) -> None:
        self.started_at = self.kernel.now()
        self._machine = self.kernel.machine
        for cpu in (self.cpu_a, self.cpu_b):
            task = self.kernel.spawn(
                self._spin_body(), name=f"vtop-{self.cpu_a}-{self.cpu_b}@{cpu}",
                policy=Policy.NORMAL, weight=self.weight, group=self.group,
                cpu=cpu, allowed=(cpu,))
            self._tasks.append(task)
        # Measurement begins once both prober threads are set up and have
        # rendezvoused on the shared cache line.
        self.kernel.engine.call_in(self.setup_cost_ns, self._begin)

    def _begin(self) -> None:
        self._last_update = self.kernel.now()
        listener = self._on_transition
        for cpu in (self.cpu_a, self.cpu_b):
            v = self.kernel.vm.vcpus[cpu]
            v.activity_listeners.append(listener)
            self._listeners.append((v, listener))
        self._reintegrate()

    def _spin_body(self):
        stop = self._stop_flag
        setup = self.setup_cost_ns

        def body(api):
            # Setup (spawn/pin/rendezvous) is mostly waiting, not CPU burn.
            yield api.sleep(setup)
            while not stop[0]:
                yield api.run(20 * USEC)

        return body

    # ------------------------------------------------------------------
    def _pair_latency_ns(self) -> float:
        """Current one-way transfer latency between the hosting threads."""
        from repro.hw.topology import Distance

        ta = self.kernel.vm.vcpus[self.cpu_a].last_thread
        tb = self.kernel.vm.vcpus[self.cpu_b].last_thread
        if ta is None or tb is None:
            # Neither vCPU has run yet; a conservative default (never used
            # for accumulation because no overlap has happened either).
            return self._machine.cache.base_latency(Distance.CROSS_SOCKET)
        d = self._machine.topology.distance(ta, tb)
        return self._machine.cache.base_latency(d)

    def _rates(self) -> Tuple[float, float]:
        """(transfers/ns, attempts/ns) for the current activity state."""
        a_active = self.kernel.vm.vcpus[self.cpu_a].active
        b_active = self.kernel.vm.vcpus[self.cpu_b].active
        if a_active and b_active:
            lat = self._pair_latency_ns()
            rate = 1.0 / (2.0 * lat)
            return rate, rate
        if a_active or b_active:
            return 0.0, 1.0 / self.attempt_ns
        return 0.0, 0.0

    def _on_transition(self, vcpu, active: bool, now: int) -> None:
        if self._finished:
            return
        self._reintegrate()

    def _reintegrate(self) -> None:
        now = self.kernel.now()
        delta = now - self._last_update
        t_rate, a_rate = self._rates()
        if delta > 0:
            self.transfers += delta * t_rate
            self.attempts += delta * a_rate
            self._last_update = now
        if self._check_done():
            return
        self._arm_deadline(t_rate, a_rate)

    def _arm_deadline(self, t_rate: float, a_rate: float) -> None:
        if self._deadline_event is not None:
            self._deadline_event.cancel()
            self._deadline_event = None
        budget_attempts = self.timeout_attempts * (1 + self.extensions)
        horizons = []
        if t_rate > 0:
            horizons.append((self.target_transfers - self.transfers) / t_rate)
        if a_rate > 0:
            horizons.append((budget_attempts - self.attempts) / a_rate)
        if not horizons:
            return  # both vCPUs inactive; wait for a transition
        delay = max(1, int(min(horizons)) + 1)
        self._deadline_event = self.kernel.engine.call_in(delay, self._reintegrate)

    def _check_done(self) -> bool:
        if self._finished:
            return True
        if self.transfers >= self.target_transfers:
            # Enough transfers: report the minimum sampled latency.
            lat = self._pair_latency_ns()
            samples = lat * (1.0 + self.rng.normal(0.0, 0.04, size=16))
            self._finish(float(max(0.5, samples.min())))
            return True
        if self.attempts >= self.timeout_attempts * (1 + self.extensions):
            if (self.transfers < self.target_transfers
                    and self.transfers >= self.stack_threshold):
                # Some transfers happened — extend rather than misjudge
                # limited active overlap as stacking (§3.1).
                if self.extensions < self.max_extensions:
                    self.extensions += 1
                    return False
                lat = self._pair_latency_ns()
                self._finish(float(lat * (1.0 + abs(self.rng.normal(0.0, 0.04)))))
                return True
            if self.extensions < self.max_extensions:
                self.extensions += 1
                return False
            self._finish(math.inf)
            return True
        return False

    def _finish(self, latency_ns: float) -> None:
        self._finished = True
        self.result_latency_ns = latency_ns
        self.elapsed_ns = self.kernel.now() - self.started_at
        self._stop_flag[0] = True
        if self._deadline_event is not None:
            self._deadline_event.cancel()
            self._deadline_event = None
        for v, listener in self._listeners:
            if listener in v.activity_listeners:
                v.activity_listeners.remove(listener)
        self._listeners.clear()
        if self.on_done is not None:
            self.on_done(self)


class VTop:
    """Topology discovery and periodic validation for one VM."""

    def __init__(
        self,
        kernel: GuestKernel,
        module: VSchedModule,
        rng,
        interval_ns: int = 2 * SEC,
        target_transfers: int = 500,
        timeout_attempts: int = 15000,
        attempt_ns: int = 600,
        robust: Optional[dict] = None,
    ):
        self.kernel = kernel
        self.module = module
        self.rng = rng
        self.interval_ns = interval_ns
        self.target_transfers = target_transfers
        self.timeout_attempts = timeout_attempts
        self.attempt_ns = attempt_ns
        #: Robust-estimation parameters (``VSchedConfig.robust_probers``);
        #: None publishes every probed view immediately, as stock vtop does.
        self.robust = robust
        self.quarantine = (
            TopologyQuarantine(confirmations=robust["topology_confirmations"])
            if robust is not None else None)
        #: vtop may probe every vCPU, including rwc-banned stacked ones
        #: (the one exception the paper allows, §3.4).
        self.group: TaskGroup = kernel.new_group("vtop")
        self.view: Optional[TopologyView] = None
        self.last_full_ns = 0
        self.last_validate_ns = 0
        self.full_probes = 0
        self.validations = 0
        self._running = False
        self._busy = False

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def start(self, initial_delay_ns: int = 50 * MSEC) -> None:
        if self._running:
            return
        self._running = True
        self.kernel.engine.call_in(initial_delay_ns, self._periodic)

    def stop(self) -> None:
        self._running = False

    def probe_full(self, on_done: Optional[Callable] = None) -> None:
        """Run full topology discovery; publish the result."""
        started = self.kernel.now()

        def finished(view: TopologyView) -> None:
            self.last_full_ns = self.kernel.now() - started
            self.full_probes += 1
            if self.quarantine is not None and not self.quarantine.admit(view):
                # A view that *changed* needs back-to-back confirmation: one
                # poisoned probe pass (a co-runner inflating pair latencies
                # into misclassification) then publishes nothing, and the
                # scheduler keeps running on the previous topology.
                self._busy = False
                if on_done is not None:
                    on_done(self.view)
                return
            self.view = view
            self.module.publish_topology(view)
            self._busy = False
            if on_done is not None:
                on_done(view)

        self._busy = True
        self._run_plan(self._full_plan(), finished)

    def validate(self, on_done: Optional[Callable] = None) -> None:
        """Cheap check that the current view still holds; else full probe."""
        if self.view is None:
            self.probe_full(on_done)
            return
        started = self.kernel.now()

        def finished(ok: bool) -> None:
            self.last_validate_ns = self.kernel.now() - started
            self.validations += 1
            self._busy = False
            if ok:
                if on_done is not None:
                    on_done(self.view)
            else:
                self.probe_full(on_done)

        self._busy = True
        self._run_plan(self._validate_plan(self.view), finished)

    # ------------------------------------------------------------------
    # Plan driver: plans are generators yielding waves of pairs
    # ------------------------------------------------------------------
    def _run_plan(self, plan, on_done: Callable) -> None:
        def step(results: Optional[Dict[Tuple[int, int], float]]) -> None:
            try:
                wave = plan.send(results)
            except StopIteration as stop:
                on_done(stop.value)
                return
            self._run_wave(wave, step)

        step(None)

    def _run_wave(self, wave: List[Tuple[int, int]], cont: Callable) -> None:
        results: Dict[Tuple[int, int], float] = {}
        remaining = [len(wave)]

        def one_done(probe: PairProbe) -> None:
            results[(probe.cpu_a, probe.cpu_b)] = probe.result_latency_ns
            remaining[0] -= 1
            if remaining[0] == 0:
                cont(results)

        for a, b in wave:
            PairProbe(
                self.kernel, self.group, a, b, self.rng,
                target_transfers=self.target_transfers,
                timeout_attempts=self.timeout_attempts,
                attempt_ns=self.attempt_ns,
                on_done=one_done,
            ).start()

    # ------------------------------------------------------------------
    # Full discovery plan
    # ------------------------------------------------------------------
    def _full_plan(self):
        n = len(self.kernel.cpus)
        # Phase 1: socket discovery.  Probe each CPU against one
        # representative per known socket; inference skipping means we never
        # probe two non-representatives across sockets.
        sockets: List[List[int]] = [[0]]
        pair_class: Dict[Tuple[int, int], str] = {}
        for c in range(1, n):
            placed = False
            for grp in sockets:
                rep = grp[0]
                res = yield [(rep, c)]
                cls = classify(res[(rep, c)])
                pair_class[(rep, c)] = cls
                if cls != CLS_CROSS:
                    grp.append(c)
                    placed = True
                    break
            if not placed:
                sockets.append([c])

        # Phase 2: intra-socket pairing, one probe per socket per wave
        # (sockets proceed in parallel, as in the paper).
        subplans = {i: self._socket_plan(grp, pair_class)
                    for i, grp in enumerate(sockets) if len(grp) > 1}
        partners: Dict[int, Tuple[int, str]] = {}
        pending: Dict[int, Tuple[int, int]] = {}
        for i, sub in subplans.items():
            try:
                pending[i] = sub.send(None)
            except StopIteration as stop:
                partners.update(stop.value)
        while pending:
            res = yield list(pending.values())
            next_pending: Dict[int, Tuple[int, int]] = {}
            for i, pair in pending.items():
                try:
                    next_pending[i] = subplans[i].send(res[pair])
                except StopIteration as stop:
                    partners.update(stop.value)
            pending = next_pending

        return self._build_view(n, sockets, partners)

    def _socket_plan(self, members: List[int],
                     seed_class: Dict[Tuple[int, int], str]):
        """Find each member's SMT sibling / stack partner within a socket."""
        partners: Dict[int, Tuple[int, str]] = {}
        unresolved = list(members)
        # Seed with classifications already learned during phase 1.
        for (a, b), cls in seed_class.items():
            if cls in (CLS_SMT, CLS_STACK) and a in unresolved and b in unresolved:
                partners[a] = (b, cls)
                partners[b] = (a, cls)
                unresolved.remove(a)
                unresolved.remove(b)
        while len(unresolved) > 1:
            a = unresolved[0]
            found = None
            for x in unresolved[1:]:
                lat = yield (a, x)
                cls = classify(lat)
                if cls in (CLS_SMT, CLS_STACK):
                    found = (x, cls)
                    break
            unresolved.remove(a)
            if found is not None:
                x, cls = found
                unresolved.remove(x)
                partners[a] = (x, cls)
                partners[x] = (a, cls)
        return partners

    def _build_view(self, n: int, sockets: List[List[int]],
                    partners: Dict[int, Tuple[int, str]]) -> TopologyView:
        view = TopologyView(n)
        for grp in sockets:
            g = frozenset(grp)
            for c in grp:
                view.socket_siblings[c] = g
        stacks = []
        for c in range(n):
            partner = partners.get(c)
            if partner is None:
                view.smt_siblings[c] = frozenset((c,))
                continue
            x, cls = partner
            if cls == CLS_SMT:
                view.smt_siblings[c] = frozenset((c, x))
            else:
                view.smt_siblings[c] = frozenset((c, x))
                pair = frozenset((c, x))
                if pair not in stacks:
                    stacks.append(pair)
        view.stack_groups = stacks
        return view

    # ------------------------------------------------------------------
    # Validation plan (lighter: fewer pairs, more parallelism)
    # ------------------------------------------------------------------
    def _validate_plan(self, view: TopologyView):
        ok = True
        # Wave 1: all sibling/stack pairs in parallel (disjoint by nature).
        pair_waves: List[Tuple[int, int]] = []
        expected: Dict[Tuple[int, int], str] = {}
        seen = set()
        for c in range(view.n_cpus):
            sibs = view.smt_siblings[c]
            if len(sibs) == 2:
                a, b = sorted(sibs)
                if (a, b) in seen:
                    continue
                seen.add((a, b))
                pair_waves.append((a, b))
                is_stack = any(frozenset((a, b)) == g for g in view.stack_groups)
                expected[(a, b)] = CLS_STACK if is_stack else CLS_SMT
        if pair_waves:
            res = yield pair_waves
            for pair, lat in res.items():
                if classify(lat) != expected[pair]:
                    ok = False
        if not ok:
            return False
        # Wave 2+: socket validation — one representative per core probes
        # the socket representative; one wave per rep index so the shared
        # socket representative is never in two concurrent probes, while
        # different sockets proceed in parallel.
        socket_groups: List[List[int]] = []
        seen_sock = set()
        for c in range(view.n_cpus):
            g = tuple(sorted(view.socket_siblings[c]))
            if g not in seen_sock:
                seen_sock.add(g)
                socket_groups.append(list(g))
        reps_per_socket: List[List[int]] = []
        for grp in socket_groups:
            reps = []
            covered = set()
            for c in grp:
                if c in covered:
                    continue
                covered |= set(view.smt_siblings[c])
                reps.append(c)
            reps_per_socket.append(reps)
        # Tournament rounds: disjoint pairs probed in parallel so a round
        # takes one probe's wall time — "validation can be done with higher
        # parallelism" (§3.1).  All pairs must classify as same-socket.
        def tournament(reps: List[int]) -> List[List[Tuple[int, int]]]:
            rounds: List[List[Tuple[int, int]]] = []
            layer = list(reps)
            while len(layer) > 1:
                wave = []
                nxt = []
                for i in range(0, len(layer) - 1, 2):
                    wave.append((layer[i], layer[i + 1]))
                    nxt.append(layer[i])
                if len(layer) % 2:
                    nxt.append(layer[-1])
                rounds.append(wave)
                layer = nxt
            return rounds

        per_socket_rounds = [tournament(reps) for reps in reps_per_socket]
        n_rounds = max((len(r) for r in per_socket_rounds), default=0)
        for k in range(n_rounds):
            wave = []
            for rounds in per_socket_rounds:
                if k < len(rounds):
                    wave.extend(rounds[k])
            if not wave:
                continue
            res = yield wave
            for pair, lat in res.items():
                if classify(lat) != CLS_SOCKET:
                    return False
        # Cross-socket spot check: socket representatives pairwise chain.
        if len(reps_per_socket) > 1:
            wave = []
            for i in range(len(reps_per_socket) - 1):
                wave.append((reps_per_socket[i][0], reps_per_socket[i + 1][0]))
            res = yield wave
            for pair, lat in res.items():
                if classify(lat) != CLS_CROSS:
                    return False
        return ok

    # ------------------------------------------------------------------
    def _periodic(self) -> None:
        if not self._running:
            return
        if not self._busy:
            self.validate()
        self.kernel.engine.call_in(self.interval_ns, self._periodic)
