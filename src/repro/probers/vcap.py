"""vcap: the capacity prober (§3.1).

vcap samples all vCPUs simultaneously in periodic windows.  Two window
kinds exist:

* **light** (the common case) — one SCHED_IDLE prober task per vCPU keeps
  the vCPU busy when it would otherwise idle, so the guest-visible steal
  time over the window measures the share of core time the vCPU receives:
  ``share = 1 - steal_delta / window``.  Capacity is then
  ``share × core_capacity`` using the core capacity learned in the last
  heavy window.  The prober consumes only otherwise-wasted cycles.
* **heavy** (every N light windows) — prober tasks run at high priority
  and *self-measure* their execution rate (work retired per CPU-second,
  the calibrated-busy-loop measurement a real prober makes), which yields
  the hosting core's capacity even under SMT contention or DVFS.

Samples feed the module's EMA.  vact piggybacks on the same windows to
convert steal deltas and preemption counts into average inactive/active
periods (vCPU latency).

Nothing here reads hypervisor state: only guest steal time and the prober
tasks' own progress measurements.
"""

from __future__ import annotations

from functools import partial
from typing import Callable, Dict, List, Optional

from repro.core.module import VSchedModule
from repro.guest.cgroup import TaskGroup
from repro.guest.kernel import GuestKernel
from repro.guest.task import Policy, StatefulBody, Task
from repro.core.weights import weight_for_nice
from repro.probers.robust import RobustScalarEstimator
from repro.sim.engine import MSEC, SEC, USEC


class _WindowState:
    """Mutable per-window record shared by the staggered spawn events,
    the prober bodies, and the close event.

    An object rather than closure cells: the staggered spawns sit in the
    event queue for the first ~10 ms of every window, so a snapshot taken
    then must copy the window coherently — closure cells would alias the
    frozen world from inside the fork.
    """

    def __init__(self, heavy: bool, cpus: List[int]):
        self.heavy = heavy
        self.cpus = cpus
        self.stopped = False
        self.probers: Dict[int, Task] = {}
        self.steal_before: Dict[int, int] = {}
        self.preempt_before: Dict[int, int] = {}
        self.graze_before: Dict[int, int] = {}
        self.grid_before: Dict[int, float] = {}
        self.spawn_time: Dict[int, int] = {}


class _ProberBody(StatefulBody):
    """One prober task's busy loop as an explicit state machine.

    The stop flag is polled at chunk boundaries only, so chunks double
    while the loop keeps running (all measurements — steal deltas,
    work/wall rates — are taken externally and are chunk-size
    independent).  Chunks are clamped to the wall time left in the window
    so the prober stops competing for CPU at the window close just as
    un-coalesced base chunks would — the overshoot past the stop flag
    stays bounded by one base chunk.
    """

    def __init__(self, api, *, win: "_WindowState", base: int, cap: int,
                 window_ns: int):
        self.api = api
        self.win = win
        self.base = base
        self.cap = cap
        self.window_ns = window_ns
        self.end: Optional[int] = None
        self.chunk = base

    def send(self, value):
        if self.end is None:
            self.end = self.api.now() + self.window_ns
        if self.win.stopped:
            raise StopIteration
        remaining = self.end - self.api.now()
        if self.chunk <= remaining:
            step = self.chunk
        elif remaining > self.base:
            step = remaining
        else:
            step = self.base
        if self.chunk < self.cap:
            self.chunk *= 2
        return self.api.run(step)


class VCap:
    """Periodic cooperative capacity sampling for one VM."""

    def __init__(
        self,
        kernel: GuestKernel,
        module: VSchedModule,
        sampling_period_ns: int = 100 * MSEC,
        light_interval_ns: int = 1 * SEC,
        heavy_every: int = 5,
        prober_chunk_ns: int = 200 * USEC,
        heavy_weight: int = weight_for_nice(-10),
        vact=None,
        robust: Optional[dict] = None,
    ):
        self.kernel = kernel
        self.module = module
        self.sampling_period_ns = sampling_period_ns
        self.light_interval_ns = light_interval_ns
        self.heavy_every = heavy_every
        self.prober_chunk_ns = prober_chunk_ns
        self.heavy_weight = heavy_weight
        self.vact = vact
        #: Robust-estimation parameters (``VSchedConfig.robust_probers``);
        #: None keeps the stock direct-publish path bit-for-bit.
        self.robust = robust
        self._estimators: Dict[int, RobustScalarEstimator] = {}
        #: cgroup for light probers; rwc may shrink it (stacked bans) while
        #: still letting vcap probe stragglers.
        self.group: TaskGroup = kernel.new_group("vcap")
        self._count = 0
        self._running = False
        self._window_open = False
        self.windows_completed = 0
        #: Wall time vcap's probers have consumed (cost accounting, §5.9).
        self.prober_cpu_ns = 0
        #: Windows whose elapsed wall time came out non-positive (a
        #: pathological steal storm landing the end event at/before the
        #: staggered spawn): the rate divisions are clamped and the event
        #: counted instead of publishing an inf/NaN capacity.
        self.degenerate_windows = 0

    # ------------------------------------------------------------------
    def start(self, initial_delay_ns: int = 10 * MSEC) -> None:
        if self._running:
            return
        self._running = True
        self.kernel.engine.call_in(initial_delay_ns, self._begin_window)

    def stop(self) -> None:
        self._running = False

    # ------------------------------------------------------------------
    def _probed_cpus(self) -> List[int]:
        allowed = self.group.allowed
        cpus = range(len(self.kernel.cpus))
        return [c for c in cpus if allowed is None or c in allowed]

    #: Per-vCPU spawn stagger within a window.  Keeps sampling coordinated
    #: (windows overlap >90%) while avoiding phase-locking the co-runners
    #: of every core to the same schedule, which would be a measurement
    #: artifact of the prober itself.
    SPAWN_STAGGER_NS = 1_370_000

    def _begin_window(self) -> None:
        if not self._running:
            return
        heavy = (self._count % self.heavy_every) == 0
        self._count += 1
        win = _WindowState(heavy, self._probed_cpus())
        for i, c in enumerate(win.cpus):
            offset = (i % 8) * self.SPAWN_STAGGER_NS
            self.kernel.engine.call_in(offset, self._spawn_one, win, c)
        self._window_open = True
        self.kernel.engine.call_in(
            self.sampling_period_ns, self._end_window, win)

    def _spawn_one(self, win: _WindowState, c: int) -> None:
        if win.stopped:
            return
        cpu = self.kernel.cpus[c]
        # Materialize elided ticks before baselining: preempt_count is
        # tick-replayed state, and this callback fires mid-run where no
        # engine sync hook has intervened.
        cpu._catch_up()
        win.steal_before[c] = self.kernel.steal_of(c)
        win.preempt_before[c] = cpu.preempt_count
        win.graze_before[c] = cpu.steal_graze_count
        now_ns = self.kernel.now()
        # Tick-grid steal average at window *start*: its ~32 ms
        # half-life still reflects the un-probed span before the
        # window, which a probe-window poisoner cannot fake.  Stale
        # (idle CPU) baselines are marked unusable.
        if self.robust is not None:
            fresh = (now_ns - cpu._cap_touch) <= self.GRID_STALE_NS
            win.grid_before[c] = (max(0.0, 1.0 - cpu.steal_frac_avg)
                                  if fresh and cpu.current is not None
                                  else -1.0)
        win.spawn_time[c] = now_ns
        policy = Policy.NORMAL if win.heavy else Policy.IDLE
        weight = self.heavy_weight if win.heavy else None
        win.probers[c] = self.kernel.spawn(
            self._prober_factory(win),
            name=f"vcap{'H' if win.heavy else 'L'}-{c}",
            policy=policy, weight=weight, group=self.group,
            cpu=c, allowed=(c,))

    #: Growth cap for coalesced prober chunks (in base chunks).  1 keeps
    #: the seed's fixed base-chunk polling.  Raising it shrinks the prober
    #: event footprint, but chunk boundaries are scheduling-visible (they
    #: gate when co-runners get the CPU back), which measurably perturbs
    #: the adaptability experiments (fig16/fig17) — so escalation is off
    #: by default and offered as an opt-in knob.
    CHUNK_COALESCE_MAX = 1

    def _prober_factory(self, win: _WindowState):
        base = self.prober_chunk_ns
        return partial(_ProberBody, win=win, base=base,
                       cap=base * self.CHUNK_COALESCE_MAX,
                       window_ns=self.sampling_period_ns)

    #: Tick-grid baselines older than this at window start are unusable
    #: (the CPU idled; steal is only observable while busy).
    GRID_STALE_NS = 5 * MSEC

    def _end_window(self, win: _WindowState) -> None:
        win.stopped = True
        self._window_open = False
        now = self.kernel.now()
        # Probers may still be mid-chunk; their work/wall stats are
        # integrated at (possibly elided) ticks, so replay those first.
        self.kernel.sync_ticks()
        activity_samples = []
        for c in win.cpus:
            if c not in win.probers:
                continue  # spawn was still pending when the window closed
            window = now - win.spawn_time[c]
            if window <= 0:
                # Pathological steal can stall the staggered spawn until
                # the end event's instant: the window-rate divisions below
                # would blow up (or publish a meaningless share), so clamp
                # and count instead.
                self.degenerate_windows += 1
                window = 1
            steal_delta = self.kernel.steal_of(c) - win.steal_before[c]
            share = min(1.0, max(0.0, 1.0 - steal_delta / window))
            entry = self.module.store[c]
            #: Whether this window's share survived the tick-grid
            #: cross-check (always, off the hardened path); vact's
            #: hardened estimator distrusts its half of the same window
            #: when vcap's half was poisoned.
            grid_ok = True
            if win.heavy:
                # Heavy windows exist to measure the hosting core's
                # capacity via the prober's self-measured execution rate.
                # The share observed meanwhile is inflated by the prober's
                # own high priority, so it must not feed the vCPU capacity
                # estimate — the light windows own that.
                task = win.probers[c]
                wall = task.stats.wall_running
                if wall > 1000:  # enough signal to trust the rate
                    rate = task.stats.work_done / wall
                    if rate > 0.0:
                        entry.core_capacity = 1024.0 * rate
                    else:
                        self.degenerate_windows += 1
            elif self.robust is None:
                self.module.publish_capacity(c, share * entry.core_capacity)
            else:
                grid_ok = self._publish_robust(c, share, entry,
                                               win.grid_before.get(c, -1.0))
            preempts = (self.kernel.cpus[c].preempt_count
                        - win.preempt_before[c])
            grazes = (self.kernel.cpus[c].steal_graze_count
                      - win.graze_before.get(c, 0))
            activity_samples.append((c, steal_delta, preempts, grazes,
                                     window, grid_ok))
            self.prober_cpu_ns += win.probers[c].stats.wall_running
        if self.vact is not None:
            self.vact.on_window(activity_samples)
        self.module.sampling_complete()
        self.windows_completed += 1
        if self._running:
            delay = max(1, self.light_interval_ns - self.sampling_period_ns)
            self.kernel.engine.call_in(delay, self._begin_window)

    # ------------------------------------------------------------------
    # Hardened publish path (robust_probers)
    # ------------------------------------------------------------------
    def _publish_robust(self, c: int, share: float, entry,
                        grid_share: float) -> bool:
        """Route one light-window capacity sample through the robust
        estimator: cross-check the window share against the tick-grid
        steal average baselined at window start, reject outliers, and
        degrade to the last stable estimate (or the grid estimate) while
        quarantined.  Returns the cross-check verdict so vact can distrust
        its half of the same window."""
        est = self._estimators.get(c)
        if est is None:
            est = self._estimators[c] = RobustScalarEstimator(
                window=self.robust["window"],
                mad_k=self.robust["mad_k"],
                min_confidence=self.robust["min_confidence"],
                recovery_windows=self.robust["recovery_windows"])
        consistent = (grid_share < 0.0
                      or abs(share - grid_share) <= self.robust["grid_gate"])
        value = est.ingest(share * entry.core_capacity,
                           consistent=consistent)
        if value is None and grid_share >= 0.0:
            # No stable estimate yet: degrade to the coarse tick-grid
            # estimate, which integrates all busy time and cannot be
            # window-poisoned.
            value = grid_share * entry.core_capacity
        if value is not None:
            self.module.publish_capacity(c, value)
        return consistent

    @property
    def samples_rejected(self) -> int:
        return sum(e.rejected_samples for e in self._estimators.values())

    @property
    def quarantined_windows(self) -> int:
        return sum(e.quarantined_windows for e in self._estimators.values())
