"""ASCII execution timelines from trace records (KernelShark, roughly).

The paper uses KernelShark to visualize the stalled-running-task behaviour
(Figure 3).  This renderer turns the tracer's ``guest.run``/``guest.idle``
and ``host.run``/``host.stop`` records into per-vCPU lanes:

    vCPU0 |████████░░░░░░░░████████░░░░░░░░|
    vCPU1 |░░░░░░░░████████░░░░░░░░████████|

where a filled cell means the lane's vCPU was executing the watched task
and a shaded cell means the vCPU was host-active but running something
else (or idle).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.sim.tracing import Tracer

FULL = "#"
ACTIVE = "-"
EMPTY = "."


def _intervals_from_trace(tracer: Tracer, begin_cat: str, end_cat: str,
                          match) -> Dict[int, List[Tuple[int, int]]]:
    """Collect per-lane [start, end) intervals from begin/end records."""
    open_at: Dict[int, int] = {}
    lanes: Dict[int, List[Tuple[int, int]]] = {}
    for rec in tracer.records:
        if rec.category == begin_cat and match(rec.payload):
            open_at[rec.payload[0]] = rec.time
        elif rec.category in (end_cat, begin_cat):
            lane = rec.payload[0]
            start = open_at.pop(lane, None)
            if start is not None and rec.time > start:
                lanes.setdefault(lane, []).append((start, rec.time))
            if rec.category == begin_cat and match(rec.payload):
                open_at[lane] = rec.time
    for lane, start in open_at.items():
        lanes.setdefault(lane, []).append((start, None))
    return lanes


def render_task_timeline(tracer: Tracer, task_name: str, n_cpus: int,
                         t0: int, t1: int, width: int = 64) -> str:
    """Render where ``task_name`` executed across vCPUs in [t0, t1)."""
    cell = (t1 - t0) / width

    # Task-on-CPU intervals from guest.run/guest.idle records.
    task_lanes = _intervals_from_trace(
        tracer, "guest.run", "guest.idle",
        lambda payload: len(payload) > 1 and payload[1] == task_name)
    # Host activity intervals per vCPU from host.run/host.stop.
    host_lanes = _intervals_from_trace(
        tracer, "host.run", "host.stop",
        lambda payload: len(payload) > 1 and "vcpu" in str(payload[1]))

    def covered(intervals, lo: float, hi: float) -> bool:
        for start, end in intervals:
            end = t1 if end is None else end
            if start < hi and end > lo:
                return True
        return False

    lines = []
    for cpu in range(n_cpus):
        row = []
        for i in range(width):
            lo = t0 + i * cell
            hi = lo + cell
            if covered(task_lanes.get(cpu, ()), lo, hi):
                row.append(FULL)
            elif covered(host_lanes.get(cpu, ()), lo, hi):
                row.append(ACTIVE)
            else:
                row.append(EMPTY)
        lines.append(f"vCPU{cpu} |{''.join(row)}|")
    header = (f"task '{task_name}' over [{t0 / 1e6:.0f}, {t1 / 1e6:.0f}] ms "
              f"({FULL}=task running, {ACTIVE}=vCPU active, {EMPTY}=vCPU off)")
    return header + "\n" + "\n".join(lines)
