"""Deterministic randomness helpers.

Every experiment draws all of its randomness from a single
``numpy.random.Generator`` seeded from the experiment id, so runs are
reproducible and independent sub-streams can be split off for components
that must not perturb each other's draws.
"""

from __future__ import annotations

import hashlib

import numpy as np


def make_rng(seed) -> np.random.Generator:
    """Create a generator from an int seed or any string label."""
    if isinstance(seed, str):
        digest = hashlib.sha256(seed.encode("utf-8")).digest()
        seed = int.from_bytes(digest[:8], "little")
    return np.random.default_rng(seed)


def rng_signature(rng: np.random.Generator) -> str:
    """Stable digest of a generator's exact stream position.

    Two generators with equal signatures produce identical draw sequences
    forever after.  The snapshot determinism tests compare a forked
    world's streams against a cold run's; ``repr`` of the bit-generator
    state dict is canonical enough because it contains only ints and
    fixed-order numpy scalars.
    """
    state = rng.bit_generator.state
    return hashlib.sha256(repr(state).encode("utf-8")).hexdigest()


def split_rng(rng: np.random.Generator, label: str) -> np.random.Generator:
    """Derive an independent child stream, stable for a given label."""
    salt = int.from_bytes(hashlib.sha256(label.encode("utf-8")).digest()[:8], "little")
    child_seed = int(rng.integers(0, 2**63 - 1)) ^ salt
    return np.random.default_rng(child_seed)


def exponential_ns(rng: np.random.Generator, mean_ns: float) -> int:
    """Exponentially distributed interarrival time, at least 1 ns."""
    return max(1, int(rng.exponential(mean_ns)))


def normal_ns(rng: np.random.Generator, mean_ns: float, sigma_ns: float) -> int:
    """Normally distributed duration truncated at 1 ns."""
    return max(1, int(rng.normal(mean_ns, sigma_ns)))
