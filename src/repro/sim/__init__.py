"""Simulation substrate: event engine, tracing, deterministic RNG."""

from repro.sim.engine import Engine, Event, MSEC, SEC, USEC, ns_to_ms, ns_to_sec
from repro.sim.rng import make_rng, split_rng
from repro.sim.tracing import IntervalTimeline, Tracer

__all__ = [
    "Engine",
    "Event",
    "USEC",
    "MSEC",
    "SEC",
    "ns_to_ms",
    "ns_to_sec",
    "make_rng",
    "split_rng",
    "Tracer",
    "IntervalTimeline",
]
