"""Lightweight execution tracing.

The tracer records ``(time, category, payload)`` tuples.  It backs the
KernelShark-style timeline used to reproduce Figure 3 (stalled running task)
and is handy when debugging scheduler interactions.  Tracing is off by
default — the hot paths call :meth:`Tracer.record` unconditionally, so the
disabled path must stay cheap (a single attribute check).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, NamedTuple, Optional, Set


class TraceRecord(NamedTuple):
    time: int
    category: str
    payload: tuple


class Tracer:
    """Append-only trace buffer with per-category filtering."""

    def __init__(self, enabled: bool = False, categories: Optional[Iterable[str]] = None):
        self.enabled = enabled
        self.categories: Optional[Set[str]] = set(categories) if categories else None
        self.records: List[TraceRecord] = []

    def record(self, time: int, category: str, *payload) -> None:
        if not self.enabled:
            return
        if self.categories is not None and category not in self.categories:
            return
        self.records.append(TraceRecord(time, category, payload))

    def clear(self) -> None:
        self.records.clear()

    def by_category(self, category: str) -> List[TraceRecord]:
        return [r for r in self.records if r.category == category]


class IntervalTimeline:
    """Builds per-lane busy intervals from begin/end trace pairs.

    Used to reconstruct "which vCPU executed the task when" timelines, the
    simulated equivalent of the paper's KernelShark plots (Figure 3).
    """

    def __init__(self) -> None:
        self._open: Dict[str, int] = {}
        self.intervals: Dict[str, List[tuple]] = {}

    def begin(self, lane: str, time: int) -> None:
        self._open[lane] = time

    def end(self, lane: str, time: int) -> None:
        start = self._open.pop(lane, None)
        if start is None:
            return
        self.intervals.setdefault(lane, []).append((start, time))

    def close_all(self, time: int) -> None:
        for lane in list(self._open):
            self.end(lane, time)

    def busy_time(self, lane: str) -> int:
        return sum(e - s for s, e in self.intervals.get(lane, []))

    def total_busy(self) -> int:
        return sum(self.busy_time(lane) for lane in self.intervals)
