"""World snapshot/fork: freeze a simulated world, then fork it cheaply.

A *world* is everything reachable from an engine's event queue plus the
experiment-level roots (machine, guest kernels, probers, workloads,
contexts).  Freezing takes one :func:`copy.deepcopy` over all of it in a
single call, so every shared reference — engine back-refs inside events,
the kernel's CPUs, a workload's channel — lands on exactly one copy.
Forking deep-copies the frozen image again; each fork is a fully
independent world that resumes bit-identically to the original.

Why a *guard* is needed: ``copy.deepcopy`` silently treats three kinds of
callables as atoms (the copy *shares* them with the original):

* closures / lambdas — their cells keep pointing at objects of the
  original world, so a fork would mutate the world it was forked from;
* bound builtin methods (``some_list.append``) — the receiver stays the
  original object;
* functions with mutable defaults — the defaults are shared.

Bound methods of ordinary objects are safe (the receiver is copied
through the memo and the method rebinds), as are module-level functions
(stateless by convention) and ``functools.partial`` over either (the
arguments copy through the memo).  :func:`guard_world` walks every
pending event before freezing and raises :class:`SnapshotError` naming
each offender, so an unsafe world fails loudly at freeze time instead of
corrupting results at fork time.  Generators cannot be deep-copied at
all; live task bodies are handled by :class:`repro.guest.task.Task`'s
own ``__deepcopy__`` (restartable-factory registry / explicit
state-machine bodies), and the guard rejects raw generators appearing in
event arguments.

Soundness across tickless elision: freezing first calls
``engine.materialize()`` (the same sync hooks run()/run_until() fire),
so every elided tick is replayed arithmetically *before* the copy.  The
frozen world is therefore exactly the state a cold run observes between
runs, and a fork's subsequent ``_catch_up`` replay starts from the same
materialized baseline — byte-identical with forking on or off.
"""

from __future__ import annotations

import copy
import types
from functools import partial
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.sim.engine import Engine


class SnapshotError(RuntimeError):
    """The world cannot be safely frozen or forked."""


#: Module-level callables explicitly vetted as snapshot-safe despite not
#: being recognisable as such structurally (rare; prefer bound methods).
_SAFE_CALLBACKS: set = set()


def snapshot_safe(func: Callable) -> Callable:
    """Mark a callable as safe to sit in a pending event across a freeze.

    Decorator form.  Registering asserts the callable neither closes over
    nor defaults to mutable world state — use only when restructuring to
    a bound method is genuinely impossible.
    """
    _SAFE_CALLBACKS.add(func)
    return func


def _why_unsafe(cb: Callable) -> Optional[str]:
    """Why ``cb`` would not survive a deep copy, or None when it would."""
    if cb in _SAFE_CALLBACKS:
        return None
    if isinstance(cb, types.MethodType):
        # Bound method of an in-world object: the receiver copies through
        # the memo and the method rebinds to the copy.
        return None
    if isinstance(cb, partial):
        return _why_unsafe(cb.func)
    if isinstance(cb, types.FunctionType):
        if cb.__closure__:
            return (f"closure {cb.__qualname__!r} (free variables "
                    f"{cb.__code__.co_freevars} copy by reference and "
                    f"would alias the original world)")
        if cb.__defaults__ and any(
                isinstance(d, (list, dict, set)) for d in cb.__defaults__):
            return (f"function {cb.__qualname__!r} has mutable defaults "
                    f"(shared between original and fork)")
        return None  # plain module-level function
    if isinstance(cb, (types.BuiltinFunctionType, types.BuiltinMethodType,
                       types.MethodWrapperType)):
        self_obj = getattr(cb, "__self__", None)
        if self_obj is None or isinstance(self_obj, types.ModuleType):
            return None  # free builtin (heapq.heappush, math.floor, ...)
        return (f"bound builtin {cb!r} (deep-copies atomically, keeping "
                f"the original receiver)")
    return None  # callable object instance: copied through the memo


def guard_world(engine: Engine) -> None:
    """Vet every pending event and sync hook for deep-copy safety.

    Raises :class:`SnapshotError` listing all offenders at once (so one
    pass of the guard surfaces every edge that needs converting, not just
    the first).
    """
    problems: List[str] = []
    for entry in engine._backend.iter_entries():
        ev = entry[3]
        if ev.cancelled:
            continue
        why = _why_unsafe(ev.callback)
        if why is not None:
            problems.append(f"pending event at t={ev.time}: {why}")
        for arg in ev.args:
            if isinstance(arg, types.GeneratorType):
                problems.append(
                    f"pending event at t={ev.time}: argument is a live "
                    f"generator {arg!r} (generators cannot be deep-copied)")
    for hook in engine._sync_hooks:
        why = _why_unsafe(hook)
        if why is not None:
            problems.append(f"sync hook: {why}")
    if problems:
        raise SnapshotError(
            "world is not snapshot-safe:\n  " + "\n  ".join(problems))


class WorldSnapshot:
    """A frozen simulation world, forkable any number of times.

    ``roots`` is the experiment's dictionary of top-level handles (env,
    vsched instance, workload context, workloads, ...).  The engine and
    all roots freeze in **one** deep copy, so shared references stay
    shared inside the frozen image; :meth:`fork` deep-copies the image
    again and returns the copied roots (the copied engine is reachable
    both through them and as ``fork()[0]``).
    """

    def __init__(self, engine: Engine, roots: Dict[str, Any]):
        if engine._running:
            raise SnapshotError("cannot freeze a running engine "
                                "(freeze between run()/run_until() calls)")
        engine.materialize()
        guard_world(engine)
        try:
            self._image = copy.deepcopy({"engine": engine, "roots": roots})
        except TypeError as exc:
            raise SnapshotError(
                f"world freeze failed mid-copy: {exc} — most often a live "
                f"generator body without a restartable factory or "
                f"StatefulBody conversion") from exc

    def fork(self) -> Tuple[Engine, Dict[str, Any]]:
        """Return ``(engine, roots)`` of a fresh independent world."""
        world = copy.deepcopy(self._image)
        return world["engine"], world["roots"]
