"""Hierarchical timer-wheel event store (the ``wheel`` engine backend).

The fast catalogue is dominated by short-horizon periodic timers — guest
ticks, balance passes, bandwidth refresh, DVFS ramps — that are armed and
very frequently cancelled before they fire (roughly half of all arms in a
profiled fig2 run).  A binary heap pays O(log n) on every arm and again on
every dead pop; this module is the Linux-kernel answer to that workload
shape: a hierarchy of 64-slot wheels with coarsening granularity, giving
O(1) arm and effectively-free cancel.

Geometry (INTERNALS §13 has diagrams and the full equivalence argument):

* Times are bucketed into *units* of ``2**SHIFT`` ns (65.536 µs).  The
  bucketing never coarsens observable ordering — see "exactness" below.
* The *near window* — units within ``NEAR`` of the wheel clock, ~67 ms
  — lives directly in the ``ready`` heap, ordered by the exact engine
  key.  This is the materialized bottom of the hierarchy: the
  catalogue's workhorse 1–100 ms timers go straight from staging into
  ``ready`` (one C ``heappush``) and never touch a slot.
* ``LEVELS``-1 wheels of ``SLOTS`` = 64 slots each hold everything
  farther out.  Level ``k`` (k ≥ 1) is indexed by bits ``[6k, 6k+6)`` of
  the unit number.  Placement is *strict*: an entry lives at the lowest
  level whose slot distance from the wheel clock is under 64, so every
  slot holds exactly one 64**k-unit window — no two wheel "cycles" ever
  share a slot, which is what makes jump-ahead sound.
* Entries beyond the top level's window (~19.9 simulated hours out) sit
  in an unordered ``overflow`` list with a cached minimum, re-filed when
  the clock approaches.

Exactness: the engine requires pops in global ``(time, prio, seq)`` order,
bit-for-bit equal to the heap backend.  ``ready`` orders the near window
exactly; for the far levels the invariant is *serve-time comparison*, not
placement: ``wheel_min`` caches a lower bound on the earliest
slot-resident unit (window starts from the occupancy bitmaps, exact unit
for overflow), and ``pop_due`` serves ``ready`` only while its head's
unit is strictly below that bound.  Otherwise it *collects*: jumps the
clock to the bound, cascades the slots containing it down one level
(strictly — an evacuated entry always lands at least one level lower, so
collection terminates), funnels what is now near into ``ready``, and
recomputes the bound.  A bound below the true minimum merely triggers a
collect that finds little; it can never reorder.

The arm path is a bare ``list.append`` onto ``staging`` (the backend's
``push`` is literally the bound method).  The batch is filed lazily at
the next ``pop_due``; entries cancelled before that are dropped without
ever being placed, which is where the cancel-churn win comes from.
Cancelled entries are also physically dropped at cascade and at pop
(counted in ``Engine.total_dead_drops``); ``note_cancelled`` is a no-op
because nothing needs compaction — a dead entry is garbage-collected no
later than its slot's turn.
"""

from __future__ import annotations

import copy
from heapq import heappop, heappush
from typing import Iterator, List, Optional, Tuple

from repro.sim.engine import Engine

#: log2 of the base granularity in nanoseconds: one unit is 65.536 µs.
#: Granularity is a batching knob, never a precision knob: ``ready``
#: orders by the exact engine key.  Finer units push periodic arms into
#: the slot levels (every fire then pays a cascade — measurably slower
#: on the catalogue); coarser ones just grow the ready heap.
SHIFT = 16
#: log2 of the slots per level.
BITS = 6
SLOTS = 1 << BITS
MASK = SLOTS - 1
#: Wheel levels; level k slots are 64**k units wide.  Level "0" is the
#: near window materialized as the ``ready`` heap; levels 1..4 are real
#: slot arrays.  Five levels cover 2**30 units ≈ 19.9 simulated hours
#: before the overflow list kicks in.
LEVELS = 5
#: Unit shift of the top level.
TOP_SHIFT = BITS * (LEVELS - 1)
#: Width of the near window in units (~67 ms): entries due within NEAR of
#: the wheel clock go straight into ``ready`` instead of a slot.  Pure
#: tuning knob — the serve-time comparison in ``pop_due`` keeps ordering
#: exact for any width.  Wide enough that the catalogue's 1–100 ms
#: periodic timers skip the slot machinery; narrow enough that ``ready``
#: stays small under heavy far-future load.
NEAR = SLOTS << 4
#: Sentinel time beyond any representable deadline (2**62 ns ≈ 146
#: simulated years).  ``wheel_min`` holds this instead of None when the
#: far levels are empty so the hot serve test is one int compare.
NEVER = 1 << 62

_Entry = Tuple[int, int, int, object]


class WheelBackend:
    """Event store conforming to the :class:`repro.sim.engine` backend
    protocol (``push`` / ``pop_due`` / ``note_cancelled``)."""

    name = "wheel"

    __slots__ = ("clk", "near_limit", "slots", "occ", "overflow",
                 "overflow_min", "wheel_min", "staging", "ready", "push")

    def __init__(self) -> None:
        #: Wheel clock in units: every slot-resident entry has
        #: ``unit >= clk``; the near window ``[clk, clk + NEAR)`` is
        #: served from ``ready``.
        self.clk = 0
        #: End of the near window in ns — ``(clk + NEAR) << SHIFT``,
        #: cached so the hot drain path tests nearness with one compare.
        self.near_limit = NEAR << SHIFT
        #: Slot arrays for levels 1..LEVELS-1 (index 0 unused: the near
        #: window lives in ``ready``).
        self.slots: List[List[List[_Entry]]] = [
            [[] for _ in range(SLOTS)] for _ in range(LEVELS)]
        #: Per-level occupancy bitmaps; bit j set iff slots[k][j] is
        #: non-empty.  Finding the next occupied slot is one shift and a
        #: C-level ``bit_length``.
        self.occ: List[int] = [0] * LEVELS
        #: Entries beyond the top-level window, unordered.
        self.overflow: List[_Entry] = []
        #: Cached min unit of ``overflow`` (None when empty).  Only ever
        #: lowered on push; refilling recomputes it from scratch.
        self.overflow_min: Optional[int] = None
        #: Lower bound on the earliest slot- or overflow-resident entry,
        #: in *nanoseconds* (the bound unit's floor time; ``NEVER`` when
        #: the far levels are empty).  Kept in ns so the serve test in
        #: ``pop_due`` is one int compare.  Lowered on placement,
        #: recomputed by :meth:`_collect`.
        self.wheel_min: int = NEVER
        #: Arms since the last drain, in arrival order.  ``push`` *is*
        #: this list's bound append — the O(1) arm fast path.
        self.staging: List[_Entry] = []
        #: The near window plus everything already due, a heap on the
        #: engine key.
        self.ready: List[_Entry] = []
        self.push = self.staging.append

    def note_cancelled(self) -> None:
        """Cancellation is free: the dead entry is dropped when its batch
        drains, its slot cascades, or it reaches the top of ``ready``."""

    def __deepcopy__(self, memo) -> "WheelBackend":  # vschedlint: disable=identity-key -- deepcopy memo is keyed by id() per the copy protocol, never simulation state
        # ``push`` is literally ``staging.append`` — a bound builtin that
        # deep-copies *atomically*, so a naive copy would stage arms onto
        # the original's list.  Copy every slot structurally through the
        # memo, then rebind push to the copied staging list.
        new = object.__new__(WheelBackend)
        memo[id(self)] = new
        for name in self.__slots__:
            if name == "push":
                continue
            setattr(new, name, copy.deepcopy(getattr(self, name), memo))
        new.push = new.staging.append
        return new

    def iter_entries(self) -> Iterator[_Entry]:
        """Iterate all in-store entries (including cancelled), any order.

        Inspection-only, for the snapshot guard: covers the staged batch,
        the ready heap, every slot level, and the overflow list.
        """
        yield from self.staging
        yield from self.ready
        for level in self.slots:
            for slot in level:
                yield from slot
        yield from self.overflow

    # ------------------------------------------------------------------
    # Placement
    # ------------------------------------------------------------------
    def _place(self, entry: _Entry) -> None:
        """File one live entry by its unit distance from the wheel clock.

        Near (or already due) entries go straight to ``ready``.  Beyond
        that, the strict per-level window rule: level k accepts the entry
        only when its level-k slot distance from ``clk`` is < 64, i.e.
        the slot it lands in currently maps to the one window containing
        the entry.  The sliver of times that level k could hash but whose
        slot is still serving the *previous* window goes up to level k+1.
        """
        u = entry[0] >> SHIFT
        clk = self.clk
        if u - clk < NEAR:  # near window; also catches u < clk
            heappush(self.ready, entry)
            return
        if (u >> 6) - (clk >> 6) < SLOTS:
            k = 1
            j = (u >> 6) & MASK
        elif (u >> 12) - (clk >> 12) < SLOTS:
            k = 2
            j = (u >> 12) & MASK
        elif (u >> 18) - (clk >> 18) < SLOTS:
            k = 3
            j = (u >> 18) & MASK
        elif (u >> 24) - (clk >> 24) < SLOTS:
            k = 4
            j = (u >> 24) & MASK
        else:
            self.overflow.append(entry)
            if self.overflow_min is None or u < self.overflow_min:
                self.overflow_min = u
            un = u << SHIFT
            if un < self.wheel_min:
                self.wheel_min = un
            return
        self.slots[k][j].append(entry)
        self.occ[k] |= 1 << j
        un = u << SHIFT
        if un < self.wheel_min:
            self.wheel_min = un

    def _drain(self) -> None:
        """File the staged arms, dropping entries already cancelled.

        Hot path of the whole backend: dispatch typically re-arms one
        successor timer per fired event, so nearly every ``pop_due``
        drains a one-entry batch.  The near-window test is inlined here
        (falling back to :meth:`_place` for everything farther out) to
        keep the common case at one compare and one C heappush.

        Iterates ``staging`` in place and clears it after: placement
        never appends to staging and no user code runs mid-drain, so the
        list cannot grow under the loop; ``del [:]`` (not rebinding)
        keeps ``push`` bound to the same list.
        """
        staging = self.staging
        ndead = 0
        near_limit = self.near_limit
        ready = self.ready
        place = self._place
        for entry in staging:
            if entry[3].cancelled:
                ndead += 1
            elif entry[0] < near_limit:
                heappush(ready, entry)
            else:
                place(entry)
        del staging[:]
        if ndead:
            Engine.total_dead_drops += ndead

    # ------------------------------------------------------------------
    # Clock advance
    # ------------------------------------------------------------------
    def _earliest_units(self) -> Optional[int]:
        """Lower bound on the earliest slot-resident unit (None if empty).

        Per level: shift the occupancy bitmap down to the slot containing
        ``clk``; the lowest set bit of the remainder is the next occupied
        slot this window, else wrap to the bitmap's lowest bit one window
        later.  The candidate is the slot's *window start* (clamped to
        ``clk``), which may precede the slot's actual minimum entry —
        that is fine: the serve-time comparison in ``pop_due`` only needs
        a lower bound, and collecting at the bound evacuates the slot and
        tightens it.
        """
        clk = self.clk
        occ = self.occ
        best = self.overflow_min
        for k in range(1, LEVELS):
            occk = occ[k]
            if not occk:
                continue
            sh = BITS * k
            cu = clk >> sh
            pos = cu & MASK
            m = occk >> pos
            if m:
                w = (cu + ((m & -m).bit_length() - 1)) << sh
            else:
                j = (occk & -occk).bit_length() - 1
                w = (cu - pos + SLOTS + j) << sh
            cand = w if w > clk else clk
            if best is None or cand < best:
                best = cand
        return best

    def _collect(self, t: int) -> None:
        """Jump the wheel clock to unit ``t`` and funnel what is now near
        into ``ready``.

        Sound for any ``t`` between ``clk`` and the true earliest
        slot-resident unit (``wheel_min`` qualifies): no occupied slot's
        window ends before ``t``, so cascading just the slots
        *containing* ``t`` (top-down, so entries re-file against the
        updated clock) reaches everything at or near ``t``.  An evacuated
        entry always lands at least one level lower — two units in the
        same level-k slot differ in their level-(k-1) index by < 64, so
        the strict window rule admits it below — hence repeated collects
        strictly descend and terminate in ``ready``.
        """
        self.clk = t
        self.near_limit = (t + NEAR) << SHIFT
        ndead = 0
        ov_min = self.overflow_min
        if ov_min is not None and \
                (ov_min >> TOP_SHIFT) - (t >> TOP_SHIFT) < SLOTS:
            # The earliest far-future entry now fits in the top window:
            # re-file the whole list (survivors re-overflow via _place).
            ov = self.overflow
            self.overflow = []
            self.overflow_min = None
            place = self._place
            for entry in ov:
                if entry[3].cancelled:
                    ndead += 1
                else:
                    place(entry)
        occ = self.occ
        slots = self.slots
        for k in range(LEVELS - 1, 0, -1):
            if not occ[k]:
                continue
            j = (t >> (BITS * k)) & MASK
            bit = 1 << j
            if occ[k] & bit:
                entries = slots[k][j]
                slots[k][j] = []
                occ[k] &= ~bit
                Engine.total_cascades += 1
                place = self._place
                for entry in entries:
                    if entry[3].cancelled:
                        ndead += 1
                    else:
                        place(entry)
        if ndead:
            Engine.total_dead_drops += ndead
        e = self._earliest_units()
        self.wheel_min = NEVER if e is None else e << SHIFT

    # ------------------------------------------------------------------
    # The backend pop
    # ------------------------------------------------------------------
    def pop_due(self, deadline: Optional[int]) -> Optional[_Entry]:
        """Pop the globally least live entry by ``(time, prio, seq)``.

        Serve ``ready`` while its head's unit is strictly below
        ``wheel_min``'s (one int compare: ``wheel_min`` is the bound
        unit's floor time, so ``head < wheel_min`` iff the head's unit
        precedes the bound's; a slot entry in the same unit could still
        precede the head by prio/seq, so ties collect first).  Otherwise
        jump the clock to the bound unit and collect.  The deadline test
        against the unit's floor time may collect a straddling unit
        early; the exact per-entry test on ``ready`` keeps the result
        precise.

        The staging drain is inlined for the dominant single-entry batch
        (dispatch typically re-arms one successor timer per fired event);
        bigger batches take :meth:`_drain`.
        """
        staging = self.staging
        ready = self.ready
        if deadline is None:
            deadline = NEVER - 1  # below NEVER: an empty wheel never pops
        if staging:
            entry = staging.pop()
            if staging:  # more than one staged arm: batch-drain them all
                staging.append(entry)
                self._drain()
            elif entry[0] < self.near_limit:
                # Single staged arm, the per-fired-event common case.  No
                # cancelled check here: a dead staged entry is rare on
                # this path (it was armed one event ago) and gets dropped
                # at its pop instead — same accounting, fewer ops per
                # event.  The batch path in _drain keeps the check: that
                # is where cancel churn concentrates.
                heappush(ready, entry)
            else:
                self._place(entry)
        wmin = self.wheel_min
        # Fold both stop conditions into one bound: an entry is servable
        # iff it precedes the wheel bound AND the deadline, i.e. iff its
        # time is under min(wheel_min, deadline + 1).
        lim = wmin if wmin <= deadline else deadline + 1
        while True:
            if ready:
                # Optimistic pop: the head is almost always servable, so
                # pop first and push back on the rare not-due miss (at
                # most once per pop_due call) instead of peeking every
                # time.
                entry = heappop(ready)
                if entry[0] < lim:
                    if entry[3].cancelled:
                        Engine.total_dead_drops += 1
                        continue
                    return entry
                heappush(ready, entry)
            if wmin > deadline:
                # Nothing servable: ready's head (if any) failed the lim
                # test with lim = deadline + 1, so it is past the
                # deadline too.
                return None
            self._collect(wmin >> SHIFT)
            wmin = self.wheel_min
            lim = wmin if wmin <= deadline else deadline + 1
