"""Discrete-event simulation engine.

The whole reproduction runs on a single deterministic event loop.  Time is
kept in integer nanoseconds so that runs are bit-reproducible across
platforms; ties between events scheduled for the same instant are broken by
a priority band and then insertion order (a monotonically increasing
sequence number), never by object identity.

The engine is deliberately minimal: entities schedule callbacks, callbacks
may schedule more callbacks.  Higher layers (hypervisor, guest kernel) build
their state machines on top of this primitive.

Event storage is a pluggable *backend* behind a three-method protocol
(``push`` / ``pop_due`` / ``note_cancelled``); the dispatch loop, the
instant/epoch bookkeeping, and every counter live in the engine and are
backend-independent.  Two backends exist:

* ``heap`` (this module, the reference): a binary heap of
  ``(time, prio, seq, event)`` tuples so ordering is decided by C-level
  integer comparisons instead of Python ``__lt__`` calls.  Cancellation is
  lazy, but the backend counts cancelled-in-heap events and compacts when
  they dominate, so ``run_until`` does not churn through millions of dead
  entries.
* ``wheel`` (:mod:`repro.sim.wheel`): a Linux-style hierarchical timer
  wheel with O(1) arm and effectively-free cancel, byte-identical in pop
  order to the heap (INTERNALS §13 has the equivalence argument).

Select with ``Engine(backend="heap"|"wheel")`` or the
``$VSCHED_REPRO_ENGINE`` environment variable (default ``heap``).
``pending()`` is O(1) either way, maintained on push/pop/cancel.

Priority bands (``prio``) exist for timer elision: a periodic timer whose
firing is elided and later re-armed would otherwise land at its original
instant with a *newer* sequence number, perturbing same-instant ordering
relative to a run without elision.  Timers that participate in elision are
given a per-owner negative "lane" (:meth:`Engine.alloc_lane`) so their
position among same-instant events is a function of (time, lane) alone —
history-independent, hence identical whether or not the timer was ever
cancelled, elided, or re-armed along the way.  Ordinary events use prio 0.

Compaction filters dead entries and re-heapifies the survivors; since the
``(time, prio, seq)`` key is unique per event, the pop order after
compaction is identical to the order before it — event ordering semantics
are preserved.

Elision support: subsystems that skip scheduling a timer whose effect they
materialize arithmetically (tickless guest CPUs, quiescent host balancing)
report the skipped firings through :meth:`Engine.note_elided`; the counts
surface next to ``events_fired`` in ``tools/bench.py``.  A callback
attribution profiler (:attr:`Engine.profiling`) keeps per-callsite
fired/cancelled/elided counters when enabled and costs one local truth test
per event when off.
"""

from __future__ import annotations

import copy
import heapq
import os
from functools import partial
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

#: One microsecond / millisecond / second expressed in engine time units.
USEC = 1_000
MSEC = 1_000_000
SEC = 1_000_000_000

#: Compact the heap only when at least this many dead entries accumulated
#: (avoids rebuilding tiny heaps) ...
_COMPACT_MIN_CANCELLED = 64
#: ... and the dead entries are at least half of the heap.
_COMPACT_FRACTION = 2


def ns_to_ms(t: int) -> float:
    """Convert engine nanoseconds to floating-point milliseconds."""
    return t / MSEC


def ns_to_sec(t: int) -> float:
    """Convert engine nanoseconds to floating-point seconds."""
    return t / SEC


def elision_default() -> bool:
    """Process-wide default for timer elision (on unless opted out).

    ``VSCHED_REPRO_TICKLESS=0`` disables elision; the A/B harness
    (``tools/abdiff.py``) flips this to assert that elided and non-elided
    runs produce byte-identical tables.  Read lazily at each construction
    site so tests can toggle it in-process.
    """
    return os.environ.get("VSCHED_REPRO_TICKLESS", "1") != "0"


def snapshot_default() -> bool:
    """Process-wide default for warm-start snapshot forking (on by default).

    ``VSCHED_REPRO_SNAPSHOT=0`` disables the prefix snapshot store
    (:mod:`repro.experiments.snapstore`): prefix/diverge scenarios then
    rebuild their warm-up from scratch through the *same* code path, which
    is what the A/B harness (``tools/abdiff.py``) flips to assert that
    forked and cold runs produce byte-identical tables.  Read lazily at
    each decision site so tests can toggle it in-process.
    """
    return os.environ.get("VSCHED_REPRO_SNAPSHOT", "1") != "0"


def engine_backend_default() -> str:
    """Process-wide default event-storage backend (``heap`` unless set).

    ``VSCHED_REPRO_ENGINE=wheel`` switches every ``Engine()`` constructed
    without an explicit ``backend=`` to the hierarchical timer wheel; the
    A/B harness (``tools/abdiff.py``) uses this to assert both backends
    produce byte-identical tables.  Read lazily at each construction site
    so tests can toggle it in-process.
    """
    return os.environ.get("VSCHED_REPRO_ENGINE", "heap")


class Event:
    """A cancellable scheduled callback.

    Instances are returned by :meth:`Engine.call_at` / :meth:`Engine.call_in`.
    Cancellation is lazy: the event stays in the heap but is skipped when it
    surfaces.
    """

    __slots__ = ("time", "prio", "seq", "callback", "args", "cancelled",
                 "_engine")

    def __init__(self, time: int, prio: int, seq: int,
                 callback: Callable[..., None], args: tuple,
                 engine: Optional["Engine"] = None):
        self.time = time
        self.prio = prio
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        self._engine = engine

    def cancel(self) -> None:
        """Prevent the callback from running when the event fires."""
        if self.cancelled:
            return
        self.cancelled = True
        eng = self._engine
        if eng is not None:
            self._engine = None
            eng._note_cancelled()
            if Engine.profiling:
                Engine._profile_bump(self.callback, 1)

    @property
    def active(self) -> bool:
        """True while the event is still pending and not cancelled."""
        return not self.cancelled

    def __lt__(self, other: "Event") -> bool:
        return ((self.time, self.prio, self.seq)
                < (other.time, other.prio, other.seq))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        name = getattr(self.callback, "__qualname__", repr(self.callback))
        return f"<Event t={self.time} {name} {state}>"


class _HeapBackend:
    """Reference event store: a binary heap with lazy cancellation.

    The backend protocol (shared with :class:`repro.sim.wheel.WheelBackend`):

    ``push(entry)``
        Accept a ``(time, prio, seq, Event)`` tuple.  Bound to a C-level
        callable where possible — the engine calls it once per ``call_at``.
    ``pop_due(deadline)``
        Remove and return the globally least live entry by
        ``(time, prio, seq)``, or ``None`` when the store is empty or the
        least live entry is after ``deadline`` (``deadline=None`` means no
        bound).  Cancelled entries are discarded en route and counted in
        ``Engine.total_dead_drops``.
    ``note_cancelled()``
        An in-store event was cancelled (the :class:`Event` flag is already
        set); purely advisory — the heap uses it to trigger compaction, the
        wheel ignores it.
    """

    name = "heap"

    __slots__ = ("_heap", "_ncancelled", "push")

    def __init__(self) -> None:
        self._heap: List[Tuple[int, int, int, Event]] = []
        self._ncancelled = 0
        self.push = partial(heapq.heappush, self._heap)

    def __deepcopy__(self, memo) -> "_HeapBackend":  # vschedlint: disable=identity-key -- deepcopy memo is keyed by id() per the copy protocol, never simulation state
        # ``push`` is a partial closed over the heap list; copied naively it
        # would keep pushing into the *original* heap.  Rebuild it against
        # the copied list (registered in the memo first so entry tuples and
        # engine back-refs resolve to the copy).
        new = object.__new__(_HeapBackend)
        memo[id(self)] = new
        new._heap = copy.deepcopy(self._heap, memo)
        new._ncancelled = self._ncancelled
        new.push = partial(heapq.heappush, new._heap)
        return new

    def iter_entries(self) -> Iterator[Tuple[int, int, int, Event]]:
        """Iterate all in-store entries (including cancelled), any order.

        Inspection-only — used by the snapshot guard to vet pending
        callbacks before a deep copy.  Never mutates the store.
        """
        return iter(self._heap)

    def pop_due(self, deadline: Optional[int]
                ) -> Optional[Tuple[int, int, int, Event]]:
        heap = self._heap
        pop = heapq.heappop
        while heap:
            entry = heap[0]
            if deadline is not None and entry[0] > deadline:
                return None
            pop(heap)
            if entry[3].cancelled:
                self._ncancelled -= 1
                Engine.total_dead_drops += 1
                continue
            return entry
        return None

    def note_cancelled(self) -> None:
        """An in-heap event was cancelled; compact when dead entries win."""
        self._ncancelled = n = self._ncancelled + 1
        if (n >= _COMPACT_MIN_CANCELLED
                and n * _COMPACT_FRACTION >= len(self._heap)):
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled entries and re-heapify, preserving pop order.

        Mutates the heap list in place so the ``partial``-bound ``push``
        keeps targeting the live list.  Since the ``(time, prio, seq)`` key
        is unique per event, pop order after compaction is identical to the
        order before it.
        """
        heap = self._heap
        before = len(heap)
        heap[:] = [entry for entry in heap if not entry[3].cancelled]
        heapq.heapify(heap)
        Engine.total_dead_drops += before - len(heap)
        self._ncancelled = 0


def _make_backend(name: str):
    if name == "heap":
        return _HeapBackend()
    if name == "wheel":
        # Imported lazily: repro.sim.wheel imports this module for the
        # shared counters, so a top-level import here would be circular.
        from repro.sim.wheel import WheelBackend
        return WheelBackend()
    raise ValueError(
        f"unknown engine backend {name!r} (expected 'heap' or 'wheel')")


class Engine:
    """The simulation clock and event queue.

    Typical use::

        eng = Engine()
        eng.call_in(5 * MSEC, my_callback, arg)
        eng.run_until(1 * SEC)
    """

    #: Process-wide count of events fired across all engines (perf metric;
    #: read by tools/bench.py to report events/sec).  A "fire" is a live
    #: dispatch — cancelled entries never count, under either backend.
    total_events_fired: int = 0
    #: Process-wide count of timer firings elided (materialized
    #: arithmetically instead of dispatched through the heap).
    total_events_elided: int = 0
    #: Process-wide count of ``call_at``/``call_in`` arms.  Counted at the
    #: API boundary so the number is backend-invariant.
    total_pushes: int = 0
    #: Process-wide count of ``Event.cancel`` calls on still-pending events.
    #: Also counted at the API boundary: backend-invariant.
    total_cancels: int = 0
    #: Process-wide count of cancelled entries physically discarded by a
    #: backend (heap: dead pops + compaction sweeps; wheel: drops at stage
    #: drain / cascade / collect).  Backend-*internal* telemetry: over a
    #: fully drained run it converges to ``total_cancels``, but the timing
    #: (and any still-buried residue) legitimately differs per backend.
    #: Compare backends on pushes/cancels/fired, never on this.
    total_dead_drops: int = 0
    #: Process-wide count of timer-wheel slot cascades (re-filing one
    #: occupied upper-level slot).  Always 0 under the heap backend.
    total_cascades: int = 0
    #: Callback-attribution profiler switch.  When True, per-callsite
    #: fired/cancelled/elided counters accumulate in :attr:`profile_data`.
    profiling: bool = False
    #: qualname -> [fired, cancelled, elided]
    profile_data: Dict[str, List[int]] = {}

    def __init__(self, backend: Optional[str] = None) -> None:
        self.now: int = 0
        #: Event-store backend name ("heap" or "wheel"); resolved from
        #: ``$VSCHED_REPRO_ENGINE`` when not passed explicitly.
        self.backend: str = backend if backend is not None \
            else engine_backend_default()
        self._backend = _make_backend(self.backend)
        #: Bound push fast path (C-level for the heap, ``list.append`` for
        #: the wheel's staging area).
        self._push = self._backend.push
        self._seq: int = 0
        self._running = False
        self._stopped = False
        #: Live (not-yet-fired, not-cancelled) events in the store: O(1)
        #: ``pending()``, maintained here so backends never track it.
        self._npending = 0
        #: Events fired by this engine instance.
        self.events_fired = 0
        #: Timer firings elided by this engine instance.
        self.events_elided = 0
        #: Next negative priority lane to hand out (see module docstring).
        self._next_lane = 0
        #: Heap entry of the event currently being dispatched, or None.
        self._current: Optional[Tuple[int, int, int, Event]] = None
        #: Highest priority popped so far at the current instant.  The heap
        #: invariant guarantees that when an entry with priority ``p`` pops
        #: at time ``t``, every entry armed *before* instant ``t`` began
        #: with priority ``< p`` has already popped — so this high-water
        #: mark, not the executing event's own priority, is the correct
        #: replay limit for elided same-instant timers.  (The executing
        #: event itself may have been armed mid-instant — e.g. an overdue
        #: tick re-armed at ``now`` by a resume — in which case its own
        #: priority says nothing about what already ran.)
        self._instant_hi: float = float("-inf")
        #: Count of events popped, ever.  An "epoch" names a point in the
        #: dispatch order; recording it when arming lets a later reader ask
        #: whether anything has fired since (see
        #: :meth:`max_prio_popped_since`).
        self._pop_epoch: int = 0
        #: ``(epoch, prio)`` marks for pops at the *current* instant, epochs
        #: increasing and priorities strictly decreasing (a pop evicts all
        #: marks with priority <= its own before appending).  The first mark
        #: with epoch > e is therefore the maximum priority popped since
        #: epoch ``e`` at this instant.
        self._instant_marks: List[Tuple[int, int]] = []
        #: Callbacks invoked when a run()/run_until() finishes, after the
        #: clock settles — elision catch-up hooks use this so state reads
        #: *between* runs see fully materialized effects.
        self._sync_hooks: List[Callable[[], None]] = []

    # ------------------------------------------------------------------
    # Scheduling primitives
    # ------------------------------------------------------------------
    def call_at(self, time: int, callback: Callable[..., None], *args: Any,
                prio: int = 0) -> Event:
        """Schedule ``callback(*args)`` at absolute time ``time``.

        Scheduling in the past is a programming error and raises
        ``ValueError`` — silent time travel hides causality bugs.

        ``prio`` orders same-instant events: lower fires first, default 0.
        Pass a lane from :meth:`alloc_lane` for timers whose same-instant
        position must not depend on when they were (re-)pushed.
        """
        if time < self.now:
            raise ValueError(
                f"cannot schedule event at {time} before current time {self.now}"
            )
        self._seq = seq = self._seq + 1
        ev = Event(time, prio, seq, callback, args, self)
        self._push((time, prio, seq, ev))
        self._npending += 1
        Engine.total_pushes += 1
        return ev

    def call_in(self, delay: int, callback: Callable[..., None], *args: Any,
                prio: int = 0) -> Event:
        """Schedule ``callback(*args)`` after ``delay`` nanoseconds."""
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        return self.call_at(self.now + delay, callback, *args, prio=prio)

    def alloc_lane(self) -> int:
        """Reserve a unique negative priority band for one periodic timer.

        Allocation order must be deterministic (construction order of the
        owning objects), and owners must allocate unconditionally — lanes
        shape same-instant ordering, so they have to be identical between
        elision-on and elision-off runs.
        """
        self._next_lane -= 1
        return self._next_lane

    def current_key(self) -> Optional[Tuple[int, float]]:
        """Replay limit while an event is dispatching, or None outside one.

        Returns ``(now, hi)`` where ``hi`` is the highest priority popped
        so far at this instant.  Elision catch-up materializes a skipped
        timer firing iff its own (time, lane) orders strictly before that
        key: such an entry, had it been armed eagerly, would already have
        popped.  Comparing against the *executing* event's priority would
        be wrong when that event was armed mid-instant (an overdue timer
        re-armed at ``now`` runs after entries of every lane that popped
        earlier in the instant, not only after lower-priority ones).
        """
        cur = self._current
        if cur is None:
            return None
        return (cur[0], self._instant_hi)

    @property
    def pop_epoch(self) -> int:
        """Dispatch-order position: count of events popped so far."""
        return self._pop_epoch

    def max_prio_popped_since(self, epoch: int) -> Optional[int]:
        """Max priority popped at the current instant after ``epoch``.

        Returns None when nothing has popped since.  Used to replay a timer
        that eager mode would have armed *mid-instant*: such an entry sits
        in the heap from its arming epoch on, so by the heap-min property
        it has fired iff some later pop carried a higher priority.
        """
        for e, p in self._instant_marks:
            if e > epoch:
                return p
        return None

    # ------------------------------------------------------------------
    # Elision accounting
    # ------------------------------------------------------------------
    def note_elided(self, n: int, callback: Callable[..., None]) -> None:
        """Record ``n`` timer firings of ``callback`` elided off the heap."""
        self.events_elided += n
        Engine.total_events_elided += n
        if Engine.profiling:
            Engine._profile_bump(callback, 2, n)

    @classmethod
    def counters(cls) -> Dict[str, int]:
        """Snapshot of the process-wide engine counters.

        ``pushes``/``cancels``/``fired``/``elided`` are API-level and
        backend-invariant; ``dead_drops``/``cascades`` are backend-internal
        telemetry (see the class attributes).  Callers measure a scenario
        by differencing two snapshots (``tools/bench.py``, the campaign
        supervisor's per-unit stats).
        """
        return {
            "pushes": cls.total_pushes,
            "cancels": cls.total_cancels,
            "fired": cls.total_events_fired,
            "elided": cls.total_events_elided,
            "dead_drops": cls.total_dead_drops,
            "cascades": cls.total_cascades,
        }

    # ------------------------------------------------------------------
    # Callback-attribution profiler
    # ------------------------------------------------------------------
    @classmethod
    def _profile_bump(cls, callback: Callable[..., None], slot: int,
                      n: int = 1) -> None:
        name = getattr(callback, "__qualname__", repr(callback))
        row = cls.profile_data.get(name)
        if row is None:
            row = cls.profile_data[name] = [0, 0, 0]
        row[slot] += n

    @classmethod
    def profile_reset(cls) -> None:
        cls.profile_data = {}

    @classmethod
    def profile_table(cls, top: int = 15) -> str:
        """Render the hot-callback table (sorted by fired, descending).

        The key is total (name breaks fired-count ties): registration
        order differs between elided and eager runs, so an insertion-order
        tiebreak would render A/B-divergent tables.
        """
        rows = sorted(cls.profile_data.items(),
                      key=lambda kv: (-kv[1][0], kv[0]))[:top]
        width = max([len(name) for name, _ in rows] + [8])
        lines = [f"{'callback':<{width}} {'fired':>12} {'cancelled':>12} "
                 f"{'elided':>12}"]
        for name, (fired, cancelled, elided) in rows:
            lines.append(f"{name:<{width}} {fired:>12,d} {cancelled:>12,d} "
                         f"{elided:>12,d}")
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def add_sync_hook(self, hook: Callable[[], None]) -> None:
        """Run ``hook()`` after every run()/run_until() completes.

        Subsystems that defer state materialization (tickless catch-up)
        register here so callers reading state between runs never observe
        a half-materialized world.
        """
        self._sync_hooks.append(hook)

    def _dispatch(self, deadline: Optional[int],
                  max_events: Optional[int]) -> int:
        """Shared dispatch loop: pop due entries from the backend and fire.

        All instant/epoch bookkeeping (``_instant_hi``, ``_instant_marks``,
        ``_pop_epoch``) lives here, keyed purely on the popped
        ``(time, prio, seq)`` — so a backend is conformant iff its pop
        *order* matches the heap's, which is what the wheel guarantees.
        """
        if self._running:
            raise RuntimeError("engine is not reentrant")
        self._running = True
        self._stopped = False
        pop_due = self._backend.pop_due
        fired = 0
        profiling = Engine.profiling
        bump = Engine._profile_bump
        try:
            while not self._stopped:
                if max_events is not None and fired >= max_events:
                    break
                entry = pop_due(deadline)
                if entry is None:
                    break
                ev = entry[3]
                ev._engine = None
                self._pop_epoch += 1
                marks = self._instant_marks
                if entry[0] != self.now:
                    self._instant_hi = entry[1]
                    del marks[:]
                else:
                    if entry[1] > self._instant_hi:
                        self._instant_hi = entry[1]
                    while marks and marks[-1][1] <= entry[1]:
                        marks.pop()
                marks.append((self._pop_epoch, entry[1]))
                self.now = entry[0]
                self._current = entry
                ev.callback(*ev.args)
                fired += 1
                if profiling:
                    bump(ev.callback, 0)
        finally:
            self._current = None
            self._running = False
            self.events_fired += fired
            self._npending -= fired
            Engine.total_events_fired += fired
        return fired

    def run_until(self, deadline: int) -> None:
        """Process events up to and including ``deadline``.

        The clock is left at ``deadline`` even if the queue drains earlier,
        so that subsequent relative scheduling behaves intuitively.
        """
        try:
            self._dispatch(deadline, None)
            if self.now < deadline:
                self.now = deadline
        finally:
            for hook in self._sync_hooks:
                hook()

    def run(self, max_events: Optional[int] = None) -> int:
        """Run until the queue drains (or ``max_events`` fire); return count."""
        try:
            return self._dispatch(None, max_events)
        finally:
            for hook in self._sync_hooks:
                hook()

    def stop(self) -> None:
        """Stop the current ``run``/``run_until`` after the active callback."""
        self._stopped = True

    def pending(self) -> int:
        """Number of not-yet-cancelled events still queued (O(1))."""
        return self._npending

    # ------------------------------------------------------------------
    # Snapshot / restore
    # ------------------------------------------------------------------
    def materialize(self) -> None:
        """Replay all deferred (elided) state by running the sync hooks.

        Identical to what run()/run_until() do on completion; exposed so
        the snapshot layer can assert a fully-materialized world before
        freezing — a frozen half-materialized world would let a restore
        skip ``_catch_up`` replay that the cold run performed.
        """
        for hook in self._sync_hooks:
            hook()

    def __deepcopy__(self, memo) -> "Engine":  # vschedlint: disable=identity-key -- deepcopy memo is keyed by id() per the copy protocol, never simulation state
        """Deep-copy the engine, rewiring the backend push fast path.

        ``_push`` aliases ``_backend.push`` (a partial/bound append over
        the backend's internal list); a naive deep copy would leave the
        copy pushing into the original's store.  Everything else — queue
        contents, lanes, ``now``, pop-epoch/instant marks, per-instance
        counters, sync hooks — copies structurally through the memo, so
        event back-refs and callback bindings land on the copied world.
        """
        if self._running:
            raise RuntimeError("cannot snapshot a running engine "
                               "(snapshot between run()/run_until() calls)")
        new = object.__new__(type(self))
        memo[id(self)] = new
        state = {k: v for k, v in self.__dict__.items() if k != "_push"}
        new.__dict__.update(copy.deepcopy(state, memo))
        new._push = new._backend.push
        return new

    def snapshot(self) -> "Engine":
        """Freeze this engine (and everything reachable from its queue).

        Returns an inert deep copy sharing nothing mutable with the live
        engine.  Sync hooks run first so elided timer state is fully
        materialized — the frozen world equals what a cold run observes
        between runs.  Restore it with :meth:`restore` (in place) or fork
        it any number of times with ``copy.deepcopy`` /
        :class:`repro.sim.snapshot.WorldSnapshot`.
        """
        self.materialize()
        return copy.deepcopy(self)

    def restore(self, frozen: "Engine") -> None:  # vschedlint: disable=identity-key -- pre-seeding the deepcopy memo (id-keyed by protocol) is what rewires frozen-engine back-refs to self
        """Replace this engine's state with a fork of ``frozen``.

        The memo is pre-seeded with ``frozen -> self`` so engine
        back-refs inside the copied events (and anything else reachable
        that points at the frozen engine) rewire to *this* object —
        callers holding a reference to this engine keep a valid handle.
        ``frozen`` itself is never mutated and stays restorable.
        """
        if self._running or frozen._running:
            raise RuntimeError("cannot restore a running engine")
        memo: Dict[int, Any] = {id(frozen): self}
        state = {k: v for k, v in frozen.__dict__.items() if k != "_push"}
        self.__dict__.clear()
        self.__dict__.update(copy.deepcopy(state, memo))
        self._push = self._backend.push

    # ------------------------------------------------------------------
    # Lazy-cancellation bookkeeping
    # ------------------------------------------------------------------
    def _note_cancelled(self) -> None:
        """An in-store event was cancelled (called from Event.cancel)."""
        self._npending -= 1
        Engine.total_cancels += 1
        self._backend.note_cancelled()
