"""Discrete-event simulation engine.

The whole reproduction runs on a single deterministic event loop.  Time is
kept in integer nanoseconds so that runs are bit-reproducible across
platforms; ties between events scheduled for the same instant are broken by
insertion order (a monotonically increasing sequence number), never by object
identity.

The engine is deliberately minimal: entities schedule callbacks, callbacks
may schedule more callbacks.  Higher layers (hypervisor, guest kernel) build
their state machines on top of this primitive.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional

#: One microsecond / millisecond / second expressed in engine time units.
USEC = 1_000
MSEC = 1_000_000
SEC = 1_000_000_000


def ns_to_ms(t: int) -> float:
    """Convert engine nanoseconds to floating-point milliseconds."""
    return t / MSEC


def ns_to_sec(t: int) -> float:
    """Convert engine nanoseconds to floating-point seconds."""
    return t / SEC


class Event:
    """A cancellable scheduled callback.

    Instances are returned by :meth:`Engine.call_at` / :meth:`Engine.call_in`.
    Cancellation is lazy: the event stays in the heap but is skipped when it
    surfaces.
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled")

    def __init__(self, time: int, seq: int, callback: Callable[..., None], args: tuple):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the callback from running when the event fires."""
        self.cancelled = True

    @property
    def active(self) -> bool:
        """True while the event is still pending and not cancelled."""
        return not self.cancelled

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        name = getattr(self.callback, "__qualname__", repr(self.callback))
        return f"<Event t={self.time} {name} {state}>"


class Engine:
    """The simulation clock and event queue.

    Typical use::

        eng = Engine()
        eng.call_in(5 * MSEC, my_callback, arg)
        eng.run_until(1 * SEC)
    """

    def __init__(self) -> None:
        self.now: int = 0
        self._heap: List[Event] = []
        self._seq: int = 0
        self._running = False
        self._stopped = False

    # ------------------------------------------------------------------
    # Scheduling primitives
    # ------------------------------------------------------------------
    def call_at(self, time: int, callback: Callable[..., None], *args: Any) -> Event:
        """Schedule ``callback(*args)`` at absolute time ``time``.

        Scheduling in the past is a programming error and raises
        ``ValueError`` — silent time travel hides causality bugs.
        """
        if time < self.now:
            raise ValueError(
                f"cannot schedule event at {time} before current time {self.now}"
            )
        self._seq += 1
        ev = Event(time, self._seq, callback, args)
        heapq.heappush(self._heap, ev)
        return ev

    def call_in(self, delay: int, callback: Callable[..., None], *args: Any) -> Event:
        """Schedule ``callback(*args)`` after ``delay`` nanoseconds."""
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        return self.call_at(self.now + delay, callback, *args)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run_until(self, deadline: int) -> None:
        """Process events up to and including ``deadline``.

        The clock is left at ``deadline`` even if the queue drains earlier,
        so that subsequent relative scheduling behaves intuitively.
        """
        if self._running:
            raise RuntimeError("engine is not reentrant")
        self._running = True
        self._stopped = False
        try:
            while self._heap and not self._stopped:
                ev = self._heap[0]
                if ev.time > deadline:
                    break
                heapq.heappop(self._heap)
                if ev.cancelled:
                    continue
                self.now = ev.time
                ev.callback(*ev.args)
            if self.now < deadline:
                self.now = deadline
        finally:
            self._running = False

    def run(self, max_events: Optional[int] = None) -> int:
        """Run until the queue drains (or ``max_events`` fire); return count."""
        if self._running:
            raise RuntimeError("engine is not reentrant")
        self._running = True
        self._stopped = False
        fired = 0
        try:
            while self._heap and not self._stopped:
                if max_events is not None and fired >= max_events:
                    break
                ev = heapq.heappop(self._heap)
                if ev.cancelled:
                    continue
                self.now = ev.time
                ev.callback(*ev.args)
                fired += 1
        finally:
            self._running = False
        return fired

    def stop(self) -> None:
        """Stop the current ``run``/``run_until`` after the active callback."""
        self._stopped = True

    def pending(self) -> int:
        """Number of not-yet-cancelled events still queued."""
        return sum(1 for ev in self._heap if not ev.cancelled)
