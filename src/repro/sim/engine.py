"""Discrete-event simulation engine.

The whole reproduction runs on a single deterministic event loop.  Time is
kept in integer nanoseconds so that runs are bit-reproducible across
platforms; ties between events scheduled for the same instant are broken by
insertion order (a monotonically increasing sequence number), never by object
identity.

The engine is deliberately minimal: entities schedule callbacks, callbacks
may schedule more callbacks.  Higher layers (hypervisor, guest kernel) build
their state machines on top of this primitive.

Internals are tuned for the hot path:

* the heap stores ``(time, seq, event)`` tuples so ordering is decided by
  C-level integer comparisons instead of Python ``__lt__`` calls;
* cancellation stays lazy, but the engine counts cancelled-in-heap events
  and compacts the heap when they dominate, so ``run_until`` does not churn
  through millions of dead entries;
* ``pending()`` is O(1), maintained on push/pop/cancel.

Compaction filters dead entries and re-heapifies the survivors; since the
``(time, seq)`` key is unique per event, the pop order after compaction is
identical to the order before it — event ordering semantics are preserved.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional, Tuple

#: One microsecond / millisecond / second expressed in engine time units.
USEC = 1_000
MSEC = 1_000_000
SEC = 1_000_000_000

#: Compact the heap only when at least this many dead entries accumulated
#: (avoids rebuilding tiny heaps) ...
_COMPACT_MIN_CANCELLED = 64
#: ... and the dead entries are at least half of the heap.
_COMPACT_FRACTION = 2


def ns_to_ms(t: int) -> float:
    """Convert engine nanoseconds to floating-point milliseconds."""
    return t / MSEC


def ns_to_sec(t: int) -> float:
    """Convert engine nanoseconds to floating-point seconds."""
    return t / SEC


class Event:
    """A cancellable scheduled callback.

    Instances are returned by :meth:`Engine.call_at` / :meth:`Engine.call_in`.
    Cancellation is lazy: the event stays in the heap but is skipped when it
    surfaces.
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled", "_engine")

    def __init__(self, time: int, seq: int, callback: Callable[..., None],
                 args: tuple, engine: Optional["Engine"] = None):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        self._engine = engine

    def cancel(self) -> None:
        """Prevent the callback from running when the event fires."""
        if self.cancelled:
            return
        self.cancelled = True
        eng = self._engine
        if eng is not None:
            self._engine = None
            eng._note_cancelled()

    @property
    def active(self) -> bool:
        """True while the event is still pending and not cancelled."""
        return not self.cancelled

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        name = getattr(self.callback, "__qualname__", repr(self.callback))
        return f"<Event t={self.time} {name} {state}>"


class Engine:
    """The simulation clock and event queue.

    Typical use::

        eng = Engine()
        eng.call_in(5 * MSEC, my_callback, arg)
        eng.run_until(1 * SEC)
    """

    #: Process-wide count of events fired across all engines (perf metric;
    #: read by tools/bench.py to report events/sec).
    total_events_fired: int = 0

    def __init__(self) -> None:
        self.now: int = 0
        self._heap: List[Tuple[int, int, Event]] = []
        self._seq: int = 0
        self._running = False
        self._stopped = False
        #: Cancelled events still sitting in the heap.
        self._ncancelled = 0
        #: Events fired by this engine instance.
        self.events_fired = 0

    # ------------------------------------------------------------------
    # Scheduling primitives
    # ------------------------------------------------------------------
    def call_at(self, time: int, callback: Callable[..., None], *args: Any) -> Event:
        """Schedule ``callback(*args)`` at absolute time ``time``.

        Scheduling in the past is a programming error and raises
        ``ValueError`` — silent time travel hides causality bugs.
        """
        if time < self.now:
            raise ValueError(
                f"cannot schedule event at {time} before current time {self.now}"
            )
        self._seq = seq = self._seq + 1
        ev = Event(time, seq, callback, args, self)
        heapq.heappush(self._heap, (time, seq, ev))
        return ev

    def call_in(self, delay: int, callback: Callable[..., None], *args: Any) -> Event:
        """Schedule ``callback(*args)`` after ``delay`` nanoseconds."""
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        return self.call_at(self.now + delay, callback, *args)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run_until(self, deadline: int) -> None:
        """Process events up to and including ``deadline``.

        The clock is left at ``deadline`` even if the queue drains earlier,
        so that subsequent relative scheduling behaves intuitively.
        """
        if self._running:
            raise RuntimeError("engine is not reentrant")
        self._running = True
        self._stopped = False
        heap = self._heap
        pop = heapq.heappop
        fired = 0
        try:
            while heap and not self._stopped:
                entry = heap[0]
                if entry[0] > deadline:
                    break
                pop(heap)
                ev = entry[2]
                if ev.cancelled:
                    self._ncancelled -= 1
                    continue
                ev._engine = None
                self.now = entry[0]
                ev.callback(*ev.args)
                fired += 1
            if self.now < deadline:
                self.now = deadline
        finally:
            self._running = False
            self.events_fired += fired
            Engine.total_events_fired += fired

    def run(self, max_events: Optional[int] = None) -> int:
        """Run until the queue drains (or ``max_events`` fire); return count."""
        if self._running:
            raise RuntimeError("engine is not reentrant")
        self._running = True
        self._stopped = False
        heap = self._heap
        pop = heapq.heappop
        fired = 0
        try:
            while heap and not self._stopped:
                if max_events is not None and fired >= max_events:
                    break
                entry = pop(heap)
                ev = entry[2]
                if ev.cancelled:
                    self._ncancelled -= 1
                    continue
                ev._engine = None
                self.now = entry[0]
                ev.callback(*ev.args)
                fired += 1
        finally:
            self._running = False
            self.events_fired += fired
            Engine.total_events_fired += fired
        return fired

    def stop(self) -> None:
        """Stop the current ``run``/``run_until`` after the active callback."""
        self._stopped = True

    def pending(self) -> int:
        """Number of not-yet-cancelled events still queued (O(1))."""
        return len(self._heap) - self._ncancelled

    # ------------------------------------------------------------------
    # Lazy-cancellation bookkeeping
    # ------------------------------------------------------------------
    def _note_cancelled(self) -> None:
        """An in-heap event was cancelled; compact when dead entries win."""
        self._ncancelled = n = self._ncancelled + 1
        if (n >= _COMPACT_MIN_CANCELLED
                and n * _COMPACT_FRACTION >= len(self._heap)):
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled entries and re-heapify, preserving pop order.

        Mutates the heap list in place so that a ``run_until`` loop holding
        a reference keeps seeing the live heap.
        """
        heap = self._heap
        heap[:] = [entry for entry in heap if not entry[2].cancelled]
        heapq.heapify(heap)
        self._ncancelled = 0
