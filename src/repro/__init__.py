"""vSched reproduction: accurate vCPU abstraction for cloud-VM scheduling.

Reproduces "Optimizing Task Scheduling in Cloud VMs with Accurate vCPU
Abstraction" (EuroSys '25) as a deterministic discrete-event simulation:
host hardware + KVM-like hypervisor + CFS-like guest kernel as substrates,
with the paper's vProbers (vcap/vact/vtop) and optimization techniques
(bvs/ivh/rwc) implemented inside the simulated guest using only
guest-visible interfaces.

Entry points:

* :mod:`repro.cluster` — build the paper's VM types and scenarios;
* :mod:`repro.core` — the vSched system itself;
* :mod:`repro.experiments` — regenerate every table/figure of the paper.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
