"""The guest kernel: task lifecycle, wake path, action interpreter, vact
kernel instrumentation, and the hook points vSched attaches to.

One :class:`GuestKernel` manages one VM.  It owns the guest CPUs, the
schedule domains, the wake placer and load balancer, and interprets task
actions (compute, sleep, channel I/O, locking, barriers).

vSched integration happens through three replaceable seams, matching the
paper's implementation strategy (BPF hooks on CFS paths plus a kernel
module, §4):

* ``select_rq_hook(task, waker_cpu)`` — consulted before default wake
  placement (bvs);
* ``tick_hook(cpu, now)`` — called from the scheduler tick (ivh);
* ``capacity_provider(cpu_index)`` — replaces the steal-based CFS capacity
  estimate with vcap's probed EMA capacity.

The vact *kernel portion* (heartbeat timestamps, steal-jump preemption
counting, the vCPU-state query function) lives here because the paper puts
it in the kernel; the user-space part is in :mod:`repro.probers.vact`.
"""

from __future__ import annotations

import enum
from typing import Callable, List, Optional

from repro.guest.balance import LoadBalancer
from repro.guest.cgroup import TaskGroup
from repro.guest.config import GuestConfig
from repro.guest.cpu import GuestCpu
from repro.guest.select import WakePlacer
from repro.guest.stats import KernelStats
from repro.guest.sync import Barrier, Channel, Mutex
from repro.guest.task import (
    BarrierWait,
    Lock,
    MigrateTo,
    Policy,
    Recv,
    Run,
    Send,
    Sleep,
    Task,
    TaskState,
    Unlock,
    YieldCpu,
)
from repro.hw.topology import Distance


class VCpuHostState(enum.Enum):
    """Guest-observable host state of a vCPU (vact's state query)."""

    ACTIVE = "active"
    INACTIVE = "inactive"


class GuestKernel:
    """Scheduler and task runtime of one VM."""

    def __init__(self, vm, config: Optional[GuestConfig] = None):
        self.vm = vm
        vm.kernel = self
        self.machine = vm.machine
        self.engine = self.machine.engine
        self.config = config or GuestConfig()
        self.tracer = self.machine.tracer
        self.cpus: List[GuestCpu] = [
            GuestCpu(self, v, i) for i, v in enumerate(vm.vcpus)
        ]
        from repro.guest.domains import SchedDomains

        self.domains = SchedDomains.flat(len(self.cpus))
        self.placer = WakePlacer(self)
        self.balancer = LoadBalancer(self)
        self.stats = KernelStats()
        self.tasks: List[Task] = []
        self.root_group = TaskGroup("root")
        self.groups: List[TaskGroup] = [self.root_group]

        # --- vSched hook points ------------------------------------------
        self.select_rq_hook: Optional[Callable] = None
        self.tick_hook: Optional[Callable] = None
        self.capacity_provider: Optional[Callable] = None

        # Materialize elided ticks whenever a run()/run_until() returns so
        # state read between runs (progress polling, table assembly) never
        # lags the clock.
        self.engine.add_sync_hook(self.sync_ticks)

    def sync_ticks(self) -> None:
        """Replay any pending elided ticks on every CPU.

        No-op without tickless elision (or when nothing is pending).  Call
        before reading tick-maintained task/CPU state (``stats.work_done``,
        PELT, vruntime) from outside the scheduler's own code paths.
        """
        for cpu in self.cpus:
            cpu._catch_up()

    # ------------------------------------------------------------------
    # Time & misc
    # ------------------------------------------------------------------
    def now(self) -> int:
        """Guest sched_clock: wall nanoseconds (TSC keeps counting)."""
        return self.engine.now

    def new_group(self, name: str) -> TaskGroup:
        g = TaskGroup(name)
        self.groups.append(g)
        return g

    def steal_of(self, cpu_index: int) -> int:
        """Guest-visible steal time of a vCPU (/proc/stat steal)."""
        return self.vm.vcpus[cpu_index].steal_ns(self.engine.now)

    # ------------------------------------------------------------------
    # Task lifecycle
    # ------------------------------------------------------------------
    def spawn(
        self,
        factory,
        name: str,
        policy: Policy = Policy.NORMAL,
        weight: Optional[int] = None,
        group: Optional[TaskGroup] = None,
        cpu: Optional[int] = None,
        allowed=None,
        initial_util: float = 0.0,
        latency_sensitive: bool = False,
    ) -> Task:
        """Create a task and make it runnable."""
        task = Task(self, name, factory, policy=policy, weight=weight,
                    allowed=allowed, latency_sensitive=latency_sensitive)
        (group or self.root_group).add(task)
        task.pelt.set_util(initial_util, self.engine.now)
        task.exit_callbacks = []
        self.tasks.append(task)
        if cpu is not None:
            task.prev_cpu_index = cpu
        self.wake(task, waker_cpu=None, count_ipi=False, is_fork=(cpu is None))
        return task

    def on_exit(self, task: Task, callback: Callable) -> None:
        task.exit_callbacks.append(callback)

    def _exit_task(self, task: Task) -> None:
        task.state = TaskState.EXITED
        task.cpu = None
        if task.group is not None:
            task.group.remove(task)
        self.stats.task_exits += 1
        for cb in task.exit_callbacks:
            cb(task)

    # ------------------------------------------------------------------
    # Wake path
    # ------------------------------------------------------------------
    def wake(self, task: Task, waker_cpu: Optional[int] = None,
             count_ipi: bool = True, is_fork: bool = False) -> None:
        """Make ``task`` runnable and place it on a vCPU."""
        if task.state in (TaskState.RUNNABLE, TaskState.RUNNING, TaskState.EXITED):
            return
        now = self.engine.now
        task.pelt.update(now, False)  # decay over the sleep
        # A task rewoken with residual work (evicted/migrated mid-Run) must
        # finish that segment; only a completed action advances the body.
        task.needs_advance = task.pending_work <= 0

        target_idx: Optional[int] = None
        if self.select_rq_hook is not None:
            target_idx = self.select_rq_hook(task, waker_cpu)
        if target_idx is None:
            target_idx = self.placer.select(task, waker_cpu, is_fork=is_fork)
        target = self.cpus[target_idx]

        self.stats.wakeups += 1
        task.stats.wakeups += 1
        if target_idx != task.prev_cpu_index:
            self.stats.wake_migrations += 1
            task.stats.migrations += 1
            task.last_migration_time = now
        task.last_wake_time = now
        target.rq.enqueue(task)
        self._notify_cpu(target, task, waker_cpu, count_ipi)

    def _notify_cpu(self, target: GuestCpu, task: Task,
                    waker_cpu: Optional[int], count_ipi: bool) -> None:
        """Get the target vCPU to notice new work (kick / preempt)."""
        now = self.engine.now
        if target._in_sched:
            # The target is inside its scheduler (dispatch or interpreter);
            # the enqueued task will be seen when that pass finishes.
            return
        if target.current is None:
            if target.halted:
                if count_ipi:
                    self._account_ipi(waker_cpu, target, now)
                target.halted = False
                target.vcpu.kick()
            else:
                target.maybe_start()
            return
        cur = target.current
        if cur.is_idle_policy and not task.is_idle_policy:
            target.resched()
            return
        if (not task.is_idle_policy
                and task.vruntime + self.config.wakeup_granularity_ns < cur.vruntime):
            target.resched()

    def _account_ipi(self, waker_cpu: Optional[int], target: GuestCpu,
                     now: int) -> None:
        """Charge the interrupt needed to wake a halted vCPU.

        A recently-idled vCPU woken from within its own socket is reached
        via the polling fast path (no IPI, like TIF_POLLING_NRFLAG);
        everything else — deep idle, cross-socket wake-ups, device
        interrupts — costs one."""
        cross = False
        if waker_cpu is not None:
            waker_thread = self.vm.vcpus[waker_cpu].last_thread
            target_thread = target.vcpu.last_thread
            if waker_thread is not None and target_thread is not None:
                distance = self.machine.topology.distance(
                    waker_thread, target_thread)
                cross = distance == Distance.CROSS_SOCKET
        polling = (now - target.idle_since) <= self.config.polling_window_ns
        if cross or not polling:
            self.stats.ipis += 1
            if cross:
                self.stats.ipis_cross_socket += 1

    # ------------------------------------------------------------------
    # Action interpreter
    # ------------------------------------------------------------------
    def advance_task(self, task: Task) -> bool:
        """Drive the task's generator until it has work or blocks.

        Returns True when the task has ``pending_work`` to execute (caller
        runs it), False when it slept/blocked/exited (caller picks another
        task).  The task must not be on any runqueue when called.
        """
        now = self.engine.now
        # Charge any pending communication stall against the next Run.
        if getattr(task, "pending_stall_from", None) is not None:
            self._charge_stall(task, task.pending_stall_from)
            task.pending_stall_from = None

        while True:
            if task.spinning_on is not None:
                if self._spin_check(task):
                    task.spinning_on = None
                    task.spin_streak = 0
                else:
                    # Coalesce consecutive failed polls into one larger
                    # segment (1, 2, 4, ... polls, capped) so a long spin
                    # does not fire a completion event per poll.  The rate
                    # integration is linear, so the burned vCPU time is
                    # identical; only the poll instants are batched.
                    streak = task.spin_streak
                    task.spin_streak = streak + 1
                    polls = 1 << streak if streak < 6 else 64
                    cap = self.config.spin_coalesce_max
                    if polls > cap:
                        polls = cap
                    work = task.spin_poll_ns * polls
                    task.pending_work = float(work)
                    self.stats.spin_wait_ns += work
                    task.needs_advance = True
                    return True

            try:
                action = task.body.send(task.resume_value)
            except StopIteration:
                self._exit_task(task)
                return False
            task.resume_value = None

            if isinstance(action, Run):
                task.pending_work = float(action.work_ns) + task.extra_work
                task.extra_work = 0.0
                task.needs_advance = False
                if task.pending_work <= 0:
                    task.resume_value = None
                    continue
                return True

            if isinstance(action, Sleep):
                task.state = TaskState.SLEEPING
                task.cpu = None
                self.engine.call_in(action.duration_ns, self._timer_wake, task)
                return False

            if isinstance(action, Recv):
                if not self._do_recv(task, action.channel):
                    return False
                continue

            if isinstance(action, Send):
                if not self._do_send(task, action.channel, action.item):
                    return False
                continue

            if isinstance(action, Lock):
                if not self._do_lock(task, action.mutex):
                    return False
                continue

            if isinstance(action, Unlock):
                self._do_unlock(task, action.mutex)
                continue

            if isinstance(action, BarrierWait):
                if not self._do_barrier(task, action.barrier):
                    return False
                continue

            if isinstance(action, YieldCpu):
                # Approximate sched_yield: charge a context-switch worth of
                # work so the task reaches a preemption point.
                task.pending_work = 1000.0 + task.extra_work
                task.extra_work = 0.0
                task.needs_advance = True
                return True

            if isinstance(action, MigrateTo):
                dest = action.cpu_index
                if dest == task.prev_cpu_index:
                    continue
                task.state = TaskState.RUNNABLE
                task.stats.migrations += 1
                self.stats.wake_migrations += 1
                target = self.cpus[dest]
                target.rq.enqueue(task)
                task.last_wake_time = now
                self._notify_cpu(target, task, task.prev_cpu_index, True)
                return False

            raise TypeError(f"unknown action {action!r} from task {task.name}")

    # --- channels ------------------------------------------------------
    def _charge_stall(self, task: Task, producer_thread) -> None:
        my_thread = self.vm.vcpus[task.prev_cpu_index].last_thread
        if my_thread is None or producer_thread is None:
            return
        distance = self.machine.topology.distance(my_thread, producer_thread)
        stall = self.machine.cache.stall_cycles(distance, lines=task.pending_stall_lines)
        task.extra_work += stall
        task.stats.stall_ns += stall
        self.stats.stall_ns += stall

    def _do_recv(self, task: Task, ch: Channel) -> bool:
        if ch.items:
            item, producer_thread = ch.items.popleft()
            task.pending_stall_from = producer_thread
            task.pending_stall_lines = ch.lines
            self._charge_stall(task, producer_thread)
            task.pending_stall_from = None
            task.resume_value = item
            if ch.send_waiters:
                ptask, pitem = ch.send_waiters.popleft()
                ch.items.append((pitem, self._thread_of(ptask)))
                ch.total_sent += 1
                self.wake(ptask, waker_cpu=task.prev_cpu_index)
            return True
        ch.recv_waiters.append(task)
        task.state = TaskState.BLOCKED
        task.cpu = None
        return False

    def _do_send(self, task: Task, ch: Channel, item) -> bool:
        ch.total_sent += 1
        if ch.recv_waiters:
            consumer = ch.recv_waiters.popleft()
            consumer.resume_value = item
            consumer.pending_stall_from = self._thread_of(task)
            consumer.pending_stall_lines = ch.lines
            self.wake(consumer, waker_cpu=task.prev_cpu_index)
            return True
        if not ch.full():
            ch.items.append((item, self._thread_of(task)))
            return True
        ch.total_sent -= 1  # not actually delivered yet
        ch.send_waiters.append((task, item))
        task.state = TaskState.BLOCKED
        task.cpu = None
        return False

    def send_external(self, ch: Channel, item) -> None:
        """Inject an item from outside the VM (network arrival)."""
        if ch.recv_waiters:
            consumer = ch.recv_waiters.popleft()
            consumer.resume_value = item
            consumer.pending_stall_from = None
            ch.total_sent += 1
            self.wake(consumer, waker_cpu=None)
            return
        ch.items.append((item, None))
        ch.total_sent += 1

    def _thread_of(self, task: Task):
        return self.vm.vcpus[task.prev_cpu_index].last_thread

    # --- locks -----------------------------------------------------------
    def _do_lock(self, task: Task, m: Mutex) -> bool:
        if m.owner is None:
            m.owner = task
            return True
        m.contentions += 1
        if m.spin:
            task.spinning_on = ("mutex", m, 0)
            task.spin_streak = 0
            task.spin_poll_ns = m.spin_check_ns
            return True  # caller runs the spin poll as work
        m.waiters.append(task)
        task.state = TaskState.BLOCKED
        task.cpu = None
        return False

    def _do_unlock(self, task: Task, m: Mutex) -> None:
        if m.owner is not task:
            raise RuntimeError(f"{task.name} unlocking {m.name} it does not own")
        if m.waiters:
            nxt = m.waiters.popleft()
            m.owner = nxt
            self.wake(nxt, waker_cpu=task.prev_cpu_index)
        else:
            m.owner = None

    # --- barriers ----------------------------------------------------------
    def _do_barrier(self, task: Task, b: Barrier) -> bool:
        released = b.arrive()
        if released:
            waiters, b.waiters = b.waiters, []
            for w in waiters:
                w.resume_value = None
                if w.spinning_on is not None:
                    continue  # spinners notice the generation change
                self.wake(w, waker_cpu=task.prev_cpu_index)
            return True
        if b.spin:
            task.spinning_on = ("barrier", b, b.generation)
            task.spin_streak = 0
            task.spin_poll_ns = b.spin_check_ns
            return True
        b.waiters.append(task)
        task.state = TaskState.BLOCKED
        task.cpu = None
        return False

    def _spin_check(self, task: Task) -> bool:
        kind, obj, gen = task.spinning_on
        if kind == "mutex":
            if obj.owner is None:
                obj.owner = task
                return True
            return False
        if kind == "barrier":
            return obj.generation != gen
        raise ValueError(kind)

    # ------------------------------------------------------------------
    # Timers
    # ------------------------------------------------------------------
    def _timer_wake(self, task: Task) -> None:
        if task.state != TaskState.SLEEPING:
            return
        self.stats.timer_wakes += 1
        self.wake(task, waker_cpu=None)

    # ------------------------------------------------------------------
    # Migration helpers (balancer / vSched)
    # ------------------------------------------------------------------
    def migrate_queued(self, task: Task, src: GuestCpu, dst: GuestCpu,
                       reason: str = "lb") -> None:
        """Move a queued (not running) task between runqueues."""
        dst._catch_up()  # min_vruntime is read below; ticks advance it
        src.rq.dequeue(task)
        task.vruntime += dst.rq.min_vruntime - src.rq.min_vruntime
        task.extra_work += self.config.migration_cost_ns
        dst.rq.enqueue(task)
        task.stats.migrations += 1
        task.last_migration_time = self.engine.now
        if reason == "ivh":
            self.stats.ivh_migrations += 1
        else:
            self.stats.lb_migrations += 1
        if dst.halted:
            self._notify_cpu(dst, task, None, count_ipi=False)

    def active_balance(self, src: GuestCpu, dst: GuestCpu) -> None:
        """Actively migrate the running task of ``src`` to ``dst``."""
        task = src.take_current()
        if task is None:
            return
        task.state = TaskState.RUNNABLE
        self.stats.active_balance_migrations += 1
        task.stats.migrations += 1
        task.last_migration_time = self.engine.now
        src._dispatch()
        self.engine.call_in(self.config.migration_cost_ns,
                            self._finish_active_balance, task, dst)

    def _finish_active_balance(self, task: Task, dst: GuestCpu) -> None:
        if task.state != TaskState.RUNNABLE or task.cpu is not None:
            return  # something else picked it up meanwhile
        task.last_wake_time = self.engine.now
        dst.rq.enqueue(task)
        self._notify_cpu(dst, task, None, count_ipi=False)

    # ------------------------------------------------------------------
    # cpuset application (rwc)
    # ------------------------------------------------------------------
    def apply_cpuset(self, group: TaskGroup) -> None:
        """Evict the group's tasks from CPUs outside the (new) mask."""
        for task in list(group.tasks):
            if task.state == TaskState.RUNNABLE and task.cpu is not None:
                if not task.may_run_on(task.cpu.index):
                    src = task.cpu
                    src.rq.dequeue(task)
                    task.cpu = None
                    task.state = TaskState.SLEEPING  # transient; rewoken below
                    self.wake(task, waker_cpu=None, count_ipi=False)
            elif task.state == TaskState.RUNNING and task.cpu is not None:
                if not task.may_run_on(task.cpu.index):
                    src = task.cpu
                    moved = src.take_current()
                    if moved is not task:
                        continue
                    task.state = TaskState.SLEEPING
                    self.wake(task, waker_cpu=None, count_ipi=False)
                    src._dispatch()

    # ------------------------------------------------------------------
    # Scheduler tick (vact kernel instrumentation + hooks)
    # ------------------------------------------------------------------
    def on_tick(self, cpu: GuestCpu, now: int) -> None:
        self.tick_accounting(cpu, now)
        self.balancer.periodic(cpu, now)
        if self.tick_hook is not None:
            self.tick_hook(cpu, now)

    def tick_accounting(self, cpu: GuestCpu, now: int) -> None:
        """The per-CPU arithmetic portion of one tick.

        Factored out of :meth:`on_tick` because tickless catch-up
        (:meth:`GuestCpu._catch_up`) replays exactly this — and only this —
        for every elided tick instant; the balance pass and tick hook are
        guaranteed no-ops inside an elided span.
        """
        self.stats.ticks += 1
        cpu.last_heartbeat = now
        steal = cpu.vcpu.steal_ns(now)
        jump = steal - cpu.tick_steal_last
        cpu.tick_steal_last = steal
        if jump >= self.config.steal_jump_threshold_ns:
            cpu.preempt_count += 1
            cpu.active_since_est = now
        elif jump >= self.config.steal_graze_floor_ns:
            # Sub-threshold steal: filtered from preempt_count as noise,
            # but tallied so the hardened vact can tell "ran undisturbed"
            # from "was shaved every tick by sub-threshold slices".
            cpu.steal_graze_count += 1
        self._update_default_capacity(cpu, now, jump)

    def _update_default_capacity(self, cpu: GuestCpu, now: int, steal_jump: int) -> None:
        """The stock (inaccurate) CFS capacity estimate (§5.3).

        Steal time is only observable while the vCPU is busy, so idle vCPUs
        drift back to looking like full-capacity CPUs — the staleness vcap
        fixes.
        """
        if cpu.current is None:
            return
        wall = max(1, now - cpu.last_tick_time)
        frac = min(1.0, max(0.0, steal_jump / wall))
        # PELT-style running average of the steal fraction (the
        # scale_rt_capacity analogue, ~32 ms half-life): one noisy tick
        # depresses the estimate for tens of milliseconds.
        decay = 0.5 ** (wall / self.config.cfs_capacity_halflife_ns)
        cpu.steal_frac_avg = cpu.steal_frac_avg * decay + frac * (1.0 - decay)
        cpu.cfs_capacity = (1.0 - cpu.steal_frac_avg) * 1024.0
        cpu._cap_touch = now

    def capacity_of(self, cpu_index: int) -> float:
        """CFS capacity of a vCPU, by whichever estimator is installed."""
        if self.capacity_provider is not None:
            return self.capacity_provider(cpu_index)
        cpu = self.cpus[cpu_index]
        cpu._catch_up()  # cfs_capacity is tick-maintained
        if cpu.current is None:
            idle_ns = self.engine.now - cpu._cap_touch
            if idle_ns > 0:
                half = self.config.cfs_capacity_idle_halflife_ns
                decay = 0.5 ** (idle_ns / half)
                cpu.steal_frac_avg *= decay
                cpu.cfs_capacity = (1.0 - cpu.steal_frac_avg) * 1024.0
                cpu._cap_touch = self.engine.now
        return cpu.cfs_capacity

    # ------------------------------------------------------------------
    # vCPU state query (the new kernel function of §4)
    # ------------------------------------------------------------------
    def vcpu_state(self, cpu_index: int):
        """Heartbeat-based host state of a vCPU, guest-observable only.

        Returns ``(state, since_ns)``.  Knows nothing the guest could not
        know: just the staleness of the per-CPU tick timestamp and the time
        of the last observed steal jump.
        """
        now = self.engine.now
        cpu = self.cpus[cpu_index]
        cpu._catch_up()  # the heartbeat is stamped by (possibly elided) ticks
        stale_after = self.config.heartbeat_stale_ticks * self.config.tick_ns
        if now - cpu.last_heartbeat > stale_after:
            return VCpuHostState.INACTIVE, cpu.last_heartbeat
        return VCpuHostState.ACTIVE, cpu.active_since_est
