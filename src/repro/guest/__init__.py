"""Guest OS layer: tasks, CFS scheduling, domains, balancing, cgroups."""

from repro.guest.cgroup import TaskGroup
from repro.guest.config import GuestConfig
from repro.guest.cpu import GuestCpu
from repro.guest.domains import DomainLevel, SchedDomains
from repro.guest.kernel import GuestKernel, VCpuHostState
from repro.guest.pelt import Pelt, UTIL_SCALE
from repro.guest.runqueue import CfsRunqueue
from repro.guest.sync import Barrier, Channel, Mutex
from repro.guest.task import Policy, Task, TaskState

__all__ = [
    "GuestKernel",
    "GuestConfig",
    "GuestCpu",
    "CfsRunqueue",
    "SchedDomains",
    "DomainLevel",
    "TaskGroup",
    "Task",
    "TaskState",
    "Policy",
    "Pelt",
    "UTIL_SCALE",
    "Channel",
    "Mutex",
    "Barrier",
    "VCpuHostState",
]
