"""Guest kernel tunables (CFS defaults plus the vact kernel thresholds)."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sim.engine import MSEC, USEC, elision_default


@dataclass
class GuestConfig:
    """Scheduler tunables of the simulated guest kernel.

    Defaults mirror stock Linux CFS; the vact-related thresholds follow the
    paper (§3.1): heartbeat staleness of a few ticks, small steal jumps
    filtered as noise.
    """

    #: Guest fair scheduler flavour: "cfs" (the paper's implementation
    #: target) or "eevdf" (the successor it claims easy portability to).
    scheduler: str = "cfs"
    #: EEVDF base virtual slice (request size).
    eevdf_base_slice_ns: int = int(1.5 * MSEC)
    #: Scheduler tick period.
    tick_ns: int = 1 * MSEC
    #: CFS targeted preemption latency.
    sched_latency_ns: int = 6 * MSEC
    #: CFS minimal preemption granularity.
    min_granularity_ns: int = 750 * USEC
    #: CFS wakeup granularity (vruntime lead needed to preempt on wakeup).
    wakeup_granularity_ns: int = 1 * MSEC
    #: Period of per-CPU periodic load balancing.
    balance_interval_ns: int = 4 * MSEC
    #: Cost charged to a task migrated by the balancer (cache refill etc.).
    migration_cost_ns: int = 30 * USEC
    #: Steal increase per tick below this is filtered as noise by vact.
    steal_jump_threshold_ns: int = 200 * USEC
    #: Floor for the graze counter: a steal jump in [floor, threshold) is
    #: too small to count as a preemption but too large to be noise — the
    #: signature of a co-runner stealing in sub-threshold slices every
    #: tick (a tick-evading antagonist).  The hardened vact reads the
    #: count to re-qualify such windows; stock vact ignores it.
    steal_graze_floor_ns: int = 25 * USEC
    #: Heartbeat staleness (in ticks) that marks a vCPU host-inactive.
    heartbeat_stale_ticks: int = 3
    #: Idle window within which a halted vCPU is woken via the polling
    #: fast path (no IPI), like TIF_POLLING_NRFLAG in Linux.
    polling_window_ns: int = 200 * USEC
    #: EMA factor for the default (steal-based) CFS capacity estimate.
    cfs_capacity_alpha: float = 0.25
    #: Half-life of the steal-fraction running average behind the default
    #: capacity estimate (scale_rt_capacity uses a PELT signal).
    cfs_capacity_halflife_ns: int = 32 * MSEC
    #: Half-life of the idle drift of the default capacity estimate back
    #: toward full scale (the staleness the paper exploits in §5.3).
    cfs_capacity_idle_halflife_ns: int = 250 * MSEC
    #: Maximum number of spin polls coalesced into one execution segment.
    #: Consecutive failed polls escalate 1, 2, 4, ... up to this cap, which
    #: bounds how stale a coalesced spinner's view of the sync object can
    #: get (cap * spin_check_ns of extra acquisition delay in the worst
    #: case).  1 disables coalescing.
    spin_coalesce_max: int = 8
    #: NO_HZ-style tick elision: when a CPU's upcoming ticks provably have
    #: no side effects beyond per-CPU accounting (no balance due, no slice
    #: preemption possible, no tick hook installed), they are skipped on
    #: the event heap and their arithmetic is replayed on demand.
    #: Default follows $VSCHED_REPRO_TICKLESS (on unless set to "0").
    tickless: bool = field(default_factory=elision_default)

    def slice_for(self, nr_running: int) -> int:
        """CFS time slice given the number of co-runnable tasks."""
        if nr_running <= 1:
            return self.sched_latency_ns
        return max(self.min_granularity_ns, self.sched_latency_ns // nr_running)
