"""Per-vCPU guest execution engine.

A :class:`GuestCpu` binds one guest CFS runqueue to one hypervisor vCPU
thread and integrates task work over time: while the vCPU is host-active,
the current task's remaining work shrinks at the hardware thread's speed
factor; host preemptions freeze progress (the *stalled running task* of
§2.3); rate changes (SMT sibling activity, DVFS) reschedule the completion
event.

The guest tick fires every ``tick_ns`` **only while the vCPU is active** —
when the hypervisor preempts the vCPU the pending tick is delivered on
resume, which is exactly the mechanism vact uses to observe steal-time
jumps (§3.1).

Tickless operation (NO_HZ analogue): most ticks of a continuously-running
vCPU are pure per-CPU arithmetic — integrate the current task, stamp the
heartbeat, read an unchanged steal counter, decay the capacity EMA.  Such
ticks have *provably* no cross-CPU side effects up to a computable horizon
(the next balance tick, the earliest possible slice preemption, §docs
INTERNALS §11), so instead of going through the event heap they are elided:
the one scheduled tick event is armed directly at the horizon and the
skipped ticks' effects are replayed arithmetically — with the exact same
per-tick float/integer operation sequence, hence bit-identical state — by
:meth:`GuestCpu._catch_up` the moment anything could observe them.  Tick
events also occupy a per-CPU negative priority "lane" in the engine heap so
their ordering against same-instant events never depends on when they were
(re-)armed.
"""

from __future__ import annotations

from typing import Optional

from repro.guest.runqueue import CfsRunqueue
from repro.guest.task import Task, TaskState

#: Work-remainder below which a segment counts as complete (float dust).
_WORK_EPSILON = 1e-6


class GuestCpu:
    """One guest CPU: runqueue + dispatcher + tick machinery."""

    def __init__(self, kernel, vcpu, index: int):
        self.kernel = kernel
        self.engine = kernel.engine
        self.vcpu = vcpu
        self.index = index
        vcpu.guest_cpu = self
        if kernel.config.scheduler == "eevdf":
            from repro.guest.eevdf import EevdfRunqueue
            self.rq = EevdfRunqueue(self)
        else:
            self.rq = CfsRunqueue(self)
        self.current: Optional[Task] = None

        # --- execution-rate integration ---------------------------------
        self.rate = 0.0
        self._seg_update = 0
        self._seg_event = None

        # --- idle state ---------------------------------------------------
        self.halted = True
        self.idle_since = 0

        # --- tick state ----------------------------------------------------
        # Stagger tick phases across CPUs like real per-CPU timers.
        self._tick_due = (index * 97_000) % kernel.config.tick_ns
        self._tick_event = None
        self.last_tick_time = 0
        # Same-instant ordering lane for this CPU's tick events; allocated
        # unconditionally so event ordering is identical with and without
        # tick elision.
        self._tick_lane = self.engine.alloc_lane()
        # When an overdue tick collapsed to the resume instant is deferred,
        # eager mode would have armed it *mid-instant*; record where so
        # _catch_up can replay it exactly when that entry would have fired
        # (see engine.max_prio_popped_since).
        self._tick_arm_time = -1
        self._tick_arm_epoch = 0

        # --- vact kernel-side instrumentation ------------------------------
        self.last_heartbeat = -(10 ** 12)
        self.active_since_est = 0
        self.tick_steal_last = 0
        self.preempt_count = 0
        self.steal_graze_count = 0

        # --- default CFS capacity estimate (steal-based, §5.3) -------------
        self.cfs_capacity = 1024.0
        self.steal_frac_avg = 0.0
        self._cap_touch = 0

        # --- balancing bookkeeping -----------------------------------------
        self.next_balance = kernel.config.balance_interval_ns * (index + 1)
        self.push_target: Optional[int] = None  # active-balance request
        self.balance_failed = 0        # failed balance attempts against us
        self.next_active_push = 0      # cooldown after an active push
        #: While True the idle loop spins instead of halting (ivh pre-wake:
        #: the target vCPU polls for the pull request, Figure 9).
        self.pull_pending = False
        #: Re-entrancy guard: set while the dispatcher or action interpreter
        #: runs on this CPU.  Wake-ups that land here meanwhile only enqueue;
        #: the active scheduling pass picks them up (interrupt-disabled
        #: critical section semantics).
        self._in_sched = False

    # ------------------------------------------------------------------
    # Host-side callbacks (from VCpuThread)
    # ------------------------------------------------------------------
    def host_resumed(self, now: int, rate: float) -> None:  # vschedlint: disable=elision-sync -- resume IS the materialization point: end_wait closed the steal interval, and collapsing overdue ticks to `now` here is the replay arithmetic itself (INTERNALS §11)
        self.rate = rate
        self._seg_update = now
        self.halted = False
        # Collapse overdue ticks to the resume instant (tick instants that
        # fell inside the inactive window do not happen, exactly as
        # before), then defer to the usual elision horizon.  The replay is
        # exact even for the collapsed tick: steal_ns is constant over a
        # continuously-active span (end_wait closes the interval before
        # this callback runs), so a later replay observes exactly the
        # steal jump this preemption produced.  But a tick deferred *at*
        # the resume instant needs one extra piece of bookkeeping: eagerly
        # it would be armed mid-instant, firing only after the cascade
        # that resumed us — record the arming epoch so _catch_up can
        # reproduce that position (engine.max_prio_popped_since).
        due = max(now, self._tick_due)
        self._tick_due = due
        horizon = self._tick_horizon(due)
        if horizon > due and due == now:
            self._tick_arm_time = now
            self._tick_arm_epoch = self.engine.pop_epoch
        ev = self._tick_event
        if ev is not None and not (ev.active and ev.time == horizon):
            ev.cancel()
            ev = None
        if ev is None:
            # Otherwise the event kept across the preemption already sits
            # at the right instant (and lane): reuse it, zero heap ops.
            self._tick_event = self.engine.call_at(
                horizon, self._tick, prio=self._tick_lane)
        if self.current is None:
            self._dispatch()
        else:
            self._arm_segment()

    def host_preempted(self, now: int) -> None:
        self._catch_up()
        self._integrate(now)
        self.rate = 0.0
        if self._seg_event is not None:
            self._seg_event.cancel()
            self._seg_event = None
        if self.kernel.config.tickless:
            # Preemptions regularly outlast the pending tick, and a tick
            # firing while the vCPU is inactive is a pure no-op (the tick
            # stays due and is delivered on resume).  Cancel it instead of
            # paying a heap dispatch for nothing; resume re-arms.
            ev = self._tick_event
            if ev is not None:
                ev.cancel()
                self._tick_event = None
        # In eager mode the tick event is kept across the preemption: a
        # quick resume with an unchanged due reuses it as-is; if it fires
        # while the vCPU is inactive it is a no-op.

    def host_rate_changed(self, now: int, rate: float) -> None:
        if rate == self.rate:
            # Re-arm elision: the completion estimate armed for the current
            # segment is still exact, so skip the integrate/cancel/re-push
            # churn entirely (SMT-sibling and DVFS notifications frequently
            # re-announce an unchanged rate).
            return
        self._catch_up()
        self._integrate(now)
        self.rate = rate
        self._arm_segment()

    @property
    def host_active(self) -> bool:
        return self.vcpu.active

    # ------------------------------------------------------------------
    # Work integration
    # ------------------------------------------------------------------
    def _integrate(self, now: int) -> None:
        """Charge elapsed wall time to the current task."""
        task = self.current
        delta = now - self._seg_update
        self._seg_update = now
        if task is None or delta <= 0 or self.rate <= 0:
            return
        work = delta * self.rate
        task.pending_work -= work
        task.stats.work_done += work
        task.stats.wall_running += delta
        task.slice_ran += delta
        self.rq.charge_vruntime(task, delta)
        task.pelt.update(now, True)

    def _arm_segment(self) -> None:
        ev = self._seg_event
        task = self.current
        if task is None or self.rate <= 0:
            if ev is not None:
                ev.cancel()
                self._seg_event = None
            return
        remaining = task.pending_work
        if remaining < 0.0:
            remaining = 0.0
        due = self.engine.now + int(remaining / self.rate) + 1
        if ev is not None:
            if not ev.cancelled and ev.time == due:
                return  # same completion instant: keep the armed event
            ev.cancel()
        self._seg_event = self.engine.call_at(due, self._segment_done)

    def _segment_done(self) -> None:
        self._seg_event = None
        now = self.engine.now
        self._catch_up()
        self._integrate(now)
        task = self.current
        if task is None:
            return
        if task.pending_work > _WORK_EPSILON:
            self._arm_segment()  # rate changed under us; not actually done
            return
        task.pending_work = 0
        task.needs_advance = True
        # Advance the generator in the task's own context: it stays current
        # (unlock/send side effects happen "in kernel mode" of this task).
        self._in_sched = True
        try:
            runnable = self.kernel.advance_task(task)
        finally:
            self._in_sched = False
        if runnable:
            if self.current is not task:
                # The interpreter's side effects let a balancer steal the
                # task mid-advance; it is in the balancer's hands now.
                task.state = TaskState.RUNNABLE
                if self.current is None:
                    self._dispatch()
                return
            # Next action is more computation; keep running without a
            # context switch.
            task.state = TaskState.RUNNING
            self._seg_update = now
            self._arm_segment()
            self._post_advance_preempt_check(task)
        else:
            self.current = None
            self._dispatch()

    def _post_advance_preempt_check(self, task: Task) -> None:
        """Handle wake-ups that arrived while the interpreter ran."""
        if task is not self.current:
            return
        rq = self.rq
        if task.is_idle_policy and rq.has_queued_normal():
            self.resched()
            return
        gran = self.kernel.config.wakeup_granularity_ns
        for queued in rq.normal:
            if queued.vruntime + gran < task.vruntime:
                self.resched()
                return

    # ------------------------------------------------------------------
    # Dispatch / context switching
    # ------------------------------------------------------------------
    def _dispatch(self) -> None:
        """Pick and start the next runnable task (or go idle)."""
        if self._in_sched:
            return  # the active scheduling pass will see the new work
        self._catch_up()  # current changes below; replay ticks first
        now = self.engine.now
        tried_newidle = False
        self._in_sched = True
        try:
            self._dispatch_loop(now, tried_newidle)
        finally:
            self._in_sched = False

    def _dispatch_loop(self, now: int, tried_newidle: bool) -> None:  # vschedlint: disable=elision-sync -- only reached from _dispatch/_segment_done, both of which _catch_up() before calling; writing _seg_update=now opens the new segment
        while True:
            nxt = self.rq.pick_next()
            if nxt is None:
                if not tried_newidle:
                    tried_newidle = True
                    if self.kernel.balancer.newidle(self, now):
                        continue
                self._go_idle(now)
                return
            if nxt.needs_advance and not self.kernel.advance_task(nxt):
                continue  # task blocked/slept/exited during advance
            self.current = nxt
            nxt.state = TaskState.RUNNING
            nxt.cpu = self
            nxt.prev_cpu_index = self.index
            nxt.slice_ran = 0
            nxt.run_started_at = now
            nxt.stats.dispatches += 1
            nxt.stats.wait_ns += max(0, now - nxt.last_wake_time)
            nxt.last_wake_time = now
            nxt.pelt.update(now, False)  # close the waiting interval
            self._seg_update = now
            self.kernel.tracer.record(now, "guest.run", self.index, nxt.name)
            self._arm_segment()
            return

    def _go_idle(self, now: int) -> None:
        self.current = None
        self.idle_since = now
        self.kernel.tracer.record(now, "guest.idle", self.index)
        if self.pull_pending:
            return  # spin in the idle loop awaiting an ivh pull
        if not self.halted:
            self.halted = True
            self.vcpu.halt()

    def put_current_back(self) -> Optional[Task]:
        """Stop the current task and requeue it (preemption)."""
        task = self.current
        if task is None:
            return None
        now = self.engine.now
        self._catch_up()
        self._integrate(now)
        if self._seg_event is not None:
            self._seg_event.cancel()
            self._seg_event = None
        self.current = None
        task.last_wake_time = now
        self.rq.enqueue(task)
        return task

    def take_current(self) -> Optional[Task]:
        """Stop and detach the current task (for migration elsewhere)."""
        task = self.current
        if task is None:
            return None
        now = self.engine.now
        self._catch_up()
        self._integrate(now)
        if self._seg_event is not None:
            self._seg_event.cancel()
            self._seg_event = None
        self.current = None
        task.cpu = None
        return task

    def resched(self) -> None:
        """Preempt the current task and pick again."""
        if self.current is not None:
            self.put_current_back()
        self._dispatch()

    def maybe_start(self) -> None:
        """Kick the dispatcher if the CPU is sitting idle with work queued."""
        if self.current is None and self.rq.nr_running() > 0:
            if self.halted:
                # The vCPU is halted; the host will call host_resumed which
                # dispatches.  (kernel.wake kicks the vCPU.)
                return
            self._dispatch()

    # ------------------------------------------------------------------
    # Tick (tickless: one heap event per elision horizon, not per tick)
    # ------------------------------------------------------------------
    def _tick(self) -> None:
        self._catch_up()  # materialize any ticks elided before this one
        self._tick_event = None
        if not self.host_active:
            # Fired while the vCPU was preempted (the event is kept across
            # preemptions for reuse): the tick stays due and is delivered
            # on resume, exactly as when it used to be cancelled.
            return
        now = self.engine.now
        self._tick_due = now + self.kernel.config.tick_ns
        self._tick_event = self.engine.call_at(
            self._tick_horizon(self._tick_due), self._tick,
            prio=self._tick_lane)
        self._integrate(now)
        self.kernel.on_tick(self, now)
        self.last_tick_time = now
        self._check_slice_preemption(now)

    def _tick_horizon(self, base: int) -> int:  # vschedlint: disable=elision-sync -- pure function of already-materialized state: every caller (_retick, host_resumed, _tick) holds the catch-up invariant when computing the horizon
        """First tick instant >= ``base`` that may have side effects.

        Ticks strictly before the returned instant are pure per-CPU
        arithmetic — no balance pass due, no slice preemption reachable,
        no tick hook installed, and (while the vCPU stays continuously
        active) a provably unchanged steal counter — so the tick event is
        armed there and the skipped instants are replayed by
        :meth:`_catch_up`.  Returns ``base`` itself when the very next
        tick needs the full path.
        """
        kernel = self.kernel
        config = kernel.config
        if not config.tickless or kernel.tick_hook is not None:
            return base
        next_balance = self.next_balance
        if next_balance <= base:
            return base
        tick = config.tick_ns
        # First tick at or after the balance deadline (ceil to the grid).
        horizon = base + -(-(next_balance - base) // tick) * tick
        cur = self.current
        nr = self.rq.nr_running()
        if cur is None:
            if nr > 0:
                return base  # wake-up in flight; don't defer anything
        elif nr > 0:
            if cur.is_idle_policy and self.rq.has_queued_normal():
                return base
            lack = config.slice_for(nr + 1) - cur.slice_ran
            if lack <= 0:
                return base
            # slice_ran grows with wall time from _seg_update while the
            # vCPU stays active, so it crosses the slice at a known
            # instant; the first tick at or after it may preempt.
            cross = self._seg_update + lack
            if cross <= base:
                return base
            first = base + -(-(cross - base) // tick) * tick
            if first < horizon:
                horizon = first
        return horizon

    def _catch_up(self) -> None:
        """Replay elided ticks that order before the current event.

        No-op unless an elided span is pending (the armed tick event sits
        beyond the next logical tick due).  Each skipped tick replays the
        exact full-tick arithmetic (integration, heartbeat, steal read,
        capacity EMA) in order, so all float/integer state is bit-identical
        to a run that dispatched every tick through the heap; the balance
        pass, tick hook, and slice preemption are guaranteed no-ops inside
        the span by :meth:`_tick_horizon`.
        """
        ev = self._tick_event
        if ev is None:
            return
        due = self._tick_due
        hard = ev.time
        if due >= hard or not self.vcpu.active:
            return
        engine = self.engine
        limit = engine.current_key()
        if limit is None:
            limit_t, limit_p = engine.now, 1  # between runs: everything due
        else:
            limit_t, limit_p = limit
        lane = self._tick_lane
        tick = self.kernel.config.tick_ns
        account = self.kernel.tick_accounting
        arm_time = self._tick_arm_time
        n = 0
        while due < hard:
            if due >= limit_t:
                if due > limit_t:
                    break
                if due == arm_time:
                    # Deferred at the resume instant itself: the eager
                    # entry was armed *mid-instant*, so it contends only
                    # from that epoch on — by the heap-min property it has
                    # fired iff a higher-priority pop followed the arming.
                    m = engine.max_prio_popped_since(self._tick_arm_epoch)
                    if m is None or m <= lane:
                        break
                elif lane >= limit_p:
                    break
            self._tick_due = due + tick
            self._integrate(due)
            account(self, due)
            self.last_tick_time = due
            due += tick
            n += 1
        if n:
            engine.note_elided(n, self._tick)

    def _retick(self) -> None:
        """Re-evaluate a deferred tick horizon after a state change.

        Called after an enqueue — the only mutation that can move the
        horizon *earlier* (more runnable tasks shrink the slice; a normal
        arrival can make an idle-policy current preemptable).  All other
        mutations only push the horizon out, where a too-early hard tick
        is merely one extra event, never a missed side effect.
        """
        ev = self._tick_event
        if ev is None or not self.vcpu.active:
            return
        # Replay anything already logically fired before re-evaluating: a
        # tick deferred at this very instant may order before the enqueue
        # that triggered us, and the recomputed horizon must start past it.
        self._catch_up()
        due = self._tick_due
        if due >= ev.time:
            return  # next tick is already a real one
        horizon = self._tick_horizon(due)
        if horizon != ev.time:
            ev.cancel()
            self._tick_event = self.engine.call_at(
                horizon, self._tick, prio=self._tick_lane)

    def _check_slice_preemption(self, now: int) -> None:
        task = self.current
        if task is None:
            return
        if task.is_idle_policy and self.rq.has_queued_normal():
            self.resched()
            return
        nr = self.rq.nr_running() + 1
        if nr <= 1:
            return
        if task.slice_ran >= self.kernel.config.slice_for(nr):
            self.resched()

    def __repr__(self) -> str:
        return f"<GuestCpu {self.index} of {self.kernel.vm.name}>"
