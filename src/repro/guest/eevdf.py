"""EEVDF runqueue: the successor scheduler the paper targets for porting.

The paper implements vSched on CFS but notes (§4) that it "can be easily
ported to the latest kernel that uses the Earliest Eligible Virtual
Deadline First (EEVDF) scheduler".  This module backs that claim: an EEVDF
pick policy that drops into the same runqueue interface, selected with
``GuestConfig(scheduler="eevdf")``.  All of vSched (probers, bvs, ivh,
rwc) runs unchanged on top — the hook points don't care which fair
scheduler picks tasks.

EEVDF in brief: each entity owes/holds *lag* relative to the runqueue's
virtual time ``V`` (the weighted average vruntime).  Only entities that
are **eligible** — lag ≥ 0, i.e. ``vruntime ≤ V`` — may be picked, and
among them the one with the **earliest virtual deadline**
(``vruntime + slice/weight``) runs first.  Compared with CFS's pure
min-vruntime rule this bounds latency for short-slice tasks without
starving anyone.
"""

from __future__ import annotations

from typing import List, Optional

from repro.guest.runqueue import CfsRunqueue
from repro.guest.task import GUEST_NICE0_WEIGHT, Task


class EevdfRunqueue(CfsRunqueue):
    """Drop-in EEVDF variant of the per-CPU runqueue."""

    def virtual_time(self) -> float:
        """V: weighted average vruntime over runnable entities."""
        entities: List[Task] = list(self.normal)
        cur = self.cpu.current
        if cur is not None and not cur.is_idle_policy:
            entities.append(cur)
        if not entities:
            return float(self.min_vruntime)
        total_w = sum(t.weight for t in entities)
        return sum(t.vruntime * t.weight for t in entities) / total_w

    def virtual_deadline(self, task: Task) -> float:
        """vruntime + the task's virtual slice."""
        base = self.cpu.kernel.config.eevdf_base_slice_ns
        return task.vruntime + base * GUEST_NICE0_WEIGHT / task.weight

    def pick_next(self) -> Optional[Task]:
        band = self.normal or self.idle_band
        if not band:
            return None
        if band is self.normal:
            v = self.virtual_time()
            eligible = [t for t in band if t.vruntime <= v + 1]
            pool = eligible or band
        else:
            pool = band
        best = min(pool, key=lambda t: (self.virtual_deadline(t), t.tid))
        band.remove(best)
        if best.vruntime > self.min_vruntime:
            self.min_vruntime = best.vruntime
        return best
