"""Default CFS wake placement (select_task_rq_fair analogue).

Three ingredients of the stock heuristic matter to the paper's
experiments:

* **wake affinity** — a task woken by another task may be pulled toward
  the waker's LLC domain when that domain is no more loaded than the
  previous CPU's; this is what consolidates communicating tasks once vtop
  installs real LLC domains (Figure 13);
* **idle search** — scan the chosen LLC domain for an idle CPU, where
  "idle" includes CPUs running only SCHED_IDLE work; with an SMT level
  present, fully-idle cores are preferred over idle threads whose sibling
  is busy (Figure 12);
* **fork balancing** — a brand-new task is placed in the least-loaded LLC
  group (find_idlest path), spreading instances across sockets.

The scan starts from a rotating offset, modelling concurrent wakers'
distributed search starts; without an SMT level this reproduces the
partial core coverage CFS shows in the underloaded-system experiment.

vSched's bvs replaces this policy for small tasks via the kernel's
``select_rq_hook``; everything else still lands here.
"""

from __future__ import annotations

from typing import List, Optional

from repro.guest.task import Task


class WakePlacer:
    """Stateful default placement policy for one guest kernel."""

    def __init__(self, kernel):
        self.kernel = kernel
        self._rotor = 0

    # ------------------------------------------------------------------
    def select(self, task: Task, waker_cpu: Optional[int],
               is_fork: bool = False) -> int:
        kernel = self.kernel
        allowed = task.effective_allowed()
        prev = task.prev_cpu_index
        if allowed is not None and not allowed:
            return prev  # pathological empty mask: stay put
        if allowed is not None and prev not in allowed:
            prev = min(allowed)

        if is_fork:
            domain = self._idlest_domain(allowed)
        else:
            domain = self._affine_domain(prev, waker_cpu)
        candidates = [c for c in sorted(domain)
                      if allowed is None or c in allowed]
        if not candidates:
            candidates = [c for c in range(len(kernel.cpus))
                          if allowed is None or c in allowed]
            if not candidates:
                return prev

        # Fast path: previous CPU is idle and in the chosen domain.
        if not is_fork and prev in domain:
            if self._idle_for_placement(kernel.cpus[prev]):
                return prev

        self._rotor = (self._rotor * 1103515245 + 12345) & 0x7FFFFFFF
        start = self._rotor % len(candidates)
        rotated = candidates[start:] + candidates[:start]

        if kernel.domains.has_smt_level():
            for c in rotated:
                if self._idle_for_placement(kernel.cpus[c]) and self._core_idle(c):
                    return c
        for c in rotated:
            if self._idle_for_placement(kernel.cpus[c]):
                return c

        # Nothing idle: stay near the previous CPU unless it is overloaded
        # compared to the least-loaded candidate.
        best = min(rotated, key=lambda c: (kernel.cpus[c].rq.nr_total(), c))
        if prev in domain:
            if kernel.cpus[prev].rq.nr_total() > kernel.cpus[best].rq.nr_total() + 1:
                return best
            return prev
        return best

    # ------------------------------------------------------------------
    def _affine_domain(self, prev: int, waker_cpu: Optional[int]):
        """Pick between the previous CPU's and the waker's LLC domain."""
        domains = self.kernel.domains
        prev_domain = domains.llc_domain(prev)
        if waker_cpu is None:
            return prev_domain
        waker_domain = domains.llc_domain(waker_cpu)
        if waker_domain == prev_domain:
            return prev_domain
        if self._domain_load(waker_domain) <= self._domain_load(prev_domain):
            return waker_domain
        return prev_domain

    def _idlest_domain(self, allowed):
        """Fork placement: the least-loaded LLC group."""
        domains = self.kernel.domains
        groups = []
        seen = set()
        for c in range(len(self.kernel.cpus)):
            g = domains.llc_domain(c)
            key = tuple(sorted(g))
            if key not in seen:
                seen.add(key)
                if allowed is None or any(x in allowed for x in g):
                    groups.append(g)
        if not groups:
            return domains.all_cpus()
        return min(groups, key=lambda g: (self._count_load(g), min(g)))

    def _count_load(self, domain) -> int:
        """Raw queued-task count; fork placement spreads *instances*, so
        a busy-but-fast socket must not attract extra forks just because
        its queues drain quickly."""
        return sum(self.kernel.cpus[c].rq.nr_total() for c in domain)

    def _domain_load(self, domain) -> float:
        """Capacity-normalized domain load for the wake-affinity
        comparison (the sum_util/group_capacity comparison of
        update_sg_lb_stats).  Raw task counts misrank domains the moment
        LLC domains and per-CPU capacities are both real: wake affinity
        then consolidates communicating tasks onto a low-capacity socket
        that merely *queues* fewer tasks.  With uniform capacities this
        reduces exactly to the task count."""
        kernel = self.kernel
        return sum(kernel.cpus[c].rq.nr_total() * 1024.0
                   / max(1.0, kernel.capacity_of(c)) for c in domain)

    def _idle_for_placement(self, cpu) -> bool:
        rq = cpu.rq
        return rq.is_idle() or rq.sched_idle_only()

    def _core_idle(self, cpu_index: int) -> bool:
        for sib in self.kernel.domains.smt_siblings(cpu_index):
            if not self._idle_for_placement(self.kernel.cpus[sib]):
                return False
        return True
