"""Per-entity load tracking (PELT), as used by the guest CFS.

This is a faithful reimplementation of the kernel's PELT signal: utilization
is accumulated in 1024 µs periods and decayed geometrically with a half-life
of 32 periods, yielding ``util_avg`` in ``[0, 1024]``.  vSched uses PELT for
task classification exactly as the paper does (§3.2/§3.3): *small* tasks
(low utilization) are candidates for biased vCPU selection; *CPU-intensive*
tasks (high utilization) are candidates for intra-VM harvesting.

Time is charged only while the task actually executes on an active vCPU
(paravirtual steal-time accounting), so a stalled task's utilization does
not inflate during vCPU inactivity.
"""

from __future__ import annotations

#: PELT period in nanoseconds (1024 µs, like the kernel).
PELT_PERIOD_NS = 1024 * 1024

#: Decay factor per period: y ** 32 == 0.5.
PELT_Y = 0.5 ** (1.0 / 32.0)

#: Maximum accumulated sum (geometric series limit), kernel's LOAD_AVG_MAX.
PELT_MAX_SUM = PELT_PERIOD_NS / (1.0 - PELT_Y)

#: Full-scale utilization.
UTIL_SCALE = 1024

#: Memoized decay factors keyed by period count.  Tick-driven updates
#: arrive at a handful of recurring intervals (the 1 ms tick dominates,
#: especially in tickless catch-up replay loops), and ``pow`` is the hot
#: instruction of the signal — reusing the identical float result is both
#: faster and bit-identical by construction.
_DECAY_CACHE: dict = {}


def _decay(periods: float) -> float:
    d = _DECAY_CACHE.get(periods)
    if d is None:
        if len(_DECAY_CACHE) >= 256:
            _DECAY_CACHE.clear()
        d = _DECAY_CACHE[periods] = PELT_Y ** periods
    return d


class Pelt:
    """Utilization tracker for one task (or one runqueue).

    ``update(now, running)`` charges the interval since the previous update
    as running (or idle) time.  Callers must update on every state
    transition and periodically (ticks) while running.
    """

    __slots__ = ("last_update", "_sum", "util_avg")

    def __init__(self, now: int = 0):
        self.last_update = now
        self._sum = 0.0
        self.util_avg = 0.0

    def update(self, now: int, running: bool) -> float:
        """Charge [last_update, now) as running/idle; return util_avg."""
        delta = now - self.last_update
        if delta <= 0:
            return self.util_avg
        self.last_update = now
        decay = _decay(delta / PELT_PERIOD_NS)
        if running:
            # Integral of contribution over the interval with continuous
            # decay: new = old*decay + (1 - decay) * MAX_SUM.
            self._sum = self._sum * decay + (1.0 - decay) * PELT_MAX_SUM
        else:
            self._sum *= decay
        self.util_avg = self._sum / PELT_MAX_SUM * UTIL_SCALE
        return self.util_avg

    def peek(self, now: int, running: bool) -> float:
        """util_avg as it would be at ``now``, without mutating state."""
        delta = now - self.last_update
        if delta <= 0:
            return self.util_avg
        decay = _decay(delta / PELT_PERIOD_NS)
        s = self._sum * decay
        if running:
            s += (1.0 - decay) * PELT_MAX_SUM
        return s / PELT_MAX_SUM * UTIL_SCALE

    def set_util(self, util: float, now: int) -> None:
        """Force the signal (used for task-fork initialization)."""
        self.util_avg = max(0.0, min(float(UTIL_SCALE), util))
        self._sum = self.util_avg / UTIL_SCALE * PELT_MAX_SUM
        self.last_update = now
