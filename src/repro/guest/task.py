"""Guest tasks and the action vocabulary of their bodies.

A task body is a Python generator produced by a factory that receives a
:class:`TaskApi`.  The body yields *actions*; the guest kernel completes
each action (running work on a vCPU, sleeping on a timer, blocking on a
synchronization object) and resumes the generator with the action's result.

Example::

    def worker(api):
        while True:
            req = yield api.recv(requests)
            start = api.now()
            yield api.run(req.service_ns)
            record_latency(start - req.arrival, api.now() - req.arrival)

Work amounts are in nanoseconds-at-nominal-speed; actual wall duration
depends on the vCPU's execution rate (capacity) and activity.
"""

from __future__ import annotations

import enum
from typing import Any, Generator, Iterable, Optional

from repro.guest.pelt import Pelt

#: CFS weight of a nice-0 guest task.
GUEST_NICE0_WEIGHT = 1024
#: Weight of a SCHED_IDLE task (kernel uses 3).
SCHED_IDLE_WEIGHT = 3


class Policy(enum.Enum):
    """Guest scheduling policy (the two classes the paper exercises)."""

    NORMAL = "normal"
    IDLE = "idle"  # sched_idle best-effort


class TaskState(enum.Enum):
    NEW = "new"
    RUNNABLE = "runnable"      # on a runqueue, waiting for the vCPU
    RUNNING = "running"        # current on some guest CPU
    SLEEPING = "sleeping"      # timer sleep
    BLOCKED = "blocked"        # waiting on a sync object / channel
    EXITED = "exited"


# ----------------------------------------------------------------------
# Actions
# ----------------------------------------------------------------------
class Action:
    __slots__ = ()


class Run(Action):
    """Execute ``work_ns`` nanoseconds-at-nominal-speed of computation."""

    __slots__ = ("work_ns",)

    def __init__(self, work_ns: int):
        if work_ns < 0:
            raise ValueError("negative work")
        self.work_ns = int(work_ns)


class Sleep(Action):
    """Block for ``duration_ns`` of wall time (timer wakeup)."""

    __slots__ = ("duration_ns",)

    def __init__(self, duration_ns: int):
        if duration_ns < 0:
            raise ValueError("negative sleep")
        self.duration_ns = int(duration_ns)


class Recv(Action):
    """Receive one item from a channel (blocks while empty)."""

    __slots__ = ("channel",)

    def __init__(self, channel):
        self.channel = channel


class Send(Action):
    """Send an item to a channel (blocks while at capacity)."""

    __slots__ = ("channel", "item")

    def __init__(self, channel, item):
        self.channel = channel
        self.item = item


class Lock(Action):
    """Acquire a mutex; blocking or spinning depends on the mutex kind."""

    __slots__ = ("mutex",)

    def __init__(self, mutex):
        self.mutex = mutex


class Unlock(Action):
    """Release a mutex (never blocks)."""

    __slots__ = ("mutex",)

    def __init__(self, mutex):
        self.mutex = mutex


class BarrierWait(Action):
    """Wait until all parties arrive at the barrier."""

    __slots__ = ("barrier",)

    def __init__(self, barrier):
        self.barrier = barrier


class YieldCpu(Action):
    """Voluntarily yield the vCPU (sched_yield)."""

    __slots__ = ()


class MigrateTo(Action):
    """Migrate this task to a specific vCPU (sched_setaffinity + yield).

    Used by the Figure 3 motivating experiment where the synthetic thread
    circularly migrates itself among idle vCPUs.
    """

    __slots__ = ("cpu_index",)

    def __init__(self, cpu_index: int):
        self.cpu_index = cpu_index


# ----------------------------------------------------------------------
# Task
# ----------------------------------------------------------------------
class Task:
    """One guest thread."""

    _next_tid = [1]

    def __init__(self, kernel, name: str, factory, policy: Policy = Policy.NORMAL,
                 weight: Optional[int] = None, group=None,
                 allowed: Optional[Iterable[int]] = None,
                 latency_sensitive: bool = False):
        self.kernel = kernel
        self.tid = Task._next_tid[0]
        Task._next_tid[0] += 1
        self.name = name
        self.policy = policy
        if weight is None:
            weight = SCHED_IDLE_WEIGHT if policy == Policy.IDLE else GUEST_NICE0_WEIGHT
        self.weight = weight
        self.group = group
        self.allowed = frozenset(allowed) if allowed is not None else None
        #: latency-nice hint (the user-space classification channel the
        #: paper cites alongside PELT, §3.2).
        self.latency_sensitive = latency_sensitive
        self.state = TaskState.NEW
        self.api = TaskApi(kernel, self)
        self.body: Generator = factory(self.api)

        # --- scheduler state ------------------------------------------
        self.cpu = None                  # GuestCpu currently hosting us
        self.prev_cpu_index = 0          # last CPU we ran on
        self.vruntime = 0
        self.pelt = Pelt()
        self.pending_work = 0            # remainder of the current Run
        self.extra_work = 0              # pending communication stall
        self.resume_value: Any = None    # value for the next generator send
        self.needs_advance = True        # generator must be advanced on dispatch
        self.spinning_on = None          # spin-sync object being polled
        self.spin_streak = 0             # consecutive failed spin polls
        self.slice_ran = 0               # wall-active time in the current slice
        self.last_wake_time = 0
        self.run_started_at: Optional[int] = None  # on-CPU since (ivh threshold)
        self.ivh_last_migration = 0
        self.last_migration_time = -(10 ** 12)  # cache-hot cooldown marker
        self.spin_poll_ns = 3000         # work burned per failed spin poll
        self.pending_stall_from = None   # producer thread of an undelivered stall
        self.pending_stall_lines = 4
        self.exit_callbacks = []

        # --- statistics -------------------------------------------------
        self.stats = TaskStats()

    # ------------------------------------------------------------------
    @property
    def is_idle_policy(self) -> bool:
        return self.policy == Policy.IDLE

    def effective_allowed(self) -> Optional[frozenset]:
        """Intersection of the task's own and its cgroup's CPU masks."""
        masks = []
        if self.allowed is not None:
            masks.append(self.allowed)
        if self.group is not None and self.group.allowed is not None:
            masks.append(self.group.allowed)
        if not masks:
            return None
        result = masks[0]
        for m in masks[1:]:
            result = result & m
        return result

    def may_run_on(self, cpu_index: int) -> bool:
        eff = self.effective_allowed()
        return eff is None or cpu_index in eff

    def util(self, now: int) -> float:
        """Current PELT utilization (peek; no state mutation)."""
        return self.pelt.peek(now, self.state == TaskState.RUNNING)

    def __repr__(self) -> str:
        return f"<Task {self.tid} {self.name} {self.state.value}>"


class TaskStats:
    """Per-task counters maintained by the guest kernel."""

    __slots__ = ("wakeups", "migrations", "work_done", "wall_running",
                 "stall_ns", "wait_ns", "dispatches")

    def __init__(self) -> None:
        self.wakeups = 0
        self.migrations = 0
        self.work_done = 0        # ns-at-nominal of retired computation
        self.wall_running = 0     # wall time on an active vCPU
        self.stall_ns = 0         # communication stalls charged
        self.wait_ns = 0          # runnable time spent waiting for a vCPU
        self.dispatches = 0


class TaskApi:
    """The interface a task body uses to interact with the guest kernel."""

    __slots__ = ("_kernel", "_task")

    def __init__(self, kernel, task):
        self._kernel = kernel
        self._task = task

    # --- actions -------------------------------------------------------
    def run(self, work_ns: int) -> Run:
        return Run(work_ns)

    def sleep(self, duration_ns: int) -> Sleep:
        return Sleep(duration_ns)

    def recv(self, channel) -> Recv:
        return Recv(channel)

    def send(self, channel, item) -> Send:
        return Send(channel, item)

    def lock(self, mutex) -> Lock:
        return Lock(mutex)

    def unlock(self, mutex) -> Unlock:
        return Unlock(mutex)

    def barrier(self, barrier) -> BarrierWait:
        return BarrierWait(barrier)

    def yield_cpu(self) -> YieldCpu:
        return YieldCpu()

    def migrate_to(self, cpu_index: int) -> MigrateTo:
        return MigrateTo(cpu_index)

    # --- introspection ---------------------------------------------------
    def now(self) -> int:
        """Guest sched_clock (wall nanoseconds)."""
        return self._kernel.now()

    def cpu_index(self) -> int:
        """Index of the vCPU the task last ran on."""
        return self._task.prev_cpu_index

    @property
    def task(self):
        return self._task
