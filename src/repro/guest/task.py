"""Guest tasks and the action vocabulary of their bodies.

A task body is a Python generator produced by a factory that receives a
:class:`TaskApi`.  The body yields *actions*; the guest kernel completes
each action (running work on a vCPU, sleeping on a timer, blocking on a
synchronization object) and resumes the generator with the action's result.

Example::

    def worker(api):
        while True:
            req = yield api.recv(requests)
            start = api.now()
            yield api.run(req.service_ns)
            record_latency(start - req.arrival, api.now() - req.arrival)

Work amounts are in nanoseconds-at-nominal-speed; actual wall duration
depends on the vCPU's execution rate (capacity) and activity.
"""

from __future__ import annotations

import copy
import enum
import inspect
import types
from typing import Any, Callable, Generator, Iterable, Optional

from repro.guest.pelt import Pelt

#: CFS weight of a nice-0 guest task.
GUEST_NICE0_WEIGHT = 1024
#: Weight of a SCHED_IDLE task (kernel uses 3).
SCHED_IDLE_WEIGHT = 3


class Policy(enum.Enum):
    """Guest scheduling policy (the two classes the paper exercises)."""

    NORMAL = "normal"
    IDLE = "idle"  # sched_idle best-effort


class TaskState(enum.Enum):
    NEW = "new"
    RUNNABLE = "runnable"      # on a runqueue, waiting for the vCPU
    RUNNING = "running"        # current on some guest CPU
    SLEEPING = "sleeping"      # timer sleep
    BLOCKED = "blocked"        # waiting on a sync object / channel
    EXITED = "exited"


# ----------------------------------------------------------------------
# Actions
# ----------------------------------------------------------------------
class Action:
    __slots__ = ()


class Run(Action):
    """Execute ``work_ns`` nanoseconds-at-nominal-speed of computation."""

    __slots__ = ("work_ns",)

    def __init__(self, work_ns: int):
        if work_ns < 0:
            raise ValueError("negative work")
        self.work_ns = int(work_ns)


class Sleep(Action):
    """Block for ``duration_ns`` of wall time (timer wakeup)."""

    __slots__ = ("duration_ns",)

    def __init__(self, duration_ns: int):
        if duration_ns < 0:
            raise ValueError("negative sleep")
        self.duration_ns = int(duration_ns)


class Recv(Action):
    """Receive one item from a channel (blocks while empty)."""

    __slots__ = ("channel",)

    def __init__(self, channel):
        self.channel = channel


class Send(Action):
    """Send an item to a channel (blocks while at capacity)."""

    __slots__ = ("channel", "item")

    def __init__(self, channel, item):
        self.channel = channel
        self.item = item


class Lock(Action):
    """Acquire a mutex; blocking or spinning depends on the mutex kind."""

    __slots__ = ("mutex",)

    def __init__(self, mutex):
        self.mutex = mutex


class Unlock(Action):
    """Release a mutex (never blocks)."""

    __slots__ = ("mutex",)

    def __init__(self, mutex):
        self.mutex = mutex


class BarrierWait(Action):
    """Wait until all parties arrive at the barrier."""

    __slots__ = ("barrier",)

    def __init__(self, barrier):
        self.barrier = barrier


class YieldCpu(Action):
    """Voluntarily yield the vCPU (sched_yield)."""

    __slots__ = ()


class MigrateTo(Action):
    """Migrate this task to a specific vCPU (sched_setaffinity + yield).

    Used by the Figure 3 motivating experiment where the synthetic thread
    circularly migrates itself among idle vCPUs.
    """

    __slots__ = ("cpu_index",)

    def __init__(self, cpu_index: int):
        self.cpu_index = cpu_index


# ----------------------------------------------------------------------
# Snapshot-forkable bodies
# ----------------------------------------------------------------------
class StatefulBody:
    """Explicit state-machine replacement for a generator task body.

    A generator cannot be deep-copied, so a task suspended inside one
    cannot be snapshot-forked.  Subclasses hold all suspension state in
    instance attributes and implement :meth:`send` — called exactly like
    ``generator.send`` by the kernel's action interpreter — raising
    ``StopIteration`` when the body is done.  Instances deep-copy
    structurally through the snapshot memo, so a fork resumes from the
    same suspension point with the same state.
    """

    def send(self, value):  # pragma: no cover - interface
        raise NotImplementedError

    def __iter__(self):
        return self

    def __next__(self):
        return self.send(None)


#: Body factories whose tasks may be forked by *fresh restart*: calling
#: the (copied) factory again yields a generator that, on its next send,
#: produces exactly the action the suspended original would have.  Valid
#: only for homogeneous loops whose cross-iteration state lives outside
#: the generator (on the task / workload object) and is mutated *before*
#: the yield — see docs/INTERNALS.md §15.
_RESTARTABLE_BODIES: set = set()


def restartable_body(factory: Callable) -> Callable:
    """Register ``factory`` (a plain function or method) as restartable."""
    _RESTARTABLE_BODIES.add(factory)
    return factory


def _factory_restartable(factory) -> bool:
    return (factory in _RESTARTABLE_BODIES
            or getattr(factory, "__func__", None) in _RESTARTABLE_BODIES)


def _factory_copies_safely(factory) -> bool:
    """True when deep-copying ``factory`` cannot alias the original world.

    Bound methods rebind through the memo; plain module-level functions
    without closure cells are stateless.  Closures copy atomically and
    would keep cells pointing into the frozen world — unsafe.
    """
    if isinstance(factory, types.MethodType):
        return True
    return (isinstance(factory, types.FunctionType)
            and not factory.__closure__)


# ----------------------------------------------------------------------
# Task
# ----------------------------------------------------------------------
class Task:
    """One guest thread."""

    _next_tid = [1]

    def __init__(self, kernel, name: str, factory, policy: Policy = Policy.NORMAL,
                 weight: Optional[int] = None, group=None,
                 allowed: Optional[Iterable[int]] = None,
                 latency_sensitive: bool = False):
        self.kernel = kernel
        self.tid = Task._next_tid[0]
        Task._next_tid[0] += 1
        self.name = name
        self.policy = policy
        if weight is None:
            weight = SCHED_IDLE_WEIGHT if policy == Policy.IDLE else GUEST_NICE0_WEIGHT
        self.weight = weight
        self.group = group
        self.allowed = frozenset(allowed) if allowed is not None else None
        #: latency-nice hint (the user-space classification channel the
        #: paper cites alongside PELT, §3.2).
        self.latency_sensitive = latency_sensitive
        self.state = TaskState.NEW
        self.api = TaskApi(kernel, self)
        #: The body factory, kept for snapshot forking (restartable
        #: bodies are recreated from it on deep copy).
        self.factory = factory
        #: Free-form per-task state for restartable bodies that need
        #: cross-iteration storage outside the generator frame.
        self.scratch: dict = {}
        self.body: Generator = factory(self.api)

        # --- scheduler state ------------------------------------------
        self.cpu = None                  # GuestCpu currently hosting us
        self.prev_cpu_index = 0          # last CPU we ran on
        self.vruntime = 0
        self.pelt = Pelt()
        self.pending_work = 0            # remainder of the current Run
        self.extra_work = 0              # pending communication stall
        self.resume_value: Any = None    # value for the next generator send
        self.needs_advance = True        # generator must be advanced on dispatch
        self.spinning_on = None          # spin-sync object being polled
        self.spin_streak = 0             # consecutive failed spin polls
        self.slice_ran = 0               # wall-active time in the current slice
        self.last_wake_time = 0
        self.run_started_at: Optional[int] = None  # on-CPU since (ivh threshold)
        self.ivh_last_migration = 0
        self.last_migration_time = -(10 ** 12)  # cache-hot cooldown marker
        self.spin_poll_ns = 3000         # work burned per failed spin poll
        self.pending_stall_from = None   # producer thread of an undelivered stall
        self.pending_stall_lines = 4
        self.exit_callbacks = []

        # --- statistics -------------------------------------------------
        self.stats = TaskStats()

    # ------------------------------------------------------------------
    @property
    def is_idle_policy(self) -> bool:
        return self.policy == Policy.IDLE

    def effective_allowed(self) -> Optional[frozenset]:
        """Intersection of the task's own and its cgroup's CPU masks."""
        masks = []
        if self.allowed is not None:
            masks.append(self.allowed)
        if self.group is not None and self.group.allowed is not None:
            masks.append(self.group.allowed)
        if not masks:
            return None
        result = masks[0]
        for m in masks[1:]:
            result = result & m
        return result

    def may_run_on(self, cpu_index: int) -> bool:
        eff = self.effective_allowed()
        return eff is None or cpu_index in eff

    def util(self, now: int) -> float:
        """Current PELT utilization (peek; no state mutation)."""
        return self.pelt.peek(now, self.state == TaskState.RUNNING)

    # ------------------------------------------------------------------
    # Snapshot forking
    # ------------------------------------------------------------------
    def __deepcopy__(self, memo):  # vschedlint: disable=identity-key -- deepcopy memo is keyed by id() per the copy protocol; it maps original to copy within one copy pass and never keys simulation state
        """Deep-copy the task, handling the (uncopyable) generator body.

        All scheduler state — pending_work, resume_value, vruntime, PELT,
        spin state — copies structurally through the memo (the kernel,
        cpu, and group back-refs land on their copies).  The body itself:

        * exited tasks drop theirs (an exhausted generator is never
          resumed again; ``advance_task`` is unreachable for EXITED);
        * :class:`StatefulBody` instances copy structurally;
        * generators from a registered :func:`restartable_body` factory
          (or any never-started generator) are recreated by calling the
          *copied* factory — valid by the restart-equivalence contract;
        * anything else raises :class:`~repro.sim.snapshot.SnapshotError`
          naming the task, so an unforkable world fails loudly.
        """
        new = object.__new__(type(self))
        memo[id(self)] = new
        for k, v in self.__dict__.items():
            if k == "body":
                continue
            setattr(new, k, copy.deepcopy(v, memo))
        new.body = self._copy_body(new, memo)
        return new

    def _copy_body(self, new: "Task", memo):
        from repro.sim.snapshot import SnapshotError

        body = self.body
        if body is None or self.state == TaskState.EXITED:
            return None
        if not isinstance(body, types.GeneratorType):
            return copy.deepcopy(body, memo)  # StatefulBody et al.
        restartable = (_factory_restartable(self.factory)
                       and self.resume_value is None)
        never_started = (inspect.getgeneratorstate(body)
                         == inspect.GEN_CREATED)
        factory_name = getattr(self.factory, "__qualname__", self.factory)
        if not (restartable or never_started):
            raise SnapshotError(
                f"task {self.name!r} is suspended inside a plain generator "
                f"body ({factory_name!r}); convert it to a StatefulBody or "
                f"register it with @restartable_body to make the world "
                f"forkable")
        if not _factory_copies_safely(self.factory):
            raise SnapshotError(
                f"task {self.name!r}: body factory {factory_name!r} is a "
                f"closure — it would keep free variables of the original "
                f"world; use a bound method or module-level function "
                f"instead")
        return new.factory(new.api)

    def __repr__(self) -> str:
        return f"<Task {self.tid} {self.name} {self.state.value}>"


class TaskStats:
    """Per-task counters maintained by the guest kernel."""

    __slots__ = ("wakeups", "migrations", "work_done", "wall_running",
                 "stall_ns", "wait_ns", "dispatches")

    def __init__(self) -> None:
        self.wakeups = 0
        self.migrations = 0
        self.work_done = 0        # ns-at-nominal of retired computation
        self.wall_running = 0     # wall time on an active vCPU
        self.stall_ns = 0         # communication stalls charged
        self.wait_ns = 0          # runnable time spent waiting for a vCPU
        self.dispatches = 0


class TaskApi:
    """The interface a task body uses to interact with the guest kernel."""

    __slots__ = ("_kernel", "_task")

    def __init__(self, kernel, task):
        self._kernel = kernel
        self._task = task

    # --- actions -------------------------------------------------------
    def run(self, work_ns: int) -> Run:
        return Run(work_ns)

    def sleep(self, duration_ns: int) -> Sleep:
        return Sleep(duration_ns)

    def recv(self, channel) -> Recv:
        return Recv(channel)

    def send(self, channel, item) -> Send:
        return Send(channel, item)

    def lock(self, mutex) -> Lock:
        return Lock(mutex)

    def unlock(self, mutex) -> Unlock:
        return Unlock(mutex)

    def barrier(self, barrier) -> BarrierWait:
        return BarrierWait(barrier)

    def yield_cpu(self) -> YieldCpu:
        return YieldCpu()

    def migrate_to(self, cpu_index: int) -> MigrateTo:
        return MigrateTo(cpu_index)

    # --- introspection ---------------------------------------------------
    def now(self) -> int:
        """Guest sched_clock (wall nanoseconds)."""
        return self._kernel.now()

    def cpu_index(self) -> int:
        """Index of the vCPU the task last ran on."""
        return self._task.prev_cpu_index

    @property
    def task(self):
        return self._task
