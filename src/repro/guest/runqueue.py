"""Guest CFS runqueue: one per vCPU.

Holds runnable tasks in two bands — normal CFS tasks and SCHED_IDLE
best-effort tasks.  Normal tasks always take precedence; an enqueued normal
task immediately preempts a running idle-policy task (as in Linux).  Within
a band the minimum-vruntime task runs next.
"""

from __future__ import annotations

from typing import List, Optional

from repro.guest.task import GUEST_NICE0_WEIGHT, Task, TaskState


def _pick_key(t: Task):
    return (t.vruntime, t.tid)


class CfsRunqueue:
    """Runnable-task queue for one guest CPU."""

    def __init__(self, cpu):
        self.cpu = cpu
        self.normal: List[Task] = []
        self.idle_band: List[Task] = []
        self.min_vruntime = 0

    # ------------------------------------------------------------------
    # Introspection used by placement and balancing
    # ------------------------------------------------------------------
    def nr_running(self) -> int:
        """Queued tasks, not counting the one currently on the CPU."""
        return len(self.normal) + len(self.idle_band)

    def nr_normal_total(self) -> int:
        """Normal-band tasks queued or running on this CPU."""
        n = len(self.normal)
        cur = self.cpu.current
        if cur is not None and not cur.is_idle_policy:
            n += 1
        return n

    def nr_total(self) -> int:
        return self.nr_running() + (1 if self.cpu.current is not None else 0)

    def load(self) -> int:
        """CFS load: summed weights of normal tasks here (incl. current)."""
        total = sum(t.weight for t in self.normal)
        cur = self.cpu.current
        if cur is not None and not cur.is_idle_policy:
            total += cur.weight
        return total

    def is_idle(self) -> bool:
        """No task queued or running at all."""
        return self.cpu.current is None and not self.normal and not self.idle_band

    def sched_idle_only(self) -> bool:
        """Only best-effort work present (Linux treats this as 'idle' for
        wake placement — a normal task placed here preempts instantly)."""
        cur = self.cpu.current
        if cur is not None and not cur.is_idle_policy:
            return False
        if self.normal:
            return False
        return (cur is not None) or bool(self.idle_band)

    def has_queued_normal(self) -> bool:
        return bool(self.normal)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def enqueue(self, task: Task) -> None:
        cpu = self.cpu
        cpu._catch_up()  # min_vruntime and current's slice are tick-driven
        # Sleeper credit: cap how far behind min_vruntime a waker can be so
        # long sleepers don't monopolize the CPU when they return.
        floor = self.min_vruntime - cpu.kernel.config.sched_latency_ns
        if task.vruntime < floor:
            task.vruntime = floor
        band = self.idle_band if task.is_idle_policy else self.normal
        band.append(task)
        task.state = TaskState.RUNNABLE
        task.cpu = cpu
        cpu._retick()  # more runnable work can move the tick horizon earlier

    def dequeue(self, task: Task) -> None:
        self.cpu._catch_up()
        band = self.idle_band if task.is_idle_policy else self.normal
        band.remove(task)

    def pick_next(self) -> Optional[Task]:
        band = self.normal or self.idle_band
        if not band:
            return None
        if len(band) == 1:
            best = band.pop()
        else:
            best = min(band, key=_pick_key)
            band.remove(best)
        if best.vruntime > self.min_vruntime:
            self.min_vruntime = best.vruntime
        return best

    def steal_candidates(self, for_cpu_index: int) -> List[Task]:
        """Queued tasks a balancer could migrate to ``for_cpu_index``."""
        return [t for t in self.normal if t.may_run_on(for_cpu_index)]

    def charge_vruntime(self, task: Task, wall_delta: int) -> None:
        task.vruntime += wall_delta * GUEST_NICE0_WEIGHT // task.weight
        self.update_min_vruntime()

    def update_min_vruntime(self) -> None:
        """CFS rule: min_vruntime tracks min(curr, leftmost), monotonic.

        Without this a long-running task leaves min_vruntime stale and a
        waking task gets an unbounded vruntime credit.
        """
        floor = None
        cur = self.cpu.current
        if cur is not None:
            floor = cur.vruntime
        band = self.normal or self.idle_band
        if band:
            w = min(t.vruntime for t in band)
            floor = w if floor is None else min(floor, w)
        if floor is not None and floor > self.min_vruntime:
            self.min_vruntime = floor
