"""Guest CFS load balancing: periodic, new-idle, and misfit (active).

Three mechanisms, matching the baseline behaviours the paper's experiments
depend on (§2.2, §5.3):

* **periodic balance** — every ``balance_interval`` per CPU, walk the
  domain hierarchy inner→outer and pull a queued task from the busiest CPU
  when the load-per-capacity ratio is imbalanced;
* **new-idle balance** — a CPU going idle immediately tries to pull work
  (this is the work-conservation reflex rwc selectively relaxes);
* **misfit / active balance** — in an underloaded system a *running* task
  whose utilization exceeds its CPU's capacity is actively migrated to a
  higher-capacity idle CPU.

Capacity comes from ``kernel.capacity_of``, which is either the default
steal-based estimate (inaccurate, fluctuating — the source of the spurious
migrations in Figure 11b) or the vcap-probed EMA capacity when the vSched
module is installed.
"""

from __future__ import annotations

from typing import Optional

from repro.guest.task import Task, TaskState


class LoadBalancer:
    """Balancing policy bound to one guest kernel."""

    #: Ratio of load/capacity between busiest and local CPU that triggers
    #: a pull.
    IMBALANCE_PCT = 1.25
    #: A running task is "misfit" when util exceeds this fraction of its
    #: CPU's capacity.
    MISFIT_UTIL_FRACTION = 0.8
    #: Required capacity advantage of the destination for active balance.
    CAPACITY_ADVANTAGE = 1.15

    def __init__(self, kernel):
        self.kernel = kernel
        self._nohz_cursor = 0

    # ------------------------------------------------------------------
    # Entry points
    # ------------------------------------------------------------------
    def periodic(self, cpu, now: int) -> None:
        if now < cpu.next_balance:
            return
        cpu.next_balance = now + self.kernel.config.balance_interval_ns
        self._balance_domains(cpu, now, idle=cpu.current is None)
        self._nohz_idle_balance(now)

    def _nohz_idle_balance(self, now: int) -> None:
        """Balance on behalf of one tickless idle CPU (NOHZ analogue).

        Halted vCPUs take no ticks, so a busy CPU's tick runs the idle
        balancing for them round-robin — without this, misfit tasks are
        never pulled to idle higher-capacity vCPUs.
        """
        cpus = self.kernel.cpus
        n = len(cpus)
        for _ in range(n):
            self._nohz_cursor = (self._nohz_cursor + 1) % n
            cand = cpus[self._nohz_cursor]
            if (cand.current is None and cand.rq.nr_running() == 0
                    and not cand._in_sched and now >= cand.next_balance):
                cand.next_balance = now + self.kernel.config.balance_interval_ns
                self._balance_domains(cand, now, idle=True)
                return

    def newidle(self, cpu, now: int) -> bool:
        """A CPU just went idle; try to pull work. True if it got a task."""
        return self._balance_domains(cpu, now, idle=True)

    # ------------------------------------------------------------------
    def _balance_domains(self, cpu, now: int, idle: bool) -> bool:
        for level in self.kernel.domains.levels:
            span = level.group_of(cpu.index)
            if span is None or len(span) <= 1:
                continue
            if self._balance_span(cpu, span, now, idle):
                return True
        return False

    def _balance_span(self, cpu, span, now: int, idle: bool) -> bool:
        kernel = self.kernel
        my_rq = cpu.rq
        my_cap = max(1.0, kernel.capacity_of(cpu.index))
        busiest = None
        busiest_key = None
        my_index = cpu.index
        cpus = kernel.cpus
        for c in span:
            if c == my_index:
                continue
            other = cpus[c]
            nr = other.rq.nr_running()
            if nr == 0:
                continue
            key = (nr, other.rq.load())
            if busiest is None or key > busiest_key:
                busiest = other
                busiest_key = key
        if busiest is not None:
            if self._should_pull(my_rq, my_cap, busiest, idle):
                task = self._pick_pull_candidate(busiest, cpu.index)
                if task is not None:
                    kernel.migrate_queued(task, busiest, cpu, reason="lb")
                    return True
        if idle and my_rq.nr_running() == 0:
            if kernel.capacity_provider is not None:
                # Probed capacities installed: the SD_ASYM_CPUCAPACITY
                # machinery (misfit migration) is effective (§5.3).
                if self._try_misfit_pull(cpu, span, my_cap, now):
                    return True
            if self._smt_unpack(cpu, span, now):
                return True
            return self._failure_driven_active_balance(cpu, span, my_cap, now)
        return False

    # ------------------------------------------------------------------
    # SMT un-packing (group-capacity overload, needs an SMT level)
    # ------------------------------------------------------------------
    #: Back-off between SMT un-pack pushes from the same core.
    SMT_UNPACK_COOLDOWN_NS = 50 * 1_000_000

    def _smt_unpack(self, cpu, span, now: int) -> bool:
        """A fully idle core pulls a running task off a core whose SMT
        siblings are all busy (CFS marks such cores overloaded via group
        capacity).  Only possible once the domains carry an SMT level —
        i.e. after vtop has exposed the real topology (Figure 12)."""
        kernel = self.kernel
        domains = kernel.domains
        if not domains.has_smt_level():
            return False
        for sib in domains.smt_siblings(cpu.index):
            other = kernel.cpus[sib]
            if other.current is not None or other.rq.nr_running() > 0:
                return False  # my core is not fully idle
        for c in span:
            if c == cpu.index:
                continue
            src = kernel.cpus[c]
            task = src.current
            if (task is None or task.is_idle_policy or src._in_sched
                    or src.rq.nr_running() > 0
                    or not task.may_run_on(cpu.index)
                    or now < src.next_active_push):
                continue
            siblings_busy = all(
                kernel.cpus[s].current is not None
                and not kernel.cpus[s].current.is_idle_policy
                for s in domains.smt_siblings(c) if s != c)
            if not siblings_busy or len(domains.smt_siblings(c)) < 2:
                continue
            src.next_active_push = now + self.SMT_UNPACK_COOLDOWN_NS
            kernel.active_balance(src=src, dst=cpu)
            return True
        return False

    def _should_pull(self, my_rq, my_cap: float, busiest, idle: bool) -> bool:
        if idle:
            return busiest.rq.nr_running() > 0
        their_cap = max(1.0, self.kernel.capacity_of(busiest.index))
        my_ratio = my_rq.load() / my_cap
        their_ratio = busiest.rq.load() / their_cap
        if busiest.rq.nr_total() - my_rq.nr_total() >= 2:
            return True
        return their_ratio > my_ratio * self.IMBALANCE_PCT and busiest.rq.nr_running() > 0

    #: Tasks migrated more recently than this are cache-hot and skipped
    #: (the sched_migration_cost analogue).
    MIGRATION_COOLDOWN_NS = 500_000

    def _pick_pull_candidate(self, busiest, dest_index: int) -> Optional[Task]:
        now = self.kernel.engine.now
        candidates = [
            t for t in busiest.rq.steal_candidates(dest_index)
            if now - t.last_migration_time > self.MIGRATION_COOLDOWN_NS
        ]
        if not candidates:
            return None
        # Prefer the least cache-hot (longest-waiting ~ highest vruntime lag
        # proxy: lowest recent util).
        return min(candidates, key=lambda t: (t.util(now), t.tid))

    # ------------------------------------------------------------------
    # Failure-driven active balance (stock CFS behaviour)
    # ------------------------------------------------------------------
    #: Failed balance attempts before the running task is actively moved
    #: (cache_nice_tries analogue).
    FAILED_TRIES = 3
    #: Back-off after an active push from a CPU.
    ACTIVE_BALANCE_COOLDOWN_NS = 250 * 1_000_000

    def _failure_driven_active_balance(self, cpu, span, my_cap: float,
                                       now: int) -> bool:
        """An idle CPU that keeps seeing an 'overloaded' CPU (high
        load-per-perceived-capacity) and cannot pull a queued task
        eventually active-migrates the running task — this is how stock
        CFS, misled by the steal-based capacity estimate, produces the
        spurious migrations of Figure 11b."""
        kernel = self.kernel
        best = None
        for c in span:
            if c == cpu.index:
                continue
            other = kernel.cpus[c]
            task = other.current
            if (task is None or other.rq.nr_running() > 0
                    or task.is_idle_policy or other._in_sched
                    or not task.may_run_on(cpu.index)):
                continue
            their_cap = max(1.0, kernel.capacity_of(c))
            # Perceived imbalance: they look overloaded relative to me.
            if their_cap * self.IMBALANCE_PCT >= my_cap:
                continue
            if now < other.next_active_push:
                continue
            best = other
            break
        if best is None:
            return False
        best.balance_failed += 1
        if best.balance_failed < self.FAILED_TRIES:
            return False
        best.balance_failed = 0
        best.next_active_push = now + self.ACTIVE_BALANCE_COOLDOWN_NS
        kernel.active_balance(src=best, dst=cpu)
        return True

    # ------------------------------------------------------------------
    # Misfit / active balance
    # ------------------------------------------------------------------
    def _try_misfit_pull(self, cpu, span, my_cap: float, now: int) -> bool:
        """Idle CPU looks for a running misfit task on a weaker CPU."""
        kernel = self.kernel
        best = None
        best_util = 0.0
        for c in span:
            if c == cpu.index:
                continue
            other = kernel.cpus[c]
            task = other.current
            if task is None or other.rq.nr_running() > 0:
                continue
            if other._in_sched:
                continue  # its scheduler is mid-pass; racing would corrupt it
            if task.is_idle_policy or not task.may_run_on(cpu.index):
                continue
            their_cap = max(1.0, kernel.capacity_of(c))
            other._catch_up()  # a running task's PELT is tick-maintained
            util = task.util(now)
            if util < self.MISFIT_UTIL_FRACTION * their_cap:
                continue
            if my_cap < their_cap * self.CAPACITY_ADVANTAGE:
                continue
            if util > best_util:
                best = other
                best_util = util
        if best is None:
            return False
        kernel.active_balance(src=best, dst=cpu)
        return True
