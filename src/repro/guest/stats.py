"""Guest kernel counters (schedstats analogue)."""

from __future__ import annotations

from typing import Dict


class KernelStats:
    """Monotonic counters; experiments snapshot and diff them."""

    FIELDS = (
        "wakeups",
        "wake_migrations",
        "lb_migrations",
        "active_balance_migrations",
        "ivh_migrations",
        "ivh_aborted",
        "ipis",
        "ipis_cross_socket",
        "ticks",
        "timer_wakes",
        "task_exits",
        "stall_ns",
        "spin_wait_ns",
    )

    def __init__(self) -> None:
        for f in self.FIELDS:
            setattr(self, f, 0)

    @property
    def migrations(self) -> int:
        """All task migrations regardless of mechanism."""
        return (self.wake_migrations + self.lb_migrations
                + self.active_balance_migrations + self.ivh_migrations)

    def snapshot(self) -> Dict[str, int]:
        snap = {f: getattr(self, f) for f in self.FIELDS}
        snap["migrations"] = self.migrations
        return snap

    @staticmethod
    def delta(after: Dict[str, int], before: Dict[str, int]) -> Dict[str, int]:
        return {k: after[k] - before.get(k, 0) for k in after}
