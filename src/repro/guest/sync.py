"""Guest synchronization objects: channels, mutexes, barriers.

Two families exist, mirroring the two synchronization styles whose
interaction with vCPU scheduling the paper discusses:

* **blocking** primitives park the waiter (futex-style) — the vCPU can run
  something else or halt;
* **spinning** primitives burn vCPU time while waiting — this is what makes
  user-level spin synchronization (streamcluster, volrend) suffer LHP-like
  problems when a holder's vCPU is preempted (§5.6).

The kernel-facing protocol is small: a sync object exposes ``try_*``
methods the kernel's action interpreter calls, plus waiter queues the
kernel parks tasks on.  All wakeups go back through the kernel so that
placement policy (CFS or bvs) applies.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, List, Optional, Tuple


class Channel:
    """FIFO message queue with optional capacity (pipeline backpressure).

    Each queued item remembers the hardware thread its producer was running
    on, so consumers can be charged a cache-distance communication stall.
    """

    def __init__(self, name: str = "chan", capacity: Optional[int] = None,
                 lines: int = 4):
        self.name = name
        self.capacity = capacity
        #: Cache lines transferred per item (scales the consumer stall).
        self.lines = lines
        self.items: Deque[Tuple[Any, Any]] = deque()  # (item, producer_thread)
        self.recv_waiters: Deque = deque()            # blocked consumers
        self.send_waiters: Deque = deque()            # (task, item) producers
        #: Total items ever enqueued (throughput accounting).
        self.total_sent = 0

    def full(self) -> bool:
        return self.capacity is not None and len(self.items) >= self.capacity

    def empty(self) -> bool:
        return not self.items


class Mutex:
    """A lock; ``spin=True`` makes contending waiters poll instead of park."""

    def __init__(self, name: str = "mutex", spin: bool = False,
                 spin_check_ns: int = 3000):
        self.name = name
        self.spin = spin
        #: Work burned per failed spin poll.
        self.spin_check_ns = spin_check_ns
        self.owner = None
        self.waiters: Deque = deque()
        self.contentions = 0

    def locked(self) -> bool:
        return self.owner is not None


class Barrier:
    """Generation-counted barrier for ``parties`` tasks.

    ``spin=True`` models user-level spin barriers: late waiters burn vCPU
    time polling the generation counter.
    """

    def __init__(self, parties: int, name: str = "barrier", spin: bool = False,
                 spin_check_ns: int = 3000):
        if parties < 1:
            raise ValueError("parties must be >= 1")
        self.parties = parties
        self.name = name
        self.spin = spin
        self.spin_check_ns = spin_check_ns
        self.generation = 0
        self.arrived = 0
        self.waiters: List = []
        #: Completed barrier episodes (phase throughput accounting).
        self.completed = 0

    def arrive(self) -> bool:
        """Register one arrival; True if this arrival releases the barrier."""
        self.arrived += 1
        if self.arrived >= self.parties:
            self.arrived = 0
            self.generation += 1
            self.completed += 1
            return True
        return False
