"""Guest schedule domains.

Schedule domains group CPUs by shared resources so placement and balancing
can be topology-aware (§2.2).  A cloud VM by default sees a *flat UMA*
topology — one domain spanning everything, no SMT level — which is exactly
the inaccuracy the paper attacks; vtop's probed topology is installed by
rebuilding the domains (the ``rebuild_sched_domains`` analogue in §4).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence


class DomainLevel:
    """One level of the hierarchy: a partition of CPUs into groups."""

    def __init__(self, name: str, groups: Iterable[Iterable[int]]):
        self.name = name
        self.groups: List[FrozenSet[int]] = [frozenset(g) for g in groups]
        self._of: Dict[int, FrozenSet[int]] = {}
        for g in self.groups:
            for cpu in g:
                if cpu in self._of:
                    raise ValueError(f"cpu {cpu} in two groups of level {name}")
                self._of[cpu] = g

    def group_of(self, cpu: int) -> Optional[FrozenSet[int]]:
        return self._of.get(cpu)


class SchedDomains:
    """The domain hierarchy of one VM, innermost level first."""

    def __init__(self, n_cpus: int, levels: Sequence[DomainLevel]):
        self.n_cpus = n_cpus
        self.levels: List[DomainLevel] = list(levels)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def flat(cls, n_cpus: int) -> "SchedDomains":
        """The default (inaccurate) view: one UMA domain, no SMT level."""
        return cls(n_cpus, [DomainLevel("machine", [range(n_cpus)])])

    @classmethod
    def from_topology_lists(
        cls,
        n_cpus: int,
        smt_siblings: Dict[int, FrozenSet[int]],
        socket_siblings: Dict[int, FrozenSet[int]],
    ) -> "SchedDomains":
        """Build domains from per-CPU sibling lists (the kernel-module path).

        ``smt_siblings[c]`` / ``socket_siblings[c]`` are the sets of CPUs
        sharing a core / socket with ``c`` (both including ``c`` itself).
        Stacked vCPUs are handled by rwc (they are hidden via cpuset), so
        they do not appear as a domain level.
        """
        levels: List[DomainLevel] = []
        smt_groups = _unique_groups(smt_siblings, n_cpus)
        if any(len(g) > 1 for g in smt_groups):
            levels.append(DomainLevel("smt", smt_groups))
        socket_groups = _unique_groups(socket_siblings, n_cpus)
        if len(socket_groups) > 1:
            levels.append(DomainLevel("llc", socket_groups))
        levels.append(DomainLevel("machine", [range(n_cpus)]))
        return cls(n_cpus, levels)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def smt_siblings(self, cpu: int) -> FrozenSet[int]:
        """CPUs sharing a core with ``cpu`` (including it), per the domains."""
        for level in self.levels:
            if level.name == "smt":
                g = level.group_of(cpu)
                if g is not None:
                    return g
        return frozenset((cpu,))

    def llc_domain(self, cpu: int) -> FrozenSet[int]:
        """CPUs sharing a last-level cache with ``cpu``, per the domains."""
        for level in self.levels:
            if level.name == "llc":
                g = level.group_of(cpu)
                if g is not None:
                    return g
        return frozenset(range(self.n_cpus))

    def all_cpus(self) -> FrozenSet[int]:
        return frozenset(range(self.n_cpus))

    def has_smt_level(self) -> bool:
        return any(level.name == "smt" for level in self.levels)


def _unique_groups(siblings: Dict[int, FrozenSet[int]], n_cpus: int) -> List[FrozenSet[int]]:
    """Deduplicate sibling sets into a partition covering all CPUs."""
    seen = set()
    groups: List[FrozenSet[int]] = []
    for cpu in range(n_cpus):
        g = frozenset(siblings.get(cpu, frozenset((cpu,))) or (cpu,))
        if cpu not in g:
            g = g | {cpu}
        if g not in seen:
            seen.add(g)
            groups.append(g)
    # Partition sanity: every CPU must appear exactly once.
    covered = set()
    for g in groups:
        if covered & g:
            raise ValueError(f"inconsistent sibling lists near group {sorted(g)}")
        covered |= g
    if covered != set(range(n_cpus)):
        raise ValueError("sibling lists do not cover all CPUs")
    return groups
