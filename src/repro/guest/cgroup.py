"""Minimal cgroup cpuset support.

rwc hides problematic vCPUs by shrinking the cpuset of the workload task
group (§3.4): banned vCPUs disappear from placement and balancing for the
group's tasks, and tasks currently on a banned vCPU are evicted.  Prober
tasks live in separate groups so the exemptions the paper describes (vcap
may keep probing stragglers, vtop probes everything) fall out naturally.
"""

from __future__ import annotations

from typing import FrozenSet, List, Optional


class TaskGroup:
    """A named group of tasks sharing a CPU mask."""

    def __init__(self, name: str, allowed: Optional[FrozenSet[int]] = None):
        self.name = name
        self.allowed: Optional[FrozenSet[int]] = allowed
        self.tasks: List = []

    def add(self, task) -> None:
        self.tasks.append(task)
        task.group = self

    def remove(self, task) -> None:
        if task in self.tasks:
            self.tasks.remove(task)

    def set_allowed(self, allowed: Optional[FrozenSet[int]]) -> None:
        """Change the mask. The kernel evicts misplaced tasks afterwards."""
        self.allowed = frozenset(allowed) if allowed is not None else None

    def __repr__(self) -> str:
        mask = "all" if self.allowed is None else sorted(self.allowed)
        return f"<TaskGroup {self.name} allowed={mask} tasks={len(self.tasks)}>"
