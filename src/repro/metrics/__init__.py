"""Measurement utilities: percentiles, normalization, cycle accounting,
prober degradation reports."""

from repro.metrics.degradation import DegradationReport, GroundTruthTracker
from repro.metrics.measures import CycleMeter, CycleSample, normalize, p50, p95

__all__ = ["p95", "p50", "normalize", "CycleMeter", "CycleSample",
           "DegradationReport", "GroundTruthTracker"]
