"""Measurement utilities: percentiles, normalization, cycle accounting."""

from repro.metrics.measures import CycleMeter, CycleSample, normalize, p50, p95

__all__ = ["p95", "p50", "normalize", "CycleMeter", "CycleSample"]
