"""Measurement helpers: percentiles, normalization, cycle accounting."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.sim.engine import SEC


def p95(values: Sequence[float]) -> float:
    if not len(values):
        return float("nan")
    return float(np.percentile(values, 95))


def p50(values: Sequence[float]) -> float:
    if not len(values):
        return float("nan")
    return float(np.percentile(values, 50))


def normalize(values: Sequence[float], baseline: float) -> List[float]:
    """Express values as percentages of a baseline (the paper's plots)."""
    if baseline == 0:
        return [float("nan")] * len(values)
    return [100.0 * v / baseline for v in values]


@dataclass
class CycleSample:
    """Cycle accounting snapshot of one VM (Figure 20).

    ``cycles`` are nominal-frequency cycles: 1 cycle per wall nanosecond of
    vCPU execution (the simulator's 1 GHz reference clock); ``work`` is
    retired instructions in the same unit; the difference is stall and
    spin overhead.
    """

    wall_ns: int
    cycles: int
    work_ns: float
    stall_ns: float

    @property
    def cps(self) -> float:
        """Cycles per second of wall time — vCPU utilization (Figure 20)."""
        if self.wall_ns == 0:
            return 0.0
        return self.cycles / (self.wall_ns / SEC)

    @property
    def ipc_proxy(self) -> float:
        """Instructions per cycle proxy: useful work / consumed cycles.

        ``work_ns`` includes executed stall time (stalls occupy the
        pipeline), so instructions = work − stalls."""
        if self.cycles == 0:
            return 0.0
        return max(0.0, self.work_ns - self.stall_ns) / self.cycles


class CycleMeter:
    """Collects VM cycle consumption over a measurement window."""

    def __init__(self, env, kernel=None):
        self.env = env
        self.kernel = kernel or env.kernel
        self._t0 = None
        self._run0 = 0
        self._work0 = 0.0
        self._stall0 = 0.0

    def _totals(self):
        self.kernel.sync_ticks()  # work_done lags while ticks are elided
        run = self.env.vm.total_run_ns()
        work = sum(t.stats.work_done for t in self.kernel.tasks)
        stall = (self.kernel.stats.stall_ns
                 + self.kernel.stats.spin_wait_ns)
        return run, work, stall

    def start(self) -> None:
        self._t0 = self.env.engine.now
        self._run0, self._work0, self._stall0 = self._totals()

    def sample(self) -> CycleSample:
        if self._t0 is None:
            raise RuntimeError("CycleMeter.start() not called")
        run, work, stall = self._totals()
        return CycleSample(
            wall_ns=self.env.engine.now - self._t0,
            cycles=run - self._run0,
            work_ns=work - self._work0,
            stall_ns=stall - self._stall0)
