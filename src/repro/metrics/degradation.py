"""Prober degradation metrics: estimate error vs hypervisor ground truth.

Under an adversarial co-tenant the vProbers' estimates can drift
arbitrarily far from reality while still looking healthy from inside the
guest.  This module quantifies that drift *experiment-side*: the
simulation harness can read both the guest's published abstractions and
the hypervisor's own accounting (a real deployment cannot, which is
exactly why the degradation is dangerous).

:class:`GroundTruthTracker` samples both sides on a fixed grid:

* **capacity ground truth** — ``1024 × Δrun/Δwall`` per vCPU thread over
  the sampling interval.  The caller must keep the guest saturated
  (pinned spinners) so run share equals *available* capacity;
* **latency ground truth** — ``Δsteal/Δpreemption_resumes``: the mean
  host-side wait per preemption, the quantity vact estimates.

Per-sample errors are dimensionless: capacity error as a fraction of a
nominal core (``|est − gt|/1024``), latency error normalized by the true
latency plus one tick (``|est − gt|/(gt + 1 ms)``) so the dedicated case
(gt 0) neither divides by zero nor drowns the metric.  The aggregate
:class:`DegradationReport` is what figure family ``figA1`` tabulates and
what the CI adversarial smoke job parses.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from typing import List, Optional

from repro.sim.engine import MSEC


@dataclass
class DegradationReport:
    """Aggregate estimate error for one (scenario, prober-config) run."""

    label: str
    samples: int
    #: Mean |est − gt| capacity error, in fractions of a nominal core.
    cap_err: float
    #: Mean normalized vCPU-latency error.
    act_err: float
    #: Robustness counters (0 on the naive path).
    samples_rejected: int = 0
    quarantined_windows: int = 0
    degenerate_windows: int = 0

    @property
    def combined_err(self) -> float:
        """The scalar the figA1 check compares: capacity and activity
        error weighted equally."""
        return 0.5 * (self.cap_err + self.act_err)

    def to_json(self) -> str:
        return json.dumps(asdict(self), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "DegradationReport":
        return cls(**json.loads(text))


class GroundTruthTracker:
    """Sample hypervisor truth vs guest estimates on a fixed grid.

    Drive with :meth:`start` (chains its own engine callbacks); read the
    aggregate with :meth:`report` once the run ends.  All sampling points
    come from the deterministic event grid, so a tracked run stays
    byte-reproducible and cacheable.
    """

    def __init__(self, env, store, interval_ns: int = 250 * MSEC):
        self.env = env
        self.store = store
        self.interval_ns = interval_ns
        self.samples = 0
        self._cap_err_sum = 0.0
        self._act_err_sum = 0.0
        self._prev = None
        self._running = False

    # ------------------------------------------------------------------
    def start(self, delay_ns: int = 0) -> None:
        """Begin sampling after ``delay_ns`` (the prober warm-up)."""
        self._running = True
        self.env.engine.call_in(max(1, delay_ns), self._baseline)

    def stop(self) -> None:
        self._running = False

    def _snapshot(self) -> List[tuple]:
        now = self.env.engine.now
        return [(v.run_ns(now), v.steal_ns(now), v.preemption_resumes)
                for v in self.env.vm.vcpus]

    def _baseline(self) -> None:
        if not self._running:
            return
        self._prev = self._snapshot()
        self.env.engine.call_in(self.interval_ns, self._sample)

    def _sample(self) -> None:
        if not self._running:
            return
        cur = self._snapshot()
        for c, ((run0, steal0, res0), (run1, steal1, res1)) in enumerate(
                zip(self._prev, cur)):
            d_run = run1 - run0
            d_steal = steal1 - steal0
            d_res = res1 - res0
            gt_cap = 1024.0 * d_run / self.interval_ns
            gt_lat = (d_steal / d_res) if d_res > 0 else 0.0
            entry = self.store[c]
            self._cap_err_sum += abs(entry.capacity - gt_cap) / 1024.0
            self._act_err_sum += (abs(entry.latency_ns - gt_lat)
                                  / (gt_lat + 1 * MSEC))
            self.samples += 1
        self._prev = cur
        self.env.engine.call_in(self.interval_ns, self._sample)

    # ------------------------------------------------------------------
    def report(self, label: str, vcap=None) -> DegradationReport:
        n = max(1, self.samples)
        rejected = quarantined = degenerate = 0
        if vcap is not None:
            rejected = vcap.samples_rejected
            quarantined = vcap.quarantined_windows
            degenerate = vcap.degenerate_windows
        return DegradationReport(
            label=label,
            samples=self.samples,
            cap_err=self._cap_err_sum / n,
            act_err=self._act_err_sum / n,
            samples_rejected=rejected,
            quarantined_windows=quarantined,
            degenerate_windows=degenerate)
