"""Figure 16 — vSched responds quickly to vCPU changes (§5.7).

A 16-vCPU VM serves Nginx while the host conditions move through four
phases:

1. **dedicated** — each vCPU owns a core; vSched ≈ CFS (the default
   abstraction is already accurate);
2. **overcommitted** — a competing VM takes half of every core; CFS
   throughput halves, vSched recovers much of it by harvesting (ivh);
3. **asymmetric** — half the vCPUs get 2× the capacity of the rest,
   total capacity unchanged; vSched sustains its throughput;
4. **constrained** — two vCPUs stacked on one thread and two more cut to
   straggler capacity; rwc hides them and vSched recovers while CFS
   suffers.

The table reports mean requests/second per phase for CFS and vSched.
"""

from __future__ import annotations

from typing import Dict, List

from repro.cluster import attach_scheduler, build_plain_vm, make_context
from repro.experiments.common import Table
from repro.experiments.snapstore import PrefixSpec
from repro.experiments.units import WorkUnit, execute_serial
from repro.core.weights import weight_for_nice
from repro.sim.engine import MSEC, SEC
from repro.workloads import NginxServer

PHASES = ("dedicated", "overcommitted", "asymmetric", "constrained")
MODES = ("cfs", "vsched")


# ---------------------------------------------------------------------------
# Host-condition transitions, applied synchronously at phase boundaries.
# Module-level functions over the roots dict (not closures): the roots are
# deep-copied together with the engine, so the stress handles they stash
# always name tasks of *this* fork's machine.
# ---------------------------------------------------------------------------
def _to_overcommitted(roots: Dict) -> None:
    env = roots["env"]
    roots["stress"] = [env.machine.add_host_task(f"s{i}", pinned=(i,))
                       for i in range(16)]


def _to_asymmetric(roots: Dict) -> None:
    # Half the vCPUs 2x the capacity of the rest, same total: fast
    # vCPUs' competitors are demoted to one third of the weight.
    env = roots["env"]
    for task in roots["stress"]:
        env.machine.remove_host_task(task)
    for i in range(16):
        if i < 8:
            env.machine.add_host_task(f"a{i}", pinned=(i,),
                                      weight=512)   # vCPU gets ~2/3
        else:
            env.machine.add_host_task(f"a{i}", pinned=(i,),
                                      weight=2048)  # vCPU gets ~1/3


def _to_constrained(roots: Dict) -> None:
    # Stack vCPU1 onto vCPU0's thread; throttle vCPUs 2-3 to straggler
    # capacity.
    env = roots["env"]
    env.machine.repin(env.vm.vcpu(1), (0,))
    for i in (2, 3):
        env.machine.add_host_task(f"hog{i}", pinned=(i,),
                                  weight=weight_for_nice(-20))


_TRANSITIONS = {"overcommitted": _to_overcommitted,
                "asymmetric": _to_asymmetric,
                "constrained": _to_constrained}


def _phase_dedicated(mode: str, phase_ns: int) -> Dict:
    """Root prefix: build, start Nginx, run the dedicated phase."""
    env = build_plain_vm(16, host_slice_ns=5 * MSEC)
    vs = attach_scheduler(env, mode)
    ctx = make_context(env, vs, f"fig16-{mode}")
    nginx = NginxServer(workers=8, service_ns=2 * MSEC, rate_per_sec=2600.0)
    nginx.start(ctx)
    env.engine.run_until(1 * phase_ns)
    return {"engine": env.engine, "env": env, "nginx": nginx}


def _enter_phase(roots: Dict, phase: str, end_multiple: int,
                 phase_ns: int) -> Dict:
    """Chained prefix: apply one transition, run to the phase's end."""
    _TRANSITIONS[phase](roots)
    roots["engine"].run_until(end_multiple * phase_ns)
    return roots


def _phase_rps(roots: Dict, phase_index: int, phase_ns: int) -> float:
    """Work-unit body: mean requests/second of the phase just simulated.

    Pure arithmetic over the server's completion log — the phase itself
    was simulated by the prefix chain, so each deeper phase forks the
    previous boundary instead of replaying the whole timeline (the cold
    ``--no-snapshot`` path replays it, which is the A/B baseline).
    Skips the first 30% of the phase as transition/adaptation time.
    """
    t0 = phase_index * phase_ns + (3 * phase_ns) // 10
    t1 = (phase_index + 1) * phase_ns
    return roots["nginx"].served_between(t0, t1) / ((t1 - t0) / SEC)


def scenarios(fast: bool) -> List[WorkUnit]:
    phase_ns = (15 if fast else 30) * SEC
    unit_cost = 3.5 if fast else 7.0
    units = []
    for mode in MODES:
        chain = PrefixSpec(key=f"fig16-{mode}-dedicated",
                           func=_phase_dedicated, config=(mode, phase_ns),
                           seed=f"fig16-{mode}")
        for k, phase in enumerate(PHASES):
            if k > 0:
                chain = PrefixSpec(key=f"fig16-{mode}-{phase}",
                                   func=_enter_phase,
                                   config=(phase, k + 1, phase_ns),
                                   seed=f"fig16-{mode}", parent=chain)
            # Cold cost grows with chain depth (a cold unit replays every
            # phase up to its own), which also keeps timeouts honest.
            units.append(WorkUnit(exp_id="fig16", label=f"{mode}-{phase}",
                                  func=_phase_rps, config=(k, phase_ns),
                                  cost_hint=unit_cost * (k + 1),
                                  seed=f"fig16-{mode}", prefix=chain))
    return units


def assemble(fast: bool, results: List[float]) -> Table:
    it = iter(results)
    per_mode = {mode: {phase: next(it) for phase in PHASES}
                for mode in MODES}
    cfs, vsched = per_mode["cfs"], per_mode["vsched"]
    table = Table(
        exp_id="fig16",
        title="Nginx live throughput across host phases (requests/s)",
        columns=["phase", "CFS", "vSched", "vsched_gain_pct"],
        paper_expectation="equal when dedicated; vSched sustains throughput "
                          "under overcommit/asymmetry and recovers quickly "
                          "when constrained",
    )
    for phase in PHASES:
        gain = 100.0 * (vsched[phase] - cfs[phase]) / max(1.0, cfs[phase])
        table.add(phase, cfs[phase], vsched[phase], gain)
    return table


def run(fast: bool = False) -> Table:
    return assemble(fast, execute_serial(scenarios(fast), fast))


def check(table: Table) -> None:
    rows = {r[0]: r for r in table.rows}
    # Dedicated: within 10% of each other (nothing to fix).
    assert abs(rows["dedicated"][3]) < 10.0, rows["dedicated"]
    # Overcommitted: CFS drops well below dedicated; vSched recovers.
    assert rows["overcommitted"][1] < rows["dedicated"][1] * 0.85, rows
    assert rows["overcommitted"][3] > 10.0, rows["overcommitted"]
    # Asymmetric: vSched keeps its advantage.
    assert rows["asymmetric"][3] > 5.0, rows["asymmetric"]
    # Constrained: vSched recovers more throughput than CFS.  (Each fast
    # phase leaves rwc only a few seconds after detection, so the margin
    # is smaller than in the full 30 s-per-phase run.)
    assert rows["constrained"][3] > 3.0, rows["constrained"]
