"""Figure 16 — vSched responds quickly to vCPU changes (§5.7).

A 16-vCPU VM serves Nginx while the host conditions move through four
phases:

1. **dedicated** — each vCPU owns a core; vSched ≈ CFS (the default
   abstraction is already accurate);
2. **overcommitted** — a competing VM takes half of every core; CFS
   throughput halves, vSched recovers much of it by harvesting (ivh);
3. **asymmetric** — half the vCPUs get 2× the capacity of the rest,
   total capacity unchanged; vSched sustains its throughput;
4. **constrained** — two vCPUs stacked on one thread and two more cut to
   straggler capacity; rwc hides them and vSched recovers while CFS
   suffers.

The table reports mean requests/second per phase for CFS and vSched.
"""

from __future__ import annotations

from typing import Dict, List

from repro.cluster import attach_scheduler, build_plain_vm, make_context
from repro.experiments.common import Table
from repro.experiments.units import WorkUnit, execute_serial
from repro.core.weights import weight_for_nice
from repro.sim.engine import MSEC, SEC
from repro.workloads import NginxServer

PHASES = ("dedicated", "overcommitted", "asymmetric", "constrained")
MODES = ("cfs", "vsched")


def _run(mode: str, phase_ns: int, seed: str) -> Dict[str, float]:
    env = build_plain_vm(16, host_slice_ns=5 * MSEC)
    vs = attach_scheduler(env, mode)
    ctx = make_context(env, vs, seed)
    nginx = NginxServer(workers=8, service_ns=2 * MSEC, rate_per_sec=2600.0)

    stress = []

    def to_overcommitted() -> None:
        for i in range(16):
            stress.append(env.machine.add_host_task(f"s{i}", pinned=(i,)))

    def to_asymmetric() -> None:
        # Half the vCPUs 2x the capacity of the rest, same total: fast
        # vCPUs' competitors are demoted to one third of the weight.
        for i in range(8):
            env.machine.remove_host_task(stress[i])
        for i in range(8, 16):
            env.machine.remove_host_task(stress[i])
        for i in range(16):
            if i < 8:
                env.machine.add_host_task(f"a{i}", pinned=(i,),
                                          weight=512)   # vCPU gets ~2/3
            else:
                env.machine.add_host_task(f"a{i}", pinned=(i,),
                                          weight=2048)  # vCPU gets ~1/3
    def to_constrained() -> None:
        # Stack vCPU1 onto vCPU0's thread; throttle vCPUs 2-3 to straggler
        # capacity.
        env.machine.repin(env.vm.vcpu(1), (0,))
        for i in (2, 3):
            env.machine.add_host_task(f"hog{i}", pinned=(i,),
                                      weight=weight_for_nice(-20))

    env.engine.call_at(1 * phase_ns, to_overcommitted)
    env.engine.call_at(2 * phase_ns, to_asymmetric)
    env.engine.call_at(3 * phase_ns, to_constrained)

    nginx.start(ctx)
    env.engine.run_until(4 * phase_ns)
    nginx.stop()

    # Mean throughput per phase, skipping the first 30% of each phase as
    # transition/adaptation time.
    result = {}
    for i, phase in enumerate(PHASES):
        t0 = i * phase_ns + (3 * phase_ns) // 10
        t1 = (i + 1) * phase_ns
        result[phase] = nginx.served_between(t0, t1) / ((t1 - t0) / SEC)
    return result


def _scenario(mode: str, fast: bool) -> Dict[str, float]:
    """Work-unit body: one full four-phase run under one scheduler."""
    phase_ns = (15 if fast else 30) * SEC
    return _run(mode, phase_ns, f"fig16-{mode}")


def scenarios(fast: bool) -> List[WorkUnit]:
    cost = 14.0 if fast else 28.0
    return [WorkUnit(exp_id="fig16", label=mode, func=_scenario,
                     config=(mode, fast), cost_hint=cost,
                     seed=f"fig16-{mode}")
            for mode in MODES]


def assemble(fast: bool, results: List[Dict[str, float]]) -> Table:
    cfs, vsched = results
    table = Table(
        exp_id="fig16",
        title="Nginx live throughput across host phases (requests/s)",
        columns=["phase", "CFS", "vSched", "vsched_gain_pct"],
        paper_expectation="equal when dedicated; vSched sustains throughput "
                          "under overcommit/asymmetry and recovers quickly "
                          "when constrained",
    )
    for phase in PHASES:
        gain = 100.0 * (vsched[phase] - cfs[phase]) / max(1.0, cfs[phase])
        table.add(phase, cfs[phase], vsched[phase], gain)
    return table


def run(fast: bool = False) -> Table:
    return assemble(fast, execute_serial(scenarios(fast)))


def check(table: Table) -> None:
    rows = {r[0]: r for r in table.rows}
    # Dedicated: within 10% of each other (nothing to fix).
    assert abs(rows["dedicated"][3]) < 10.0, rows["dedicated"]
    # Overcommitted: CFS drops well below dedicated; vSched recovers.
    assert rows["overcommitted"][1] < rows["dedicated"][1] * 0.85, rows
    assert rows["overcommitted"][3] > 10.0, rows["overcommitted"]
    # Asymmetric: vSched keeps its advantage.
    assert rows["asymmetric"][3] > 5.0, rows["asymmetric"]
    # Constrained: vSched recovers more throughput than CFS.  (Each fast
    # phase leaves rwc only a few seconds after detection, so the margin
    # is smaller than in the full 30 s-per-phase run.)
    assert rows["constrained"][3] > 3.0, rows["constrained"]
