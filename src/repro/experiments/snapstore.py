"""Warm-start snapshot store: build each scenario prefix once, fork many.

Most sweep scenarios share an expensive setup: build the VM, attach the
scheduler, run the warmup until the probers converge — and only then
diverge (install an antagonist, start a workload, flip a feature).  A
:class:`PrefixSpec` names that shared prefix declaratively; the first unit
in a process that needs it builds the world cold, runs it to the
divergence point, and freezes it as a
:class:`~repro.sim.snapshot.WorldSnapshot`.  Every later unit with the
same prefix forks the frozen image instead of rebuilding — byte-identical
results (``tools/abdiff.py`` proves it) at a fraction of the wall time.

Keying follows the unit result cache
(:mod:`repro.experiments.cache`): a prefix snapshot is addressed by
``SHA-256(code fingerprint | prefix chain (key, config, seed) | fast)``,
so any source change invalidates every stored prefix, exactly like unit
results.  The store itself is **in-process** (snapshots hold live object
graphs; they are never pickled to disk) — each campaign worker process
grows its own store, which is why sharing a prefix across many units of
the same experiment pays off even under the pooled scheduler.

Prefixes chain: a spec with a ``parent`` extends the parent's world
(fork parent → run the extension) instead of building from scratch, so a
phase-structured experiment (fig16's host-condition timeline) snapshots
each phase boundary once and forks per-phase measurement variants from
it.

``$VSCHED_REPRO_SNAPSHOT=0`` (or ``--no-snapshot``) disables forking:
every unit then rebuilds its full prefix chain cold through the *same*
builder functions, which is the A/B baseline for the identity contract.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.sim.engine import (elision_default, engine_backend_default,
                              snapshot_default)
from repro.sim.snapshot import WorldSnapshot

__all__ = ["PrefixSpec", "SnapshotStore", "execute_unit", "process_store",
           "reset_process_store", "prefix_chain_parts", "prefix_store_key",
           "snapshot_counters", "build_cold"]


@dataclass(frozen=True)
class PrefixSpec:
    """Declarative description of a shared scenario prefix.

    ``func`` must be module-level (picklable by reference).  For a root
    prefix (``parent is None``) it is called as ``func(*config)`` and must
    return the world's *roots*: a dict of top-level handles containing at
    least ``"engine"`` (everything a diverging unit needs to keep driving
    the world — env, scheduler, workload context...).  For a chained
    prefix it is called as ``func(roots, *config)`` on a fork of the
    parent's world and returns the (possibly same) roots dict.

    ``config`` must be plain data — it feeds the store key via ``repr``,
    exactly like a work unit's config feeds the result-cache key.
    ``seed`` records the prefix's RNG seed string by the same convention.
    """

    key: str
    func: Callable
    config: Tuple = ()
    seed: str = ""
    parent: Optional["PrefixSpec"] = None


def prefix_chain_parts(prefix: Optional[PrefixSpec]) -> List[str]:
    """Key material naming a prefix chain (innermost first)."""
    parts: List[str] = []
    p = prefix
    while p is not None:
        parts.extend((p.key, repr(p.config), p.seed))
        p = p.parent
    return parts


def prefix_store_key(prefix: PrefixSpec, fast: bool,
                     fingerprint: Optional[str] = None) -> str:
    """Content address of one prefix's frozen world.

    Besides the chain and the fast/full mode, the key names the engine's
    process-wide mode knobs (event backend, tickless elision): a frozen
    world bakes both in at construction, so an in-process toggle — the
    A/B tests flip these env vars mid-run — must miss rather than fork a
    world built under the other mode.
    """
    from repro.experiments.cache import code_fingerprint
    h = hashlib.sha256()
    parts = [fingerprint if fingerprint is not None else code_fingerprint()]
    parts += prefix_chain_parts(prefix)
    parts.append("fast" if fast else "full")
    parts.append(f"backend={engine_backend_default()}")
    parts.append(f"tickless={int(elision_default())}")
    for part in parts:
        h.update(part.encode())
        h.update(b"\0")
    return h.hexdigest()


def build_cold(prefix: PrefixSpec) -> Dict[str, Any]:
    """Build a prefix world with no snapshotting at all.

    The disabled-mode path and the miss path run the same builder
    functions in the same order; the only difference is whether the
    result is frozen afterwards.
    """
    if prefix.parent is None:
        roots = prefix.func(*prefix.config)
    else:
        roots = prefix.func(build_cold(prefix.parent), *prefix.config)
    if "engine" not in roots:
        raise KeyError(
            f"prefix {prefix.key!r}: builder returned roots without an "
            f"'engine' entry")
    return roots


class SnapshotStore:
    """In-process map from prefix key to frozen world, with accounting.

    ``saved_seconds`` estimates the prefix wall time forking avoided: on
    every hit it credits the measured build cost of that prefix (what a
    cold rebuild would have spent).  Fork cost itself is not subtracted —
    it shows up in the unit's own wall time, keeping the two numbers
    independently meaningful in the BENCH report.
    """

    def __init__(self) -> None:
        self._snaps: Dict[str, WorldSnapshot] = {}
        self._build_cost: Dict[str, float] = {}
        self.hits = 0
        self.misses = 0
        self.forks = 0
        self.cold_builds = 0
        self.build_seconds = 0.0
        self.saved_seconds = 0.0

    def acquire(self, prefix: PrefixSpec, fast: bool,
                fingerprint: Optional[str] = None) -> WorldSnapshot:
        """Return the frozen world for ``prefix``, building it on miss."""
        key = prefix_store_key(prefix, fast, fingerprint)
        snap = self._snaps.get(key)
        if snap is not None:
            self.hits += 1
            self.saved_seconds += self._build_cost[key]
            return snap
        self.misses += 1
        started = time.perf_counter()
        if prefix.parent is None:
            roots = prefix.func(*prefix.config)
            if "engine" not in roots:
                raise KeyError(
                    f"prefix {prefix.key!r}: builder returned roots "
                    f"without an 'engine' entry")
        else:
            _engine, roots = self.acquire(prefix.parent, fast,
                                          fingerprint).fork()
            self.forks += 1
            roots = prefix.func(roots, *prefix.config)
        snap = WorldSnapshot(roots["engine"], roots)
        cost = time.perf_counter() - started
        self._snaps[key] = snap
        self._build_cost[key] = cost
        self.build_seconds += cost
        return snap

    def fork(self, prefix: PrefixSpec, fast: bool,
             fingerprint: Optional[str] = None) -> Dict[str, Any]:
        """Fork the prefix's world; returns the forked roots dict."""
        snap = self.acquire(prefix, fast, fingerprint)
        _engine, roots = snap.fork()
        self.forks += 1
        return roots


#: The per-process store (grown lazily; workers each own one).
_process_store: Optional[SnapshotStore] = None


def process_store() -> SnapshotStore:
    global _process_store
    if _process_store is None:
        _process_store = SnapshotStore()
    return _process_store


def reset_process_store() -> None:
    """Drop every frozen world (tests; long-lived REPL sessions)."""
    global _process_store
    _process_store = None


def snapshot_counters() -> Dict[str, float]:
    """Cumulative per-process snapshot accounting, for unit stat deltas.

    Reported through the same channel as the engine counter deltas, so
    pooled workers ship them back inside each unit outcome and
    ``tools/bench.py`` can sum hit/miss/saved-seconds per experiment.
    """
    s = _process_store
    if s is None:
        return {"snap_hits": 0, "snap_misses": 0, "snap_forks": 0,
                "snap_cold_builds": 0, "snap_saved_s": 0.0}
    return {"snap_hits": s.hits, "snap_misses": s.misses,
            "snap_forks": s.forks, "snap_cold_builds": s.cold_builds,
            "snap_saved_s": round(s.saved_seconds, 3)}


def execute_unit(func: Callable, config: Tuple,
                 prefix: Optional[PrefixSpec], fast: bool) -> Any:
    """Run one work-unit body, warm-starting from its prefix if it has one.

    With a prefix and snapshots enabled, the unit function is called as
    ``func(roots, *config)`` on a private fork of the frozen prefix
    world.  With snapshots disabled the prefix chain is rebuilt cold —
    through the identical builder code — before the same call.  Without a
    prefix this is exactly ``func(*config)``.
    """
    if prefix is None:
        return func(*config)
    store = process_store()
    if snapshot_default():
        roots = store.fork(prefix, fast)
    else:
        store.cold_builds += 1
        roots = build_cold(prefix)
    return func(roots, *config)
