"""Figure 19 — overall improvement on the high-performance VM (hpvm).

Same protocol as Figure 18 on the 32-vCPU, 4-socket hpvm.  The paper
reports enhanced CFS 1.5× lower latency / +13% throughput and vSched 2.3×
lower latency / +18% throughput vs CFS; gains are smaller than rcvm on the
throughput side (no stragglers or stacking to hide) and larger on the
latency side (bvs can exploit the dedicated vCPU group).
"""

from __future__ import annotations

from typing import List

from repro.experiments.common import Table
from repro.experiments.overall import (
    check_overall,
    geometric_means,
    overall_assemble,
    overall_scenarios,
)
from repro.experiments.units import WorkUnit, execute_serial

TITLE = "hpvm: normalized performance vs CFS (higher is better)"


def scenarios(fast: bool) -> List[WorkUnit]:
    return overall_scenarios("fig19", vm="hpvm", threads=32, fast=fast)


def assemble(fast: bool, results: List[float]) -> Table:
    table = overall_assemble("fig19", TITLE, fast, results)
    means = geometric_means(table)
    table.notes.append(
        "geomean throughput: enhanced %.0f%%, vSched %.0f%% (paper: +13%%/+18%%)"
        % (means["throughput"]["enhanced"], means["throughput"]["vsched"]))
    table.notes.append(
        "geomean latency perf: enhanced %.0f%%, vSched %.0f%% (paper: 1.5x/2.3x)"
        % (means["latency"]["enhanced"], means["latency"]["vsched"]))
    return table


def run(fast: bool = False) -> Table:
    return assemble(fast, execute_serial(scenarios(fast)))


def check(table: Table) -> None:
    check_overall(table, min_enhanced=102.0, min_vsched=105.0,
                  latency_min_vsched=115.0)
