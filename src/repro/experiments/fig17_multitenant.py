"""Figure 17 — vSched in multi-tenant hosts under varying interference.

Multiple 16-vCPU VMs share 16 cores with their vCPUs **freely scheduled**
(no pinning) — the host places and balances vCPU threads itself (§5.8).
One VM serves Nginx (compared under CFS and vSched); co-located VMs run
phased interference:

1. *intermittent* — facesim + ferret (synchronization-intensive, bursty);
2. *consistent* — swaptions + raytrace (computation-intensive);
3. *transient* — four VMs running small latency-sensitive tasks.

Reported: Nginx throughput per phase for both schedulers, and the
degradation vSched imposes on the co-located workloads (the paper finds it
negligible, 1–2%).
"""

from __future__ import annotations

from typing import Dict, List

from repro.cluster import attach_scheduler, make_context
from repro.cluster.vmtypes import VmEnvironment
from repro.core.vsched import VSched, VSchedConfig
from repro.experiments.common import Table
from repro.experiments.units import WorkUnit, execute_serial
from repro.guest.kernel import GuestKernel
from repro.hw.topology import HostTopology
from repro.hypervisor.machine import Machine
from repro.sim.engine import Engine, MSEC, SEC
from repro.sim.rng import make_rng
from repro.workloads import (
    LatencyWorkload,
    NginxServer,
    WorkloadContext,
    build_parsec,
)

PHASES = ("intermittent", "consistent", "transient")


def _colocated_vm(machine: Machine, name: str, bench: str, rng_seed: str,
                  threads: int = 16):
    """A co-located VM running one benchmark under plain CFS, looping."""
    vm = machine.new_vm(name, 16, pinned_map=None)
    kernel = GuestKernel(vm)
    ctx = WorkloadContext(kernel=kernel, group=kernel.root_group,
                          besteffort_group=None, rng=make_rng(rng_seed))
    state = {"work": None}

    def launch() -> None:
        if vm.vcpus[0].offline:
            return
        if bench in ("img-dnn", "masstree", "silo", "specjbb"):
            wl = LatencyWorkload(bench, workers=8, n_requests=400)
        else:
            wl = build_parsec(bench, threads=threads, scale=0.4)
        wl.on_done(lambda _w: launch())
        wl.start(ctx)
        state["work"] = wl

    launch()
    return vm, kernel


def _progress(kernel: GuestKernel) -> float:
    kernel.sync_ticks()  # work_done lags while ticks are elided
    return sum(t.stats.work_done for t in kernel.tasks)


class _TenantChurn:
    """The three neighbor-churn phases, scheduled as bound methods.

    Bound methods of an ordinary object are deep-copyable, so the pending
    phase events stay snapshot-safe (guard_world) — closures over
    ``neighbors``/``results`` would alias the original world on a
    warm-start fork.
    """

    def __init__(self, machine: Machine):
        self.machine = machine
        self.neighbors: List = []
        self.results: Dict[str, float] = {}

    def phase1(self) -> None:
        self.neighbors.append(_colocated_vm(self.machine, "vmA",
                                            "facesim", "fA"))
        self.neighbors.append(_colocated_vm(self.machine, "vmB",
                                            "ferret", "fB"))

    def phase2(self) -> None:
        for vm, kern in self.neighbors[:2]:
            self.results[f"{vm.name}_work"] = _progress(kern)
            vm.shutdown()
        self.neighbors.append(_colocated_vm(self.machine, "vmC",
                                            "swaptions", "fC"))
        self.neighbors.append(_colocated_vm(self.machine, "vmD",
                                            "raytrace", "fD"))

    def phase3(self) -> None:
        for vm, kern in self.neighbors[2:4]:
            self.results[f"{vm.name}_work"] = _progress(kern)
            vm.shutdown()
        for i, bench in enumerate(("img-dnn", "masstree", "silo",
                                   "specjbb")):
            self.neighbors.append(_colocated_vm(self.machine, f"vmL{i}",
                                                bench, f"fL{i}"))


def _run(mode: str, phase_ns: int) -> Dict[str, float]:
    engine = Engine()
    machine = Machine(engine, HostTopology(1, 16, smt=1),
                      host_slice_ns=5 * MSEC)
    nginx_vm = machine.new_vm("primary", 16, pinned_map=None)
    nginx_kernel = GuestKernel(nginx_vm)
    env = VmEnvironment(engine, machine, nginx_vm, nginx_kernel)
    vs = attach_scheduler(env, mode)
    ctx = make_context(env, vs, seed=f"fig17-{mode}")
    nginx = NginxServer(workers=12, service_ns=2 * MSEC, rate_per_sec=4200.0)
    nginx.start(ctx)

    churn = _TenantChurn(machine)
    engine.call_at(0 + 1, churn.phase1)
    engine.call_at(1 * phase_ns, churn.phase2)
    engine.call_at(2 * phase_ns, churn.phase3)
    engine.run_until(3 * phase_ns)
    results = churn.results  # keyed in phase order, as the phases ran
    for vm, kern in churn.neighbors[4:]:
        results[f"{vm.name}_work"] = _progress(kern)
    nginx.stop()

    for i, phase in enumerate(PHASES):
        t0 = i * phase_ns + phase_ns // 5
        t1 = (i + 1) * phase_ns
        results[phase] = nginx.served_between(t0, t1) / ((t1 - t0) / SEC)
    return results


def _scenario(mode: str, fast: bool) -> Dict[str, float]:
    """Work-unit body: one three-phase multi-tenant run per scheduler."""
    phase_ns = (16 if fast else 40) * SEC
    return _run(mode, phase_ns)


def scenarios(fast: bool) -> List[WorkUnit]:
    cost = 22.0 if fast else 55.0
    return [WorkUnit(exp_id="fig17", label=mode, func=_scenario,
                     config=(mode, fast), cost_hint=cost,
                     seed=f"fig17-{mode}")
            for mode in ("cfs", "vsched")]


def assemble(fast: bool, results: List[Dict[str, float]]) -> Table:
    cfs, vsched = results
    table = Table(
        exp_id="fig17",
        title="Multi-tenant host: Nginx throughput and neighbour impact",
        columns=["metric", "CFS", "vSched", "delta_pct"],
        paper_expectation="vSched: +15% (intermittent), +24% (consistent), "
                          "~equal (transient); neighbour degradation ~1-2%",
    )
    for phase in PHASES:
        delta = 100.0 * (vsched[phase] - cfs[phase]) / max(1.0, cfs[phase])
        table.add(f"nginx_{phase}_rps", cfs[phase], vsched[phase], delta)
    for key in ("vmA_work", "vmB_work", "vmC_work", "vmD_work"):
        degradation = 100.0 * (cfs[key] - vsched[key]) / max(1.0, cfs[key])
        table.add(f"{key.split('_')[0]}_degradation_pct",
                  0.0, degradation, degradation)
    return table


def run(fast: bool = False) -> Table:
    return assemble(fast, execute_serial(scenarios(fast)))


def check(table: Table) -> None:
    rows = {r[0]: r for r in table.rows}
    # vSched outperforms CFS under consistent interference and is
    # comparable under intermittent interference.  (On this substrate the
    # erratic intermittent phase defeats the activity predictions, so ivh
    # self-throttles; run-to-run the delta swings roughly -10%..+10%
    # instead of the paper's +15%.)
    assert rows["nginx_intermittent_rps"][3] > -12.0, rows["nginx_intermittent_rps"]
    assert rows["nginx_consistent_rps"][3] > 3.0, rows["nginx_consistent_rps"]
    # Under light transient interference the two are close.
    assert rows["nginx_transient_rps"][3] > -10.0, rows["nginx_transient_rps"]
    # Consistent-phase neighbours (CPU-bound) are only modestly affected
    # (paper: 2.1%/1.9%; here vSched claims its fair share a bit harder).
    for key in ("vmC_degradation_pct", "vmD_degradation_pct"):
        assert rows[key][3] < 16.0, (key, rows[key])
    # Intermittent-phase neighbours are synchronization-intensive: on this
    # substrate the cycles vSched reclaims for its fair share stretch their
    # barrier phases noticeably more than the paper's 1.2% (a documented
    # deviation, see EXPERIMENTS.md); bound the damage.
    for key in ("vmA_degradation_pct", "vmB_degradation_pct"):
        assert rows[key][3] < 45.0, (key, rows[key])
