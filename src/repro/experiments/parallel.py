"""Parallel experiment campaigns: the flat work-unit scheduler.

PR 1 had two rigid fan-out layers — whole experiments across a pool, or one
experiment's scenario sweep — so ``run all --jobs N`` collapsed to the wall
time of the slowest *whole experiment* (fig17, ~45 s fast) because nested
fan-out silently degraded inside daemonic pool workers.  This module now
schedules a **single flat queue of work units** instead:

1. every experiment is decomposed into independent scenario evaluations
   (:class:`~repro.experiments.units.WorkUnit`) via its ``scenarios(fast)``
   hook, or wrapped whole as a single unit when not yet migrated;
2. one persistent pool of **non-daemonic** worker processes executes all
   units from all experiments, dispatched longest-``cost_hint``-first
   (greedy LPT), so the critical path is the slowest single *scenario*;
3. results are keyed by unit index and each experiment's table is
   ``assemble``\\ d in the parent, in deterministic presentation order, the
   moment its last unit lands — callers stream tables in paper order.

Workers are plain ``Process`` objects (not ``Pool`` daemons) fed by a task
queue; each pins its own in-worker default to one job so legacy
``run_scenarios`` callers inside a unit can never nest another pool.

A :class:`~repro.experiments.cache.ResultCache` can be layered underneath:
unit keys are content addresses of ``(code, config, seed, fast)``, hits are
satisfied in the parent before anything is dispatched, and misses are
stored as they complete — a warm ``run all`` re-runs only units whose key
changed.

Execution is **supervised** (:mod:`repro.experiments.supervisor`): the
parent owns a per-worker dispatch record, so dead workers are detected and
their in-flight unit requeued, hung units are killed at a per-unit
deadline, transient failures retry with deterministic backoff, and
``keep_going=True`` turns a permanently-failed unit into a
:class:`CampaignResult` failure panel instead of aborting the campaign.

Determinism contract
--------------------
Every scenario derives **all** of its randomness from an explicit seed
string (see :func:`repro.sim.rng.make_rng`), typically
``f"{exp_id}-{param1}-{param2}"``.  Seeds therefore depend only on the
scenario's identity — never on execution order, worker id, or wall clock —
so a unit computes the same result in any process, and serial, pooled and
warm-cache campaigns must render byte-identical tables;
``tests/test_determinism.py`` enforces this.  Unit functions must be
module-level (picklable) and must return picklable data (floats / dicts /
:class:`~repro.experiments.common.Table`), not live simulation objects.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import sys
import time
import traceback
from dataclasses import dataclass, field
from typing import (Any, Callable, Dict, Iterator, List, Optional, Sequence,
                    Tuple)

from repro.experiments.chaos import ChaosPlan
from repro.experiments.supervisor import (
    CampaignInterrupted,
    DeadlinePolicy,
    RetryPolicy,
    SupervisorStats,
    supervise,
)
from repro.experiments.units import (
    TransientUnitError,
    WorkUnit,
    get_assemble,
    get_scenarios,
    supports_units,
)

__all__ = ["run_units", "run_campaign", "run_scenarios", "decompose",
           "set_default_jobs", "default_jobs", "last_campaign_stats",
           "CampaignResult", "UnitFailure", "CampaignInterrupted",
           "JOBS_ENV_VAR"]

#: Environment variable consulted for the default worker count.
JOBS_ENV_VAR = "VSCHED_REPRO_JOBS"

_default_jobs: Optional[int] = None

#: Approximate fast-mode serial wall seconds per experiment (from the PR 1
#: BENCH report) — cost hints for experiments not yet decomposed, so the
#: LPT dispatch order stays sensible even for whole-experiment units.
WHOLE_EXPERIMENT_COST: Dict[str, float] = {
    "fig2": 1.7, "fig3": 0.1, "fig4": 6.7, "fig10a": 0.4, "fig10b": 0.1,
    "tab2": 0.2, "fig11": 9.3, "fig12": 5.6, "fig13": 2.0, "fig14": 14.9,
    "tab3": 3.8, "fig15": 9.9, "tab4": 2.9, "fig16": 27.9, "fig17": 45.0,
    "fig18": 21.1, "fig19": 29.6, "fig20": 7.6, "fig21": 4.4,
}


def set_default_jobs(jobs: Optional[int]) -> None:
    """Set the process-wide default for ``run_scenarios(jobs=None)``.

    The CLI calls this with ``--jobs`` so experiments fan their scenario
    sweeps out without threading a parameter through every ``run()``.
    """
    global _default_jobs
    _default_jobs = None if jobs is None else max(1, int(jobs))


def default_jobs() -> int:
    """Resolve the default worker count (explicit > $VSCHED_REPRO_JOBS > 1)."""
    if _default_jobs is not None:
        return _default_jobs
    env = os.environ.get(JOBS_ENV_VAR)
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            print(f"warning: ignoring malformed {JOBS_ENV_VAR}={env!r} "
                  f"(expected an integer); defaulting to 1 worker",
                  file=sys.stderr)
            return 1
    return 1


def _in_pool_worker() -> bool:
    """True when already inside a multiprocessing pool worker."""
    return mp.current_process().daemon


def _pool_context():
    """Prefer fork (cheap, POSIX) and fall back to spawn."""
    methods = mp.get_all_start_methods()
    return mp.get_context("fork" if "fork" in methods else "spawn")


def _execute_prefixed(func: Callable, config: tuple, prefix, fast: bool):
    """Picklable wrapper running one prefixed unit via the snapshot store.

    Module-level so :func:`run_scenarios` can ship prefixed units to pool
    workers exactly like plain ones; each worker process warms its own
    store on first use.
    """
    from repro.experiments.snapstore import execute_unit
    return execute_unit(func, config, prefix, fast)


def unit_body_config(units: Sequence["WorkUnit"], fast: bool
                     ) -> Tuple[Callable, List[tuple]]:
    """Normalize a same-``func`` run of units to a (func, configs) pair.

    Units without a prefix pass through untouched (the exact PR 2 path);
    prefixed units are rewritten to :func:`_execute_prefixed` calls so
    every execution route — plain loop, pool, supervised campaign — goes
    through the snapshot store with identical semantics.
    """
    first = units[0]
    if first.prefix is None:
        return first.func, [u.config for u in units]
    return _execute_prefixed, [(u.func, u.config, u.prefix, fast)
                               for u in units]


def run_scenarios(func: Callable, configs: Sequence[tuple],
                  jobs: Optional[int] = None) -> List:
    """Run ``func(*config)`` for every config; return results in order.

    ``func`` must be a module-level callable whose randomness comes only
    from seeds encoded in the config (the determinism contract above).
    ``jobs=None`` uses :func:`default_jobs`; ``jobs<=1``, a single config,
    or being already inside a pool worker all run serially in-process —
    the exact code path a plain loop would take.
    """
    configs = list(configs)
    if jobs is None:
        jobs = default_jobs()
    jobs = min(max(1, jobs), len(configs)) if configs else 1
    if jobs <= 1 or _in_pool_worker():
        return [func(*cfg) for cfg in configs]
    with _pool_context().Pool(processes=jobs) as pool:
        # chunksize=1: scenarios are coarse (seconds each); favour balance.
        return pool.starmap(func, configs, chunksize=1)


# ----------------------------------------------------------------------
# Decomposition: experiment -> work units
# ----------------------------------------------------------------------
def _whole_experiment_unit(exp_id: str, fast: bool):
    """Fallback unit body for experiments without a scenarios() hook."""
    # Imported here so worker processes resolve their own module state.
    from repro.experiments.common import run_experiment
    return run_experiment(exp_id, fast=fast)


def decompose(exp_id: str, fast: bool) -> Tuple[List[WorkUnit], Callable]:
    """Return ``(units, assemble)`` for one experiment.

    ``assemble(fast, results)`` rebuilds the experiment's Table from one
    result per unit (in unit order).  Experiments without the
    scenarios/assemble protocol become a single whole-experiment unit whose
    result *is* the table.
    """
    from repro.experiments.common import load_experiment
    mod = load_experiment(exp_id)
    if supports_units(mod, exp_id):
        units = list(get_scenarios(mod, exp_id)(fast))
        return units, get_assemble(mod, exp_id)
    cost = WHOLE_EXPERIMENT_COST.get(exp_id, 5.0)
    unit = WorkUnit(exp_id=exp_id, label="__whole__",
                    func=_whole_experiment_unit, config=(exp_id, fast),
                    cost_hint=cost)
    return [unit], lambda fast_, results: results[0]


# ----------------------------------------------------------------------
# The flat scheduler
# ----------------------------------------------------------------------
@dataclass
class _UnitState:
    """Book-keeping for one scheduled unit."""

    unit: WorkUnit
    key: Optional[str] = None
    result: Any = None
    error: Optional[str] = None
    tb: Optional[str] = None
    wall_s: float = 0.0
    events: int = 0
    elided: int = 0
    #: Engine counter deltas (pushes/cancels/dead_drops/cascades) over the
    #: unit's successful attempt; empty for cached units.
    counters: Dict[str, int] = field(default_factory=dict)
    done: bool = False
    cached: bool = False
    attempts: int = 0
    fate: str = ""


@dataclass(frozen=True)
class UnitFailure:
    """One permanently-failed unit, for the end-of-run failure report."""

    exp_id: str
    label: str
    error: str
    attempts: int
    fate: str
    tb: Optional[str] = None


@dataclass
class CampaignResult:
    """Outcome of one experiment inside a campaign."""

    exp_id: str
    rendered: str
    wall_s: float
    events_fired: int
    events_elided: int = 0
    check_error: Optional[str] = None
    n_units: int = 1
    cache_hits: int = 0
    retries: int = 0
    failed_units: List[UnitFailure] = field(default_factory=list)
    unit_stats: List[dict] = field(default_factory=list)
    #: Summed engine counter deltas across units (see _UnitState.counters).
    counters: Dict[str, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return self.check_error is None and not self.failed_units


def _failure_panel(exp_id: str, states: List[_UnitState]) -> str:
    """Rendered stand-in table for an experiment with failed units."""
    failed = [st for st in states if st.error is not None]
    lines = [f"== {exp_id}: FAILED ({len(failed)}/{len(states)} units) =="]
    for st in failed:
        lines.append(f"unit {st.unit.label}: {st.error}")
        lines.append(f"  attempts: {st.attempts}")
        if st.fate:
            lines.append(f"  fate: {st.fate}")
    healthy = len(states) - len(failed)
    if healthy:
        lines.append(f"({healthy} healthy unit(s) completed; their results "
                     f"are cached when --cache is on)")
    return "\n".join(lines)


def _unit_stats(states: List[_UnitState]) -> List[dict]:
    return [{"label": st.unit.label, "wall_s": round(st.wall_s, 3),
             "events_fired": st.events, "events_elided": st.elided,
             "engine": dict(st.counters),
             "attempts": st.attempts, "cached": st.cached}
            for st in states]


def _sum_counters(states: List[_UnitState]) -> Dict[str, int]:
    total: Dict[str, int] = {}
    for st in states:
        for k, v in st.counters.items():
            total[k] = total.get(k, 0) + v
    return total


def _finish_experiment(exp_id: str, states: List[_UnitState],
                       assemble: Callable, fast: bool, check: bool,
                       keep_going: bool = False) -> CampaignResult:
    """Assemble + shape-check one experiment from its completed units.

    A permanently-failed unit aborts the campaign with ``RuntimeError``
    unless ``keep_going``, in which case the experiment yields a
    failure-panel :class:`CampaignResult` with ``ok=False`` instead.
    """
    from repro.experiments.common import check_experiment
    failed = [st for st in states if st.error is not None]
    retries = sum(max(0, st.attempts - 1) for st in states)
    if failed and not keep_going:
        st = failed[0]
        detail = f"\n{st.tb}" if st.tb else ""
        fate = f"; fate: {st.fate}" if st.fate else ""
        raise RuntimeError(
            f"work unit {exp_id}/{st.unit.label} failed: "
            f"{st.error} (attempts={max(1, st.attempts)}{fate})"
            f"{detail}")
    if failed:
        return CampaignResult(
            exp_id=exp_id, rendered=_failure_panel(exp_id, states),
            wall_s=sum(st.wall_s for st in states),
            events_fired=sum(st.events for st in states),
            events_elided=sum(st.elided for st in states),
            n_units=len(states),
            cache_hits=sum(1 for st in states if st.cached),
            retries=retries,
            failed_units=[UnitFailure(exp_id=exp_id, label=st.unit.label,
                                      error=st.error,
                                      attempts=max(1, st.attempts),
                                      fate=st.fate, tb=st.tb)
                          for st in failed],
            unit_stats=_unit_stats(states),
            counters=_sum_counters(states))
    table = assemble(fast, [st.result for st in states])
    check_error = None
    if check:
        try:
            check_experiment(exp_id, table)
        except AssertionError as exc:
            check_error = str(exc)
    return CampaignResult(
        exp_id=exp_id, rendered=table.render(),
        wall_s=sum(st.wall_s for st in states),
        events_fired=sum(st.events for st in states),
        events_elided=sum(st.elided for st in states),
        check_error=check_error, n_units=len(states),
        cache_hits=sum(1 for st in states if st.cached),
        retries=retries, unit_stats=_unit_stats(states),
        counters=_sum_counters(states))


#: Stats of the most recent supervised campaign in this process (None
#: until one runs); tools/bench.py reports them in the BENCH json.
_last_stats: Optional[SupervisorStats] = None


def last_campaign_stats() -> Optional[SupervisorStats]:
    return _last_stats


def run_units(exp_ids: Sequence[str], fast: bool = False, check: bool = True,
              jobs: Optional[int] = None, cache=None,
              keep_going: bool = False,
              max_retries: Optional[int] = None,
              unit_timeout: Optional[float] = None,
              max_respawns: Optional[int] = None,
              ) -> Iterator[CampaignResult]:
    """Flat-schedule every unit of every experiment; stream ordered results.

    Yields one :class:`CampaignResult` per experiment in ``exp_ids`` order,
    each as soon as its last unit completes.  ``cache`` is an optional
    :class:`repro.experiments.cache.ResultCache`; hits skip execution
    entirely and misses are stored on completion.

    Execution is supervised: transient failures (worker death, deadline
    expiry, :class:`TransientUnitError`) retry up to ``max_retries``
    (default :class:`RetryPolicy`'s), ``unit_timeout`` overrides every
    derived per-unit deadline, and ``keep_going=True`` converts a
    permanently-failed unit into a ``CampaignResult`` with ``ok=False``
    (its ``failed_units`` carry the per-unit error, attempts and worker
    fate) instead of a raised ``RuntimeError`` — healthy experiments still
    stream and successes still populate the cache.  Ctrl-C tears the pool
    down and raises :class:`CampaignInterrupted`.  Chaos injection
    (``$VSCHED_REPRO_CHAOS``, pooled runs only) is parsed here so a
    malformed spec fails fast in the parent.
    """
    ids = list(exp_ids)
    if jobs is None:
        jobs = default_jobs()
    retry = RetryPolicy() if max_retries is None \
        else RetryPolicy(max_retries=max_retries)
    deadline = DeadlinePolicy.from_env(override_s=unit_timeout)
    chaos = ChaosPlan.from_env()
    plans: List[Tuple[str, List[_UnitState], Callable]] = []
    for exp_id in ids:
        units, assemble = decompose(exp_id, fast)
        plans.append((exp_id, [_UnitState(u) for u in units], assemble))

    if cache is not None:
        from repro.experiments.cache import code_fingerprint, unit_key
        fingerprint = code_fingerprint()
        for _exp_id, states, _assemble in plans:
            for st in states:
                st.key = unit_key(st.unit, fast, fingerprint=fingerprint)
                hit, value = cache.lookup(st.key)
                if hit:
                    st.result = value
                    st.done = st.cached = True

    pending = [st for _e, states, _a in plans
               for st in states if not st.done]
    jobs = min(max(1, jobs), len(pending)) if pending else 1

    global _last_stats
    stats = SupervisorStats()
    _last_stats = stats

    if jobs <= 1 or _in_pool_worker():
        yield from _run_units_serial(plans, fast, check, cache, keep_going,
                                     retry)
        return

    # Longest-first greedy dispatch: the supervisor assigns one unit at a
    # time, so the big scenarios start immediately and the stragglers pack
    # the tail.
    pending.sort(key=lambda st: -st.unit.cost_hint)
    outcomes = supervise([st.unit for st in pending], jobs, fast=fast,
                         retry=retry, deadline=deadline, chaos=chaos,
                         stats=stats, max_respawns=max_respawns)
    next_yield = 0
    try:
        for pos, out in outcomes:
            st = pending[pos]
            st.result, st.error, st.tb = out.result, out.error, out.tb
            st.wall_s, st.events = out.wall_s, out.events
            st.elided = out.elided
            st.counters = out.counters or {}
            st.attempts, st.fate = out.attempts, out.fate
            st.done = True
            if out.error is None and cache is not None and st.key is not None:
                cache.store(st.key, out.result)
            while (next_yield < len(plans)
                   and all(s.done for s in plans[next_yield][1])):
                exp_id, states, assemble = plans[next_yield]
                yield _finish_experiment(exp_id, states, assemble, fast,
                                         check, keep_going)
                next_yield += 1
        # Experiments satisfied purely from cache (no pending units).
        while next_yield < len(plans):
            exp_id, states, assemble = plans[next_yield]
            yield _finish_experiment(exp_id, states, assemble, fast, check,
                                     keep_going)
            next_yield += 1
    finally:
        outcomes.close()


def _run_units_serial(plans, fast: bool, check: bool, cache,
                      keep_going: bool = False,
                      retry: Optional[RetryPolicy] = None,
                      ) -> Iterator[CampaignResult]:
    """In-process scheduler path (jobs<=1): same semantics, no pool.

    Deadlines and chaos need worker processes and do not apply here, but
    the bounded-retry contract does: a unit raising
    :class:`TransientUnitError` is retried with the same deterministic
    backoff as the pooled path.
    """
    from repro.experiments.snapstore import execute_unit, snapshot_counters
    from repro.experiments.supervisor import unit_tag
    from repro.sim.engine import Engine
    retry = retry or RetryPolicy()
    for exp_id, states, assemble in plans:
        for st in states:
            if st.done:
                continue
            fates: List[str] = []
            while True:
                events0 = Engine.total_events_fired
                elided0 = Engine.total_events_elided
                counters0 = Engine.counters()
                snap0 = snapshot_counters()
                started = time.perf_counter()
                st.error = st.tb = None
                retryable = False
                try:
                    st.result = execute_unit(st.unit.func, st.unit.config,
                                             st.unit.prefix, fast)
                except Exception as exc:  # noqa: BLE001 - same as pooled
                    st.error = f"{type(exc).__name__}: {exc}"
                    st.tb = traceback.format_exc()
                    retryable = isinstance(exc, TransientUnitError)
                st.wall_s = time.perf_counter() - started
                st.events = Engine.total_events_fired - events0
                st.elided = Engine.total_events_elided - elided0
                st.counters = {k: v - counters0[k]
                               for k, v in Engine.counters().items()
                               if k not in ("fired", "elided")}
                st.counters.update(
                    {k: round(v - snap0[k], 3)
                     for k, v in snapshot_counters().items()})
                st.attempts += 1
                if st.error is None:
                    st.fate = "ok" if not fates else (
                        "; ".join(fates) + f"; ok on attempt {st.attempts}")
                    break
                fates.append(f"attempt {st.attempts}: {st.error}")
                if not retryable or st.attempts > retry.retries_for(st.unit):
                    st.fate = "; ".join(fates) + (
                        "; gave up" if retryable else " (not retryable)")
                    break
                if _last_stats is not None:
                    _last_stats.retries += 1
                time.sleep(retry.backoff_s(unit_tag(st.unit), st.attempts))
            st.done = True
            if st.error is None and cache is not None and st.key is not None:
                cache.store(st.key, st.result)
        yield _finish_experiment(exp_id, states, assemble, fast, check,
                                 keep_going)


# ----------------------------------------------------------------------
# Campaign-level compatibility wrapper
# ----------------------------------------------------------------------
def run_campaign(exp_ids: Sequence[str], fast: bool = False,
                 check: bool = True, jobs: Optional[int] = None,
                 cache=None, **kwargs) -> Iterator[CampaignResult]:
    """Run experiments (optionally in parallel); yield ordered results.

    Retained API from PR 1; now a thin wrapper over the supervised flat
    scheduler, so a campaign parallelizes *inside* migrated experiments
    instead of only across them.  Tables render byte-identically either
    way.  ``kwargs`` pass through to :func:`run_units` (``keep_going``,
    ``max_retries``, ``unit_timeout``, ``max_respawns``).
    """
    yield from run_units(exp_ids, fast=fast, check=check, jobs=jobs,
                         cache=cache, **kwargs)
