"""Parallel experiment campaigns.

Two fan-out layers, both deterministic:

* :func:`run_scenarios` — run the independent scenario configurations of
  *one* experiment (e.g. fig14's per-benchmark ``run_one`` calls) across
  ``multiprocessing`` workers.  Results come back in input order, so a
  parallel campaign renders byte-identically to a serial one.
* :func:`run_campaign` — run *whole experiments* (``vsched-repro run all
  --jobs N``) across workers, again preserving the paper's presentation
  order.

Determinism contract
--------------------
Every scenario derives **all** of its randomness from an explicit seed
string (see :func:`repro.sim.rng.make_rng`), typically
``f"{exp_id}-{param1}-{param2}"``.  Seeds therefore depend only on the
scenario's identity — never on execution order, worker id, or wall clock —
so a scenario computes the same result in any process.  The simulation
itself is a deterministic event loop (integer-nanosecond time, ``(time,
seq)`` tie-breaking), so serial and parallel campaigns must render
byte-identical tables; ``tests/test_determinism.py`` enforces this.

Worker functions must be module-level (picklable) and return picklable
values (floats / dicts / :class:`~repro.experiments.common.Table`), not
live simulation objects.

Nested pools are not attempted: scenario-level fan-out inside a campaign
worker silently degrades to serial execution (pool workers are daemonic),
so ``run all --jobs N`` parallelizes across experiments only.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import time
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

#: Environment variable consulted for the default worker count.
JOBS_ENV_VAR = "VSCHED_REPRO_JOBS"

_default_jobs: Optional[int] = None


def set_default_jobs(jobs: Optional[int]) -> None:
    """Set the process-wide default for ``run_scenarios(jobs=None)``.

    The CLI calls this with ``--jobs`` so experiments fan their scenario
    sweeps out without threading a parameter through every ``run()``.
    """
    global _default_jobs
    _default_jobs = None if jobs is None else max(1, int(jobs))


def default_jobs() -> int:
    """Resolve the default worker count (explicit > $VSCHED_REPRO_JOBS > 1)."""
    if _default_jobs is not None:
        return _default_jobs
    env = os.environ.get(JOBS_ENV_VAR)
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            pass
    return 1


def _in_pool_worker() -> bool:
    """True when already inside a multiprocessing pool worker."""
    return mp.current_process().daemon


def _pool_context():
    """Prefer fork (cheap, POSIX) and fall back to spawn."""
    methods = mp.get_all_start_methods()
    return mp.get_context("fork" if "fork" in methods else "spawn")


def run_scenarios(func: Callable, configs: Sequence[tuple],
                  jobs: Optional[int] = None) -> List:
    """Run ``func(*config)`` for every config; return results in order.

    ``func`` must be a module-level callable whose randomness comes only
    from seeds encoded in the config (the determinism contract above).
    ``jobs=None`` uses :func:`default_jobs`; ``jobs<=1``, a single config,
    or being already inside a pool worker all run serially in-process —
    the exact code path a plain loop would take.
    """
    configs = list(configs)
    if jobs is None:
        jobs = default_jobs()
    jobs = min(max(1, jobs), len(configs)) if configs else 1
    if jobs <= 1 or _in_pool_worker():
        return [func(*cfg) for cfg in configs]
    with _pool_context().Pool(processes=jobs) as pool:
        # chunksize=1: scenarios are coarse (seconds each); favour balance.
        return pool.starmap(func, configs, chunksize=1)


# ----------------------------------------------------------------------
# Campaign-level fan-out (whole experiments)
# ----------------------------------------------------------------------
@dataclass
class CampaignResult:
    """Outcome of one experiment inside a campaign."""

    exp_id: str
    rendered: str
    wall_s: float
    events_fired: int
    check_error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.check_error is None


def _campaign_worker(exp_id: str, fast: bool, check: bool) -> CampaignResult:
    # Imported here so spawn-based pools do not need the module state of
    # the parent process.
    from repro.experiments.common import check_experiment, run_experiment
    from repro.sim.engine import Engine

    events0 = Engine.total_events_fired
    started = time.time()
    table = run_experiment(exp_id, fast=fast)
    wall = time.time() - started
    events = Engine.total_events_fired - events0
    check_error = None
    if check:
        try:
            check_experiment(exp_id, table)
        except AssertionError as exc:
            check_error = str(exc)
    return CampaignResult(exp_id=exp_id, rendered=table.render(),
                          wall_s=wall, events_fired=events,
                          check_error=check_error)


def run_campaign(exp_ids: Sequence[str], fast: bool = False,
                 check: bool = True, jobs: Optional[int] = None):
    """Run experiments (optionally in parallel); yield ordered results.

    Yields :class:`CampaignResult` in the order of ``exp_ids`` as soon as
    each ordered slot completes, so callers can stream output while later
    experiments are still running.
    """
    ids = list(exp_ids)
    if jobs is None:
        jobs = default_jobs()
    jobs = min(max(1, jobs), len(ids)) if ids else 1
    if jobs <= 1 or _in_pool_worker():
        for exp_id in ids:
            yield _campaign_worker(exp_id, fast, check)
        return
    with _pool_context().Pool(processes=jobs) as pool:
        args = [(exp_id, fast, check) for exp_id in ids]
        # imap preserves submission order while overlapping execution.
        for result in pool.imap(_star_campaign_worker, args):
            yield result


def _star_campaign_worker(args: Tuple[str, bool, bool]) -> CampaignResult:
    return _campaign_worker(*args)
