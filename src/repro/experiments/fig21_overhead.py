"""Figure 21 — vSched overhead when it cannot help.

A 16-vCPU VM hosted dedicatedly on 16 cores in one socket: vCPUs are
always active with symmetric capacity and UMA topology, exactly matching
the default abstraction, so vSched has nothing to fix and any performance
difference is pure overhead (§5.9).  The paper measures 0.7% average
degradation; probing costs slightly slow high-utilization throughput
workloads while latency-sensitive workloads can even *benefit* because the
probers keep vCPUs active and cores at high frequency (DVFS) — we enable
the DVFS model here for exactly that effect.
"""

from __future__ import annotations

from typing import Dict

from repro.cluster import attach_scheduler, build_plain_vm, make_context, run_to_completion
from repro.experiments.common import Table
from repro.hw.speed import SpeedConfig
from repro.sim.engine import SEC
from repro.workloads import build_workload

FULL_THROUGHPUT = ("blackscholes", "bodytrack", "canneal", "dedup",
                   "facesim", "streamcluster", "fft", "ocean_cp", "radix")
FULL_LATENCY = ("img-dnn", "moses", "masstree", "silo", "shore",
                "specjbb", "sphinx", "xapian")
FAST_THROUGHPUT = ("blackscholes", "canneal", "streamcluster")
FAST_LATENCY = ("masstree", "silo", "specjbb")


def _measure(name: str, mode: str, kind: str, scale: float,
             n_requests: int, seed: str) -> float:
    env = build_plain_vm(16, speed=SpeedConfig(dvfs_enabled=True))
    vs = attach_scheduler(env, mode)
    ctx = make_context(env, vs, seed)
    env.engine.run_until(env.engine.now + 6 * SEC)
    wl = build_workload(name, threads=16, scale=scale, n_requests=n_requests)
    run_to_completion(env, [wl], ctx, timeout_ns=600 * SEC)
    if kind == "latency":
        return wl.p95_ns()
    return float(wl.elapsed_ns())


def run(fast: bool = False) -> Table:
    throughput = FAST_THROUGHPUT if fast else FULL_THROUGHPUT
    latency = FAST_LATENCY if fast else FULL_LATENCY
    scale = 0.12 if fast else 0.3
    n_requests = 150 if fast else 400
    table = Table(
        exp_id="fig21",
        title="vSched overhead on a dedicated VM "
              "(performance degradation vs CFS, %; negative = improvement)",
        columns=["benchmark", "kind", "degradation_pct"],
        paper_expectation="~0.7% average degradation; latency workloads can "
                          "even improve (probing keeps cores warm)",
    )
    for kind, names in (("throughput", throughput), ("latency", latency)):
        for name in names:
            base = _measure(name, "cfs", kind, scale, n_requests,
                            f"fig21-{name}-cfs")
            with_vs = _measure(name, "vsched", kind, scale, n_requests,
                               f"fig21-{name}-vs")
            table.add(name, kind, 100.0 * (with_vs - base) / base)
    return table


def check(table: Table) -> None:
    degradations = table.column("degradation_pct")
    mean = sum(degradations) / len(degradations)
    # Small average overhead.
    assert mean < 6.0, (mean, degradations)
    # No individual catastrophic regression.
    assert max(degradations) < 15.0, degradations
