"""Figure 14 — latency reduction with biased vCPU selection (bvs).

Setup (§5.4): an overcommitted 16-vCPU VM on 16 cores in one socket,
configured with asymmetric vCPU latency and symmetric capacity — half of
the vCPUs have 2× lower latency.  Tailbench workloads run with and without
bvs (vProbers enabled in both configurations), each with and without
best-effort (sched_idle) background tasks.  The paper reports a 42% average
reduction in p95 tail latency.
"""

from __future__ import annotations

from typing import List, Optional

from repro.cluster import attach_scheduler, build_plain_vm, make_context, run_to_completion
from repro.experiments.common import Table
from repro.experiments.snapstore import PrefixSpec
from repro.experiments.units import WorkUnit, execute_serial
from repro.sim.engine import MSEC, SEC
from repro.workloads import BestEffortFiller, LatencyWorkload

BENCHMARKS = ("img-dnn", "masstree", "silo", "specjbb", "xapian")

#: Low-latency vCPUs: competitor slice 3 ms; high-latency: 6 ms.
LOW_SLICE_NS = 3 * MSEC
HIGH_SLICE_NS = 6 * MSEC

NO_IVH_RWC = {"enable_ivh": False, "enable_rwc": False}
PROBERS_ONLY = {"enable_ivh": False, "enable_rwc": False, "enable_bvs": False}


def build_bvs_env():
    """16 vCPUs, symmetric capacity, asymmetric latency (half 2x lower)."""
    env = build_plain_vm(16, wakeup_gran_ns=None)
    for i in range(16):
        slice_ns = LOW_SLICE_NS if i < 8 else HIGH_SLICE_NS
        env.machine.set_slice(i, slice_ns)
        env.machine.add_host_task(f"stress{i}", pinned=(i,))
    return env


def _prefix(bvs: bool, overrides_extra: Optional[dict] = None):
    """Prefix builder: the warmed-up world shared by all five benchmarks.

    The benchmark, best-effort filler, and workload RNG only enter the
    picture *after* the 6 s prober warm-up, so the ten scenarios on each
    side of the bvs switch all diverge from the same frozen world.  (The
    workload context is created per scenario; constructing it draws
    nothing, so building it after the warm-up is stream-identical to
    building it before.)
    """
    env = build_bvs_env()
    overrides = dict(NO_IVH_RWC if bvs else PROBERS_ONLY)
    if overrides_extra:
        overrides.update(overrides_extra)
    vs = attach_scheduler(env, "vsched", overrides=overrides)
    env.engine.run_until(env.engine.now + 6 * SEC)  # prober warm-up
    return {"engine": env.engine, "env": env, "vs": vs}


def _measure(roots: dict, bench: str, bvs: bool, best_effort: bool,
             n_requests: int) -> LatencyWorkload:
    """Diverge body: run one tailbench config from the warm world."""
    env, vs = roots["env"], roots["vs"]
    ctx = make_context(env, vs, seed=f"fig14-{bench}-{bvs}-{best_effort}")
    wl = LatencyWorkload(bench, workers=6, n_requests=n_requests)
    workloads = [wl]
    if best_effort:
        workloads.append(BestEffortFiller())
    run_to_completion(env, workloads, ctx, wait_for=[wl],
                      timeout_ns=240 * SEC)
    return wl


def run_one(bench: str, bvs: bool, best_effort: bool, n_requests: int,
            overrides_extra: Optional[dict] = None) -> LatencyWorkload:
    """Cold one-shot runner (tab3 and direct callers)."""
    return _measure(_prefix(bvs, overrides_extra), bench, bvs, best_effort,
                    n_requests)


def _scenario_p95(roots: dict, bench: str, bvs: bool, best_effort: bool,
                  n_requests: int) -> float:
    """Work-unit body: one config -> p95 (picklable)."""
    return _measure(roots, bench, bvs, best_effort, n_requests).p95_ns()


def scenarios(fast: bool) -> List[WorkUnit]:
    n_requests = 150 if fast else 400
    cost = 0.75 if fast else 2.0
    prefixes = {bvs: PrefixSpec(key=f"fig14-{'bvs' if bvs else 'nobvs'}",
                                func=_prefix, config=(bvs,))
                for bvs in (False, True)}
    return [WorkUnit(exp_id="fig14",
                     label=f"{bench}-{'bvs' if bvs else 'nobvs'}-"
                           f"{'be' if best_effort else 'nobe'}",
                     func=_scenario_p95,
                     config=(bench, bvs, best_effort, n_requests),
                     cost_hint=cost,
                     seed=f"fig14-{bench}-{bvs}-{best_effort}",
                     prefix=prefixes[bvs])
            for best_effort in (False, True)
            for bench in BENCHMARKS
            for bvs in (False, True)]


def assemble(fast: bool, results: List[float]) -> Table:
    table = Table(
        exp_id="fig14",
        title="bvs p95 tail latency (normalized to bvs disabled; lower is "
              "better)",
        columns=["scenario", "benchmark", "no_bvs_ms", "bvs_ms", "bvs_pct"],
        paper_expectation="bvs reduces p95 tail latency by 42% on average",
    )
    it = iter(results)
    for best_effort in (False, True):
        scenario = "with best-effort" if best_effort else "no best-effort"
        for bench in BENCHMARKS:
            base, with_bvs = next(it), next(it)
            table.add(scenario, bench, base / MSEC, with_bvs / MSEC,
                      100.0 * with_bvs / base)
    return table


def run(fast: bool = False) -> Table:
    return assemble(fast, execute_serial(scenarios(fast), fast))


def check(table: Table) -> None:
    pcts = table.column("bvs_pct")
    mean_pct = sum(pcts) / len(pcts)
    # bvs helps on average, substantially.
    assert mean_pct < 85.0, (mean_pct, pcts)
    # No catastrophic regression on any benchmark.
    assert max(pcts) < 125.0, pcts
    # At least one benchmark sees a large (>30%) reduction.
    assert min(pcts) < 70.0, pcts
