"""Figure 18 — overall improvement on the resource-constrained VM (rcvm).

All catalogued workloads run under CFS, enhanced CFS (vProbers + rwc) and
full vSched on rcvm (§5.6).  The paper reports, on average vs CFS:
enhanced CFS 1.4× lower latency / +59% throughput; vSched 1.6× lower
latency / +69% throughput.
"""

from __future__ import annotations

from typing import List

from repro.experiments.common import Table
from repro.experiments.overall import (
    check_overall,
    geometric_means,
    overall_assemble,
    overall_scenarios,
)
from repro.experiments.units import WorkUnit, execute_serial

TITLE = "rcvm: normalized performance vs CFS (higher is better)"


def scenarios(fast: bool) -> List[WorkUnit]:
    return overall_scenarios("fig18", vm="rcvm", threads=12, fast=fast)


def assemble(fast: bool, results: List[float]) -> Table:
    table = overall_assemble("fig18", TITLE, fast, results)
    means = geometric_means(table)
    table.notes.append(
        "geomean throughput: enhanced %.0f%%, vSched %.0f%% (paper: +59%%/+69%%)"
        % (means["throughput"]["enhanced"], means["throughput"]["vsched"]))
    table.notes.append(
        "geomean latency perf: enhanced %.0f%%, vSched %.0f%% (paper: 1.4x/1.6x)"
        % (means["latency"]["enhanced"], means["latency"]["vsched"]))
    return table


def run(fast: bool = False) -> Table:
    return assemble(fast, execute_serial(scenarios(fast)))


def check(table: Table) -> None:
    check_overall(table, min_enhanced=115.0, min_vsched=120.0,
                  latency_min_vsched=115.0)
