"""Table 3 — Masstree p95 latency breakdown (queue / service / end-to-end).

Same setup as Figure 14.  Shows that bvs's gains come from the queue-time
(runqueue latency) component, and that considering the vCPU *state* in bvs
(prioritizing recently-active sched_idle vCPUs) matters when best-effort
tasks occupy the vCPUs: the paper's "bvs (no state check)" column sits
between no-bvs and full bvs.
"""

from __future__ import annotations

from repro.core.bvs import BiasedVCpuSelection
from repro.experiments.common import Table
from repro.experiments.fig14_bvs import run_one
from repro.guest.kernel import VCpuHostState
from repro.sim.engine import MSEC


class _NoStateCheckBvs(BiasedVCpuSelection):
    """bvs variant that ignores the probed vCPU state (Table 3 strawman):
    a sched_idle vCPU qualifies on latency alone."""

    def __call__(self, task, waker_cpu):
        now = self.kernel.now()
        if task.util(now) > self.SMALL_TASK_UTIL or task.is_idle_policy:
            return None
        store = self.module.store
        median_cap = store.median_capacity()
        median_lat = store.median_latency()
        n = len(self.kernel.cpus)
        self._rotor += 1
        start = self._rotor % n
        for off in range(n):
            c = (start + off) % n
            if not task.may_run_on(c):
                continue
            entry = store[c]
            if entry.capacity < self.CAPACITY_TOLERANCE * median_cap:
                continue
            cpu = self.kernel.cpus[c]
            if cpu.rq.is_idle() or cpu.rq.sched_idle_only():
                if entry.latency_ns <= 1.05 * median_lat:
                    self.hits += 1
                    return c
        self.fallbacks += 1
        return None


def _breakdown(wl) -> tuple:
    return (wl.p95_ns("queue") / MSEC, wl.p95_ns("service") / MSEC,
            wl.p95_ns("e2e") / MSEC)


def run(fast: bool = False) -> Table:
    n_requests = 200 if fast else 500
    table = Table(
        exp_id="tab3",
        title="Masstree p95 latency breakdown (ms)",
        columns=["scenario", "config", "queue_ms", "service_ms", "e2e_ms"],
        paper_expectation="bvs cuts queue time 44-70%; ignoring the vCPU "
                          "state forfeits part of the gain under best-effort "
                          "tasks",
    )
    for best_effort in (False, True):
        scenario = "with best-effort" if best_effort else "no best-effort"
        wl = run_one("masstree", False, best_effort, n_requests)
        table.add(scenario, "no bvs", *_breakdown(wl))
        if best_effort:
            wl = run_one("masstree", True, best_effort, n_requests,
                         overrides_extra=None)
            # Swap in the no-state-check variant by monkey-free injection:
            # run again with the strawman hook.
            wl_ns = _run_no_state(best_effort, n_requests)
            table.add(scenario, "bvs (no state check)", *_breakdown(wl_ns))
            table.add(scenario, "bvs", *_breakdown(wl))
        else:
            wl = run_one("masstree", True, best_effort, n_requests)
            table.add(scenario, "bvs", *_breakdown(wl))
    return table


def _run_no_state(best_effort: bool, n_requests: int):
    from repro.cluster import make_context, run_to_completion
    from repro.cluster.scenarios import attach_scheduler
    from repro.experiments.fig14_bvs import NO_IVH_RWC, build_bvs_env
    from repro.sim.engine import SEC
    from repro.workloads import BestEffortFiller, LatencyWorkload

    env = build_bvs_env()
    vs = attach_scheduler(env, "vsched", overrides=NO_IVH_RWC)
    # Replace the installed bvs hook with the state-blind variant.
    strawman = _NoStateCheckBvs(env.kernel, vs.module)
    env.kernel.select_rq_hook = strawman
    ctx = make_context(env, vs, seed=f"tab3-nostate-{best_effort}")
    env.engine.run_until(env.engine.now + 6 * SEC)
    wl = LatencyWorkload("masstree", workers=6, n_requests=n_requests)
    workloads = [wl]
    if best_effort:
        workloads.append(BestEffortFiller())
    run_to_completion(env, workloads, ctx, wait_for=[wl],
                      timeout_ns=240 * SEC)
    return wl


def check(table: Table) -> None:
    rows = {(r[0], r[1]): r for r in table.rows}
    for scenario in ("no best-effort", "with best-effort"):
        base = rows[(scenario, "no bvs")]
        with_bvs = rows[(scenario, "bvs")]
        # End-to-end tail improves substantially with bvs.
        assert with_bvs[4] < base[4] * 0.85, (scenario, base[4], with_bvs[4])
    nostate = rows[("with best-effort", "bvs (no state check)")]
    full = rows[("with best-effort", "bvs")]
    base = rows[("with best-effort", "no bvs")]
    # The state check contributes: full bvs is at least as good end-to-end
    # and strictly better on the service-stretch component.
    assert full[4] <= nostate[4] * 1.05, (full[4], nostate[4])
    assert full[3] <= nostate[3] * 1.02, (full[3], nostate[3])
    assert nostate[4] < base[4] * 1.05, (nostate[4], base[4])
