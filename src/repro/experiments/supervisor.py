"""Fault-tolerant supervision of the flat work-unit pool.

PR 2's scheduler fed one shared task queue and trusted every worker to
live forever: a worker killed mid-unit (OOM, SIGKILL) hung the campaign, a
wedged simulation stalled it with no deadline, and any failure aborted the
whole run.  This module replaces that fire-and-forget feed with a
**supervision loop** (docs/INTERNALS.md §10):

* **ownership** — the parent assigns exactly one unit at a time to each
  worker through a *per-worker* task pipe, so it always knows which unit
  a worker owns (no announce race, and a killed worker can never corrupt
  a pipe another worker reads);
* **per-worker result pipes** — workers report results on private pipes
  multiplexed with ``multiprocessing.connection.wait``, never a shared
  queue.  A shared queue serializes writers through one inter-process
  lock, and a worker SIGKILLed (or chaos-crashed) between finishing its
  pipe write and releasing that lock would wedge every sibling writer
  forever; with one pipe per worker a dying writer can only corrupt its
  own pipe, which the parent discards when it reaps the corpse;
* **crash recovery** — `Process.is_alive()` + exitcode sweeps detect dead
  workers; the in-flight unit is requeued and a replacement worker
  spawned, up to a respawn budget;
* **per-unit deadlines** — `timeout_s = clamp(cost_hint × multiplier,
  floor, ceiling)` (or the unit's / CLI's explicit override); on expiry
  the owning worker is SIGKILLed and the unit requeued or failed;
* **bounded retry with deterministic backoff** — transient failures
  (worker death, deadline expiry, `TransientUnitError`) retry up to the
  budget; backoff jitter derives from the unit's identity via `make_rng`,
  never wall clock, so retried units recompute identical results and the
  determinism contract survives chaos;
* **unit fates** — every outcome carries its attempt count and a fate
  trail ("attempt 1: worker died (exitcode -9); …") for the end-of-run
  failure report.

Supervision state machine per unit::

    dispatched -> running -> done
                        \\-> retrying -> dispatched   (transient, budget left)
                        \\-> failed                   (deterministic / budget spent)

Wall clock appears only in *scheduling* decisions (deadlines, backoff
sleeps); results remain pure functions of ``(code, config, seed)``.
"""

from __future__ import annotations

import heapq  # vschedlint: disable=heap-encapsulation -- host-time retry backoff queue, not the engine event store
import multiprocessing as mp
import multiprocessing.connection as mp_connection
import os
import pickle
import time
import traceback
from collections import deque
from dataclasses import asdict, dataclass
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.experiments.chaos import ChaosPlan
from repro.experiments.units import TransientUnitError, WorkUnit

#: Environment variable overriding the derived per-unit deadline (seconds).
UNIT_TIMEOUT_ENV_VAR = "VSCHED_REPRO_UNIT_TIMEOUT"

#: Full (non-fast) scenarios run roughly this much longer than their
#: fast-mode ``cost_hint`` seconds; deadlines scale accordingly.
FULL_MODE_SCALE = 60.0


class CampaignInterrupted(KeyboardInterrupt):
    """Ctrl-C during a supervised campaign, after worker cleanup.

    Carries how far the campaign got so the CLI can print
    ``interrupted after N/M units (cached results preserved)``.
    """

    def __init__(self, done: int, total: int):
        super().__init__(f"interrupted after {done}/{total} units")
        self.done = done
        self.total = total


@dataclass(frozen=True)
class DeadlinePolicy:
    """Derives each unit's wall-clock deadline.

    Precedence: ``override_s`` (CLI ``--unit-timeout`` /
    ``$VSCHED_REPRO_UNIT_TIMEOUT``) > ``unit.timeout_s`` >
    ``clamp(cost_hint × multiplier, floor_s, ceil_s)``.  Full-mode
    scenarios scale the derived (not overridden) value by
    :data:`FULL_MODE_SCALE` because ``cost_hint`` is in fast-mode seconds.
    """

    multiplier: float = 30.0
    floor_s: float = 30.0
    ceil_s: float = 1800.0
    override_s: Optional[float] = None

    @classmethod
    def from_env(cls, override_s: Optional[float] = None,
                 **kwargs) -> "DeadlinePolicy":
        if override_s is None:
            env = os.environ.get(UNIT_TIMEOUT_ENV_VAR)
            if env:
                try:
                    override_s = float(env)
                except ValueError:
                    raise ValueError(
                        f"malformed {UNIT_TIMEOUT_ENV_VAR}={env!r} "
                        f"(expected seconds)")
        return cls(override_s=override_s, **kwargs)

    def timeout_for(self, unit: WorkUnit, fast: bool) -> float:
        if self.override_s is not None:
            return self.override_s
        if unit.timeout_s is not None:
            return unit.timeout_s
        scale = 1.0 if fast else FULL_MODE_SCALE
        derived = unit.cost_hint * self.multiplier * scale
        return min(max(derived, self.floor_s), self.ceil_s * scale)


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry with deterministic exponential backoff."""

    max_retries: int = 1
    backoff_base_s: float = 0.1
    backoff_cap_s: float = 5.0

    def retries_for(self, unit: WorkUnit) -> int:
        if not unit.retryable:
            return 0
        if unit.max_retries is not None:
            return max(0, unit.max_retries)
        return max(0, self.max_retries)

    def backoff_s(self, tag: str, attempt: int) -> float:
        """Backoff before re-dispatching attempt ``attempt`` (1-based).

        Exponential in the attempt number with jitter in [0.5, 1.5)
        drawn from ``make_rng`` on the unit tag — deterministic, never
        wall clock, so chaos runs reproduce exactly.
        """
        from repro.sim.rng import make_rng
        raw = self.backoff_base_s * (2.0 ** max(0, attempt - 1))
        jitter = 0.5 + make_rng(f"backoff|{tag}|attempt{attempt}").random()
        return min(self.backoff_cap_s, raw * jitter)


@dataclass
class SupervisorStats:
    """Counters for one supervised campaign (reported by tools/bench.py)."""

    retries: int = 0    # re-dispatches after any transient failure
    requeues: int = 0   # in-flight units reclaimed from dead/killed workers
    timeouts: int = 0   # per-unit deadlines that expired
    kills: int = 0      # workers SIGKILLed by the supervisor (deadlines)
    crashes: int = 0    # workers that died on their own (crash/OOM/SIGKILL)
    respawns: int = 0   # replacement workers spawned

    def as_dict(self) -> Dict[str, int]:
        return asdict(self)


@dataclass
class UnitOutcome:
    """Terminal state of one unit after supervision."""

    result: Any = None
    error: Optional[str] = None
    tb: Optional[str] = None
    wall_s: float = 0.0
    events: int = 0
    elided: int = 0
    #: Engine counter deltas over the unit (pushes/cancels/dead_drops/
    #: cascades — see Engine.counters); None for units that never ran.
    counters: Optional[Dict[str, int]] = None
    attempts: int = 1
    fate: str = "ok"


def unit_tag(unit: WorkUnit) -> str:
    """Stable identity string seeding chaos and backoff for one unit."""
    return f"{unit.exp_id}/{unit.label}|{unit.seed}"


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------
def _worker_main(worker_id: int, task_r, result_w,
                 chaos: Optional[ChaosPlan], fast: bool = False) -> None:
    """Worker loop: serve one unit per parent assignment until None/EOF.

    Pins the in-worker jobs default to 1 (inherited module state could
    otherwise make a legacy ``run_scenarios`` call inside a unit open a
    nested pool).  Chaos, when configured, is injected before the unit
    body runs, seeded on ``(tag, attempt)``.  Both pipes are private to
    this worker: the parent is the only writer of ``task_r`` and the only
    reader of ``result_w``, so neither needs a lock.

    Units carrying a snapshot prefix run through this worker's own
    in-process :class:`~repro.experiments.snapstore.SnapshotStore` — the
    first such unit builds and freezes the prefix world, later ones fork
    it.  The store's counter deltas ride back inside the engine-counter
    dict so the parent can aggregate hit/miss/saved-seconds per
    experiment.
    """
    from repro.experiments.parallel import set_default_jobs
    set_default_jobs(1)
    from repro.experiments.snapstore import execute_unit, snapshot_counters
    from repro.sim.engine import Engine
    while True:
        try:
            item = task_r.recv()
        except (EOFError, OSError):
            break  # parent closed its end (teardown) or died
        if item is None:
            break
        idx, attempt, tag, func, config, prefix = item
        events0 = Engine.total_events_fired
        elided0 = Engine.total_events_elided
        counters0 = Engine.counters()
        snap0 = snapshot_counters()
        started = time.perf_counter()
        result: Any = None
        error = tb = None
        retryable = False
        try:
            if chaos is not None:
                chaos.maybe_inject(tag, attempt)
            result = execute_unit(func, config, prefix, fast)
            pickle.dumps(result)  # unpicklable? fail with a real traceback
        except BaseException as exc:  # noqa: BLE001 - reported to the parent
            result = None
            error = f"{type(exc).__name__}: {exc}"
            tb = traceback.format_exc()
            retryable = isinstance(exc, TransientUnitError)
        counters = {k: v - counters0[k]
                    for k, v in Engine.counters().items()
                    if k not in ("fired", "elided")}
        counters.update({k: round(v - snap0[k], 3)
                         for k, v in snapshot_counters().items()})
        try:
            result_w.send((worker_id, idx, attempt, result, error, tb,
                           retryable, time.perf_counter() - started,
                           Engine.total_events_fired - events0,
                           Engine.total_events_elided - elided0,
                           counters))
        except (BrokenPipeError, OSError):
            break  # parent is gone; nothing left to report to


@dataclass
class _Worker:
    """Parent-side record of one worker process and its assignment."""

    proc: mp.Process
    task_w: Any    # parent's write end of the worker's private task pipe
    result_r: Any  # parent's read end of the worker's private result pipe
    current: Optional[Tuple[int, int, float, float]] = None  # idx, attempt,
    #                                                deadline_ts, timeout_s

    def close_pipes(self) -> None:
        for conn in (self.task_w, self.result_r):
            try:
                conn.close()
            except OSError:
                pass


# ----------------------------------------------------------------------
# Parent side: the supervision loop
# ----------------------------------------------------------------------
def supervise(units: Sequence[WorkUnit], jobs: int, *, fast: bool = False,
              retry: Optional[RetryPolicy] = None,
              deadline: Optional[DeadlinePolicy] = None,
              chaos: Optional[ChaosPlan] = None,
              stats: Optional[SupervisorStats] = None,
              max_respawns: Optional[int] = None,
              ) -> Iterator[Tuple[int, UnitOutcome]]:
    """Run ``units`` on ``jobs`` supervised workers; yield ``(idx, outcome)``.

    Units are dispatched in sequence order (callers pre-sort longest
    first).  Outcomes stream in completion order; every unit gets exactly
    one terminal outcome, even under worker crashes, hangs, and injected
    chaos — the loop converges because each unit's attempts are bounded
    and the respawn budget is finite.  On Ctrl-C the pool is torn down and
    :class:`CampaignInterrupted` raised.
    """
    from repro.experiments.parallel import _pool_context
    retry = retry or RetryPolicy()
    deadline = deadline or DeadlinePolicy.from_env()
    stats = stats if stats is not None else SupervisorStats()
    if max_respawns is None:
        max_respawns = max(16, 8 * jobs)

    n = len(units)
    ctx = _pool_context()
    ready = deque(range(n))
    delayed: List[Tuple[float, int, int]] = []  # (ready_ts, seq, idx)
    done = [False] * n
    attempts_made = [0] * n   # completed (failed or successful) attempts
    history: List[List[str]] = [[] for _ in range(n)]
    resolved = 0
    respawn_budget = max_respawns
    seq = 0  # tiebreaker for the delayed heap

    def spawn(wid: int) -> _Worker:
        task_r, task_w = ctx.Pipe(duplex=False)
        result_r, result_w = ctx.Pipe(duplex=False)
        proc = ctx.Process(target=_worker_main,
                           args=(wid, task_r, result_w, chaos, fast),
                           daemon=False, name=f"vsched-unit-{wid}")
        proc.start()
        # Close the child's ends in the parent so a dead child shows as
        # EOF on result_r instead of a silent forever-block.
        task_r.close()
        result_w.close()
        return _Worker(proc=proc, task_w=task_w, result_r=result_r)

    workers: Dict[int, _Worker] = {i: spawn(i) for i in range(jobs)}
    next_wid = jobs

    def settle(idx: int, reason: str) -> Optional[UnitOutcome]:
        """A transient failure of ``idx``: schedule a retry or fail it."""
        nonlocal seq
        if done[idx]:
            return None
        attempts_made[idx] += 1
        history[idx].append(f"attempt {attempts_made[idx]}: {reason}")
        if attempts_made[idx] <= retry.retries_for(units[idx]):
            stats.retries += 1
            backoff = retry.backoff_s(unit_tag(units[idx]),
                                      attempts_made[idx])
            heapq.heappush(delayed, (time.monotonic() + backoff, seq, idx))
            seq += 1
            return None
        done[idx] = True
        return UnitOutcome(error=reason, attempts=attempts_made[idx],
                           fate="; ".join(history[idx]) + "; gave up")

    try:
        while resolved < n:
            now = time.monotonic()
            while delayed and delayed[0][0] <= now:
                _ts, _seq, idx = heapq.heappop(delayed)
                if not done[idx]:
                    ready.append(idx)

            # Assign ready units to idle live workers (one unit at a time,
            # so ownership is known parent-side at dispatch).
            for wid, w in workers.items():
                if not ready:
                    break
                if w.current is None and w.proc.is_alive():
                    idx = ready.popleft()
                    if done[idx]:
                        continue
                    unit = units[idx]
                    timeout_s = deadline.timeout_for(unit, fast)
                    try:
                        w.task_w.send((idx, attempts_made[idx],
                                       unit_tag(unit), unit.func,
                                       unit.config, unit.prefix))
                    except (BrokenPipeError, OSError):
                        # Worker died between is_alive() and send(); the
                        # liveness sweep below reclaims the unit.
                        pass
                    w.current = (idx, attempts_made[idx],
                                 now + timeout_s, timeout_s)

            # Wait for results, but wake for the nearest deadline/backoff.
            wake = [0.25]
            wake += [w.current[2] - now for w in workers.values()
                     if w.current is not None]
            if delayed:
                wake.append(delayed[0][0] - now)
            emit: List[Tuple[int, UnitOutcome]] = []
            readers = {w.result_r: wid for wid, w in workers.items()}
            msgs = []
            for conn in mp_connection.wait(list(readers),
                                           timeout=max(0.01, min(wake))):
                try:
                    msgs.append(conn.recv())
                except (EOFError, OSError, pickle.UnpicklingError):
                    # Worker died (possibly mid-write, leaving a partial
                    # message on its private pipe).  Only this worker's
                    # pipe is affected; the liveness sweep reclaims its
                    # unit and the pipe is closed with the corpse.
                    pass
            for msg in msgs:
                wid, idx, attempt, result, error, tb, retryable, wall, \
                    events, elided, counters = msg
                w = workers.get(wid)
                if w is not None and w.current is not None \
                        and w.current[0] == idx:
                    w.current = None
                if not done[idx]:
                    if error is None:
                        done[idx] = True
                        resolved += 1
                        attempts_made[idx] += 1
                        fate = "ok" if not history[idx] else (
                            "; ".join(history[idx])
                            + f"; ok on attempt {attempts_made[idx]}")
                        yield idx, UnitOutcome(
                            result=result, wall_s=wall, events=events,
                            elided=elided, counters=counters,
                            attempts=attempts_made[idx], fate=fate)
                    elif retryable:
                        out = settle(idx, error)
                        if out is not None:
                            out.tb = tb
                            resolved += 1
                            yield idx, out
                    else:
                        done[idx] = True
                        resolved += 1
                        attempts_made[idx] += 1
                        history[idx].append(
                            f"attempt {attempts_made[idx]}: {error}")
                        yield idx, UnitOutcome(
                            error=error, tb=tb, wall_s=wall, events=events,
                            elided=elided, counters=counters,
                            attempts=attempts_made[idx],
                            fate="; ".join(history[idx])
                                 + " (not retryable)")

            now = time.monotonic()
            # Deadline sweep: kill workers whose unit overran its budget.
            for wid, w in list(workers.items()):
                if w.current is None or now <= w.current[2]:
                    continue
                idx, _attempt, _ts, timeout_s = w.current
                stats.timeouts += 1
                stats.kills += 1
                w.proc.kill()
                w.proc.join()
                w.close_pipes()
                del workers[wid]
                if not done[idx]:
                    stats.requeues += 1
                out = settle(
                    idx, f"deadline {timeout_s:.1f}s exceeded "
                         f"(worker killed)")
                if out is not None:
                    resolved += 1
                    emit.append((idx, out))

            # Liveness sweep: reclaim units from workers that died alone.
            for wid, w in list(workers.items()):
                if w.proc.is_alive():
                    continue
                stats.crashes += 1
                w.close_pipes()
                del workers[wid]
                if w.current is not None:
                    idx = w.current[0]
                    if not done[idx]:
                        stats.requeues += 1
                    out = settle(
                        idx, f"worker died (exitcode {w.proc.exitcode})")
                    if out is not None:
                        resolved += 1
                        emit.append((idx, out))

            for idx, out in emit:
                yield idx, out

            # Respawn replacements while work remains and budget allows.
            while (len(workers) < jobs and respawn_budget > 0
                   and resolved < n):
                respawn_budget -= 1
                stats.respawns += 1
                workers[next_wid] = spawn(next_wid)
                next_wid += 1

            # Budget spent and nobody left alive: fail everything pending
            # rather than spinning forever.
            if resolved < n and not workers:
                for idx in range(n):
                    if done[idx]:
                        continue
                    done[idx] = True
                    resolved += 1
                    attempts_made[idx] += 1
                    history[idx].append(
                        "worker pool exhausted "
                        f"(respawn budget {max_respawns} spent)")
                    yield idx, UnitOutcome(
                        error="worker pool exhausted",
                        attempts=attempts_made[idx],
                        fate="; ".join(history[idx]))
    except KeyboardInterrupt:
        raise CampaignInterrupted(resolved, n)
    finally:
        for w in workers.values():
            if w.proc.is_alive():
                w.proc.terminate()
        for w in workers.values():
            w.proc.join(timeout=2.0)
            if w.proc.is_alive():
                w.proc.kill()
                w.proc.join(timeout=1.0)
            # Plain fd closes — pipes have no feeder threads, so teardown
            # cannot hang on a queue flushing to a dead reader.
            w.close_pipes()
