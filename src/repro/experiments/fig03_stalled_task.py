"""Figure 3 — the stalled running task, and proactive migration.

Setup (§2.3): a 4-vCPU VM where each vCPU is active 5 ms then inactive
5 ms (bandwidth control, phases staggered across vCPUs).  A single
CPU-intensive thread runs in two modes: *default* (scheduler decides; the
thread stalls ~50% of the time) and *migration* (the thread circularly
migrates itself among idle vCPUs every 4 ms, staying ahead of the inactive
periods).  The paper's KernelShark timeline shows vCPU utilization doubling
with proactive migration.
"""

from __future__ import annotations

from repro.cluster import attach_scheduler, build_plain_vm, make_context, run_to_completion
from repro.experiments.common import Table
from repro.sim.engine import MSEC, SEC
from repro.sim.timeline import render_task_timeline
from repro.sim.tracing import Tracer
from repro.workloads import SelfMigratingJob


def _one_run(migrate: bool, work_ns: int) -> dict:
    tracer = Tracer(enabled=True, categories={"guest.run", "guest.idle",
                                              "host.run", "host.stop"})
    env = build_plain_vm(4, wakeup_gran_ns=None, tracer=tracer)
    for i in range(4):
        env.machine.set_bandwidth(env.vm.vcpu(i), quota_ns=5 * MSEC,
                                  period_ns=10 * MSEC,
                                  phase_ns=int(i * 2.5 * MSEC))
    vs = attach_scheduler(env, "cfs")
    ctx = make_context(env, vs, seed=f"fig3-{migrate}")
    wl = SelfMigratingJob(work_ns=work_ns,
                          migrate_every_ns=4 * MSEC if migrate else None)
    run_to_completion(env, [wl], ctx, timeout_ns=120 * SEC)
    elapsed = wl.elapsed_ns()
    task = wl.tasks[0]
    t0 = wl.started_at + 20 * MSEC
    timeline = render_task_timeline(tracer, task.name, 4, t0, t0 + 40 * MSEC)
    return {
        "elapsed_ms": elapsed / MSEC,
        "utilization_pct": 100.0 * work_ns / elapsed,
        "migrations": task.stats.migrations,
        "timeline": timeline,
    }


def run(fast: bool = False) -> Table:
    work_ns = (500 if fast else 2000) * MSEC
    table = Table(
        exp_id="fig3",
        title="Stalled running task: default vs proactive self-migration",
        columns=["mode", "elapsed_ms", "vcpu_utilization_pct", "migrations"],
        paper_expectation="default mode stalls ~50% of the time; proactive "
                          "migration roughly doubles vCPU utilization",
    )
    for mode, migrate in (("default", False), ("migration", True)):
        r = _one_run(migrate, work_ns)
        table.add(mode, r["elapsed_ms"], r["utilization_pct"],
                  r["migrations"])
        table.notes.append(f"{mode} mode timeline:\n" + r["timeline"])
    return table


def check(table: Table) -> None:
    default_util = table.cell("default", "vcpu_utilization_pct")
    migration_util = table.cell("migration", "vcpu_utilization_pct")
    assert default_util < 62.0, default_util
    assert migration_util > 1.6 * default_util, (default_util, migration_util)
    assert table.cell("migration", "migrations") > 10
