"""Experiment harness regenerating every table and figure of the paper."""

from repro.experiments.common import (
    EXPERIMENTS,
    Table,
    check_experiment,
    load_experiment,
    run_experiment,
)

__all__ = ["Table", "EXPERIMENTS", "run_experiment", "check_experiment",
           "load_experiment"]
