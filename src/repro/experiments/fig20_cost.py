"""Figure 20 — vSched cost: total cycles and cycles-per-second (CPS).

Selected workloads from the overall evaluation rerun on rcvm and hpvm,
collecting the cycles the VM consumed during workload execution and the
CPS (§5.9).  The paper finds throughput-oriented workloads consume only
~5.5% more cycles under vSched while achieving 38% higher CPS (better
vCPU utilization); latency-sensitive workloads consume more extra cycles
(+50.5%) but their CPS baseline is ~8× lower, so the absolute cost stays
small while tail latency plummets.
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.cluster import attach_scheduler, build_hpvm, build_rcvm, make_context, run_to_completion
from repro.experiments.common import Table
from repro.metrics import CycleMeter
from repro.sim.engine import SEC
from repro.workloads import build_workload

THROUGHPUT = ("bodytrack", "swaptions", "lu_cb")
LATENCY = ("img-dnn", "specjbb", "sphinx")


def _measure(builder: Callable, name: str, mode: str, threads: int,
             scale: float, n_requests: int, seed: str) -> Dict[str, float]:
    env = builder()
    vs = attach_scheduler(env, mode)
    ctx = make_context(env, vs, seed)
    env.engine.run_until(env.engine.now + 6 * SEC)
    meter = CycleMeter(env)
    meter.start()
    wl = build_workload(name, threads=threads, scale=scale,
                        n_requests=n_requests)
    run_to_completion(env, [wl], ctx, timeout_ns=900 * SEC)
    sample = meter.sample()
    return {"cycles": float(sample.cycles), "cps": sample.cps}


def run(fast: bool = False) -> Table:
    scale = 0.12 if fast else 0.3
    n_requests = 120 if fast else 400
    vms = [("hpvm", build_hpvm, 32)]
    if not fast:
        vms.append(("rcvm", build_rcvm, 12))
    table = Table(
        exp_id="fig20",
        title="vSched cost: VM cycles and cycles/second vs CFS",
        columns=["vm", "benchmark", "kind", "cycles_ratio_pct",
                 "cps_ratio_pct"],
        paper_expectation="throughput workloads: ~5% more cycles, much "
                          "higher CPS; latency workloads: larger relative "
                          "cycle increase from a ~8x lower CPS baseline",
    )
    for vm_name, builder, threads in vms:
        for kind, names in (("throughput", THROUGHPUT), ("latency", LATENCY)):
            for name in names:
                base = _measure(builder, name, "cfs", threads, scale,
                                n_requests, f"fig20-{vm_name}-{name}-cfs")
                vs = _measure(builder, name, "vsched", threads, scale,
                              n_requests, f"fig20-{vm_name}-{name}-vs")
                table.add(vm_name, name, kind,
                          100.0 * vs["cycles"] / max(1.0, base["cycles"]),
                          100.0 * vs["cps"] / max(1e-9, base["cps"]))
    return table


def check(table: Table) -> None:
    thr = [r for r in table.rows if r[2] == "throughput"]
    lat = [r for r in table.rows if r[2] == "latency"]
    # Throughput: CPS improves while the cycle increase stays moderate.
    thr_cps = sum(r[4] for r in thr) / len(thr)
    thr_cyc = sum(r[3] for r in thr) / len(thr)
    assert thr_cps > 100.0, thr
    assert thr_cyc < 140.0, thr
    # Latency workloads: vSched raises utilization (CPS) noticeably; the
    # relative cycle increase may be larger than for throughput workloads.
    lat_cps = sum(r[4] for r in lat) / len(lat)
    assert lat_cps > 100.0, lat
    # CPS gain should not come free of any cycle increase in at least one
    # latency case (probing + kept-busy vCPUs).
    assert max(r[3] for r in lat) > 100.0, lat
