"""Figure 20 — vSched cost: total cycles and cycles-per-second (CPS).

Selected workloads from the overall evaluation rerun on rcvm and hpvm,
collecting the cycles the VM consumed during workload execution and the
CPS (§5.9).  The paper finds throughput-oriented workloads consume only
~5.5% more cycles under vSched while achieving 38% higher CPS (better
vCPU utilization); latency-sensitive workloads consume more extra cycles
(+50.5%) but their CPS baseline is ~8× lower, so the absolute cost stays
small while tail latency plummets.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

from repro.cluster import attach_scheduler, build_hpvm, build_rcvm, make_context, run_to_completion
from repro.experiments.common import Table
from repro.experiments.units import WorkUnit, execute_serial
from repro.metrics import CycleMeter
from repro.sim.engine import SEC
from repro.workloads import build_workload

THROUGHPUT = ("bodytrack", "swaptions", "lu_cb")
LATENCY = ("img-dnn", "specjbb", "sphinx")

VM_BUILDERS = {"rcvm": build_rcvm, "hpvm": build_hpvm}


def _measure(builder: Callable, name: str, mode: str, threads: int,
             scale: float, n_requests: int, seed: str) -> Dict[str, float]:
    env = builder()
    vs = attach_scheduler(env, mode)
    ctx = make_context(env, vs, seed)
    env.engine.run_until(env.engine.now + 6 * SEC)
    meter = CycleMeter(env)
    meter.start()
    wl = build_workload(name, threads=threads, scale=scale,
                        n_requests=n_requests)
    run_to_completion(env, [wl], ctx, timeout_ns=900 * SEC)
    sample = meter.sample()
    return {"cycles": float(sample.cycles), "cps": sample.cps}


def _vm_list(fast: bool) -> List[Tuple[str, int]]:
    vms = [("hpvm", 32)]
    if not fast:
        vms.append(("rcvm", 12))
    return vms


def _scenario(vm: str, name: str, mode: str, fast: bool) -> Dict[str, float]:
    """Work-unit body: one (vm, benchmark, scheduler) cycle measurement."""
    scale = 0.12 if fast else 0.3
    n_requests = 120 if fast else 400
    threads = dict(_vm_list(fast))[vm]
    # Seed suffixes kept from the pre-work-unit code ("cfs"/"vs") so the
    # tables render byte-identically across the migration.
    seed = f"fig20-{vm}-{name}-{'cfs' if mode == 'cfs' else 'vs'}"
    return _measure(VM_BUILDERS[vm], name, mode, threads, scale,
                    n_requests, seed)


def scenarios(fast: bool) -> List[WorkUnit]:
    cost = 0.6 if fast else 3.0
    return [WorkUnit(exp_id="fig20", label=f"{vm}-{name}-{mode}",
                     func=_scenario, config=(vm, name, mode, fast),
                     cost_hint=cost,
                     seed=f"fig20-{vm}-{name}-"
                          f"{'cfs' if mode == 'cfs' else 'vs'}")
            for vm, _threads in _vm_list(fast)
            for kind, names in (("throughput", THROUGHPUT),
                                ("latency", LATENCY))
            for name in names
            for mode in ("cfs", "vsched")]


def assemble(fast: bool, results: List[Dict[str, float]]) -> Table:
    table = Table(
        exp_id="fig20",
        title="vSched cost: VM cycles and cycles/second vs CFS",
        columns=["vm", "benchmark", "kind", "cycles_ratio_pct",
                 "cps_ratio_pct"],
        paper_expectation="throughput workloads: ~5% more cycles, much "
                          "higher CPS; latency workloads: larger relative "
                          "cycle increase from a ~8x lower CPS baseline",
    )
    it = iter(results)
    for vm_name, _threads in _vm_list(fast):
        for kind, names in (("throughput", THROUGHPUT), ("latency", LATENCY)):
            for name in names:
                base, vs = next(it), next(it)
                table.add(vm_name, name, kind,
                          100.0 * vs["cycles"] / max(1.0, base["cycles"]),
                          100.0 * vs["cps"] / max(1e-9, base["cps"]))
    return table


def run(fast: bool = False) -> Table:
    return assemble(fast, execute_serial(scenarios(fast)))


def check(table: Table) -> None:
    thr = [r for r in table.rows if r[2] == "throughput"]
    lat = [r for r in table.rows if r[2] == "latency"]
    # Throughput: CPS improves while the cycle increase stays moderate.
    thr_cps = sum(r[4] for r in thr) / len(thr)
    thr_cyc = sum(r[3] for r in thr) / len(thr)
    assert thr_cps > 100.0, thr
    assert thr_cyc < 140.0, thr
    # Latency workloads: vSched raises utilization (CPS) noticeably; the
    # relative cycle increase may be larger than for throughput workloads.
    lat_cps = sum(r[4] for r in lat) / len(lat)
    assert lat_cps > 100.0, lat
    # CPS gain should not come free of any cycle increase in at least one
    # latency case (probing + kept-busy vCPUs).
    assert max(r[3] for r in lat) > 100.0, lat
