"""`python -m repro.experiments` -> the vsched-repro CLI."""

import sys

from repro.experiments.cli import main

sys.exit(main())
