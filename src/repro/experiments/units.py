"""Work units: the scenario-granular decomposition of an experiment.

PR 1 parallelized campaigns at two rigid layers (whole experiments, or one
experiment's scenario sweep).  The flat scheduler in
:mod:`repro.experiments.parallel` instead executes a single global queue of
**work units** drawn from every experiment at once.  A work unit is one
independent scenario evaluation — a pure function of ``(code, config,
seed)`` under the determinism contract — which makes it both the natural
unit of load balancing *and* the natural unit of result caching
(:mod:`repro.experiments.cache`).

An experiment module opts in by exposing two functions::

    scenarios(fast: bool) -> List[WorkUnit]   # decompose
    assemble(fast: bool, results: List) -> Table  # recompose, same order

``assemble`` receives one result per unit, in ``scenarios`` order, and must
build the table purely from those results — no additional simulation.  The
module's ``run(fast=)`` stays as a thin serial wrapper
(:func:`execute_serial`) so direct callers and the benchmark suite are
untouched.

Unit configs must be **data only** (strings, numbers, bools, tuples):
``repr(config)`` feeds the cache key, so anything with an identity-based
repr (functions, objects) would silently defeat caching, and workers
re-invoke ``func(*config)`` in another process, so everything must pickle.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

__all__ = ["WorkUnit", "TransientUnitError", "supports_units",
           "get_scenarios", "get_assemble", "execute_serial",
           "check_config_is_data"]

_DATA_TYPES = (str, bytes, int, float, bool, type(None))


class TransientUnitError(RuntimeError):
    """A unit failure that is safe to retry.

    Raise this from a unit function (or let the chaos harness raise it) to
    tell the campaign supervisor the failure is transient: under the
    determinism contract a retried unit recomputes the identical result,
    so the supervisor re-dispatches it up to the retry budget.  Any other
    exception is treated as deterministic and fails the unit immediately.
    """


@dataclass(frozen=True)
class WorkUnit:
    """One independent scenario evaluation of one experiment.

    ``func`` must be module-level (picklable by reference) and
    ``func(*config)`` must return a picklable value.  ``cost_hint`` is the
    expected serial wall time in (approximate, fast-mode) seconds; the flat
    scheduler dispatches longest-first so the big units start immediately.
    ``seed`` records the scenario's RNG seed string for the cache key; by
    convention it matches what the unit passes to ``make_rng``.

    The remaining fields parameterize the campaign supervisor
    (:mod:`repro.experiments.supervisor`) and do **not** enter the cache
    key: ``timeout_s`` overrides the derived per-unit deadline,
    ``max_retries`` overrides the campaign-wide retry budget for this
    unit, and ``retryable=False`` marks a unit whose failures must never
    be retried (not even worker crashes or timeouts).
    """

    exp_id: str
    label: str
    func: Callable
    config: Tuple = ()
    cost_hint: float = 1.0
    seed: str = ""
    timeout_s: Optional[float] = None
    max_retries: Optional[int] = None
    retryable: bool = True
    #: Shared scenario prefix (:class:`repro.experiments.snapstore.
    #: PrefixSpec`).  When set, ``func`` is called as ``func(roots,
    #: *config)`` on a fork of the prefix's frozen world (or on a cold
    #: rebuild when snapshots are disabled), and the prefix chain joins
    #: the cache key — the unit result depends on the prefix's identity.
    prefix: Optional[object] = None


def check_config_is_data(unit: WorkUnit) -> None:
    """Raise if a unit config smells identity-based (defeats the cache)."""
    def walk(v):
        if isinstance(v, _DATA_TYPES):
            return
        if isinstance(v, (tuple, list, frozenset)):
            for item in v:
                walk(item)
            return
        if isinstance(v, dict):
            for k, item in sorted(v.items()):
                walk(k)
                walk(item)
            return
        raise TypeError(
            f"work unit {unit.exp_id}/{unit.label}: config element {v!r} "
            f"of type {type(v).__name__} is not plain data; its repr would "
            f"poison the cache key")
    walk(unit.config)
    prefix = unit.prefix
    while prefix is not None:
        walk(prefix.config)
        prefix = prefix.parent


def supports_units(mod, exp_id: str) -> bool:
    """True when the module exposes the scenarios/assemble protocol."""
    return (get_scenarios(mod, exp_id) is not None
            and get_assemble(mod, exp_id) is not None)


def get_scenarios(mod, exp_id: str) -> Optional[Callable]:
    """Resolve ``scenarios_{exp_id}`` or ``scenarios`` (like run/check)."""
    return getattr(mod, f"scenarios_{exp_id}", None) or \
        getattr(mod, "scenarios", None)


def get_assemble(mod, exp_id: str) -> Optional[Callable]:
    return getattr(mod, f"assemble_{exp_id}", None) or \
        getattr(mod, "assemble", None)


def execute_serial(units: Sequence[WorkUnit], fast: bool = False) -> List:
    """Run units in order, in-process, returning one result per unit.

    This is what the thin ``run(fast=)`` wrappers call.  Contiguous runs of
    units sharing a ``func`` are routed through
    :func:`repro.experiments.parallel.run_scenarios`, so a process-wide
    ``--jobs`` default (PR 1 behaviour) still fans the sweep out for direct
    callers; with the default of one job this is exactly a plain loop.

    Units carrying a prefix route through the snapshot store
    (:func:`repro.experiments.snapstore.execute_unit`) — via a picklable
    wrapper, so prefixed sweeps still fan out (each pool worker grows its
    own store).  ``fast`` feeds the prefix store key; experiments that
    declare prefixes pass their mode through.
    """
    from repro.experiments.parallel import run_scenarios, unit_body_config

    units = list(units)
    results: List = []
    i = 0
    while i < len(units):
        j = i
        while (j < len(units) and units[j].func is units[i].func
               and (units[j].prefix is None) == (units[i].prefix is None)):
            j += 1
        func, configs = unit_body_config(units[i:j], fast)
        results.extend(run_scenarios(func, configs))
        i = j
    return results
