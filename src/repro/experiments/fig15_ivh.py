"""Figure 15 — throughput improvement with intra-VM harvesting (ivh).

Setup (§5.5): a 16-vCPU VM overcommitted with another VM on 16 cores in
one socket — every vCPU shares ~50% of its core.  Throughput-oriented
workloads run with 1–16 threads; ivh's proactive running-task migration
harvests unused vCPUs, improving throughput up to 82% with few threads and
~17% on average even at 16 threads (phases with few runnable threads).
"""

from __future__ import annotations

from typing import Dict, List

from repro.cluster import attach_scheduler, build_plain_vm, make_context, run_to_completion
from repro.experiments.common import Table
from repro.experiments.units import WorkUnit, execute_serial
from repro.sim.engine import MSEC, SEC
from repro.workloads import Pbzip2, build_parsec

FULL_BENCHMARKS = ("streamcluster", "canneal", "blackscholes", "bodytrack",
                   "dedup", "ocean_cp", "ocean_ncp", "radiosity", "radix",
                   "fft", "pbzip2")
FAST_BENCHMARKS = ("streamcluster", "canneal", "blackscholes", "pbzip2")
FULL_THREADS = (1, 2, 4, 8, 16)
FAST_THREADS = (1, 4, 16)

IVH_ONLY = {"enable_bvs": False, "enable_rwc": False}
NO_IVH = {"enable_bvs": False, "enable_rwc": False, "enable_ivh": False}


def _build_env():
    env = build_plain_vm(16, host_slice_ns=5 * MSEC)
    for i in range(16):
        env.machine.add_host_task(f"comp{i}", pinned=(i,))
    return env


def _make(bench: str, threads: int, scale: float):
    if bench == "pbzip2":
        return Pbzip2(threads=max(3, threads), blocks=max(30, int(250 * scale)))
    return build_parsec(bench, threads=threads, scale=scale)


def _elapsed(bench: str, threads: int, ivh: bool, scale: float) -> int:
    env = _build_env()
    overrides = IVH_ONLY if ivh else NO_IVH
    vs = attach_scheduler(env, "vsched", overrides=overrides)
    ctx = make_context(env, vs, seed=f"fig15-{bench}-{threads}-{ivh}")
    env.engine.run_until(env.engine.now + 6 * SEC)
    wl = _make(bench, threads, scale)
    run_to_completion(env, [wl], ctx, timeout_ns=600 * SEC)
    return wl.elapsed_ns()


def _params(fast: bool):
    benchmarks = FAST_BENCHMARKS if fast else FULL_BENCHMARKS
    threads_list = FAST_THREADS if fast else FULL_THREADS
    scale = 0.2 if fast else 0.4
    return benchmarks, threads_list, scale


def scenarios(fast: bool) -> List[WorkUnit]:
    benchmarks, threads_list, scale = _params(fast)
    cost = 0.4 if fast else 2.0
    return [WorkUnit(exp_id="fig15", label=f"{bench}-{threads}-"
                     f"{'ivh' if ivh else 'noivh'}",
                     func=_elapsed, config=(bench, threads, ivh, scale),
                     cost_hint=cost,
                     seed=f"fig15-{bench}-{threads}-{ivh}")
            for bench in benchmarks
            for threads in threads_list
            for ivh in (False, True)]


def assemble(fast: bool, results: List[int]) -> Table:
    benchmarks, threads_list, _scale = _params(fast)
    table = Table(
        exp_id="fig15",
        title="Throughput improvement with ivh vs ivh disabled (%)",
        columns=["benchmark"] + [f"{t}thr" for t in threads_list],
        paper_expectation="up to 82% with few threads; ~17% average even "
                          "with 16 threads",
    )
    it = iter(results)
    for bench in benchmarks:
        improvements = []
        for _threads in threads_list:
            base, with_ivh = next(it), next(it)
            improvements.append(100.0 * (base - with_ivh) / with_ivh)
        table.add(bench, *improvements)
    return table


def run(fast: bool = False) -> Table:
    return assemble(fast, execute_serial(scenarios(fast)))


def check(table: Table) -> None:
    few_thread_gains = [row[1] for row in table.rows]  # 1 thread column
    # Harvesting shines with few threads: large average gain, and at least
    # one benchmark above 40%.
    assert sum(few_thread_gains) / len(few_thread_gains) > 20.0, few_thread_gains
    assert max(few_thread_gains) > 40.0, few_thread_gains
    # With all vCPUs busy the gain shrinks but nothing collapses.
    full_gains = [row[-1] for row in table.rows]
    assert all(g > -15.0 for g in full_gains), full_gains
    # Gains generally shrink as thread count grows.
    for row in table.rows:
        assert row[1] >= row[-1] - 10.0, row
