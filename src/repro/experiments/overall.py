"""Shared runner for the overall-evaluation figures (18 and 19).

Each workload runs under three configurations (§5.6):

* **CFS** — stock guest scheduler;
* **enhanced CFS** — vProbers + rwc (accurate abstraction feeds existing
  heuristics; problematic vCPUs hidden);
* **vSched** — everything, adding bvs and ivh.

Throughput workloads report completion time; latency workloads report p95
tail latency.  Both are converted to a *performance* percentage relative
to CFS (higher is better), matching the paper's normalized plots.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.cluster import attach_scheduler, make_context, run_to_completion
from repro.experiments.common import Table
from repro.sim.engine import SEC
from repro.workloads import (
    OVERALL_LATENCY,
    OVERALL_THROUGHPUT,
    build_workload,
)

MODES = ("cfs", "enhanced", "vsched")

FAST_THROUGHPUT = ["canneal", "dedup", "streamcluster", "blackscholes",
                   "ocean_cp", "pbzip2"]
FAST_LATENCY = ["img-dnn", "masstree", "silo", "specjbb"]


def _measure(builder: Callable, name: str, mode: str, kind: str,
             threads: int, scale: float, n_requests: int,
             warmup_ns: int, seed: str) -> float:
    env = builder()
    vs = attach_scheduler(env, mode)
    ctx = make_context(env, vs, seed)
    env.engine.run_until(env.engine.now + warmup_ns)
    wl = build_workload(name, threads=threads, scale=scale,
                        n_requests=n_requests)
    run_to_completion(env, [wl], ctx, timeout_ns=900 * SEC)
    if kind == "latency":
        return wl.p95_ns()
    return float(wl.elapsed_ns())


def run_overall(exp_id: str, title: str, builder: Callable, threads: int,
                fast: bool) -> Table:
    throughput_names = FAST_THROUGHPUT if fast else OVERALL_THROUGHPUT
    latency_names = FAST_LATENCY if fast else OVERALL_LATENCY
    scale = 0.12 if fast else 0.3
    n_requests = 150 if fast else 400
    warmup = (6 if fast else 9) * SEC
    table = Table(
        exp_id=exp_id,
        title=title,
        columns=["benchmark", "kind", "CFS_pct", "enhanced_pct",
                 "vsched_pct"],
        paper_expectation="enhanced CFS and vSched outperform CFS; vSched "
                          "adds bvs/ivh gains on top (Figures 18/19)",
    )
    for kind, names in (("throughput", throughput_names),
                        ("latency", latency_names)):
        for name in names:
            vals: Dict[str, float] = {}
            for mode in MODES:
                vals[mode] = _measure(
                    builder, name, mode, kind, threads, scale, n_requests,
                    warmup, seed=f"{exp_id}-{name}-{mode}")
            base = vals["cfs"]
            # Performance = inverse time (elapsed or tail latency),
            # normalized to CFS; higher is better for both kinds.
            table.add(name, kind, 100.0,
                      100.0 * base / vals["enhanced"],
                      100.0 * base / vals["vsched"])
    return table


def geometric_means(table: Table) -> Dict[str, Dict[str, float]]:
    """Per-kind geometric means of the three configurations."""
    import math

    out: Dict[str, Dict[str, float]] = {}
    for kind in ("throughput", "latency"):
        rows = [r for r in table.rows if r[1] == kind]
        out[kind] = {}
        for label, idx in (("cfs", 2), ("enhanced", 3), ("vsched", 4)):
            logs = [math.log(max(1e-9, r[idx])) for r in rows]
            out[kind][label] = math.exp(sum(logs) / len(logs))
    return out


def check_overall(table: Table, min_enhanced: float, min_vsched: float,
                  latency_min_vsched: float) -> None:
    means = geometric_means(table)
    thr = means["throughput"]
    lat = means["latency"]
    assert thr["enhanced"] > min_enhanced, thr
    assert thr["vsched"] > thr["enhanced"] - 6.0, thr
    assert thr["vsched"] > min_vsched, thr
    # Enhanced CFS is at worst neutral on the latency side here (the
    # paper's 1.4-1.5x for enhanced comes from capacity/topology-aware
    # placement effects that are weaker on this substrate); vSched's
    # activity-aware techniques carry the latency gains.
    assert lat["enhanced"] > 80.0, lat
    assert lat["vsched"] > latency_min_vsched, lat
    assert lat["vsched"] > lat["enhanced"], lat
    # No catastrophic individual regression (paper's worst cases are a few
    # percent for spin-synchronized workloads).
    for row in table.rows:
        assert row[4] > 70.0, row
