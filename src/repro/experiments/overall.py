"""Shared runner for the overall-evaluation figures (18 and 19).

Each workload runs under three configurations (§5.6):

* **CFS** — stock guest scheduler;
* **enhanced CFS** — vProbers + rwc (accurate abstraction feeds existing
  heuristics; problematic vCPUs hidden);
* **vSched** — everything, adding bvs and ivh.

Throughput workloads report completion time; latency workloads report p95
tail latency.  Both are converted to a *performance* percentage relative
to CFS (higher is better), matching the paper's normalized plots.

Each ``(benchmark, mode)`` measurement is one work unit
(:func:`overall_scenarios`), so fig18/fig19 decompose into ~30 independent
scenario evaluations for the flat scheduler instead of one ~30 s monolith.
The VM is named by string (``"rcvm"``/``"hpvm"``) so unit configs stay
plain data — the cache key hashes ``repr(config)``.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.cluster import (
    attach_scheduler,
    build_hpvm,
    build_rcvm,
    make_context,
    run_to_completion,
)
from repro.experiments.common import Table
from repro.experiments.units import WorkUnit, execute_serial
from repro.sim.engine import SEC
from repro.workloads import (
    OVERALL_LATENCY,
    OVERALL_THROUGHPUT,
    build_workload,
)

MODES = ("cfs", "enhanced", "vsched")

FAST_THROUGHPUT = ["canneal", "dedup", "streamcluster", "blackscholes",
                   "ocean_cp", "pbzip2"]
FAST_LATENCY = ["img-dnn", "masstree", "silo", "specjbb"]

VM_BUILDERS = {"rcvm": build_rcvm, "hpvm": build_hpvm}


def _bench_list(fast: bool) -> List[Tuple[str, str]]:
    throughput = FAST_THROUGHPUT if fast else OVERALL_THROUGHPUT
    latency = FAST_LATENCY if fast else OVERALL_LATENCY
    return ([("throughput", n) for n in throughput]
            + [("latency", n) for n in latency])


def _measure_unit(exp_id: str, vm: str, name: str, mode: str, kind: str,
                  threads: int, fast: bool) -> float:
    """Work-unit body: one (benchmark, mode) run on one VM type."""
    scale = 0.12 if fast else 0.3
    n_requests = 150 if fast else 400
    warmup_ns = (6 if fast else 9) * SEC
    env = VM_BUILDERS[vm]()
    vs = attach_scheduler(env, mode)
    ctx = make_context(env, vs, seed=f"{exp_id}-{name}-{mode}")
    env.engine.run_until(env.engine.now + warmup_ns)
    wl = build_workload(name, threads=threads, scale=scale,
                        n_requests=n_requests)
    run_to_completion(env, [wl], ctx, timeout_ns=900 * SEC)
    if kind == "latency":
        return wl.p95_ns()
    return float(wl.elapsed_ns())


def overall_scenarios(exp_id: str, vm: str, threads: int,
                      fast: bool) -> List[WorkUnit]:
    cost = 0.9 if fast else 6.0
    return [
        WorkUnit(exp_id=exp_id, label=f"{name}-{mode}", func=_measure_unit,
                 config=(exp_id, vm, name, mode, kind, threads, fast),
                 cost_hint=cost, seed=f"{exp_id}-{name}-{mode}")
        for kind, name in _bench_list(fast)
        for mode in MODES
    ]


def overall_assemble(exp_id: str, title: str, fast: bool,
                     results: List[float]) -> Table:
    table = Table(
        exp_id=exp_id,
        title=title,
        columns=["benchmark", "kind", "CFS_pct", "enhanced_pct",
                 "vsched_pct"],
        paper_expectation="enhanced CFS and vSched outperform CFS; vSched "
                          "adds bvs/ivh gains on top (Figures 18/19)",
    )
    it = iter(results)
    for kind, name in _bench_list(fast):
        vals: Dict[str, float] = {mode: next(it) for mode in MODES}
        base = vals["cfs"]
        # Performance = inverse time (elapsed or tail latency),
        # normalized to CFS; higher is better for both kinds.
        table.add(name, kind, 100.0,
                  100.0 * base / vals["enhanced"],
                  100.0 * base / vals["vsched"])
    return table


def run_overall(exp_id: str, title: str, vm: str, threads: int,
                fast: bool) -> Table:
    results = execute_serial(overall_scenarios(exp_id, vm, threads, fast))
    return overall_assemble(exp_id, title, fast, results)


def geometric_means(table: Table) -> Dict[str, Dict[str, float]]:
    """Per-kind geometric means of the three configurations."""
    import math

    out: Dict[str, Dict[str, float]] = {}
    for kind in ("throughput", "latency"):
        rows = [r for r in table.rows if r[1] == kind]
        out[kind] = {}
        for label, idx in (("cfs", 2), ("enhanced", 3), ("vsched", 4)):
            logs = [math.log(max(1e-9, r[idx])) for r in rows]
            out[kind][label] = math.exp(sum(logs) / len(logs))
    return out


def check_overall(table: Table, min_enhanced: float, min_vsched: float,
                  latency_min_vsched: float) -> None:
    means = geometric_means(table)
    thr = means["throughput"]
    lat = means["latency"]
    assert thr["enhanced"] > min_enhanced, thr
    assert thr["vsched"] > thr["enhanced"] - 6.0, thr
    assert thr["vsched"] > min_vsched, thr
    # Enhanced CFS is at worst neutral on the latency side here (the
    # paper's 1.4-1.5x for enhanced comes from capacity/topology-aware
    # placement effects that are weaker on this substrate); vSched's
    # activity-aware techniques carry the latency gains.
    assert lat["enhanced"] > 80.0, lat
    assert lat["vsched"] > latency_min_vsched, lat
    assert lat["vsched"] > lat["enhanced"], lat
    # No catastrophic individual regression (paper's worst cases are a few
    # percent for spin-synchronized workloads).
    for row in table.rows:
        assert row[4] > 70.0, row
