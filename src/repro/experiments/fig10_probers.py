"""Figure 10 — accuracy of vcap (EMA capacity) and vtop (latency matrix).

(a) A vCPU's capacity is stepped through a schedule of changes (including
a short spike); vcap's probed EMA capacity must track the trend while
smoothing the spike.

(b) An 8-vCPU VM with every topology flavour (two SMT pairs in socket 0; an
SMT pair and a stacked pair in socket 1).  vtop's probed cache-line
transfer latency matrix must separate the four distance classes, with
infinity on the stacked pair.
"""

from __future__ import annotations

import math

from repro.cluster import attach_scheduler, build_plain_vm, make_context
from repro.core.module import VSchedModule
from repro.experiments.common import Table
from repro.guest.kernel import GuestKernel
from repro.hw.topology import HostTopology
from repro.hypervisor.machine import Machine
from repro.probers import VTop
from repro.sim.engine import Engine, MSEC, SEC
from repro.sim.rng import make_rng


def _apply_share(env, period: int, share: float) -> None:
    """Apply one step of the capacity schedule to vCPU0 via bandwidth."""
    if share >= 1.0:
        env.machine.set_bandwidth(env.vm.vcpu(0), None)
    else:
        env.machine.set_bandwidth(env.vm.vcpu(0),
                                  quota_ns=int(share * period),
                                  period_ns=period)


class _CapacityTracker:
    """Samples actual vs probed capacity every 500 ms until ``end``.

    Scheduled as a bound method so the pending callback stays deep-copyable
    (guard_world): the tracker travels with the world on a snapshot fork
    instead of aliasing the original through closure cells.
    """

    def __init__(self, env, vs, steps, end: int):
        self.env = env
        self.vs = vs
        self.steps = steps
        self.end = end
        self.samples = []  # (time, actual, probed)

    def tick(self) -> None:
        now = self.env.engine.now
        share = 1.0
        for t, s in self.steps:
            if now >= t:
                share = s
        self.samples.append((now, 1024.0 * share,
                             self.vs.module.store[0].capacity))
        if now < self.end:
            self.env.engine.call_in(500 * MSEC, self.tick)


def run_fig10a(fast: bool = False) -> Table:
    """EMA capacity vs the actual capacity schedule."""
    env = build_plain_vm(2)
    period = 10 * MSEC
    # Capacity schedule for vCPU0 (fraction of a core, applied via quota):
    # steady 1.0 -> 0.5 -> brief spike to 1.0 -> 0.5 -> 0.25 -> 1.0.
    phase = 12 * SEC if fast else 30 * SEC
    steps = [(0, 1.0), (phase, 0.5), (2 * phase, 1.0),
             (2 * phase + SEC, 0.5), (3 * phase, 0.25), (4 * phase, 1.0)]
    end = steps[-1][0] + phase

    vs = attach_scheduler(env, "enhanced")

    for t, share in steps:
        env.engine.call_at(t, _apply_share, env, period, share)

    tracker = _CapacityTracker(env, vs, steps, end)
    env.engine.call_in(500 * MSEC, tracker.tick)
    env.engine.run_until(end)
    samples = tracker.samples

    table = Table(
        exp_id="fig10a",
        title="vcap EMA capacity vs actual capacity (vCPU0)",
        columns=["time_s", "actual_capacity", "ema_capacity"],
        paper_expectation="EMA tracks capacity changes while smoothing "
                          "out short spikes",
    )
    for t, actual, probed in samples:
        table.add(t / SEC, actual, probed)
    return table


def check_fig10a(table: Table) -> None:
    rows = table.rows
    # Samples taken >= 9 s after the last actual-capacity change (the EMA's
    # 2-period half-life has decayed history to <5% by then) must be within
    # 25% of the actual value.
    settle_samples = 18  # 9 s at the 500 ms sampling cadence
    settled = [
        r for i, r in enumerate(rows)
        if i >= settle_samples
        and all(rows[j][1] == r[1] for j in range(i - settle_samples, i))
    ]
    assert settled, "no settled samples"
    bad = [r for r in settled if abs(r[2] - r[1]) > 0.25 * r[1] + 60]
    assert len(bad) <= max(1, len(settled) // 8), bad[:5]
    # The 1 s spike back to full capacity must be smoothed out: while the
    # actual capacity briefly shows 1024 between 512 phases, the EMA must
    # not follow it all the way up.
    for i in range(1, len(rows) - 3):
        prev_a, cur_a = rows[i - 1][1], rows[i][1]
        if prev_a == 512.0 and cur_a == 1024.0:
            # Spike if actual drops back within 3 samples.
            future = [rows[j][1] for j in range(i + 1, min(i + 4, len(rows)))]
            if 512.0 in future:
                window = rows[i:i + 3]
                assert max(r[2] for r in window) < 900.0, window
                break


def _build_fig10b_env():
    engine = Engine()
    topo = HostTopology(2, 4, smt=2)  # 16 threads; socket 1 starts at 8
    machine = Machine(engine, topo)
    pins = [(0,), (1,), (2,), (3,), (8,), (9,), (10,), (10,)]
    vm = machine.new_vm("vm", 8, pinned_map=pins)
    kernel = GuestKernel(vm)
    return engine, machine, kernel


def run_fig10b(fast: bool = False) -> Table:
    engine, machine, kernel = _build_fig10b_env()
    module = VSchedModule(kernel)
    vtop = VTop(kernel, module, make_rng("fig10b"))
    done = {}
    vtop.probe_full(lambda view: done.update(view=view))
    engine.run_until(20 * SEC)
    view = done.get("view")
    if view is None:
        raise RuntimeError("vtop full probe did not complete")

    # Render the pairwise relation the probed view implies.
    def relation(a: int, b: int) -> str:
        if a == b:
            return "self"
        if b in view.stacked_partners(a):
            return "stack"
        if b in view.smt_siblings[a]:
            return "smt"
        if b in view.socket_siblings[a]:
            return "socket"
        return "cross"

    table = Table(
        exp_id="fig10b",
        title="vtop probed topology relations (8-vCPU VM, Figure 10b layout)",
        columns=["vcpu"] + [str(i) for i in range(8)],
        paper_expectation="distinct latency classes: ~6ns SMT, ~48ns "
                          "intra-socket, ~112ns cross-socket, inf stacked",
    )
    for a in range(8):
        table.add(a, *(relation(a, b) for b in range(8)))
    table.notes.append(f"full probe took {vtop.last_full_ns / MSEC:.0f} ms")
    return table


def check_fig10b(table: Table) -> None:
    expect_smt = {(0, 1), (2, 3), (4, 5)}
    expect_stack = {(6, 7)}
    for a in range(8):
        for b in range(8):
            rel = table.rows[a][1 + b]
            if a == b:
                assert rel == "self"
                continue
            key = (min(a, b), max(a, b))
            if key in expect_smt:
                assert rel == "smt", (a, b, rel)
            elif key in expect_stack:
                assert rel == "stack", (a, b, rel)
            elif (a < 4) == (b < 4):
                assert rel in ("socket", "smt"), (a, b, rel)
            else:
                assert rel == "cross", (a, b, rel)


def run(fast: bool = False) -> Table:
    """Combined runner: returns fig10a and attaches fig10b as notes."""
    return run_fig10a(fast)


def check(table: Table) -> None:
    check_fig10a(table)
