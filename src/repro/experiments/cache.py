"""Content-addressed on-disk cache for work-unit results.

Every work unit is a pure function of ``(code, config, seed)`` by the
determinism contract (docs/INTERNALS.md §8), so its result can be cached
under a key that names exactly those inputs:

    key = SHA-256( code fingerprint of src/repro
                 | exp_id | scenario label | repr(config) | seed | fast )

The **code fingerprint** hashes the path and content of every ``*.py``
file in the installed ``repro`` package, so *any* source change — even to
a module the unit does not import — invalidates the whole cache.  That is
deliberately coarse: fingerprinting the true import closure would save
little (a campaign re-runs in minutes) and risks stale results, which are
far worse than spurious misses.

Values are pickled to ``<dir>/<key>.pkl`` via a temp file + ``os.replace``
so concurrent writers (parallel campaigns racing on the same unit) are
safe: last writer wins with an identical value.  A corrupt or unreadable
entry counts as a miss and is recomputed.

The cache directory defaults to ``.vsched-cache`` (override with
``--cache-dir`` or ``$VSCHED_REPRO_CACHE_DIR``); caching itself is opt-in
(``--cache`` or ``$VSCHED_REPRO_CACHE=1``).
"""

from __future__ import annotations

import hashlib
import os
import pickle
import sys
import tempfile
from typing import Any, Optional, Tuple

from repro.experiments.units import WorkUnit

#: Environment variables consulted by the CLI / tools.
CACHE_ENV_VAR = "VSCHED_REPRO_CACHE"
CACHE_DIR_ENV_VAR = "VSCHED_REPRO_CACHE_DIR"
DEFAULT_CACHE_DIR = ".vsched-cache"

_fingerprint_memo: Optional[str] = None


def default_cache_dir() -> str:
    return os.environ.get(CACHE_DIR_ENV_VAR) or DEFAULT_CACHE_DIR


def cache_enabled_by_env() -> bool:
    return os.environ.get(CACHE_ENV_VAR, "") not in ("", "0", "false", "no")


def code_fingerprint(root: Optional[str] = None) -> str:
    """SHA-256 over (relative path, content) of every .py under ``root``.

    ``root`` defaults to the installed ``repro`` package directory; that
    default is memoized per process (the tree does not change mid-run).
    """
    global _fingerprint_memo
    if root is None:
        if _fingerprint_memo is not None:
            return _fingerprint_memo
        import repro
        root = os.path.dirname(os.path.abspath(repro.__file__))
        _fingerprint_memo = _fingerprint_tree(root)
        return _fingerprint_memo
    return _fingerprint_tree(root)


def _fingerprint_tree(root: str) -> str:
    h = hashlib.sha256()
    paths = []
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = sorted(d for d in dirnames if d != "__pycache__")
        for fn in filenames:
            if fn.endswith(".py"):
                paths.append(os.path.join(dirpath, fn))
    for path in sorted(paths):
        h.update(os.path.relpath(path, root).encode())
        h.update(b"\0")
        with open(path, "rb") as fh:
            h.update(fh.read())
        h.update(b"\0")
    return h.hexdigest()


def unit_key(unit: WorkUnit, fast: bool,
             fingerprint: Optional[str] = None) -> str:
    """Content address of one work unit's result.

    A unit with a snapshot prefix folds the whole prefix chain (key,
    config, seed per link) into its address: the prefix's parameters are
    real inputs of the result that no longer appear in ``unit.config``.
    Units without a prefix hash exactly as before.
    """
    parts = [fingerprint if fingerprint is not None else code_fingerprint(),
             unit.exp_id, unit.label, repr(unit.config), unit.seed,
             "fast" if fast else "full"]
    if unit.prefix is not None:
        from repro.experiments.snapstore import prefix_chain_parts
        parts.extend(prefix_chain_parts(unit.prefix))
    h = hashlib.sha256()
    for part in parts:
        h.update(part.encode())
        h.update(b"\0")
    return h.hexdigest()


class ResultCache:
    """Pickle-per-key store with hit/miss accounting.

    Robustness contract: the cache is an accelerator, never a point of
    failure.  Corrupt entries read as misses, and a failed write (disk
    full, permissions, unpicklable value) degrades to a warning + counter
    instead of aborting the campaign that produced the result.
    """

    def __init__(self, path: Optional[str] = None):
        self.path = path or default_cache_dir()
        os.makedirs(self.path, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.store_errors = 0

    def _entry(self, key: str) -> str:
        return os.path.join(self.path, f"{key}.pkl")

    def lookup(self, key: str) -> Tuple[bool, Any]:
        """Return ``(hit, value)``; a corrupt entry is a miss."""
        try:
            with open(self._entry(key), "rb") as fh:
                value = pickle.load(fh)
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError,
                ImportError, IndexError):
            self.misses += 1
            return False, None
        self.hits += 1
        return True, value

    def store(self, key: str, value: Any) -> None:
        tmp = None
        try:
            fd, tmp = tempfile.mkstemp(dir=self.path, suffix=".tmp")
            with os.fdopen(fd, "wb") as fh:
                pickle.dump(value, fh, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, self._entry(key))
        except (OSError, pickle.PicklingError, AttributeError,
                TypeError) as exc:
            if tmp is not None:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
            if self.store_errors == 0:
                print(f"warning: result cache store failed "
                      f"({type(exc).__name__}: {exc}); continuing without "
                      f"caching this unit", file=sys.stderr)
            self.store_errors += 1
            return
        self.stores += 1

    def summary(self) -> str:
        extra = f" store-errors={self.store_errors}" \
            if self.store_errors else ""
        return (f"[cache] hits={self.hits} misses={self.misses}"
                f"{extra} dir={self.path}")
