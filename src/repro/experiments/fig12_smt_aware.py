"""Figure 12 — effective SMT-aware scheduling with vtop.

32 vCPUs pinned to 16 SMT-sibling pairs on 16 cores (§5.3).

(a) *Underloaded system*: Sysbench with 16 CPU-bound threads.  Without SMT
topology, CFS leaves threads doubled up on cores while other cores sit
idle (the paper observes 11–12 of 16 cores used); with vtop's domains the
idle-core-first search uses 15–16.

(b) *Mixed workloads*: CPU-intensive Matmul with memory-intensive Nginx or
I/O-intensive Fio (16 threads each).  Resolving SMT conflicts gives Matmul
up to +18%, Nginx +5%, and leaves Fio unchanged.
"""

from __future__ import annotations

from typing import Dict

from repro.cluster import attach_scheduler, build_plain_vm, make_context, run_to_completion
from repro.experiments.common import Table
from repro.guest.task import TaskState
from repro.sim.engine import MSEC, SEC
from repro.workloads import Fio, Matmul, NginxServer, SysbenchCpu

VTOP_ONLY = {"enable_vcap": False, "enable_vact": False, "enable_rwc": False,
             "enable_bvs": False, "enable_ivh": False}


def _build():
    # 32 vCPUs on 16 cores x 2 SMT threads, one socket.
    return build_plain_vm(32, sockets=1, smt=2)


def _attach(env, vtop: bool):
    if vtop:
        return attach_scheduler(env, "vsched", overrides=VTOP_ONLY)
    return attach_scheduler(env, "cfs")


def _active_cores(env, tasks) -> int:
    cores = set()
    for t in tasks:
        if t.state == TaskState.RUNNING and t.cpu is not None:
            cores.add(t.cpu.index // 2)
    return len(cores)


class _CoreCountSampler:
    """Samples the active physical-core count every 20 ms until ``stop``.

    Bound-method callback: stays deep-copyable (guard_world) should this
    scenario gain a warm-start prefix that freezes mid-measurement.
    """

    def __init__(self, env, wl, stop: int):
        self.env = env
        self.wl = wl
        self.stop = stop
        self.counts = []

    def tick(self) -> None:
        self.counts.append(_active_cores(self.env, self.wl.tasks))
        if self.env.engine.now < self.stop:
            self.env.engine.call_in(20 * MSEC, self.tick)


def _run_underloaded(vtop: bool, duration_ns: int) -> float:
    env = _build()
    vs = _attach(env, vtop)
    ctx = make_context(env, vs, seed=f"fig12a-{vtop}")
    env.engine.run_until(env.engine.now + 6 * SEC)  # vtop warm-up
    wl = SysbenchCpu(threads=16)
    wl.start(ctx)
    stop = env.engine.now + duration_ns

    sampler = _CoreCountSampler(env, wl, stop)
    env.engine.call_in(20 * MSEC, sampler.tick)
    env.engine.run_until(stop)
    return sum(sampler.counts) / len(sampler.counts)


def _run_mixed(vtop: bool, companion: str, fast: bool,
               seed: str) -> Dict[str, float]:
    env = _build()
    vs = _attach(env, vtop)
    ctx = make_context(env, vs, seed)
    scale = 0.15 if fast else 0.6
    mat = Matmul(threads=16, blocks=max(16, int(160 * scale)))
    if companion == "nginx":
        comp = NginxServer(workers=16, rate_per_sec=2500.0)
    else:
        comp = Fio(threads=16, iterations=10 ** 9)  # runs until we stop
    env.engine.run_until(env.engine.now + 6 * SEC)
    comp.start(ctx)
    t0 = env.engine.now
    run_to_completion(env, [mat], ctx, timeout_ns=200 * SEC)
    elapsed = mat.elapsed_ns()
    if companion == "nginx":
        comp_tp = comp.served_between(t0, env.engine.now) / (elapsed / SEC)
    else:
        comp_tp = comp.ios_done / (elapsed / SEC)
    return {"matmul": 1e12 / elapsed, "companion": comp_tp}


def run(fast: bool = False) -> Table:
    duration = (6 if fast else 20) * SEC
    table = Table(
        exp_id="fig12",
        title="SMT-aware scheduling with vtop",
        columns=["experiment", "metric", "CFS", "CFS+vtop"],
        paper_expectation="underloaded: 11-12 -> 15-16 active cores; mixed: "
                          "Matmul +18%, Nginx +5%, Fio unchanged",
    )
    cores_cfs = _run_underloaded(False, duration)
    cores_vtop = _run_underloaded(True, duration)
    table.add("underloaded", "avg_active_cores", cores_cfs, cores_vtop)
    for companion in ("nginx", "fio"):
        base = _run_mixed(False, companion, fast, f"fig12b-{companion}-cfs")
        with_vtop = _run_mixed(True, companion, fast, f"fig12b-{companion}-vtop")
        table.add(f"mixed+{companion}", "matmul_pct",
                  100.0, 100.0 * with_vtop["matmul"] / base["matmul"])
        table.add(f"mixed+{companion}", f"{companion}_pct",
                  100.0, 100.0 * with_vtop["companion"] / base["companion"])
    return table


def check(table: Table) -> None:
    cores = [r for r in table.rows if r[1] == "avg_active_cores"][0]
    assert cores[3] > cores[2] + 2.0, cores       # vtop uses more cores
    assert cores[3] > 14.0, cores
    matmul_rows = [r for r in table.rows if r[1] == "matmul_pct"]
    for r in matmul_rows:
        assert r[3] > 105.0, r                     # Matmul benefits
    nginx = [r for r in table.rows if r[1] == "nginx_pct"][0]
    assert nginx[3] > 92.0, nginx                  # no big regression
    fio = [r for r in table.rows if r[1] == "fio_pct"][0]
    assert fio[3] > 90.0, fio                      # Fio roughly unchanged
