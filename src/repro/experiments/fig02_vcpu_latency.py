"""Figure 2 — the impact of vCPU latency on latency-sensitive workloads.

Setup (§2.3): a VM runs Tailbench workloads while a co-located VM stresses
the same cores; host tunables pin the vCPU latency to 2/4/8/16 ms without
changing capacity.  Scenarios without and with best-effort (sched_idle)
tasks harvesting free cycles.  The paper reports p95 tail latency growing
up to 20× from 2 ms to 16 ms; results are normalized to the 16 ms case
(lower = better).
"""

from __future__ import annotations

from repro.cluster import (
    attach_scheduler,
    build_plain_vm,
    make_context,
    overcommit_with_stress,
    run_to_completion,
)
from typing import List

from repro.experiments.common import Table
from repro.experiments.units import WorkUnit, execute_serial
from repro.sim.engine import MSEC, SEC
from repro.workloads import BestEffortFiller, LatencyWorkload

BENCHMARKS = ("img-dnn", "silo", "specjbb")
LATENCIES_MS = (2, 4, 8, 16)


def _one_run(bench: str, latency_ms: int, best_effort: bool,
             n_vcpus: int, n_requests: int) -> float:
    env = build_plain_vm(n_vcpus, host_slice_ns=latency_ms * MSEC,
                         wakeup_gran_ns=None)
    overcommit_with_stress(env, slice_ns=latency_ms * MSEC)
    vs = attach_scheduler(env, "cfs")
    ctx = make_context(env, vs, seed=f"fig2-{bench}-{latency_ms}-{best_effort}")
    wl = LatencyWorkload(bench, workers=max(4, n_vcpus // 4),
                         n_requests=n_requests)
    workloads = [wl]
    if best_effort:
        workloads.append(BestEffortFiller())
    run_to_completion(env, workloads, ctx, wait_for=[wl],
                      timeout_ns=180 * SEC)
    return wl.p95_ns()


def scenarios(fast: bool) -> List[WorkUnit]:
    n_vcpus = 8 if fast else 32
    n_requests = 120 if fast else 400
    cost = 0.1 if fast else 1.0
    return [WorkUnit(exp_id="fig2",
                     label=f"{bench}-{ms}ms-{'be' if best_effort else 'nobe'}",
                     func=_one_run,
                     config=(bench, ms, best_effort, n_vcpus, n_requests),
                     cost_hint=cost,
                     seed=f"fig2-{bench}-{ms}-{best_effort}")
            for best_effort in (False, True)
            for bench in BENCHMARKS
            for ms in LATENCIES_MS]


def assemble(fast: bool, results: List[float]) -> Table:
    table = Table(
        exp_id="fig2",
        title="Impact of vCPU latency on p95 tail latency "
              "(normalized to 16 ms; lower is better)",
        columns=["scenario", "benchmark", "2ms", "4ms", "8ms", "16ms"],
        paper_expectation="p95 grows up to 20x from 2 ms to 16 ms vCPU "
                          "latency in both scenarios",
    )
    it = iter(results)
    for best_effort in (False, True):
        scenario = "with best-effort" if best_effort else "no best-effort"
        for bench in BENCHMARKS:
            raw = {ms: next(it) for ms in LATENCIES_MS}
            base = raw[16]
            table.add(scenario, bench,
                      *(100.0 * raw[ms] / base for ms in LATENCIES_MS))
    return table


def run(fast: bool = False) -> Table:
    return assemble(fast, execute_serial(scenarios(fast)))


def check(table: Table) -> None:
    """Shape: tail latency increases monotonically-ish with vCPU latency,
    and the 2 ms case is far below the 16 ms case."""
    for row in table.rows:
        scenario, bench, p2, p4, p8, p16 = row
        assert p16 == 100.0 or abs(p16 - 100.0) < 1e-6
        assert p2 < 65.0, (bench, scenario, p2)
        assert p2 <= p4 * 1.35 and p4 <= p8 * 1.35 and p8 <= p16 * 1.35, row
        assert p8 < 100.0 + 25.0, row
