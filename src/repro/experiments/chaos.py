"""Deterministic fault injection for campaign workers.

The supervisor (:mod:`repro.experiments.supervisor`) is only trustworthy
if its recovery paths are exercised, so this module lets a campaign
probabilistically inject the three fault classes the supervisor must
survive, *inside* the worker processes, gated by an environment variable::

    VSCHED_REPRO_CHAOS=crash:0.2,hang:0.1,flaky:0.5 \
        vsched-repro run all --fast --jobs 4 --keep-going --max-retries 2

Modes (each ``mode:probability``, comma-separated):

``crash``
    the worker ``os._exit``\\ s mid-unit — emulates OOM-kill/SIGKILL; the
    supervisor must detect the dead worker, requeue its in-flight unit and
    respawn a replacement.
``hang``
    the worker sleeps ``hang_s`` seconds (default 3600, override with a
    ``hang_s=N`` token) — emulates a wedged simulation; the per-unit
    deadline must fire, kill the worker and requeue the unit.
``flaky``
    the unit raises :class:`~repro.experiments.units.TransientUnitError`
    on its **first** attempt only — emulates a fail-once transient; the
    retry path must recover it.

Every decision is a pure function of ``(unit tag, attempt)`` through
:func:`repro.sim.rng.make_rng` — never wall clock or pid — so a chaos run
is exactly reproducible: the same spec over the same campaign injects the
same faults every time, and a campaign whose retries all eventually
succeed renders byte-identical to a clean serial run.  Chaos applies only
inside pool workers; serial (``--jobs 1``) campaigns ignore it, because a
``crash`` would take the parent process down with it.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Optional

from repro.experiments.units import TransientUnitError

#: Environment variable holding the chaos spec (empty/unset = chaos off).
CHAOS_ENV_VAR = "VSCHED_REPRO_CHAOS"

#: Exit code used by injected crashes, distinguishable from real faults.
CHAOS_CRASH_EXIT_CODE = 87

_MODES = ("crash", "hang", "flaky")


@dataclass(frozen=True)
class ChaosPlan:
    """Parsed chaos spec: per-mode probabilities plus the hang duration."""

    crash: float = 0.0
    hang: float = 0.0
    flaky: float = 0.0
    hang_s: float = 3600.0

    @classmethod
    def parse(cls, spec: str) -> "ChaosPlan":
        """Parse ``"crash:0.2,hang:0.1,flaky:0.5,hang_s=30"``."""
        values = {}
        for token in spec.split(","):
            token = token.strip()
            if not token:
                continue
            sep = ":" if ":" in token else "="
            name, _, raw = token.partition(sep)
            name = name.strip()
            try:
                value = float(raw)
            except ValueError:
                raise ValueError(
                    f"malformed {CHAOS_ENV_VAR} token {token!r}: "
                    f"expected <mode>:<probability> or hang_s=<seconds>")
            if name == "hang_s":
                if value <= 0:
                    raise ValueError(f"{CHAOS_ENV_VAR}: hang_s must be > 0, "
                                     f"got {value}")
            elif name in _MODES:
                if not 0.0 <= value <= 1.0:
                    raise ValueError(
                        f"{CHAOS_ENV_VAR}: probability for {name!r} must be "
                        f"in [0, 1], got {value}")
            else:
                raise ValueError(
                    f"{CHAOS_ENV_VAR}: unknown mode {name!r} "
                    f"(known: {', '.join(_MODES)}, hang_s)")
            values[name] = value
        return cls(**values)

    @classmethod
    def from_env(cls) -> Optional["ChaosPlan"]:
        """The plan from ``$VSCHED_REPRO_CHAOS``, or None when unset."""
        spec = os.environ.get(CHAOS_ENV_VAR, "").strip()
        if not spec:
            return None
        plan = cls.parse(spec)
        return plan if plan.enabled else None

    @property
    def enabled(self) -> bool:
        return bool(self.crash or self.hang or self.flaky)

    # ------------------------------------------------------------------
    def decide(self, tag: str, attempt: int) -> Optional[str]:
        """Which fault (if any) to inject for ``(tag, attempt)``.

        Pure and reproducible: draws come from ``make_rng`` seeded on the
        unit tag and attempt number, in a fixed mode order.  ``flaky`` is
        decided per *tag* (not per attempt): a unit either is flaky —
        failing its first attempt, succeeding afterwards — or is not.
        """
        from repro.sim.rng import make_rng
        rng = make_rng(f"chaos|{tag}|attempt{attempt}")
        if self.crash and rng.random() < self.crash:
            return "crash"
        if self.hang and rng.random() < self.hang:
            return "hang"
        if self.flaky and attempt == 0:
            if make_rng(f"chaos-flaky|{tag}").random() < self.flaky:
                return "flaky"
        return None

    def maybe_inject(self, tag: str, attempt: int) -> None:
        """Inject the decided fault (called in the worker, mid-unit)."""
        fault = self.decide(tag, attempt)
        if fault == "crash":
            os._exit(CHAOS_CRASH_EXIT_CODE)
        elif fault == "hang":
            time.sleep(self.hang_s)
        elif fault == "flaky":
            raise TransientUnitError(
                f"chaos: injected flaky failure for {tag} "
                f"(attempt {attempt + 1})")
