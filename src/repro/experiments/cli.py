"""Command-line entry point: regenerate the paper's tables and figures.

Usage::

    vsched-repro list
    vsched-repro run fig2 [--fast]
    vsched-repro run all [--fast] [--out results.txt]
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from repro.experiments.common import (
    EXPERIMENTS,
    check_experiment,
    run_experiment,
)

#: Order in which `run all` executes (paper order).
ALL_ORDER = ["fig2", "fig3", "fig4", "fig10a", "fig10b", "tab2", "fig11",
             "fig12", "fig13", "fig14", "tab3", "fig15", "tab4", "fig16",
             "fig17", "fig18", "fig19", "fig20", "fig21"]


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="vsched-repro",
        description="Regenerate the vSched paper's tables and figures on "
                    "the simulated substrate.")
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list available experiments")
    runp = sub.add_parser("run", help="run one experiment (or 'all')")
    runp.add_argument("experiment", help="experiment id (e.g. fig2) or 'all'")
    runp.add_argument("--fast", action="store_true",
                      help="shrunken workloads (seconds instead of minutes)")
    runp.add_argument("--no-check", action="store_true",
                      help="skip the qualitative shape assertions")
    runp.add_argument("--out", default=None,
                      help="also append rendered tables to this file")
    args = parser.parse_args(argv)

    if args.command == "list":
        for exp_id in ALL_ORDER:
            print(f"{exp_id:8s} -> {EXPERIMENTS[exp_id]}")
        return 0

    ids = ALL_ORDER if args.experiment == "all" else [args.experiment]
    failures = []
    out_fh = open(args.out, "a") if args.out else None
    try:
        for exp_id in ids:
            started = time.time()
            print(f"--- running {exp_id} "
                  f"({'fast' if args.fast else 'full'}) ---", flush=True)
            table = run_experiment(exp_id, fast=args.fast)
            rendered = table.render()
            print(rendered, flush=True)
            if out_fh:
                out_fh.write(rendered + "\n\n")
                out_fh.flush()
            if not args.no_check:
                try:
                    check_experiment(exp_id, table)
                    print(f"[shape check OK, {time.time() - started:.0f}s]\n")
                except AssertionError as exc:
                    failures.append(exp_id)
                    print(f"[SHAPE CHECK FAILED: {exc}]\n")
    finally:
        if out_fh:
            out_fh.close()
    if failures:
        print(f"shape-check failures: {failures}")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
