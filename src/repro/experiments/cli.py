"""Command-line entry point: regenerate the paper's tables and figures.

Usage::

    vsched-repro list
    vsched-repro run fig2 [--fast]
    vsched-repro run fig2,fig14 [--fast]
    vsched-repro run all [--fast] [--jobs N] [--cache] [--out results.txt]

``--jobs N`` fans work out over N worker processes through the flat
work-unit scheduler: every experiment decomposes into independent scenario
units, one pool runs all units longest-first, and tables stream back in
presentation order — so ``run all --jobs N`` parallelizes *inside* the
heavy experiments, not just across them.  ``--cache`` layers the
content-addressed result cache underneath: a rerun on an unchanged tree
recomputes nothing.  Parallel and warm-cache runs render byte-identically
to serial ones — see ``docs/INTERNALS.md`` §8–§9.

Campaigns are supervised (``docs/INTERNALS.md`` §10): ``--max-retries``
bounds retries of transient unit failures (worker crash, deadline expiry,
``TransientUnitError``), ``--unit-timeout`` overrides the derived per-unit
deadline, and ``--keep-going`` streams every healthy table past failed
units, prints a structured end-of-run failure report, and exits non-zero.
Ctrl-C tears the pool down and reports how far the campaign got; cached
results survive either way.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import List, Optional

from repro.experiments import parallel, supervisor
from repro.experiments.cache import (
    CACHE_DIR_ENV_VAR,
    CACHE_ENV_VAR,
    ResultCache,
    cache_enabled_by_env,
    default_cache_dir,
)
from repro.experiments.common import (
    EXPERIMENTS,
    check_experiment,
    run_experiment,
)

#: Order in which `run all` executes (paper order).
ALL_ORDER = ["fig2", "fig3", "fig4", "fig10a", "fig10b", "tab2", "fig11",
             "fig12", "fig13", "fig14", "tab3", "fig15", "tab4", "fig16",
             "fig17", "fig18", "fig19", "fig20", "fig21", "figA1"]


def wallclock() -> float:
    """Real host time, for progress lines only.

    The single sanctioned wall-clock read in src/repro: nothing that feeds
    a table, a cache key, or the simulation may depend on it.
    """
    return time.time()  # vschedlint: disable=wall-clock -- display-only elapsed-time stamps; never reaches results


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="vsched-repro",
        description="Regenerate the vSched paper's tables and figures on "
                    "the simulated substrate.")
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list available experiments")
    runp = sub.add_parser("run", help="run experiments ('all', one id, or "
                                      "a comma-separated list)")
    runp.add_argument("experiment",
                      help="experiment id (e.g. fig2), a comma-separated "
                           "list (fig2,fig14), or 'all'")
    runp.add_argument("--fast", action="store_true",
                      help="shrunken workloads (seconds instead of minutes)")
    runp.add_argument("--no-check", action="store_true",
                      help="skip the qualitative shape assertions")
    runp.add_argument("--jobs", type=int, default=None, metavar="N",
                      help="worker processes (default 1, or "
                           f"${parallel.JOBS_ENV_VAR})")
    runp.add_argument("--keep-going", action="store_true",
                      help="do not abort the campaign on a failed unit: "
                           "stream every healthy table, report failures at "
                           "the end, exit non-zero")
    runp.add_argument("--max-retries", type=int, default=None, metavar="N",
                      help="retries per unit for transient failures "
                           "(worker crash, timeout, TransientUnitError; "
                           "default 1)")
    runp.add_argument("--unit-timeout", type=float, default=None,
                      metavar="S",
                      help="per-unit deadline in seconds, overriding the "
                           "cost-derived one (default: cost_hint-based, or "
                           f"${supervisor.UNIT_TIMEOUT_ENV_VAR})")
    cachep = runp.add_mutually_exclusive_group()
    cachep.add_argument("--cache", dest="cache", action="store_true",
                        default=None,
                        help="reuse cached work-unit results and store new "
                             f"ones (default off, or ${CACHE_ENV_VAR}=1)")
    cachep.add_argument("--no-cache", dest="cache", action="store_false",
                        help="force caching off even if the environment "
                             "enables it")
    runp.add_argument("--cache-dir", default=None, metavar="DIR",
                      help="result cache directory (default "
                           f"{default_cache_dir()!r}, or "
                           f"${CACHE_DIR_ENV_VAR})")
    snapp = runp.add_mutually_exclusive_group()
    snapp.add_argument("--snapshot", dest="snapshot", action="store_true",
                       default=None,
                       help="warm-start scenarios by forking frozen prefix "
                            "worlds (default on, or $VSCHED_REPRO_SNAPSHOT)")
    snapp.add_argument("--no-snapshot", dest="snapshot",
                       action="store_false",
                       help="rebuild every scenario prefix cold (the A/B "
                            "baseline for the byte-identity contract)")
    runp.add_argument("--out", default=None,
                      help="also write rendered tables to this file "
                           "(truncated unless --append)")
    runp.add_argument("--append", action="store_true",
                      help="append to --out instead of truncating it")
    args = parser.parse_args(argv)

    if args.command == "list":
        for exp_id in ALL_ORDER:
            print(f"{exp_id:8s} -> {EXPERIMENTS[exp_id]}")
        return 0

    jobs = args.jobs if args.jobs is not None else parallel.default_jobs()
    if args.experiment == "all":
        ids = ALL_ORDER
    else:
        ids = [i.strip() for i in args.experiment.split(",") if i.strip()]
    for exp_id in ids:
        if exp_id not in EXPERIMENTS:
            raise KeyError(f"unknown experiment {exp_id!r}; "
                           f"known: {sorted(EXPERIMENTS)}")

    cache_on = args.cache if args.cache is not None else cache_enabled_by_env()
    cache = ResultCache(args.cache_dir) if cache_on else None

    if args.snapshot is not None:
        # Exported as an env var so pool workers (fork or spawn) inherit
        # the same mode; snapstore.execute_unit consults it per unit.
        os.environ["VSCHED_REPRO_SNAPSHOT"] = "1" if args.snapshot else "0"

    supervised = (args.keep_going or args.max_retries is not None
                  or args.unit_timeout is not None)
    out_fh = open(args.out, "a" if args.append else "w") if args.out else None
    failures: List[str] = []
    completed: List[str] = []
    failed_units: List[parallel.UnitFailure] = []
    interrupted: Optional[parallel.CampaignInterrupted] = None
    aborted: Optional[BaseException] = None
    try:
        if jobs > 1 or cache is not None or supervised:
            failures = _run_flat(ids, args, jobs, out_fh, cache,
                                 completed, failed_units)
        else:
            failures = _run_serial(ids, args, jobs, out_fh)
    except parallel.CampaignInterrupted as exc:
        interrupted = exc
    except KeyboardInterrupt:
        interrupted = parallel.CampaignInterrupted(0, 0)
    except RuntimeError as exc:
        # A unit failed without --keep-going: report what *did* finish
        # (and the cache summary below) before exiting non-zero.
        aborted = exc
    finally:
        if out_fh:
            out_fh.close()
    if cache is not None:
        print(cache.summary(), flush=True)
    if interrupted is not None:
        if interrupted.total:
            print(f"interrupted after {interrupted.done}/"
                  f"{interrupted.total} units (cached results preserved)",
                  flush=True)
        else:
            print("interrupted (cached results preserved)", flush=True)
        return 130
    if aborted is not None:
        print(f"campaign aborted: {aborted}", flush=True)
        done = ", ".join(completed) if completed else "none"
        print(f"experiments completed before abort: {done}", flush=True)
        return 1
    if failed_units:
        _print_failure_report(failed_units)
        return 1
    if failures:
        print(f"shape-check failures: {failures}")
        return 1
    return 0


def _print_failure_report(failed_units: List[parallel.UnitFailure]) -> None:
    """Structured end-of-run report for --keep-going campaigns."""
    print("=== campaign failure report ===", flush=True)
    for fu in failed_units:
        print(f"{fu.exp_id}/{fu.label}: {fu.error}")
        print(f"    attempts={fu.attempts} fate={fu.fate or 'n/a'}")
    print(f"{len(failed_units)} unit(s) failed permanently; healthy "
          f"experiments above are complete (and cached with --cache).",
          flush=True)


def _run_serial(ids: List[str], args, jobs: int, out_fh) -> List[str]:
    """In-process loop; scenario sweeps may still fan out with --jobs."""
    parallel.set_default_jobs(jobs)
    failures = []
    for exp_id in ids:
        started = wallclock()
        print(f"--- running {exp_id} "
              f"({'fast' if args.fast else 'full'}) ---", flush=True)
        table = run_experiment(exp_id, fast=args.fast)
        rendered = table.render()
        print(rendered, flush=True)
        if out_fh:
            out_fh.write(rendered + "\n\n")
            out_fh.flush()
        if not args.no_check:
            try:
                check_experiment(exp_id, table)
                print(f"[shape check OK, {wallclock() - started:.0f}s]\n")
            except AssertionError as exc:
                failures.append(exp_id)
                print(f"[SHAPE CHECK FAILED: {exc}]\n")
    return failures


def _run_flat(ids: List[str], args, jobs: int, out_fh, cache,
              completed: List[str],
              failed_units: List[parallel.UnitFailure]) -> List[str]:
    """Supervised flat work-unit scheduler, streamed in paper order.

    Appends to ``completed``/``failed_units`` as results land so the
    caller can report progress even when the campaign aborts mid-stream.
    """
    failures = []
    for res in parallel.run_units(ids, fast=args.fast,
                                  check=not args.no_check, jobs=jobs,
                                  cache=cache, keep_going=args.keep_going,
                                  max_retries=args.max_retries,
                                  unit_timeout=args.unit_timeout):
        print(f"--- running {res.exp_id} "
              f"({'fast' if args.fast else 'full'}) ---", flush=True)
        print(res.rendered, flush=True)
        if out_fh:
            out_fh.write(res.rendered + "\n\n")
            out_fh.flush()
        if res.failed_units:
            failed_units.extend(res.failed_units)
            print(f"[FAILED: {len(res.failed_units)}/{res.n_units} units; "
                  f"continuing (--keep-going)]\n")
            continue
        completed.append(res.exp_id)
        detail = f"{res.n_units} units, {res.cache_hits} cached, " \
            if (cache is not None or res.n_units > 1) else ""
        retry_note = f"{res.retries} retried, " if res.retries else ""
        if not args.no_check:
            if res.ok:
                print(f"[shape check OK, {detail}{retry_note}"
                      f"{res.wall_s:.0f}s compute]\n")
            else:
                failures.append(res.exp_id)
                print(f"[SHAPE CHECK FAILED: {res.check_error}]\n")
    return failures


if __name__ == "__main__":
    sys.exit(main())
