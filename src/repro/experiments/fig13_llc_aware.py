"""Figure 13 — effective LLC-aware optimizations with vtop.

32 vCPUs pinned to two sets of 16 cores across two sockets (§5.3).  Two
instances each of Hackbench, Dedup, and Nginx run concurrently.  With
vtop's socket topology installed, fork balancing and wake affinity keep
each instance's communicating threads within one LLC domain: cache-line
traffic stays on-socket (higher IPC), idle wake-ups hit the polling fast
path (up to 99% fewer IPIs), and throughput rises (26% on average in the
paper).  Metrics are normalized to the vtop-enabled run.
"""

from __future__ import annotations

from typing import Dict, List

from repro.cluster import attach_scheduler, build_plain_vm, make_context, run_to_completion
from repro.experiments.common import Table
from repro.experiments.units import WorkUnit, execute_serial
from repro.metrics import CycleMeter
from repro.sim.engine import MSEC, SEC
from repro.workloads import Hackbench
from repro.workloads.parsec import PipelineWorkload

VTOP_ONLY = {"enable_vcap": False, "enable_vact": False, "enable_rwc": False,
             "enable_bvs": False, "enable_ivh": False}

def _make_instances(bench: str, fast: bool):
    scale = 0.2 if fast else 0.6
    if bench == "hackbench":
        return [Hackbench(f"hackbench{i}", groups=2, pairs_per_group=4,
                          messages=max(100, int(1200 * scale)),
                          msg_work_ns=10_000, lines=48)
                for i in range(2)]
    if bench == "dedup":
        return [PipelineWorkload(
            f"dedup{i}",
            items=max(200, int(2500 * scale)),
            stages=[("in", 1, 60_000), ("work", 6, 350_000),
                    ("out", 1, 60_000)],
            queue_capacity=16, lines=512)
            for i in range(2)]
    if bench == "nginx":
        # Accept thread handing connections (shared state, ~2 KB) to
        # worker threads — the handoff is what LLC locality accelerates.
        return [PipelineWorkload(
            f"nginx{i}",
            items=max(300, int(3000 * scale)),
            stages=[("accept", 1, 30_000), ("worker", 7, 300_000)],
            queue_capacity=32, lines=32)
            for i in range(2)]
    raise KeyError(bench)


def _run(bench: str, vtop: bool, fast: bool) -> Dict[str, float]:
    env = build_plain_vm(32, sockets=2, smt=1)
    if vtop:
        vs = attach_scheduler(env, "vsched", overrides=VTOP_ONLY)
    else:
        vs = attach_scheduler(env, "cfs")
    ctx = make_context(env, vs, seed=f"fig13-{bench}-{vtop}")
    env.engine.run_until(env.engine.now + 5 * SEC)
    meter = CycleMeter(env)
    meter.start()
    ipis0 = env.kernel.stats.ipis
    instances = _make_instances(bench, fast)
    run_to_completion(env, instances, ctx, timeout_ns=300 * SEC)
    sample = meter.sample()
    elapsed = max(w.elapsed_ns() for w in instances)
    ipis = env.kernel.stats.ipis - ipis0
    return {
        "throughput": 2e12 / elapsed,
        "ipc": sample.ipc_proxy,
        "ipis": float(ipis),
    }


def scenarios(fast: bool) -> List[WorkUnit]:
    cost = 0.3 if fast else 1.5
    return [WorkUnit(exp_id="fig13",
                     label=f"{bench}-{'vtop' if vtop else 'cfs'}",
                     func=_run, config=(bench, vtop, fast), cost_hint=cost,
                     seed=f"fig13-{bench}-{vtop}")
            for bench in ("dedup", "nginx", "hackbench")
            for vtop in (False, True)]


def assemble(fast: bool, results: List[Dict[str, float]]) -> Table:
    table = Table(
        exp_id="fig13",
        title="LLC-aware optimizations with vtop "
              "(normalized to vtop enabled, like the paper's Figure 13)",
        columns=["benchmark", "metric", "CFS_pct", "CFS+vtop_pct"],
        paper_expectation="vtop: ~26% higher throughput, +14.5% IPC, "
                          "up to 99% fewer IPIs",
    )
    it = iter(results)
    for bench in ("dedup", "nginx", "hackbench"):
        base, w = next(it), next(it)
        table.add(bench, "throughput", 100.0 * base["throughput"] / w["throughput"], 100.0)
        table.add(bench, "ipc", 100.0 * base["ipc"] / w["ipc"], 100.0)
        table.add(bench, "ipi", 100.0 * base["ipis"] / max(1.0, w["ipis"]), 100.0)
    return table


def run(fast: bool = False) -> Table:
    return assemble(fast, execute_serial(scenarios(fast)))


def check(table: Table) -> None:
    tp = {r[0]: r[2] for r in table.rows if r[1] == "throughput"}
    ipc = {r[0]: r[2] for r in table.rows if r[1] == "ipc"}
    ipi = {r[0]: r[2] for r in table.rows if r[1] == "ipi"}
    # Throughput: vtop wins on the communication-heavy benchmarks.
    assert tp["hackbench"] < 97.0, tp
    assert tp["dedup"] < 95.0, tp
    assert tp["nginx"] < 103.0, tp
    assert sum(tp.values()) / 3 < 95.0, tp
    # IPC: CFS pays communication stalls.
    assert sum(ipc.values()) / 3 < 100.0, ipc
    # IPIs: CFS sends far more (cross-socket wake-ups miss the polling
    # fast path).
    assert min(ipi.values()) > 105.0, ipi
    assert max(ipi.values()) > 1000.0, ipi  # "up to 99% reduction"
