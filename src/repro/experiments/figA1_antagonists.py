"""Figure A1 — prober degradation under adversarial co-tenants.

Robustness companion to the accuracy figures: each antagonist class from
:mod:`repro.workloads.antagonists` attacks a saturated 4-vCPU VM while the
vProbers run either naive (stock publish paths) or hardened
(``robust_probers``: median/MAD filtering, graze re-qualification,
hysteresis, quarantine with graceful degradation).  The
:class:`~repro.metrics.degradation.GroundTruthTracker` scores both
configurations against hypervisor-side accounting the guest cannot see.

The claim under test: hardening strictly reduces combined
capacity+activity estimate error under **every** antagonist class at the
default intensity, and costs nothing measurable when no antagonist runs.
"""

from __future__ import annotations

from dataclasses import asdict
from typing import List

from repro.cluster import build_plain_vm, install_antagonist
from repro.core.vsched import VSched, VSchedConfig
from repro.experiments.common import Table
from repro.experiments.snapstore import PrefixSpec
from repro.experiments.units import WorkUnit, execute_serial
from repro.guest.task import restartable_body
from repro.metrics.degradation import DegradationReport, GroundTruthTracker
from repro.sim.engine import MSEC, SEC
from repro.workloads.antagonists import ANTAGONIST_KINDS, AntagonistSpec

#: Scenario rows: the five adversary classes plus the clean control.
KINDS = ("none",) + ANTAGONIST_KINDS
CONFIGS = ("naive", "hardened")

#: Default attack strength (the figure's headline column).
DEFAULT_INTENSITY = 1.0


def _intensities(fast: bool):
    return (DEFAULT_INTENSITY,) if fast else (0.33, 0.66, DEFAULT_INTENSITY)


@restartable_body
def _spin(api):
    """Saturating spinner: stateless infinite loop, restart-equivalent."""
    while True:
        yield api.run(1 * MSEC)


def _prefix(config: str):
    """Prefix builder: a saturated VM per prober config, frozen at t=0.

    The divergence point is deliberately *before* the engine runs: the
    antagonist must contend with the probers from the very first window
    (the figure's claim is about estimation under attack, and the
    hardened path's robust statistics behave differently when an attack
    arrives against already-converged clean estimates).  The fork
    therefore saves the world construction, not simulated time, and every
    (kind, intensity) scenario on one side of the naive/hardened switch
    shares one frozen build.  The scheduler seed names only the config;
    the antagonist's own seed still carries (kind, intensity).
    """
    env = build_plain_vm(4)
    cfg = VSchedConfig.enhanced().with_(
        enable_rwc=False,
        robust_probers=(config == "hardened"),
        seed=f"figA1-{config}")
    vs = VSched(env.kernel, cfg)
    # Saturate every vCPU so host run share *is* available capacity.
    for c in range(env.n_vcpus):
        env.kernel.spawn(_spin, name=f"sat{c}", group=vs.workload_group,
                         cpu=c, allowed=(c,))
    return {"engine": env.engine, "env": env, "vs": vs}


def _scenario(roots: dict, kind: str, intensity: float, config: str,
              fast: bool) -> dict:
    """One (antagonist, prober-config) run; returns the report as a dict."""
    warmup = (4 if fast else 8) * SEC
    measure = (16 if fast else 40) * SEC
    env, vs = roots["env"], roots["vs"]
    if kind != "none":
        install_antagonist(
            env, AntagonistSpec(kind=kind, intensity=intensity,
                                seed=f"figA1-{kind}-{intensity}"),
            horizon_ns=warmup + measure)
    tracker = GroundTruthTracker(env, vs.module.store)
    tracker.start(delay_ns=warmup)
    vs.start()
    env.engine.run_until(warmup + measure)
    return asdict(tracker.report(f"{kind}@{intensity}:{config}",
                                 vcap=vs.vcap))


def scenarios(fast: bool) -> List[WorkUnit]:
    cost = 2.0 if fast else 12.0
    prefixes = {config: PrefixSpec(key=f"figA1-{config}", func=_prefix,
                                   config=(config,),
                                   seed=f"figA1-{config}")
                for config in CONFIGS}
    return [WorkUnit(exp_id="figA1", label=f"{kind}-{inten}-{config}",
                     func=_scenario, config=(kind, inten, config, fast),
                     cost_hint=cost,
                     seed=f"figA1-{kind}-{inten}-{config}",
                     prefix=prefixes[config])
            for kind in KINDS
            for inten in _intensities(fast)
            for config in CONFIGS]


def assemble(fast: bool, results: List[dict]) -> Table:
    table = Table(
        exp_id="figA1",
        title="prober estimate error vs hypervisor truth under antagonists",
        columns=["antagonist", "intensity", "config", "cap_err_pct",
                 "act_err_pct", "combined_pct", "rejected", "quarantined"],
        paper_expectation="robust estimation bounds estimate error under "
                          "adversarial timing (graceful degradation; no "
                          "cost in the clean case)",
    )
    it = iter(results)
    for kind in KINDS:
        for inten in _intensities(fast):
            for config in CONFIGS:
                rep = DegradationReport(**next(it))
                table.add(kind, inten, config,
                          100.0 * rep.cap_err, 100.0 * rep.act_err,
                          100.0 * rep.combined_err,
                          rep.samples_rejected, rep.quarantined_windows)
    return table


def run(fast: bool = False) -> Table:
    return assemble(fast, execute_serial(scenarios(fast), fast))


def check(table: Table) -> None:
    combined = {(r[0], r[1], r[2]): r[5] for r in table.rows}
    intensities = sorted({r[1] for r in table.rows})
    top = max(intensities)
    for kind in ANTAGONIST_KINDS:
        naive = combined[(kind, top, "naive")]
        hard = combined[(kind, top, "hardened")]
        # The headline claim: strictly less combined error, every class.
        assert hard < naive, (kind, naive, hard)
    # Clean control: hardening must not cost accuracy (small slack for
    # the sparser publish cadence).
    clean_naive = combined[("none", top, "naive")]
    clean_hard = combined[("none", top, "hardened")]
    assert clean_hard <= clean_naive + 1.0, (clean_naive, clean_hard)
    # The hardened path must actually have engaged under attack.
    rejected = {(r[0], r[2]): r[6] for r in table.rows if r[1] == top}
    assert rejected[("probe_poisoner", "hardened")] > 0, rejected
