"""Figure 4 — deficient work conservation.

Three sub-experiments (§2.3), each comparing a *work-conserving* placement
(all vCPUs usable) against a *non-work-conserving* one (problematic vCPUs
manually excluded via cpuset):

* **straggler** — a 16-vCPU VM with one vCPU at ~10% capacity (a
  high-priority host task stresses its core); excluding the straggler
  yields up to 43% higher throughput for synchronization-intensive
  benchmarks;
* **stacking** — vCPUs stacked in pairs on 8 cores; excluding one vCPU per
  stack avoids expensive vCPU switches (up to 30%);
* **priority inversion** — a low-priority best-effort workload runs on one
  vCPU of each stack; under work conservation the benchmark's threads get
  stacked above/below it and suffer badly (paper: up to 6.7x).

Throughput here is the inverse of job completion time, normalized to the
non-work-conserving run (higher is better, ≤100 expected for
work-conserving).
"""

from __future__ import annotations

from typing import List, Optional

from repro.cluster import attach_scheduler, build_plain_vm, make_context, run_to_completion
from repro.experiments.common import Table
from repro.experiments.units import WorkUnit, execute_serial
from repro.guest.task import Policy
from repro.core.weights import weight_for_nice
from repro.sim.engine import MSEC, SEC, USEC
from repro.workloads import build_parsec

BENCHMARKS = ("canneal", "dedup", "streamcluster")
CASES = ("straggler", "stacking", "priority-inversion")
#: Case name -> seed letter (kept from the pre-work-unit seeds so tables
#: render byte-identically across the migration).
_CASE_SEED = {"straggler": "s", "stacking": "k", "priority-inversion": "p"}


def _straggler_env():
    env = build_plain_vm(16)
    env.machine.add_host_task("hog", weight=weight_for_nice(-10), pinned=(0,))
    return env


def _build_stacked(host_slice_ns: int = 4 * MSEC):
    from repro.cluster.vmtypes import VmEnvironment
    from repro.guest.kernel import GuestKernel
    from repro.hw.topology import HostTopology
    from repro.hypervisor.machine import Machine
    from repro.sim.engine import Engine

    engine = Engine()
    topo = HostTopology(1, 8, smt=1)
    machine = Machine(engine, topo, host_slice_ns=host_slice_ns)
    pins = [(i // 2,) for i in range(16)]  # vCPUs 2k,2k+1 share thread k
    vm = machine.new_vm("vm", 16, pinned_map=pins)
    kernel = GuestKernel(vm)
    return VmEnvironment(engine, machine, vm, kernel,
                         stacked_pairs=[(2 * k, 2 * k + 1) for k in range(8)])


def _run_case(env, benchmark: str, threads: int, scale: float,
              excluded: Optional[set], best_effort_on: Optional[list],
              seed: str) -> float:
    """Returns throughput = 1/elapsed (arbitrary units)."""
    vs = attach_scheduler(env, "cfs")
    if excluded:
        allowed = frozenset(range(env.n_vcpus)) - frozenset(excluded)
        vs.workload_group.set_allowed(allowed)
    ctx = make_context(env, vs, seed)
    if best_effort_on:
        def spinner(api):
            while True:
                yield api.run(500 * USEC)
        for c in best_effort_on:
            env.kernel.spawn(spinner, f"be-{c}", policy=Policy.IDLE,
                             group=vs.besteffort_group, cpu=c, allowed=(c,))
    wl = build_parsec(benchmark, threads=threads, scale=scale)
    run_to_completion(env, [wl], ctx, timeout_ns=300 * SEC)
    return 1e12 / wl.elapsed_ns()


def _scenario(case: str, bench: str, variant: str, fast: bool) -> float:
    """Work-unit body: one (case, benchmark, wc/nwc) placement run.

    Priority inversion: best-effort work runs on one vCPU of each stack.
    Work-conserving placement spreads the benchmark onto the *other* stack
    members, so the host arbitrates between the stacked vCPUs and the
    low-priority work steals half the core.  The non-work-conserving run
    excludes the vCPUs that do NOT run the best-effort work: the benchmark
    lands on the same vCPUs, where guest priorities are enforced.
    """
    scale = 0.12 if fast else 0.5
    seed = f"fig4-{_CASE_SEED[case]}-{bench}-{variant}"
    nwc = variant == "nwc"
    if case == "straggler":
        return _run_case(_straggler_env(), bench, threads=16, scale=scale,
                         excluded={0} if nwc else None,
                         best_effort_on=None, seed=seed)
    if case == "stacking":
        return _run_case(_build_stacked(), bench, threads=16, scale=scale,
                         excluded={2 * k + 1 for k in range(8)} if nwc
                         else None,
                         best_effort_on=None, seed=seed)
    if case == "priority-inversion":
        be_cpus = [2 * k + 1 for k in range(8)]
        return _run_case(_build_stacked(), bench, threads=8, scale=scale,
                         excluded={2 * k for k in range(8)} if nwc else None,
                         best_effort_on=be_cpus, seed=seed)
    raise KeyError(case)


def scenarios(fast: bool) -> List[WorkUnit]:
    cost = 0.4 if fast else 2.0
    return [WorkUnit(exp_id="fig4", label=f"{case}-{bench}-{variant}",
                     func=_scenario, config=(case, bench, variant, fast),
                     cost_hint=cost,
                     seed=f"fig4-{_CASE_SEED[case]}-{bench}-{variant}")
            for case in CASES
            for bench in BENCHMARKS
            for variant in ("wc", "nwc")]


def assemble(fast: bool, results: List[float]) -> Table:
    table = Table(
        exp_id="fig4",
        title="Work-conserving vs non-work-conserving placement "
              "(throughput normalized to non-work-conserving; higher is better)",
        columns=["case", "benchmark", "work_conserving_pct",
                 "non_work_conserving_pct"],
        paper_expectation="leaving straggler/stacked vCPUs idle wins by up "
                          "to 43% / 30% / 6.7x (priority inversion)",
    )
    it = iter(results)
    for case in CASES:
        for bench in BENCHMARKS:
            wc, nwc = next(it), next(it)
            table.add(case, bench, 100.0 * wc / nwc, 100.0)
    return table


def run(fast: bool = False) -> Table:
    return assemble(fast, execute_serial(scenarios(fast)))


def check(table: Table) -> None:
    for row in table.rows:
        case, bench, wc, nwc = row
        assert nwc == 100.0
        assert wc < 101.0, row  # work conservation never wins here
    # At least one straggler case loses noticeably, and priority inversion
    # hurts the most on average.
    stragglers = [r[2] for r in table.rows if r[0] == "straggler"]
    stacking = [r[2] for r in table.rows if r[0] == "stacking"]
    prio = [r[2] for r in table.rows if r[0] == "priority-inversion"]
    assert min(stragglers) < 92.0, stragglers
    assert min(stacking) < 97.0, stacking
    assert min(prio) < 75.0, prio  # inversion hurts badly
