"""Experiment framework: result tables, registry, rendering.

Every paper artifact (table or figure) has one module exposing
``run(fast=False) -> Table`` and ``check(table) -> None``.  ``fast`` mode
shrinks workload sizes and durations so the whole suite fits in a test
run; the qualitative shape assertions in ``check`` hold in both modes.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence


@dataclass
class Table:
    """One regenerated paper artifact."""

    exp_id: str
    title: str
    columns: List[str]
    rows: List[List] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)
    #: What the paper reports for this artifact, for EXPERIMENTS.md.
    paper_expectation: str = ""

    def add(self, *values) -> None:
        if len(values) != len(self.columns):
            raise ValueError(
                f"row width {len(values)} != {len(self.columns)} columns")
        self.rows.append(list(values))

    def column(self, name: str) -> List:
        idx = self.columns.index(name)
        return [r[idx] for r in self.rows]

    def cell(self, row_key, column: str):
        """Value at (first row whose first cell == row_key, column)."""
        cidx = self.columns.index(column)
        for r in self.rows:
            if r[0] == row_key:
                return r[cidx]
        raise KeyError(row_key)

    # ------------------------------------------------------------------
    def render(self) -> str:
        def fmt(v) -> str:
            if isinstance(v, float):
                return f"{v:.2f}"
            return str(v)

        str_rows = [[fmt(v) for v in row] for row in self.rows]
        widths = [len(c) for c in self.columns]
        for row in str_rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines = [f"== {self.exp_id}: {self.title} =="]
        header = "  ".join(c.ljust(widths[i]) for i, c in enumerate(self.columns))
        lines.append(header)
        lines.append("-" * len(header))
        for row in str_rows:
            lines.append("  ".join(cell.ljust(widths[i])
                                   for i, cell in enumerate(row)))
        for note in self.notes:
            lines.append(f"note: {note}")
        if self.paper_expectation:
            lines.append(f"paper: {self.paper_expectation}")
        return "\n".join(lines)


#: experiment id -> module path
EXPERIMENTS: Dict[str, str] = {
    "fig2": "repro.experiments.fig02_vcpu_latency",
    "fig3": "repro.experiments.fig03_stalled_task",
    "fig4": "repro.experiments.fig04_work_conservation",
    "fig10a": "repro.experiments.fig10_probers",
    "fig10b": "repro.experiments.fig10_probers",
    "tab2": "repro.experiments.tab02_vtop_time",
    "fig11": "repro.experiments.fig11_vcap_effect",
    "fig12": "repro.experiments.fig12_smt_aware",
    "fig13": "repro.experiments.fig13_llc_aware",
    "fig14": "repro.experiments.fig14_bvs",
    "tab3": "repro.experiments.tab03_masstree_breakdown",
    "fig15": "repro.experiments.fig15_ivh",
    "tab4": "repro.experiments.tab04_ivh_activity",
    "fig16": "repro.experiments.fig16_adaptability",
    "fig17": "repro.experiments.fig17_multitenant",
    "fig18": "repro.experiments.fig18_overall_rcvm",
    "fig19": "repro.experiments.fig19_overall_hpvm",
    "fig20": "repro.experiments.fig20_cost",
    "fig21": "repro.experiments.fig21_overhead",
    "figA1": "repro.experiments.figA1_antagonists",
}


def load_experiment(exp_id: str):
    """Return the module implementing ``exp_id``."""
    if exp_id not in EXPERIMENTS:
        raise KeyError(f"unknown experiment {exp_id!r}; "
                       f"known: {sorted(EXPERIMENTS)}")
    return importlib.import_module(EXPERIMENTS[exp_id])


def run_experiment(exp_id: str, fast: bool = False) -> Table:
    mod = load_experiment(exp_id)
    runner = getattr(mod, f"run_{exp_id}", None) or mod.run
    return runner(fast=fast)


def check_experiment(exp_id: str, table: Table) -> None:
    mod = load_experiment(exp_id)
    checker = getattr(mod, f"check_{exp_id}", None) or mod.check
    checker(table)
