"""Figure 11 — the impact of accurate vCPU capacity (vcap) on CFS.

(a) *Asymmetric capacity*: a 16-vCPU VM whose last four vCPUs have 2× the
capacity of the rest; Sysbench runs 4 CPU-bound threads.  Stock CFS's
steal-based capacity estimate is misled by idle vCPUs (no steal observed →
they look strong), so threads spend under half their time on the fast
vCPUs; with vcap the misfit/active-balance machinery reliably finds them
(paper: 44% → 81% residency, +32% throughput).

(b) *Symmetric capacity*: all vCPUs equal; the fluctuating default estimate
causes spurious migrations to idle vCPUs that merely look stronger.  vcap
removes them (paper: 74% fewer migrations, +4% throughput).
"""

from __future__ import annotations

from typing import List, Tuple

from repro.cluster import attach_scheduler, build_plain_vm, make_context
from repro.experiments.common import Table
from repro.experiments.snapstore import PrefixSpec
from repro.experiments.units import WorkUnit, execute_serial
from repro.guest.task import TaskState
from repro.sim.engine import MSEC, SEC
from repro.workloads import SysbenchCpu

VCAP_ONLY = {"enable_vtop": False, "enable_rwc": False}

SCENARIOS = (("asymmetric", True), ("symmetric", False))
CONFIGS = (("CFS", False), ("CFS+vcap", True))


def _build(asymmetric: bool):
    env = build_plain_vm(16)
    # Slow vCPUs share their core 50/50 with a co-located stress task (the
    # paper's Sysbench-in-another-VM); fast vCPUs (asymmetric case) run
    # dedicated.
    for i in range(16):
        if asymmetric and i >= 12:
            continue  # full-capacity vCPU
        env.machine.add_host_task(f"stress{i}", pinned=(i,))
    # Host housekeeping noise: short high-priority bursts on every core.
    # Real multi-tenant hosts always have some — it is what makes the
    # tick-grained steal-based capacity estimate twitchy (a single noisy
    # tick craters the estimate), while vcap's 100 ms windows smooth it.
    from repro.core.weights import weight_for_nice
    for i in range(16):
        env.machine.add_host_task(
            f"hk{i}", weight=weight_for_nice(-10), pinned=(i,),
            duty_on_ns=int(2.4 * MSEC), duty_off_ns=int(5.6 * MSEC))
    return env


def _prefix(scenario: str, config: str):
    """Prefix builder: the world at the end of the 8 s warm-up.

    Each (scenario, config) pair has its own prefix — the scheduler mode
    shapes the world from t=0, so nothing is shared across configs.  The
    measurement phase still diverges from the frozen warm world, which is
    what keeps a re-run of the measurement (longer duration, extra
    samplers) from paying the warm-up again.
    """
    asym = dict(SCENARIOS)[scenario]
    vcap = dict(CONFIGS)[config]
    env = _build(asym)
    mode = "enhanced" if vcap else "cfs"
    vs = attach_scheduler(env, mode, overrides=VCAP_ONLY if vcap else None)
    ctx = make_context(env, vs, seed=f"fig11-{scenario}-{config}")
    wl = SysbenchCpu(threads=4)
    wl.start(ctx)
    # Warm up PELT/probers; measurement diverges from this instant.
    env.engine.run_until(env.engine.now + 8 * SEC)
    return {"engine": env.engine, "env": env, "wl": wl}


class _ResidencySampler:
    """Counts fast-core (index >= 12) residency of running tasks.

    A bound method rather than a closure so the pending callback stays
    deep-copyable (guard_world) if this scenario's prefix chain is ever
    extended past the measurement start.
    """

    def __init__(self, env, wl, stop: int, step: int):
        self.env = env
        self.wl = wl
        self.stop = stop
        self.step = step
        self.fast_time = 0
        self.samples = 0

    def tick(self) -> None:
        for t in self.wl.tasks:
            if t.state == TaskState.RUNNING and t.cpu is not None:
                self.samples += 1
                if t.cpu.index >= 12:
                    self.fast_time += 1
        if self.env.engine.now < self.stop:
            self.env.engine.call_in(self.step, self.tick)


def _scenario(roots: dict, fast: bool) -> Tuple:
    """Work-unit body: measure placement/throughput from the warm world."""
    env, wl = roots["env"], roots["wl"]
    duration_ns = (10 if fast else 40) * SEC
    events0 = wl.events
    migr0 = env.kernel.stats.migrations

    # Sample where the threads execute.
    stop = env.engine.now + duration_ns
    sampler = _ResidencySampler(env, wl, stop, step=10 * MSEC)
    env.engine.call_in(sampler.step, sampler.tick)
    env.engine.run_until(stop)
    events = wl.events - events0
    migrations = env.kernel.stats.migrations - migr0
    residency = 100.0 * sampler.fast_time / max(1, sampler.samples)
    return events, migrations, residency


def scenarios(fast: bool) -> List[WorkUnit]:
    cost = 2.3 if fast else 9.0
    return [WorkUnit(exp_id="fig11", label=f"{scenario}-{config}",
                     func=_scenario, config=(fast,),
                     cost_hint=cost, seed=f"fig11-{scenario}-{config}",
                     prefix=PrefixSpec(key=f"fig11-{scenario}-{config}",
                                       func=_prefix,
                                       config=(scenario, config),
                                       seed=f"fig11-{scenario}-{config}"))
            for scenario, _asym in SCENARIOS
            for config, _vcap in CONFIGS]


def assemble(fast: bool, results: List[Tuple]) -> Table:
    table = Table(
        exp_id="fig11",
        title="Impact of accurate vCPU capacity (Sysbench, 4 threads)",
        columns=["scenario", "config", "events", "migrations_per_thread",
                 "fast_vcpu_residency_pct"],
        paper_expectation="asymmetric: residency 44%->81%, +32% throughput; "
                          "symmetric: 74% fewer migrations, +4% throughput",
    )
    it = iter(results)
    for scenario, asym in SCENARIOS:
        for config, _vcap in CONFIGS:
            ev, mig, res = next(it)
            table.add(scenario, config, ev, mig / 4.0,
                      res if asym else float("nan"))
    return table


def run(fast: bool = False) -> Table:
    return assemble(fast, execute_serial(scenarios(fast), fast))


def check(table: Table) -> None:
    rows = {(r[0], r[1]): r for r in table.rows}
    asym_cfs = rows[("asymmetric", "CFS")]
    asym_vcap = rows[("asymmetric", "CFS+vcap")]
    sym_cfs = rows[("symmetric", "CFS")]
    sym_vcap = rows[("symmetric", "CFS+vcap")]
    # Residency on fast vCPUs improves decisively with vcap.
    assert asym_vcap[4] > asym_cfs[4] + 15.0, (asym_cfs[4], asym_vcap[4])
    assert asym_vcap[4] > 70.0, asym_vcap[4]
    # Throughput improves in the asymmetric case.
    assert asym_vcap[2] > asym_cfs[2] * 1.10, (asym_cfs[2], asym_vcap[2])
    # Spurious migrations drop substantially in the symmetric case.
    assert sym_vcap[3] < sym_cfs[3] * 0.6, (sym_cfs[3], sym_vcap[3])
    # Symmetric throughput is in the same ballpark.  (In this substrate
    # the spurious churn occasionally harvests a migration target's banked
    # sleeper credit, so unlike the paper's +4% it can come out slightly
    # ahead; the headline result is the migration reduction.)
    assert sym_vcap[2] > sym_cfs[2] * 0.90, (sym_cfs[2], sym_vcap[2])
