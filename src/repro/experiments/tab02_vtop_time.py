"""Table 2 — vtop probing time for rcvm and hpvm, full vs validation.

The paper reports sub-second probing: rcvm 547 ms full / 388 ms validate,
hpvm 665 ms full / 160 ms validate.  Validation is cheaper than full
probing, and rcvm's validation is relatively expensive for its size because
confirming the stacked pair requires waiting out the transfer timeout.
Absolute numbers differ on the simulated substrate; the shape assertions
capture those relations.
"""

from __future__ import annotations

from repro.cluster import build_hpvm, build_rcvm
from repro.core.module import VSchedModule
from repro.experiments.common import Table
from repro.probers import VTop
from repro.sim.engine import MSEC, SEC
from repro.sim.rng import make_rng


def _measure(env, label: str):
    module = VSchedModule(env.kernel)
    vtop = VTop(env.kernel, module, make_rng(f"tab2-{label}"))
    state = {}
    vtop.probe_full(lambda view: state.update(full=True))
    env.engine.run_until(env.engine.now + 60 * SEC)
    if "full" not in state:
        raise RuntimeError(f"{label}: full probe did not finish")
    full_ns = vtop.last_full_ns
    vtop.validate(lambda view: state.update(val=True))
    env.engine.run_until(env.engine.now + 60 * SEC)
    if "val" not in state:
        raise RuntimeError(f"{label}: validation did not finish")
    return full_ns, vtop.last_validate_ns


def run(fast: bool = False) -> Table:
    table = Table(
        exp_id="tab2",
        title="vtop probing time (ms)",
        columns=["config", "full_ms", "validate_ms"],
        paper_expectation="rcvm 547/388 ms, hpvm 665/160 ms: validation "
                          "cheaper than full; rcvm validation dominated by "
                          "stacking confirmation",
    )
    rc_full, rc_val = _measure(build_rcvm(), "rcvm")
    hp_full, hp_val = _measure(build_hpvm(), "hpvm")
    table.add("rcvm", rc_full / MSEC, rc_val / MSEC)
    table.add("hpvm", hp_full / MSEC, hp_val / MSEC)
    return table


def check(table: Table) -> None:
    rc_full = table.cell("rcvm", "full_ms")
    rc_val = table.cell("rcvm", "validate_ms")
    hp_full = table.cell("hpvm", "full_ms")
    hp_val = table.cell("hpvm", "validate_ms")
    # Sub-second probing.
    for v in (rc_full, rc_val, hp_full, hp_val):
        assert v < 1000.0, table.rows
    # Validation no slower than full probing (paper: 1.4-4x faster).
    assert rc_val <= rc_full * 1.05, (rc_val, rc_full)
    assert hp_val <= hp_full * 1.05, (hp_val, hp_full)
    # hpvm validation is much cheaper relative to its full probe than
    # rcvm's (no stacking to confirm).
    assert hp_val / hp_full < rc_val / rc_full, table.rows
