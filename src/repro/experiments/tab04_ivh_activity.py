"""Table 4 — canneal execution time: activity-aware vs activity-unaware ivh.

Same environment as Figure 15.  The activity-unaware strawman migrates the
running task without pre-waking the target, so the task often lands on an
inactive vCPU and pays the migration delay; the paper shows the
activity-aware protocol consistently faster across thread counts.
"""

from __future__ import annotations

from repro.cluster import attach_scheduler, build_plain_vm, make_context, run_to_completion
from repro.experiments.common import Table
from repro.experiments.fig15_ivh import _build_env, _make
from repro.sim.engine import SEC

FULL_THREADS = (1, 2, 4, 8, 16)
FAST_THREADS = (1, 4, 16)


def _elapsed(threads: int, activity_aware: bool, scale: float) -> int:
    env = _build_env()
    vs = attach_scheduler(env, "vsched", overrides={
        "enable_bvs": False, "enable_rwc": False,
        "ivh_activity_aware": activity_aware})
    # One seed per thread count, shared by both configs: the pair differs
    # only in the migration protocol, not in the workload's random stream
    # — at fast scale a per-config seed drowns the protocol effect in
    # arrival noise (the old fast-mode shape flake).
    ctx = make_context(env, vs, seed=f"tab4-{threads}")
    env.engine.run_until(env.engine.now + 6 * SEC)
    wl = _make("canneal", threads, scale)
    run_to_completion(env, [wl], ctx, timeout_ns=600 * SEC)
    return wl.elapsed_ns()


def run(fast: bool = False) -> Table:
    threads_list = FAST_THREADS if fast else FULL_THREADS
    scale = 0.2 if fast else 0.4
    table = Table(
        exp_id="tab4",
        title="Canneal execution time (s): ivh activity-aware vs unaware",
        columns=["config"] + [f"{t}thr" for t in threads_list],
        paper_expectation="activity-aware migration is consistently faster "
                          "(e.g. 408 vs 348 s at 1 thread)",
    )
    unaware = [_elapsed(t, False, scale) / 1e9 for t in threads_list]
    aware = [_elapsed(t, True, scale) / 1e9 for t in threads_list]
    table.add("ivh (activity-unaware)", *unaware)
    table.add("ivh (activity-aware)", *aware)
    return table


def check(table: Table) -> None:
    unaware = table.rows[0][1:]
    aware = table.rows[1][1:]
    # Activity awareness wins (or ties) at every thread count and wins
    # clearly somewhere.
    for u, a in zip(unaware, aware):
        assert a <= u * 1.06, (u, a)
    assert any(a < u * 0.93 for u, a in zip(unaware, aware)), (unaware, aware)
