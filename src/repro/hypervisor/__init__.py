"""Hypervisor substrate: VMs, vCPU threads, host scheduler, bandwidth control."""

from repro.hypervisor.bandwidth import BandwidthController
from repro.hypervisor.entity import (
    EntityState,
    HostEntity,
    HostTask,
    NICE0_WEIGHT,
    weight_for_nice,
)
from repro.hypervisor.machine import Machine
from repro.hypervisor.runqueue import HostRunqueue
from repro.hypervisor.vcpu import VCpuThread, VM

__all__ = [
    "Machine",
    "VM",
    "VCpuThread",
    "HostEntity",
    "HostTask",
    "HostRunqueue",
    "BandwidthController",
    "EntityState",
    "NICE0_WEIGHT",
    "weight_for_nice",
]
