"""The host machine: topology + host scheduler + speed dynamics.

One :class:`Machine` owns the hardware topology, a host runqueue per
hardware thread, the SMT/DVFS speed dynamics, and the placement policy for
unpinned entities (least-loaded wakeup placement plus a periodic rebalance,
standing in for the host kernel's load balancer in the free-scheduling
multi-tenant experiments of §5.8).

Experiments manufacture vCPU performance features exactly the way the paper
does (§5.1):

* capacity — bandwidth quota/period on a vCPU, or a high-weight
  :class:`~repro.hypervisor.entity.HostTask` stressing the core;
* activity/latency — the co-runner slice (``set_slice``) or the bandwidth
  period length;
* topology — pinning maps (stacking = two vCPUs pinned to one thread).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.hw.cache import CacheModel
from repro.hw.speed import SpeedConfig
from repro.hw.topology import Core, HostTopology, HwThread
from repro.hypervisor.bandwidth import BandwidthController
from repro.hypervisor.entity import EntityState, HostEntity, HostTask, NICE0_WEIGHT
from repro.hypervisor.runqueue import HostRunqueue
from repro.hypervisor.vcpu import VCpuThread, VM
from repro.sim.engine import Engine, MSEC, elision_default
from repro.sim.tracing import Tracer


class Machine:
    """Simulated physical host running VMs under a KVM-like scheduler."""

    def __init__(
        self,
        engine: Engine,
        topology: HostTopology,
        speed: Optional[SpeedConfig] = None,
        cache: Optional[CacheModel] = None,
        tracer: Optional[Tracer] = None,
        host_slice_ns: int = 4 * MSEC,
        wakeup_gran_ns: Optional[int] = 1 * MSEC,
        balance_interval_ns: int = 4 * MSEC,
    ):
        """``wakeup_gran_ns`` controls host wakeup preemption: the default
        (1 ms) lets a long-sleeping vCPU preempt a co-runner quickly, like
        stock CFS; pass ``None`` to disable it, which is how the paper's
        controlled experiments pin vCPU latency to the co-runner slice."""
        self.engine = engine
        self.topology = topology
        self.speed = speed or SpeedConfig()
        self.cache = cache or CacheModel()
        self.tracer = tracer or Tracer(enabled=False)
        self.balance_interval_ns = balance_interval_ns
        self.runqueues: List[HostRunqueue] = [
            HostRunqueue(self, t, slice_ns=host_slice_ns, wakeup_gran_ns=wakeup_gran_ns)
            for t in topology.threads
        ]
        self.vms: List[VM] = []
        self.host_tasks: List[HostTask] = []
        self._core_warm: Dict[int, bool] = {c.index: False for c in topology.cores}
        self._core_ramp_event: Dict[int, object] = {}
        self._has_unpinned = False
        self._balance_event = None
        #: Timer elision (tickless host): suppress balance ticks while every
        #: runqueue is quiescent and let DVFS ramp events chase their logical
        #: due instead of being cancelled/re-pushed on every busy flip.
        self.elide_timers = elision_default()
        #: Next grid instant of the balance chain (origin: first unpinned
        #: registration + interval).  Tracked in both modes so elision can
        #: re-arm on exactly the instants the eager chain would fire at.
        self._balance_next: Optional[int] = None
        # Priority lanes keep same-instant ordering identical whether a
        # timer event was kept, elided, or re-armed — allocated
        # unconditionally so both modes agree.
        self._balance_lane = engine.alloc_lane()
        self._core_lane: Dict[int, int] = {
            c.index: engine.alloc_lane() for c in topology.cores}
        #: Pending DVFS target per core: (warm, logical_due) or None.
        self._core_ramp_goal: Dict[int, Optional[Tuple[bool, int]]] = {}

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    def new_vm(
        self,
        name: str,
        n_vcpus: int,
        pinned_map: Optional[Sequence[Optional[Tuple[int, ...]]]] = None,
        weight: int = NICE0_WEIGHT,
    ) -> VM:
        """Create a VM with ``n_vcpus`` vCPU threads.

        ``pinned_map[i]`` gives the allowed hardware-thread indices of vCPU
        ``i`` (a 1-tuple pins it; None leaves it free — the host places it).
        """
        vm = VM(self, name)
        for i in range(n_vcpus):
            pins = pinned_map[i] if pinned_map is not None else None
            vcpu = VCpuThread(vm, i, weight=weight, pinned=pins)
            vm.vcpus.append(vcpu)
            self._register(vcpu)
        self.vms.append(vm)
        return vm

    def add_host_task(
        self,
        name: str,
        weight: int = NICE0_WEIGHT,
        pinned: Optional[Tuple[int, ...]] = None,
        duty_on_ns: Optional[int] = None,
        duty_off_ns: Optional[int] = None,
        start: bool = True,
        phase_ns: int = 0,
    ) -> HostTask:
        """Add a host-side stress task (contention generator).

        ``phase_ns`` delays the first wake, so a duty-cycling task can be
        phase-locked to an arbitrary grid origin (the antagonist scenarios
        align theirs with the guest tick or the vcap window schedule).
        """
        task = HostTask(name, weight=weight, pinned=pinned,
                        duty_on_ns=duty_on_ns, duty_off_ns=duty_off_ns)
        self.host_tasks.append(task)
        self._register(task)
        if start:
            first = (self._duty_on if task.duty_on_ns is not None
                     else self.wake_entity)
            if phase_ns > 0:
                self.engine.call_in(phase_ns, first, task)
            else:
                first(task)
        return task

    def remove_host_task(self, task: HostTask) -> None:
        """Stop a stress task permanently (phase changes in §5.7/§5.8)."""
        task.duty_on_ns = None  # stop any duty cycling from rescheduling
        self.block_entity(task)

    def set_bandwidth(self, entity: HostEntity, quota_ns: Optional[int],
                      period_ns: int = 10 * MSEC, phase_ns: int = 0) -> None:
        """Apply or change CPU bandwidth control on an entity.

        ``quota_ns=None`` removes the controller.
        """
        if quota_ns is None:
            if entity.bandwidth is not None:
                entity.bandwidth.cancel()
                entity.bandwidth = None
            return
        if entity.bandwidth is not None:
            entity.bandwidth.set_limits(quota_ns, period_ns)
            return
        ctl = BandwidthController(self.engine, quota_ns, period_ns, phase_ns)
        ctl.owner = entity
        entity.bandwidth = ctl

    def set_slice(self, thread_index: int, slice_ns: int) -> None:
        """Tune the host slice quantum of one hardware thread."""
        self.runqueues[thread_index].set_slice(slice_ns)

    def set_all_slices(self, slice_ns: int) -> None:
        for rq in self.runqueues:
            rq.set_slice(slice_ns)

    def _register(self, entity: HostEntity) -> None:
        if entity.pinned is None:
            self._has_unpinned = True
            self._start_host_balance()
        else:
            for idx in entity.pinned:
                if not 0 <= idx < len(self.runqueues):
                    raise ValueError(f"pin target {idx} out of range for {entity}")
            # Home the entity on its first allowed thread so bandwidth
            # refreshes have a runqueue to talk to before the first wake.
            entity.rq = self.runqueues[entity.pinned[0]]

    def repin(self, entity: HostEntity, pinned: Optional[Tuple[int, ...]]) -> None:
        """Change an entity's CPU affinity at runtime (VM reconfiguration,
        §5.7).  A running or queued entity is moved to an allowed thread."""
        if pinned is not None:
            for idx in pinned:
                if not 0 <= idx < len(self.runqueues):
                    raise ValueError(
                        f"repin target {idx} out of range for {entity}")
        entity.pinned = tuple(pinned) if pinned is not None else None
        if entity.pinned is None:
            self._has_unpinned = True
            self._start_host_balance()
        rq = entity.rq
        on_allowed = (entity.pinned is None
                      or (rq is not None and rq.thread.index in entity.pinned))
        if entity.state == EntityState.RUNNING and not on_allowed:
            rq._deschedule_current(requeue=False)
            entity.state = EntityState.QUEUED
            rq._dispatch()
            if rq.current is None:
                self.on_thread_busy_changed(rq.thread)
            target = self._choose_runqueue(entity)
            entity.end_wait(self.engine.now)
            target.enqueue(entity)
        elif entity.state == EntityState.QUEUED and not on_allowed:
            rq.steal_waiting(entity)
            target = self._choose_runqueue(entity)
            target.enqueue(entity)
        elif entity.state in (EntityState.BLOCKED, EntityState.THROTTLED):
            if not on_allowed and entity.pinned is not None:
                entity.rq = self.runqueues[entity.pinned[0]]

    # ------------------------------------------------------------------
    # Wake / block
    # ------------------------------------------------------------------
    def wake_entity(self, entity: HostEntity) -> None:
        if entity.state in (EntityState.RUNNING, EntityState.QUEUED):
            entity.wants_cpu = True
            return
        entity.wants_cpu = True
        if entity.state == EntityState.THROTTLED:
            return  # refresh will enqueue it
        if entity.bandwidth is not None and entity.bandwidth.exhausted():
            rq = entity.rq or self._choose_runqueue(entity)
            entity.rq = rq
            entity.state = EntityState.THROTTLED
            entity.begin_wait(self.engine.now)
            return
        rq = self._choose_runqueue(entity)
        rq.enqueue(entity)

    def block_entity(self, entity: HostEntity) -> None:
        if entity.state == EntityState.BLOCKED:
            entity.wants_cpu = False
            return
        rq = entity.rq
        if rq is None:
            entity.wants_cpu = False
            entity.state = EntityState.BLOCKED
            return
        rq.block_entity(entity)

    def _choose_runqueue(self, entity: HostEntity) -> HostRunqueue:
        """Wakeup placement: least-loaded allowed hardware thread."""
        if entity.pinned is not None:
            if len(entity.pinned) == 1:
                return self.runqueues[entity.pinned[0]]
            candidates = [self.runqueues[i] for i in entity.pinned]
        else:
            candidates = self.runqueues
        return min(candidates, key=lambda rq: (rq.nr_runnable(), rq.thread.index))

    # ------------------------------------------------------------------
    # Host load balancing (unpinned entities, §5.8)
    # ------------------------------------------------------------------
    def _start_host_balance(self) -> None:
        """Begin (or join) the periodic balance chain.

        The first unpinned registration fixes the grid origin.  The eager
        mode arms the chain immediately; the elided mode arms only if a
        backlog already exists (otherwise :meth:`_note_host_waiting` arms
        it when contention first appears)."""
        if self._balance_next is None:
            self._balance_next = self.engine.now + self.balance_interval_ns
            if self.elide_timers and any(rq.waiting for rq in self.runqueues):
                self._balance_event = self.engine.call_at(
                    self._balance_next, self._host_balance,
                    prio=self._balance_lane)
        if not self.elide_timers and self._balance_event is None:
            self._balance_event = self.engine.call_at(
                self._balance_next, self._host_balance,
                prio=self._balance_lane)

    def _note_host_waiting(self) -> None:
        """A host entity just started waiting: re-arm the balance chain.

        Called by runqueues whenever something lands on a waiting list.
        Grid points skipped while everything was quiescent are counted as
        elided — the eager chain would have fired a no-op at each.  A grid
        point exactly at ``now`` has been passed only if the eager chain's
        event would already have popped this instant (its lane is below the
        engine's instant high-water mark); otherwise it is still to come
        and must be armed at ``now`` so it sees this enqueue, exactly as
        the eager chain would."""
        if (not self.elide_timers or self._balance_next is None
                or self._balance_event is not None):
            return
        now = self.engine.now
        nxt = self._balance_next
        if nxt <= now:
            interval = self.balance_interval_ns
            skipped, rem = divmod(now - nxt, interval)
            if rem:
                skipped += 1  # last grid point lies strictly before now
            else:
                key = self.engine.current_key()
                if key is None or self._balance_lane < key[1]:
                    # Between runs the instant has fully drained; inside
                    # one, the fire at now already ordered before us.
                    skipped += 1
            if skipped:
                self.engine.note_elided(skipped, self._host_balance)
                nxt += skipped * interval
                self._balance_next = nxt
        self._balance_event = self.engine.call_at(
            nxt, self._host_balance, prio=self._balance_lane)

    def _host_balance(self) -> None:
        # Advance the grid before the body: enqueues below re-enter
        # _note_host_waiting, which must see the *next* grid point.
        self._balance_event = None
        self._balance_next += self.balance_interval_ns
        idle = [rq for rq in self.runqueues if rq.is_idle()]
        for rq in idle:
            busiest = max(self.runqueues, key=lambda r: len(r.waiting))
            if not busiest.waiting:
                break
            movable = [e for e in busiest.waiting
                       if e.pinned is None or rq.thread.index in e.pinned]
            if not movable:
                continue
            victim = min(movable, key=lambda e: e.vruntime)
            busiest.steal_waiting(victim)
            victim.vruntime += rq.min_vruntime - busiest.min_vruntime
            rq.enqueue(victim)
        if self._balance_event is None and (
                not self.elide_timers
                or any(rq.waiting for rq in self.runqueues)):
            self._balance_event = self.engine.call_at(
                self._balance_next, self._host_balance,
                prio=self._balance_lane)

    # ------------------------------------------------------------------
    # Speed dynamics (SMT contention + DVFS ramp)
    # ------------------------------------------------------------------
    def rate_of(self, thread: HwThread) -> float:
        """Current execution-speed factor of a hardware thread."""
        sibling = thread.sibling()
        sibling_busy = sibling is not None and sibling.runqueue.current is not None
        warm = self._core_warm[thread.core.index] or not self.speed.dvfs_enabled
        return self.speed.factor(sibling_busy, warm)

    def on_thread_busy_changed(self, thread: HwThread) -> float:
        """Called by a runqueue when it starts/stops running an entity.

        Updates DVFS state, notifies the SMT sibling's running entity that
        its rate changed, and returns the (new) rate of ``thread``.
        """
        self._update_dvfs(thread.core)
        sibling = thread.sibling()
        if sibling is not None:
            cur = sibling.runqueue.current
            if cur is not None:
                cur.on_rate_change(self.engine.now, self.rate_of(sibling))
        return self.rate_of(thread)

    def _core_busy(self, core: Core) -> bool:
        return any(t.runqueue.current is not None for t in core.threads)

    def _update_dvfs(self, core: Core) -> None:
        if not self.speed.dvfs_enabled:
            return
        busy = self._core_busy(core)
        idx = core.index
        now = self.engine.now
        if busy and not self._core_warm[idx]:
            goal = (True, now + self.speed.dvfs_ramp_ns)
        elif not busy and self._core_warm[idx]:
            goal = (False, now + self.speed.dvfs_cooldown_ns)
        else:
            goal = None
        self._core_ramp_goal[idx] = goal
        pending = self._core_ramp_event.get(idx)
        if goal is None:
            if pending is not None:
                pending.cancel()
                self._core_ramp_event[idx] = None
            return
        if pending is not None:
            if self.elide_timers and pending.time <= goal[1]:
                # Keep the stale event; _dvfs_fire chases the logical due.
                return
            pending.cancel()
        self._core_ramp_event[idx] = self.engine.call_at(
            goal[1], self._dvfs_fire, core, prio=self._core_lane[idx])

    def _dvfs_fire(self, core: Core) -> None:
        """Ramp timer fired: transition if the logical due was reached,
        otherwise re-arm at the (moved) due."""
        idx = core.index
        self._core_ramp_event[idx] = None
        goal = self._core_ramp_goal.get(idx)
        if goal is None:
            return
        warm, due = goal
        if self.engine.now < due:
            self._core_ramp_event[idx] = self.engine.call_at(
                due, self._dvfs_fire, core, prio=self._core_lane[idx])
            return
        self._core_ramp_goal[idx] = None
        self._dvfs_transition(core, warm)

    def _dvfs_transition(self, core: Core, warm: bool) -> None:
        if warm and not self._core_busy(core):
            return  # went idle before finishing the ramp
        if not warm and self._core_busy(core):
            return  # became busy again before cooling down
        self._core_warm[core.index] = warm
        for t in core.threads:
            cur = t.runqueue.current
            if cur is not None:
                cur.on_rate_change(self.engine.now, self.rate_of(t))

    # ------------------------------------------------------------------
    # Host task duty cycling
    # ------------------------------------------------------------------
    def _duty_on(self, task: HostTask) -> None:
        if task.duty_on_ns is None:
            return
        self.wake_entity(task)
        self.engine.call_in(task.duty_on_ns, self._duty_off, task)

    def _duty_off(self, task: HostTask) -> None:
        if task.duty_on_ns is None:
            return
        self.block_entity(task)
        self.engine.call_in(task.duty_off_ns, self._duty_on, task)
