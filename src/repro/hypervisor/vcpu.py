"""vCPU threads: the host entities backing guest virtual CPUs.

A vCPU thread relays host-side scheduling transitions to the guest CPU
object attached by the guest kernel (rates on/off, resume/preempt) and to
any registered activity listeners (the vtop prober accumulates cache-line
transfer opportunity from these transitions).

The *guest-visible* surface of a vCPU is deliberately small, mirroring what
a real Linux guest on KVM can see without hypervisor modifications:

* ``steal_ns`` — paravirtual steal time (``/proc/stat`` steal),
* the ability to ``halt`` (guest idle) and be ``kick``-ed awake,
* its own execution, whose progress rate it can measure but not query.

Probers must only use this surface; nothing in :mod:`repro.probers` touches
host runqueues or the machine directly.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.hypervisor.entity import EntityState, HostEntity, NICE0_WEIGHT


class VCpuThread(HostEntity):
    """Host thread backing one guest vCPU."""

    def __init__(self, vm, index: int, weight: int = NICE0_WEIGHT,
                 pinned=None):
        super().__init__(f"{vm.name}/vcpu{index}", weight=weight, pinned=pinned)
        self.vm = vm
        self.index = index
        #: Guest CPU object (set by the guest kernel when it attaches).
        self.guest_cpu = None
        #: Callbacks ``(vcpu, active, now)`` invoked on activity transitions.
        self.activity_listeners: List[Callable] = []
        #: Wall time of the last activity transition (host side).
        self.last_transition = 0
        #: Hardware thread this vCPU last executed on.
        self.last_thread = None
        #: Offline vCPUs ignore kicks (VM shutdown, §5.8 phase changes).
        self.offline = False

    # ------------------------------------------------------------------
    # Host-side transitions (called by the runqueue)
    # ------------------------------------------------------------------
    @property
    def active(self) -> bool:
        """True while the hypervisor is running this vCPU on a core."""
        return self.state == EntityState.RUNNING

    def on_start_running(self, now: int, rate: float) -> None:
        self.last_transition = now
        if self.rq is not None:
            self.last_thread = self.rq.thread
        if self.guest_cpu is not None:
            self.guest_cpu.host_resumed(now, rate)
        for fn in self.activity_listeners:
            fn(self, True, now)

    def on_stop_running(self, now: int) -> None:
        self.last_transition = now
        if self.guest_cpu is not None:
            self.guest_cpu.host_preempted(now)
        for fn in self.activity_listeners:
            fn(self, False, now)

    def on_rate_change(self, now: int, rate: float) -> None:
        if self.guest_cpu is not None:
            self.guest_cpu.host_rate_changed(now, rate)

    # ------------------------------------------------------------------
    # Guest-side controls
    # ------------------------------------------------------------------
    def halt(self) -> None:
        """Guest idle: relinquish the physical CPU until kicked."""
        self.vm.machine.block_entity(self)

    def kick(self) -> None:
        """Make the vCPU runnable (guest work arrived / interrupt pending)."""
        if self.offline:
            return
        self.vm.machine.wake_entity(self)


class VM:
    """A virtual machine: a named group of vCPU threads plus accounting."""

    def __init__(self, machine, name: str):
        self.machine = machine
        self.name = name
        self.vcpus: List[VCpuThread] = []
        #: Guest kernel attached to this VM (set by repro.guest).
        self.kernel = None

    @property
    def n_vcpus(self) -> int:
        return len(self.vcpus)

    def vcpu(self, index: int) -> VCpuThread:
        return self.vcpus[index]

    def total_run_ns(self, now: Optional[int] = None) -> int:
        """Aggregate vCPU running time — the basis of the VM's cycle count."""
        now = self.machine.engine.now if now is None else now
        return sum(v.run_ns(now) for v in self.vcpus)

    def total_steal_ns(self, now: Optional[int] = None) -> int:
        now = self.machine.engine.now if now is None else now
        return sum(v.steal_ns(now) for v in self.vcpus)

    def shutdown(self) -> None:
        """Take the whole VM offline: vCPUs stop running permanently."""
        for v in self.vcpus:
            v.offline = True
            self.machine.block_entity(v)

    def __repr__(self) -> str:
        return f"<VM {self.name} vcpus={len(self.vcpus)}>"
