"""Host-schedulable entities.

The hypervisor schedules *host entities* on hardware threads the same way
KVM schedules vCPU threads and ordinary processes under the host's CFS.
Two concrete kinds exist:

* :class:`repro.hypervisor.vcpu.VCpuThread` — backs one guest vCPU,
* :class:`HostTask` — an always-runnable host process used to generate
  contention (the paper stresses cores with Sysbench and priority tasks).

Entity weights follow CFS nice-level semantics (nice 0 = 1024, each nice
step ≈ ×1.25), so "a high-priority task on the host" is simply a
high-weight :class:`HostTask`.
"""

from __future__ import annotations

import enum
from typing import Optional, Tuple

# Re-exported for backward compatibility; the table lives in the
# layer-neutral repro.core.weights so guest-side probers can share it.
from repro.core.weights import (  # noqa: F401
    NICE0_WEIGHT,
    NICE_TO_WEIGHT,
    weight_for_nice,
)


class EntityState(enum.Enum):
    """Host-side scheduling state of an entity."""

    BLOCKED = "blocked"        # not runnable (vCPU halted / task sleeping)
    QUEUED = "queued"          # waiting on a host runqueue
    RUNNING = "running"        # currently executing on its hardware thread
    THROTTLED = "throttled"    # bandwidth quota exhausted, waiting for refresh


class HostEntity:
    """Base class for anything the host scheduler can run."""

    def __init__(
        self,
        name: str,
        weight: int = NICE0_WEIGHT,
        pinned: Optional[Tuple[int, ...]] = None,
    ):
        self.name = name
        self.weight = weight
        #: Hardware-thread indices this entity may run on (None = any).
        self.pinned = tuple(pinned) if pinned is not None else None
        self.state = EntityState.BLOCKED
        self.vruntime = 0
        #: Runqueue the entity is currently queued on / running from.
        self.rq = None
        #: Bandwidth controller, if CPU bandwidth control applies.
        self.bandwidth = None
        #: True while the entity has work it wants to run.
        self.wants_cpu = False

        # --- accounting -------------------------------------------------
        #: Total wall time spent RUNNING.
        self.run_total = 0
        #: Total time spent runnable-but-not-running (KVM steal semantics:
        #: queued behind other entities, or throttled while wanting CPU).
        self.steal_total = 0
        self._wait_start: Optional[int] = None
        self._run_start: Optional[int] = None
        #: Number of times the entity transitioned QUEUED/THROTTLED→RUNNING
        #: after actually waiting (i.e., was preempted then resumed).
        self.preemption_resumes = 0

    # ------------------------------------------------------------------
    # Accounting helpers (called by the runqueue / machine)
    # ------------------------------------------------------------------
    def begin_wait(self, now: int) -> None:
        if self._wait_start is None:
            self._wait_start = now

    def end_wait(self, now: int) -> None:
        if self._wait_start is not None:
            waited = now - self._wait_start
            self.steal_total += waited
            if waited > 0:
                self.preemption_resumes += 1
            self._wait_start = None

    def begin_run(self, now: int) -> None:
        self._run_start = now

    def end_run(self, now: int) -> int:
        """Close the running interval; return its wall duration."""
        if self._run_start is None:
            return 0
        delta = now - self._run_start
        self.run_total += delta
        self._run_start = None
        return delta

    def steal_ns(self, now: int) -> int:
        """Steal time including any wait in progress (guest-visible)."""
        total = self.steal_total
        if self._wait_start is not None:
            total += now - self._wait_start
        return total

    def run_ns(self, now: int) -> int:
        """Running time including the interval in progress."""
        total = self.run_total
        if self._run_start is not None:
            total += now - self._run_start
        return total

    # ------------------------------------------------------------------
    # Hooks overridden by VCpuThread
    # ------------------------------------------------------------------
    def on_start_running(self, now: int, rate: float) -> None:
        """Called when the host puts the entity on a hardware thread."""

    def on_stop_running(self, now: int) -> None:
        """Called when the host takes the entity off its hardware thread."""

    def on_rate_change(self, now: int, rate: float) -> None:
        """Called while RUNNING when the hardware thread's speed changes."""

    @property
    def is_running(self) -> bool:
        return self.state == EntityState.RUNNING

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name} {self.state.value}>"


class HostTask(HostEntity):
    """An always-runnable host process used to generate core contention.

    ``duty_cycle`` optionally makes the task alternate between wanting the
    CPU and sleeping (e.g., intermittent interference in §5.8): it runs for
    ``duty_on_ns`` then sleeps ``duty_off_ns``, repeating.  The machinery
    for that lives in :class:`repro.hypervisor.machine.Machine` because it
    needs the engine.
    """

    def __init__(
        self,
        name: str,
        weight: int = NICE0_WEIGHT,
        pinned: Optional[Tuple[int, ...]] = None,
        duty_on_ns: Optional[int] = None,
        duty_off_ns: Optional[int] = None,
    ):
        super().__init__(name, weight=weight, pinned=pinned)
        self.duty_on_ns = duty_on_ns
        self.duty_off_ns = duty_off_ns
        self.wants_cpu = True
