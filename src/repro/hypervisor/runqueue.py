"""Per-hardware-thread host runqueue (simplified host CFS).

Each hardware thread runs a weighted fair scheduler over host entities:
virtual runtime advances inversely to weight, the minimum-vruntime entity
runs next, and a running entity is preempted when its slice expires (the
``sched_min_granularity`` analogue) or when its bandwidth quota runs out.

Wakeup preemption is configurable per runqueue.  The paper's experiments
tune ``sched_wakeup_granularity`` so that a waking vCPU *waits* for the
co-runner's slice to end — that is our default (``wakeup_gran_ns=None``,
meaning never preempt on wakeup); passing a granularity enables the CFS
check ``new.vruntime + gran < cur.vruntime``.

All state transitions are accounted on the entity (run time, steal time),
which is what the guest-side probers observe.
"""

from __future__ import annotations

from typing import List, Optional

from repro.hypervisor.entity import EntityState, HostEntity, NICE0_WEIGHT
from repro.sim.engine import MSEC


class HostRunqueue:
    """Host scheduler state for one hardware thread."""

    def __init__(self, machine, thread, slice_ns: int = 4 * MSEC,
                 wakeup_gran_ns: Optional[int] = None):
        self.machine = machine
        self.engine = machine.engine
        self.thread = thread
        self.slice_ns = slice_ns
        self.wakeup_gran_ns = wakeup_gran_ns
        self.waiting: List[HostEntity] = []
        self.current: Optional[HostEntity] = None
        self.min_vruntime = 0
        self._slice_event = None
        self._throttle_event = None
        thread.runqueue = self

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def nr_runnable(self) -> int:
        """Entities running or waiting here."""
        return len(self.waiting) + (1 if self.current is not None else 0)

    def is_idle(self) -> bool:
        return self.current is None and not self.waiting

    # ------------------------------------------------------------------
    # Enqueue / dispatch
    # ------------------------------------------------------------------
    def enqueue(self, entity: HostEntity) -> None:
        """Make ``entity`` runnable on this hardware thread."""
        now = self.engine.now
        entity.rq = self
        entity.state = EntityState.QUEUED
        if self.current is not None:
            self._checkpoint_current()
        # Sleeper fairness: a waking entity gets at most half a slice of
        # vruntime credit (GENTLE_FAIR_SLEEPERS).
        floor = self.min_vruntime - self.slice_ns // 2
        if entity.vruntime < floor:
            entity.vruntime = floor
        self.waiting.append(entity)
        entity.begin_wait(now)
        if self.current is None:
            self._dispatch()
            return
        self.machine._note_host_waiting()
        # The current entity may have been dispatched alone; contention has
        # now appeared, so start its slice clock.
        if self._slice_event is None:
            self._slice_event = self.engine.call_in(self.slice_ns, self._slice_expired)
        if self.wakeup_gran_ns is not None:
            if entity.vruntime + self.wakeup_gran_ns < self.current.vruntime:
                self._deschedule_current(requeue=True)
                self._dispatch()

    def _pick_next(self) -> Optional[HostEntity]:
        waiting = self.waiting
        if not waiting:
            return None
        if len(waiting) == 1:
            return waiting.pop()
        best = min(waiting, key=lambda e: (e.vruntime, e.name))
        waiting.remove(best)
        return best

    def _dispatch(self) -> None:
        now = self.engine.now
        nxt = self._pick_next()
        if nxt is None:
            if self.current is None:
                self.machine.on_thread_busy_changed(self.thread)
            return
        nxt.end_wait(now)
        nxt.state = EntityState.RUNNING
        self.current = nxt
        nxt.begin_run(now)
        if nxt.vruntime > self.min_vruntime:
            self.min_vruntime = nxt.vruntime
        # Arm the slice timer only when somebody is waiting behind us.
        if self.waiting:
            self._slice_event = self.engine.call_in(self.slice_ns, self._slice_expired)
        # Arm the bandwidth throttle timer.
        if nxt.bandwidth is not None:
            remaining = nxt.bandwidth.remaining()
            self._throttle_event = self.engine.call_in(remaining, self._throttle_fired)
        rate = self.machine.on_thread_busy_changed(self.thread)
        nxt.on_start_running(now, rate)
        self.machine.tracer.record(now, "host.run", self.thread.index, nxt.name)

    # ------------------------------------------------------------------
    # Runtime accounting
    # ------------------------------------------------------------------
    def _charge_current(self) -> int:
        """Charge the running interval so far; returns its duration."""
        cur = self.current
        delta = cur.end_run(self.engine.now)
        cur.vruntime += delta * NICE0_WEIGHT // cur.weight
        if cur.bandwidth is not None:
            cur.bandwidth.charge(delta)
        self._update_min_vruntime()
        return delta

    def _checkpoint_current(self) -> None:
        """Charge the running interval and immediately reopen it.

        Keeps vruntime and min_vruntime fresh so wakeup-time comparisons
        (sleeper floor, preemption check) see current values even when the
        running entity has not rescheduled for a long time.
        """
        self._charge_current()
        self.current.begin_run(self.engine.now)

    def _update_min_vruntime(self) -> None:
        """CFS rule: min_vruntime tracks min(curr, leftmost), monotonic."""
        floor = None
        if self.current is not None:
            floor = self.current.vruntime
        if self.waiting:
            w = min(e.vruntime for e in self.waiting)
            floor = w if floor is None else min(floor, w)
        if floor is not None and floor > self.min_vruntime:
            self.min_vruntime = floor

    def _cancel_timers(self) -> None:
        if self._slice_event is not None:
            self._slice_event.cancel()
            self._slice_event = None
        if self._throttle_event is not None:
            self._throttle_event.cancel()
            self._throttle_event = None

    def _deschedule_current(self, requeue: bool) -> HostEntity:
        """Take the current entity off the CPU; optionally requeue it."""
        now = self.engine.now
        cur = self.current
        self._charge_current()
        self._cancel_timers()
        self.current = None
        cur.on_stop_running(now)
        self.machine.tracer.record(now, "host.stop", self.thread.index, cur.name)
        if requeue:
            cur.state = EntityState.QUEUED
            self.waiting.append(cur)
            cur.begin_wait(now)
            self.machine._note_host_waiting()
        return cur

    # ------------------------------------------------------------------
    # Timer handlers
    # ------------------------------------------------------------------
    def _slice_expired(self) -> None:
        self._slice_event = None
        if self.current is None:
            return
        if not self.waiting:
            return
        self._deschedule_current(requeue=True)
        self._dispatch()

    def _throttle_fired(self) -> None:
        self._throttle_event = None
        cur = self.current
        if cur is None or cur.bandwidth is None:
            return
        now = self.engine.now
        self._charge_current()
        self._cancel_timers()
        self.current = None
        cur.on_stop_running(now)
        cur.state = EntityState.THROTTLED
        if cur.wants_cpu:
            cur.begin_wait(now)
        self.machine.tracer.record(now, "host.throttle", self.thread.index, cur.name)
        self._dispatch()
        if self.current is None:
            self.machine.on_thread_busy_changed(self.thread)

    def on_bandwidth_refresh(self, entity: HostEntity) -> None:
        """Period refresh for an entity homed on this runqueue."""
        bw = entity.bandwidth
        if entity is self.current:
            # Checkpoint consumed runtime, then grant the fresh quota and
            # re-arm the throttle timer for a full quota from now.
            self._checkpoint_current()
            bw.used_ns = 0
            if self._throttle_event is not None:
                self._throttle_event.cancel()
            self._throttle_event = self.engine.call_in(bw.quota_ns, self._throttle_fired)
            return
        bw.used_ns = 0
        if entity.state == EntityState.THROTTLED:
            if entity.wants_cpu:
                entity.end_wait(self.engine.now)
                self.enqueue(entity)
            else:
                entity.state = EntityState.BLOCKED

    # ------------------------------------------------------------------
    # External control
    # ------------------------------------------------------------------
    def block_entity(self, entity: HostEntity) -> None:
        """Entity no longer wants the CPU (vCPU halt / host task sleep)."""
        now = self.engine.now
        entity.wants_cpu = False
        if entity is self.current:
            self._deschedule_current(requeue=False)
            entity.state = EntityState.BLOCKED
            self._dispatch()
            if self.current is None:
                self.machine.on_thread_busy_changed(self.thread)
        elif entity.state == EntityState.QUEUED:
            self.waiting.remove(entity)
            entity.end_wait(now)
            entity.state = EntityState.BLOCKED
        elif entity.state == EntityState.THROTTLED:
            entity.end_wait(now)
            entity.state = EntityState.BLOCKED

    def steal_waiting(self, entity: HostEntity) -> None:
        """Remove a QUEUED entity for migration to another runqueue."""
        self.waiting.remove(entity)
        entity.end_wait(self.engine.now)
        entity.rq = None

    def preempt_for_balance(self) -> Optional[HostEntity]:
        """Deschedule and return the current entity (host load balancing)."""
        if self.current is None:
            return None
        cur = self._deschedule_current(requeue=False)
        cur.state = EntityState.QUEUED
        self._dispatch()
        if self.current is None:
            self.machine.on_thread_busy_changed(self.thread)
        return cur

    def set_slice(self, slice_ns: int) -> None:
        """Change the slice quantum (takes effect at the next dispatch)."""
        self.slice_ns = slice_ns
