"""CFS bandwidth control (quota / period) for host entities.

The paper manufactures vCPU capacity and activity patterns with the host's
CPU bandwidth controller plus granularity tunables (§5.1).  We reproduce the
mechanism: an entity with a controller may consume at most ``quota_ns`` of
CPU time per ``period_ns``; once exhausted it is *throttled* (descheduled,
still accruing steal time if it wants the CPU) until the next period
refresh.

A lone entity with quota q and period P therefore executes a q-on /
(P−q)-off square wave — exactly the controlled active/inactive pattern the
experiments need, with vCPU latency (average inactive period) = P − q and
capacity fraction = q / P.
"""

from __future__ import annotations

from typing import Optional

from repro.sim.engine import Engine


class BandwidthController:
    """Per-entity quota/period accounting with periodic refresh.

    The controller owns a repeating refresh event.  The runqueue charges
    consumed runtime via :meth:`charge` and asks :meth:`remaining` when
    dispatching so it can arm an exact throttle timer.
    """

    def __init__(self, engine: Engine, quota_ns: int, period_ns: int, phase_ns: int = 0):
        if quota_ns <= 0 or period_ns <= 0 or quota_ns > period_ns:
            raise ValueError(f"invalid bandwidth quota={quota_ns} period={period_ns}")
        self.engine = engine
        self.quota_ns = quota_ns
        self.period_ns = period_ns
        self.used_ns = 0
        self.owner = None  # set by Machine.attach
        self._refresh_event = None
        # Phase-shifts the first refresh so co-located VMs don't all
        # unthrottle in lock-step unless the experiment wants them to.
        first = engine.now + phase_ns % period_ns
        self._refresh_event = engine.call_at(first + period_ns, self._refresh)

    # ------------------------------------------------------------------
    def set_limits(self, quota_ns: int, period_ns: Optional[int] = None) -> None:
        """Adjust quota (and optionally period) at runtime (Figure 16)."""
        if quota_ns <= 0:
            raise ValueError("quota must be positive")
        self.quota_ns = quota_ns
        if period_ns is not None:
            self.period_ns = period_ns

    def remaining(self) -> int:
        return max(0, self.quota_ns - self.used_ns)

    def exhausted(self) -> bool:
        return self.used_ns >= self.quota_ns

    def charge(self, delta_ns: int) -> None:
        self.used_ns += delta_ns

    # ------------------------------------------------------------------
    def _refresh(self) -> None:
        self.used_ns = 0
        self._refresh_event = self.engine.call_in(self.period_ns, self._refresh)
        owner = self.owner
        if owner is not None and owner.rq is not None:
            owner.rq.on_bandwidth_refresh(owner)

    def cancel(self) -> None:
        """Stop the refresh loop (entity teardown)."""
        if self._refresh_event is not None:
            self._refresh_event.cancel()
            self._refresh_event = None
