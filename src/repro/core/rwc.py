"""Relaxed work conservation (rwc, §3.4).

rwc intentionally leaves problematic vCPUs idle by hiding them from task
placement via cgroup cpusets:

* **straggler vCPUs** — probed EMA capacity far below the average (the
  paper's example: 10× lower).  Hidden from normal tasks only: best-effort
  (sched_idle) work, including vcap's light probers, may still run there so
  a capacity recovery is noticed.
* **stacked vCPUs** — all but one vCPU of each stacking group are banned
  for *everything* except vtop (which must keep probing all vCPUs to detect
  stacking changes).  This avoids expensive vCPU switches and double-
  scheduling hazards such as priority inversion and LHP.

The policy re-evaluates after every prober publish (module subscription).
"""

from __future__ import annotations

from typing import FrozenSet, List, Optional, Set

from repro.core.module import VSchedModule
from repro.guest.cgroup import TaskGroup
from repro.guest.kernel import GuestKernel


class RelaxedWorkConservation:
    """cpuset manager hiding straggler and stacked vCPUs."""

    #: A vCPU is a straggler when its capacity is below median/RATIO.  The
    #: paper's example is "10x below average"; on this substrate wake-up
    #: credit lets even a heavily hogged vCPU burst briefly, flooring its
    #: *measured* capacity around 15% of nominal, so the trigger is
    #: re-calibrated to the same semantic point: 3x below the median
    #: (median, because the stragglers themselves drag the mean down).
    STRAGGLER_RATIO = 3.0

    def __init__(
        self,
        kernel: GuestKernel,
        module: VSchedModule,
        workload_group: TaskGroup,
        besteffort_group: Optional[TaskGroup] = None,
        vcap_group: Optional[TaskGroup] = None,
    ):
        self.kernel = kernel
        self.module = module
        self.workload_group = workload_group
        self.besteffort_group = besteffort_group
        self.vcap_group = vcap_group
        self.banned_stacked: FrozenSet[int] = frozenset()
        self.stragglers: FrozenSet[int] = frozenset()
        self._straggler_candidates: FrozenSet[int] = frozenset()
        module.subscribe(self.refresh)

    # ------------------------------------------------------------------
    def refresh(self) -> None:
        store = self.module.store
        n = len(store)
        all_cpus = frozenset(range(n))

        banned_stacked: Set[int] = set()
        for group in store.topology.stack_groups:
            members = sorted(group)
            # Keep the member with the highest probed capacity; hide the rest.
            keep = max(members, key=lambda c: store[c].capacity)
            banned_stacked.update(m for m in members if m != keep)

        usable = all_cpus - banned_stacked
        if usable:
            caps = sorted(store[c].capacity for c in usable)
            median_cap = caps[len(caps) // 2]
        else:
            median_cap = 1024.0
        observed = frozenset(
            c for c in usable
            if store[c].capacity < median_cap / self.STRAGGLER_RATIO)
        # Hysteresis: ban only vCPUs that look straggling on two
        # consecutive refreshes (transient dips on a dynamic host must not
        # hide healthy vCPUs); unban immediately on recovery.
        stragglers = observed & (self._straggler_candidates | self.stragglers)
        self._straggler_candidates = observed
        # Never hide everything.
        if len(stragglers) >= len(usable):
            stragglers = frozenset()

        new_banned = frozenset(banned_stacked)
        changed = (new_banned != self.banned_stacked
                   or stragglers != self.stragglers)
        self.banned_stacked = new_banned
        self.stragglers = stragglers
        if not changed:
            return

        workload_mask = all_cpus - new_banned - stragglers
        if not workload_mask:
            workload_mask = all_cpus - new_banned or all_cpus
        self.workload_group.set_allowed(workload_mask)
        self.kernel.apply_cpuset(self.workload_group)
        # Best-effort tasks may still use stragglers (only stacking is
        # hidden from them).
        be_mask = all_cpus - new_banned
        if self.besteffort_group is not None:
            self.besteffort_group.set_allowed(be_mask)
            self.kernel.apply_cpuset(self.besteffort_group)
        if self.vcap_group is not None:
            self.vcap_group.set_allowed(be_mask)
            self.kernel.apply_cpuset(self.vcap_group)

    # ------------------------------------------------------------------
    def hidden_cpus(self) -> FrozenSet[int]:
        return self.banned_stacked | self.stragglers
