"""The vSched orchestrator: wires probers, module, and techniques together.

Mirrors the paper's three evaluation configurations (§5.6):

* ``VSchedConfig.baseline()`` — stock CFS: no probing, no hooks (the
  orchestrator still provides the task groups so experiment code is
  uniform);
* ``VSchedConfig.enhanced()`` — vProbers + rwc: accurate vCPU abstraction
  feeds the existing capacity/topology-aware heuristics and problematic
  vCPUs are hidden, but no activity-aware techniques;
* ``VSchedConfig.full()`` — everything: probers, rwc, bvs, ivh.

Tunables default to Table 1 of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from repro.core.bvs import BiasedVCpuSelection
from repro.core.ivh import IntraVmHarvesting
from repro.core.module import VSchedModule
from repro.core.rwc import RelaxedWorkConservation
from repro.guest.kernel import GuestKernel
from repro.probers.vact import VAct
from repro.probers.vcap import VCap
from repro.probers.vtop import VTop
from repro.sim.engine import MSEC, SEC
from repro.sim.rng import make_rng


@dataclass
class VSchedConfig:
    """Feature switches and tunables (Table 1 defaults)."""

    enable_vcap: bool = True
    enable_vact: bool = True
    enable_vtop: bool = True
    enable_bvs: bool = True
    enable_ivh: bool = True
    enable_rwc: bool = True

    #: vcap sampling period.
    vcap_period_ns: int = 100 * MSEC
    #: vcap light sampling frequency.
    vcap_light_interval_ns: int = 1 * SEC
    #: Heavy sampling every N light samplings.
    vcap_heavy_every: int = 5
    #: EMA decay: 50% per this many periods.
    ema_halflife_periods: float = 2.0
    #: vtop sampling frequency.
    vtop_interval_ns: int = 2 * SEC
    #: vtop targeted cache transfers.
    vtop_transfers: int = 500
    #: vtop cache transfer timeout (attempts).
    vtop_timeout_attempts: int = 15000
    #: ivh migration threshold (Table 1: "after 2 ms") — applied as the
    #: re-migration interval; the on-CPU minimum is one tick so the
    #: decision lands "within 2 ticks after vCPU rescheduling" (§6).
    ivh_min_run_ns: int = 1 * MSEC
    #: ivh protocol variant (Table 4 compares False).
    ivh_activity_aware: bool = True
    #: Seed label for prober measurement noise.
    seed: str = "vsched"

    # --- prober hardening (robustness against adversarial co-tenants) ---
    #: Route prober samples through the robust estimator layer
    #: (:mod:`repro.probers.robust`).  Off by default: the stock publish
    #: paths stay byte-identical.
    robust_probers: bool = False
    #: Median/MAD window size (accepted samples).
    robust_window: int = 5
    #: Outlier cut in robust standard deviations.
    robust_mad_k: float = 3.5
    #: Quarantine when the accepted fraction drops below this.
    robust_min_confidence: float = 0.5
    #: Consecutive clean samples needed to leave quarantine.
    robust_recovery_windows: int = 3
    #: vcap cross-check gate: window share may diverge from the tick-grid
    #: steal baseline by at most this much before the sample is distrusted.
    robust_grid_gate: float = 0.3
    #: vact regime hysteresis (consecutive agreeing windows to flip).
    robust_hysteresis_windows: int = 2
    #: vtop: consecutive identical probes before a *changed* topology view
    #: is believed.
    robust_topology_confirmations: int = 2

    def robust_params(self) -> Optional[dict]:
        """The parameter dict handed to the probers; None when off."""
        if not self.robust_probers:
            return None
        return {
            "window": self.robust_window,
            "mad_k": self.robust_mad_k,
            "min_confidence": self.robust_min_confidence,
            "recovery_windows": self.robust_recovery_windows,
            "grid_gate": self.robust_grid_gate,
            "hysteresis_windows": self.robust_hysteresis_windows,
            "topology_confirmations": self.robust_topology_confirmations,
        }

    # ------------------------------------------------------------------
    @classmethod
    def baseline(cls) -> "VSchedConfig":
        return cls(enable_vcap=False, enable_vact=False, enable_vtop=False,
                   enable_bvs=False, enable_ivh=False, enable_rwc=False)

    @classmethod
    def enhanced(cls) -> "VSchedConfig":
        return cls(enable_bvs=False, enable_ivh=False)

    @classmethod
    def full(cls) -> "VSchedConfig":
        return cls()

    def with_(self, **kwargs) -> "VSchedConfig":
        return replace(self, **kwargs)


class VSched:
    """Per-VM vSched instance."""

    def __init__(self, kernel: GuestKernel, config: Optional[VSchedConfig] = None):
        self.kernel = kernel
        self.config = config or VSchedConfig.full()
        #: cgroups for user workloads; rwc manages their cpusets.
        self.workload_group = kernel.new_group("workload")
        self.besteffort_group = kernel.new_group("besteffort")

        cfg = self.config
        self.module: Optional[VSchedModule] = None
        self.vcap: Optional[VCap] = None
        self.vact: Optional[VAct] = None
        self.vtop: Optional[VTop] = None
        self.bvs: Optional[BiasedVCpuSelection] = None
        self.ivh: Optional[IntraVmHarvesting] = None
        self.rwc: Optional[RelaxedWorkConservation] = None

        probing = cfg.enable_vcap or cfg.enable_vact or cfg.enable_vtop
        robust = cfg.robust_params()
        if probing:
            self.module = VSchedModule(kernel, cfg.ema_halflife_periods)
        if cfg.enable_vact:
            self.vact = VAct(kernel, self.module, robust=robust)
        if cfg.enable_vcap:
            self.vcap = VCap(
                kernel, self.module,
                sampling_period_ns=cfg.vcap_period_ns,
                light_interval_ns=cfg.vcap_light_interval_ns,
                heavy_every=cfg.vcap_heavy_every,
                vact=self.vact,
                robust=robust)
        if cfg.enable_vtop:
            self.vtop = VTop(
                kernel, self.module, make_rng(cfg.seed),
                interval_ns=cfg.vtop_interval_ns,
                target_transfers=cfg.vtop_transfers,
                timeout_attempts=cfg.vtop_timeout_attempts,
                robust=robust)
        if cfg.enable_bvs:
            self._require_probing("bvs")
            self.bvs = BiasedVCpuSelection(kernel, self.module)
        if cfg.enable_ivh:
            self._require_probing("ivh")
            self.ivh = IntraVmHarvesting(
                kernel, self.module,
                min_run_ns=cfg.ivh_min_run_ns,
                activity_aware=cfg.ivh_activity_aware)
        if cfg.enable_rwc:
            self._require_probing("rwc")
            self.rwc = RelaxedWorkConservation(
                kernel, self.module,
                workload_group=self.workload_group,
                besteffort_group=self.besteffort_group,
                vcap_group=self.vcap.group if self.vcap else None)

    def _require_probing(self, feature: str) -> None:
        if self.module is None:
            raise ValueError(f"{feature} requires the vProbers to be enabled")

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Install hooks and start the probing daemons."""
        if self.vcap is not None:
            self.module.install_capacity_provider()
            self.vcap.start()
        if self.vtop is not None:
            self.vtop.start()
        if self.bvs is not None:
            self.kernel.select_rq_hook = self.bvs
        if self.ivh is not None:
            self.kernel.tick_hook = self.ivh

    def stop(self) -> None:
        if self.vcap is not None:
            self.vcap.stop()
        if self.vtop is not None:
            self.vtop.stop()
        self.kernel.select_rq_hook = None
        self.kernel.tick_hook = None
