"""vSched core: the paper's primary contribution."""

from repro.core.abstraction import AbstractionStore, TopologyView, VCpuAbstraction
from repro.core.bvs import BiasedVCpuSelection
from repro.core.ema import Ema, alpha_for_halflife
from repro.core.ivh import IntraVmHarvesting
from repro.core.module import VSchedModule
from repro.core.rwc import RelaxedWorkConservation
from repro.core.vsched import VSched, VSchedConfig

__all__ = [
    "VSched",
    "VSchedConfig",
    "VSchedModule",
    "AbstractionStore",
    "VCpuAbstraction",
    "TopologyView",
    "BiasedVCpuSelection",
    "IntraVmHarvesting",
    "RelaxedWorkConservation",
    "Ema",
    "alpha_for_halflife",
]
