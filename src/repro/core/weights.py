"""CFS nice-to-weight arithmetic, shared by host and guest.

Pure arithmetic with no scheduler state: the kernel's
``sched_prio_to_weight`` table and the ×1.25-per-nice-step interpolation.
Both the hypervisor (host entity weights) and the guest-side probers
(vtop/vcap reason about the weight of their own guest tasks) need it, so
it lives here as a layer-neutral module — ``vschedlint`` allows it to be
imported from any layer (``NEUTRAL_MODULES``).
"""

from __future__ import annotations

#: CFS weight of a nice-0 task.
NICE0_WEIGHT = 1024

#: CFS nice-to-weight table (subset, matching kernel sched_prio_to_weight).
NICE_TO_WEIGHT = {
    -20: 88761, -15: 29154, -10: 9548, -5: 3121, -1: 1277,
    0: 1024, 1: 820, 5: 335, 10: 110, 15: 36, 19: 15,
}


def weight_for_nice(nice: int) -> int:
    """Weight for a nice level, interpolating the kernel table."""
    if nice in NICE_TO_WEIGHT:
        return NICE_TO_WEIGHT[nice]
    return max(3, int(NICE0_WEIGHT / (1.25 ** nice)))
