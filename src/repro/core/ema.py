"""Exponential moving average with half-life semantics.

vcap smooths probed capacity with an EMA whose history decays 50% per two
sampling periods (Table 1), giving a trend that follows real changes while
suppressing spikes that would otherwise cause migration churn (§3.1,
Figure 10a).
"""

from __future__ import annotations

from typing import Optional


def alpha_for_halflife(periods: float) -> float:
    """Per-update weight so that history halves after ``periods`` updates."""
    if periods <= 0:
        raise ValueError("half-life must be positive")
    return 1.0 - 0.5 ** (1.0 / periods)


class Ema:
    """Scalar EMA; ``update`` returns the smoothed value."""

    __slots__ = ("alpha", "value")

    def __init__(self, alpha: float, initial: Optional[float] = None):
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha {alpha} out of (0, 1]")
        self.alpha = alpha
        self.value: Optional[float] = initial

    def update(self, sample: float) -> float:
        if self.value is None:
            self.value = float(sample)
        else:
            self.value += self.alpha * (sample - self.value)
        return self.value

    def get(self, default: float = 0.0) -> float:
        return self.value if self.value is not None else default
