"""Intra-VM harvesting (ivh, §3.3).

A running CPU-intensive task on a vCPU that is about to be preempted is
proactively migrated to an unused vCPU where it can keep making progress,
harvesting vCPU time that would otherwise be wasted (the *stalled running
task* problem, Figure 3).

The migration is **activity-aware** (Figure 9): the target vCPU is
pre-woken, and the task is only detached once the target is host-active and
has issued its pull request (modelled as an IPI delay plus a stopper-thread
delay).  If the source vCPU gets preempted before the pull completes, the
migration is abandoned — moving an already-stalled task buys nothing.

``activity_aware=False`` gives the strawman variant of Table 4: the task is
detached immediately and enqueued on the target regardless of the target's
activity, so it may sit stalled on an inactive target (migration delay).
"""

from __future__ import annotations

from typing import Optional

from repro.core.module import VSchedModule
from repro.guest.kernel import GuestKernel, VCpuHostState
from repro.guest.task import Task, TaskState
from repro.sim.engine import MSEC, SEC, USEC


class IntraVmHarvesting:
    """The scheduler-tick hook implementing ivh."""

    #: PELT utilization above which a task counts as CPU-intensive.
    CPU_INTENSIVE_UTIL = 600.0
    #: Cost of the wake-up interrupt to the target vCPU.
    IPI_DELAY_NS = 5 * USEC
    #: Cost of the stopper-thread detach/attach.
    STOPPER_DELAY_NS = 20 * USEC

    def __init__(
        self,
        kernel: GuestKernel,
        module: VSchedModule,
        min_run_ns: int = 1 * MSEC,
        lookahead_ns: int = 2 * MSEC,
        min_interval_ns: int = 1 * MSEC,
        activity_aware: bool = True,
    ):
        self.kernel = kernel
        self.module = module
        self.min_run_ns = min_run_ns
        self.lookahead_ns = lookahead_ns
        self.min_interval_ns = min_interval_ns
        self.activity_aware = activity_aware
        self.migrations = 0
        self.aborted = 0
        #: EMA of migration success; when predictions keep failing on an
        #: erratic host, harvesting backs off to occasional probing.  The
        #: signal drifts back toward optimistic over a few seconds so that
        #: host-regime changes get re-probed.
        self._success_ema = 1.0
        self._last_attempt = -(10 ** 12)
        self._ema_touch = 0

    # ------------------------------------------------------------------
    #: Skip harvesting when this fraction of vCPUs already has normal
    #: work — a loaded system has nothing to harvest and migrations only
    #: churn.
    LOADED_FRACTION = 0.8

    #: Success EMA below which harvesting throttles itself.
    MIN_SUCCESS = 0.75
    #: Re-probe interval while throttled.
    BACKOFF_NS = 100 * MSEC

    #: Time-based drift of the success signal back toward optimism.
    EMA_DRIFT_TARGET = 0.85
    EMA_DRIFT_HALFLIFE_NS = 4 * SEC

    def __call__(self, cpu, now: int) -> None:
        task = cpu.current
        if task is None or task.is_idle_policy:
            return
        dt = now - self._ema_touch
        if dt > 0:
            self._ema_touch = now
            decay = 0.5 ** (dt / self.EMA_DRIFT_HALFLIFE_NS)
            self._success_ema = (self.EMA_DRIFT_TARGET
                                 + (self._success_ema
                                    - self.EMA_DRIFT_TARGET) * decay)
        if (self._success_ema < self.MIN_SUCCESS
                and now - self._last_attempt < self.BACKOFF_NS):
            return
        if self._system_loaded():
            return
        entry = self.module.store[cpu.index]
        if entry.latency_ns <= 0:
            return  # no inactive periods on this vCPU: nothing to harvest
        if task.run_started_at is None or now - task.run_started_at < self.min_run_ns:
            return
        if now - task.ivh_last_migration < self.min_interval_ns:
            return
        if task.util(now) < self.CPU_INTENSIVE_UTIL:
            return
        if not self._soon_inactive(cpu, entry, now):
            return
        target = self._find_target(task, cpu, now)
        if target is None:
            return
        task.ivh_last_migration = now
        self._last_attempt = now
        if self.activity_aware:
            self._migrate_activity_aware(task, cpu, target)
        else:
            self._migrate_blind(task, cpu, target)

    def _system_loaded(self) -> bool:
        cpus = self.kernel.cpus
        busy = 0
        for c in cpus:
            if ((c.current is not None and not c.current.is_idle_policy)
                    or c.rq.has_queued_normal()):
                busy += 1
        return busy >= self.LOADED_FRACTION * len(cpus)

    # ------------------------------------------------------------------
    def _soon_inactive(self, cpu, entry, now: int) -> bool:
        """Predict whether this vCPU's active period is about to end."""
        if entry.avg_active_ns <= 0:
            return False
        state, since = self.kernel.vcpu_state(cpu.index)
        if state != VCpuHostState.ACTIVE:
            return False
        remaining = entry.avg_active_ns - (now - since)
        return remaining <= self.lookahead_ns

    #: A target must offer at least this much expected active time.
    MIN_USEFUL_NS = 1 * MSEC
    #: Maximum acceptable wait for an inactive target to resume.
    MAX_WAIT_NS = 1 * MSEC

    def _find_target(self, task: Task, src, now: int) -> Optional[object]:
        """bvs-like search, scoring candidates by the active time the task
        can expect to harvest there before the next preemption."""
        best = None
        best_key = None
        for c, cpu in enumerate(self.kernel.cpus):
            if c == src.index or not task.may_run_on(c):
                continue
            key = self._target_score(c, cpu, now)
            if key is None:
                continue
            if best_key is None or key > best_key:
                best = cpu
                best_key = key
        return best

    def _target_score(self, c: int, cpu, now: int):
        entry = self.module.store[c]
        rq = cpu.rq
        full_period = entry.avg_active_ns if entry.avg_active_ns > 0 else 10 * MSEC
        if rq.is_idle():
            # Guest-idle (halted) vCPU: a kick wakes it immediately and
            # host sleeper fairness gives it credit proportional to how
            # long it has been idle — "prolonged idleness tends to wake up
            # quickly" (§3.2).
            credit = min(now - cpu.idle_since, full_period)
            if credit < self.MIN_USEFUL_NS:
                return None
            return (credit, entry.capacity)
        if not rq.sched_idle_only():
            return None
        state, since = self.kernel.vcpu_state(c)
        if state == VCpuHostState.ACTIVE:
            age = now - since
            if age > 2 * full_period:
                # No recent preemption observed on this vCPU: the phase
                # estimate is stale, not expired — assume half a period.
                remaining = full_period * 0.5
            else:
                remaining = full_period - age
            if remaining < self.MIN_USEFUL_NS:
                return None
            # Mid-window actives are less predictable than a vCPU about to
            # start a fresh active period; discount them.
            return (remaining * 0.6, entry.capacity)
        if entry.latency_ns <= 0:
            return None
        wait = max(0.0, entry.latency_ns - (now - since))
        if wait > self.MAX_WAIT_NS:
            return None
        usable = full_period - wait
        if usable < self.MIN_USEFUL_NS:
            return None
        return (usable, entry.capacity)

    # ------------------------------------------------------------------
    # Activity-aware protocol (Figure 9)
    # ------------------------------------------------------------------
    #: How often the source re-checks whether the target became active.
    PULL_POLL_NS = 100 * USEC
    #: Give up if the pull has not completed by then (late pull — the task
    #: has stalled anyway, so migrating buys nothing).
    ABANDON_NS = 3 * MSEC

    def _migrate_activity_aware(self, task: Task, src, dst) -> None:
        # Step 1: interrupt the target; it wakes and spins for the pull.
        dst.pull_pending = True
        if dst.halted:
            dst.halted = False
            dst.vcpu.kick()
        deadline = self.kernel.now() + self.ABANDON_NS
        self.kernel.engine.call_in(self.IPI_DELAY_NS, self._try_pull,
                                   task, src, dst, deadline)

    def _try_pull(self, task: Task, src, dst, deadline: int) -> None:
        now = self.kernel.now()
        if src.current is not task or not src.vcpu.active:
            self._abort(task, src, dst)
            return
        if not dst.vcpu.active:
            if now >= deadline:
                self._abort(task, src, dst)
            else:
                self.kernel.engine.call_in(self.PULL_POLL_NS, self._try_pull,
                                           task, src, dst, deadline)
            return
        # Step 3: the stopper thread detaches and attaches the task.
        self.kernel.engine.call_in(self.STOPPER_DELAY_NS, self._complete,
                                   task, src, dst)

    def _abort(self, task: Task, src, dst) -> None:
        # Abandoned pulls are cheap and self-limiting (Figure 9); only the
        # quality of *completed* migrations feeds the success signal.
        self.aborted += 1
        self.kernel.stats.ivh_aborted += 1
        self._release_target(dst)

    def _release_target(self, dst) -> None:
        dst.pull_pending = False
        if dst.current is None and dst.rq.nr_running() == 0 and not dst.halted:
            dst._go_idle(self.kernel.now())

    def _complete(self, task: Task, src, dst) -> None:
        # Abandon if the task already stalled (source preempted) or moved.
        if src.current is not task or not src.vcpu.active:
            self._abort(task, src, dst)
            return
        moved = src.take_current()
        if moved is not task:
            self._abort(task, src, dst)
            return
        dst.pull_pending = False
        now = self.kernel.now()
        task.state = TaskState.RUNNABLE
        task.last_wake_time = now
        task.last_migration_time = now
        dst.rq.enqueue(task)
        task.stats.migrations += 1
        self.kernel.stats.ivh_migrations += 1
        self.migrations += 1
        # Audit the migration: it only counts as a success if the task
        # actually makes progress on the target (a completed pull that
        # lands on a vCPU that immediately stalls is still a failure of
        # the prediction, and on erratic hosts that is the common case).
        wall0 = task.stats.wall_running
        self.kernel.engine.call_in(self.AUDIT_NS, self._audit, task, wall0)
        # Start the task on the target before the source's new-idle balance
        # runs, or the source would immediately steal it back.
        self.kernel._notify_cpu(dst, task, src.index, count_ipi=False)
        src._dispatch()

    #: Audit window and the progress required within it: a well-predicted
    #: landing runs near-continuously on the target.
    AUDIT_NS = 2 * MSEC
    AUDIT_MIN_PROGRESS_NS = int(1.6 * MSEC)

    def _audit(self, task: Task, wall0: int) -> None:
        progressed = task.stats.wall_running - wall0
        if task.state not in (TaskState.RUNNING, TaskState.RUNNABLE):
            # The task finished or blocked voluntarily: any progress at all
            # means the landing was good (it ran to its own completion).
            good = progressed > 0
        else:
            good = progressed >= self.AUDIT_MIN_PROGRESS_NS
        self._success_ema += 0.08 * ((1.0 if good else 0.0) - self._success_ema)

    # ------------------------------------------------------------------
    # Activity-unaware strawman (Table 4)
    # ------------------------------------------------------------------
    def _migrate_blind(self, task: Task, src, dst) -> None:
        moved = src.take_current()
        if moved is not task:
            return
        task.state = TaskState.RUNNABLE
        task.last_wake_time = self.kernel.now()
        dst.rq.enqueue(task)
        task.stats.migrations += 1
        self.kernel.stats.ivh_migrations += 1
        self.migrations += 1
        src._dispatch()
        self.kernel._notify_cpu(dst, task, src.index, count_ipi=False)
