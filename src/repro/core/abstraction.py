"""The accurate vCPU abstraction vSched maintains per vCPU.

This is the data the vProbers populate and the optimizing techniques read:
EMA capacity (vcap), vCPU latency and average active/inactive periods
(vact), and the probed topology (vtop).  It intentionally contains nothing
the guest could not measure itself.
"""

from __future__ import annotations

import statistics
from typing import Dict, FrozenSet, List, Optional

from repro.core.ema import Ema, alpha_for_halflife


class VCpuAbstraction:
    """Probed performance features of one vCPU."""

    def __init__(self, index: int, ema_halflife_periods: float = 2.0):
        self.index = index
        #: Smoothed capacity, 1024 = one full nominal core.
        self.ema_capacity = Ema(alpha_for_halflife(ema_halflife_periods),
                                initial=1024.0)
        #: Hosting-core capacity from the last heavy sampling.
        self.core_capacity = 1024.0
        #: Average inactive period — the paper's "vCPU latency".
        self.latency_ns = 0.0
        #: Average host-active period between preemptions.
        self.avg_active_ns = 0.0
        #: Coefficient of variation of the inactive periods — how
        #: predictable this vCPU's activity pattern is.  Activity-aware
        #: techniques only trust predictions when this is low.  Starts at
        #: the trust boundary: one consistent sample unlocks predictions,
        #: one erratic sample locks them.
        self.latency_cv = 0.6
        #: Last wall time any prober refreshed this entry.
        self.last_update = 0

    @property
    def capacity(self) -> float:
        return self.ema_capacity.get(1024.0)

    def __repr__(self) -> str:
        return (f"<VCpuAbstraction {self.index} cap={self.capacity:.0f} "
                f"lat={self.latency_ns / 1e6:.2f}ms>")


class TopologyView:
    """vtop's probed topology: per-vCPU sibling sets plus stack groups."""

    def __init__(self, n_cpus: int):
        self.n_cpus = n_cpus
        self.smt_siblings: Dict[int, FrozenSet[int]] = {
            c: frozenset((c,)) for c in range(n_cpus)}
        self.socket_siblings: Dict[int, FrozenSet[int]] = {
            c: frozenset(range(n_cpus)) for c in range(n_cpus)}
        self.stack_groups: List[FrozenSet[int]] = []

    def stacked_partners(self, cpu: int) -> FrozenSet[int]:
        for g in self.stack_groups:
            if cpu in g:
                return g - {cpu}
        return frozenset()

    def equals(self, other: "TopologyView") -> bool:
        return (self.smt_siblings == other.smt_siblings
                and self.socket_siblings == other.socket_siblings
                and sorted(map(sorted, self.stack_groups))
                == sorted(map(sorted, other.stack_groups)))


class AbstractionStore:
    """All per-vCPU abstractions of one VM, with aggregate queries."""

    def __init__(self, n_cpus: int, ema_halflife_periods: float = 2.0):
        self.vcpus: List[VCpuAbstraction] = [
            VCpuAbstraction(i, ema_halflife_periods) for i in range(n_cpus)]
        self.topology = TopologyView(n_cpus)

    def __getitem__(self, index: int) -> VCpuAbstraction:
        return self.vcpus[index]

    def __len__(self) -> int:
        return len(self.vcpus)

    def median_capacity(self) -> float:
        return statistics.median(v.capacity for v in self.vcpus)

    def mean_capacity(self) -> float:
        return statistics.fmean(v.capacity for v in self.vcpus)

    def median_latency(self) -> float:
        return statistics.median(v.latency_ns for v in self.vcpus)

    def capacities(self) -> List[float]:
        return [v.capacity for v in self.vcpus]
