"""The vSched kernel module analogue.

In the paper, a kernel module receives the user-space probers' results and
exposes them to CFS: per-vCPU data (EMA capacity, vCPU latency) and a
schedule-domain rebuild from the probed topology (§4).  This class plays
that role for the simulated guest: probers call the ``publish_*`` methods,
and the module updates the kernel's capacity provider and domains, then
notifies subscribers (rwc re-evaluates its bans after every publish).
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.core.abstraction import AbstractionStore, TopologyView
from repro.guest.domains import SchedDomains
from repro.guest.kernel import GuestKernel


class VSchedModule:
    """Bridge between user-space probers and the guest scheduler."""

    def __init__(self, kernel: GuestKernel, ema_halflife_periods: float = 2.0):
        self.kernel = kernel
        self.store = AbstractionStore(len(kernel.cpus), ema_halflife_periods)
        self._subscribers: List[Callable] = []
        self._capacity_installed = False

    # ------------------------------------------------------------------
    # Installation into the kernel
    # ------------------------------------------------------------------
    def install_capacity_provider(self) -> None:
        """Replace the steal-based CFS capacity estimate with vcap's.

        Installed as a bound method (not a lambda) so a snapshot fork
        rebinds the hook to the copied module instead of aliasing the
        frozen world's store.
        """
        self.kernel.capacity_provider = self._probed_capacity
        self._capacity_installed = True

    def _probed_capacity(self, cpu_index: int) -> float:
        return self.store[cpu_index].capacity

    def uninstall(self) -> None:
        self.kernel.capacity_provider = None
        self._capacity_installed = False

    def subscribe(self, callback: Callable) -> None:
        """Register a callback invoked after every prober publish."""
        self._subscribers.append(callback)

    def _notify(self) -> None:
        for cb in self._subscribers:
            cb()

    # ------------------------------------------------------------------
    # Prober-facing publish API
    # ------------------------------------------------------------------
    def publish_capacity(self, cpu_index: int, capacity: float,
                         core_capacity: Optional[float] = None) -> None:
        entry = self.store[cpu_index]
        entry.ema_capacity.update(capacity)
        if core_capacity is not None:
            entry.core_capacity = core_capacity
        entry.last_update = self.kernel.now()

    def publish_activity(self, cpu_index: int, latency_ns: float,
                         avg_active_ns: float) -> None:
        entry = self.store[cpu_index]
        # Predictability first: deviation of this sample from the running
        # mean, relative to the mean.
        mean = entry.latency_ns
        if mean > 0:
            cv_sample = min(2.0, abs(latency_ns - mean) / mean)
            entry.latency_cv += 0.5 * (cv_sample - entry.latency_cv)
        elif latency_ns == 0:
            entry.latency_cv += 0.5 * (0.0 - entry.latency_cv)
        # else: first nonzero sample — no baseline yet, leave cv alone.
        # Activity is smoothed lightly: latency must track phase changes
        # within a couple of sampling periods (§5.7).
        entry.latency_ns += 0.5 * (latency_ns - entry.latency_ns)
        entry.avg_active_ns += 0.5 * (avg_active_ns - entry.avg_active_ns)
        entry.last_update = self.kernel.now()

    def publish_topology(self, view: TopologyView) -> None:
        """Install a probed topology: rebuild the schedule domains."""
        self.store.topology = view
        self.kernel.domains = SchedDomains.from_topology_lists(
            view.n_cpus, view.smt_siblings, view.socket_siblings)
        self._notify()

    def sampling_complete(self) -> None:
        """Called by vcap at the end of every sampling period."""
        self._notify()

    # ------------------------------------------------------------------
    # Scheduler-facing queries
    # ------------------------------------------------------------------
    def capacity(self, cpu_index: int) -> float:
        return self.store[cpu_index].capacity

    def latency(self, cpu_index: int) -> float:
        return self.store[cpu_index].latency_ns

    def median_capacity(self) -> float:
        return self.store.median_capacity()

    def median_latency(self) -> float:
        return self.store.median_latency()
