"""Biased vCPU selection (bvs, §3.2).

bvs matches small latency-sensitive tasks with vCPUs where they suffer the
least extended runqueue latency, implementing the Figure 8 heuristic:

1. only small tasks (low PELT utilization) are redirected; everything else
   falls through to CFS placement;
2. candidate vCPUs must have at least median capacity (runqueue-saturation
   guard);
3. an **empty** vCPU qualifies if its probed vCPU latency is at most the
   median and it has been idle for a while (it tends to wake up quickly);
4. a vCPU running only sched_idle work qualifies if it is host-ACTIVE and
   became active recently (the task can start immediately and finish within
   the remaining active period — the paper's ideal "blue path"), or if it
   has been host-INACTIVE for most of its average inactive period with low
   latency (it will be active again soon);
5. first fit wins (aggressive search, low selection latency); if nothing
   qualifies the CFS heuristic decides.
"""

from __future__ import annotations

from typing import Optional

from repro.core.module import VSchedModule
from repro.guest.kernel import GuestKernel, VCpuHostState
from repro.guest.task import Task
from repro.sim.engine import MSEC


class BiasedVCpuSelection:
    """The select_rq hook implementing bvs."""

    #: PELT utilization ceiling for bvs to engage.  Per the paper, PELT
    #: *and* the user-space latency hint (latency-nice / uclamp) identify
    #: the targets together: a task must carry the hint AND look small to
    #: PELT.  Without the hint requirement, lock waiters of CPU-bound jobs
    #: (whose util decays while blocked) get herded — and their critical
    #: sections with them.
    SMALL_TASK_UTIL = 768.0
    #: Minimum guest-idle duration for an empty vCPU to count as
    #: "prolonged idleness".
    LONG_IDLE_NS = 2 * MSEC
    #: Fraction of the average inactive period after which an inactive
    #: vCPU is considered about to resume.
    SOON_ACTIVE_FRACTION = 0.7
    #: Fraction of the average active period within which a vCPU counts as
    #: recently activated.
    RECENT_ACTIVE_FRACTION = 0.5
    #: Tolerance on the high-capacity gate: estimates within this fraction
    #: of the median count as high-capacity (probing jitter must not reject
    #: symmetric vCPUs).
    CAPACITY_TOLERANCE = 0.9

    def __init__(self, kernel: GuestKernel, module: VSchedModule):
        self.kernel = kernel
        self.module = module
        self._rotor = 0
        self.hits = 0
        self.fallbacks = 0

    def __call__(self, task: Task, waker_cpu: Optional[int]) -> Optional[int]:
        now = self.kernel.now()
        if task.is_idle_policy or not task.latency_sensitive:
            return None
        if task.util(now) > self.SMALL_TASK_UTIL:
            return None
        store = self.module.store
        median_cap = store.median_capacity()
        median_lat = store.median_latency()
        n = len(self.kernel.cpus)
        self._rotor += 1
        start = self._rotor % n
        for off in range(n):
            c = (start + off) % n
            if not task.may_run_on(c):
                continue
            entry = store[c]
            if entry.capacity < self.CAPACITY_TOLERANCE * median_cap:
                continue
            cpu = self.kernel.cpus[c]
            if cpu.rq.is_idle():
                if (entry.latency_ns <= 1.05 * median_lat
                        and now - cpu.idle_since >= self.LONG_IDLE_NS):
                    self.hits += 1
                    return c
                continue
            if cpu.rq.sched_idle_only():
                if entry.latency_cv > 0.6:
                    continue  # activity too erratic to predict
                state, since = self.kernel.vcpu_state(c)
                if state == VCpuHostState.ACTIVE:
                    recent = self.RECENT_ACTIVE_FRACTION * max(
                        entry.avg_active_ns, 1.0)
                    if now - since <= recent or entry.avg_active_ns == 0:
                        self.hits += 1
                        return c
                else:
                    if (entry.latency_ns <= median_lat
                            and entry.latency_ns > 0
                            and now - since
                            >= self.SOON_ACTIVE_FRACTION * entry.latency_ns):
                        self.hits += 1
                        return c
        self.fallbacks += 1
        return None
