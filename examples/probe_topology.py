#!/usr/bin/env python3
"""Discover a hidden vCPU topology with vtop.

Builds the 8-vCPU VM of the paper's Figure 10b — two SMT pairs in socket
0; one SMT pair and one *stacked* pair in socket 1 — which the hypervisor
exposes to the guest as flat UMA.  vtop rediscovers the truth purely from
cache-line ping-pong timing and prints the probed relation matrix, then
demonstrates the periodic validation detecting a live vCPU migration.

Run:  python examples/probe_topology.py
"""

from repro.core.module import VSchedModule
from repro.guest import GuestKernel
from repro.hw import HostTopology
from repro.hypervisor import Machine
from repro.probers import VTop
from repro.sim import Engine, MSEC, SEC, make_rng


def build_fig10b_vm():
    engine = Engine()
    machine = Machine(engine, HostTopology(2, 4, smt=2))
    # vCPU0-3: two SMT pairs in socket 0; vCPU4,5: SMT pair in socket 1;
    # vCPU6,7: stacked on one hardware thread of socket 1.
    pins = [(0,), (1,), (2,), (3,), (8,), (9,), (10,), (10,)]
    vm = machine.new_vm("guest", 8, pinned_map=pins)
    kernel = GuestKernel(vm)
    return engine, machine, vm, kernel


def relation(view, a: int, b: int) -> str:
    if a == b:
        return "-"
    if b in view.stacked_partners(a):
        return "stack"
    if b in view.smt_siblings[a]:
        return "smt"
    if b in view.socket_siblings[a]:
        return "sock"
    return "x"


def print_matrix(view) -> None:
    n = view.n_cpus
    print("      " + "".join(f"{b:>7}" for b in range(n)))
    for a in range(n):
        row = "".join(f"{relation(view, a, b):>7}" for b in range(n))
        print(f"vCPU{a:<2}{row}")


def main() -> None:
    engine, machine, vm, kernel = build_fig10b_vm()
    module = VSchedModule(kernel)
    vtop = VTop(kernel, module, make_rng("probe-topology"))

    print("Guest-visible topology: flat UMA (all 8 vCPUs look identical)")
    print("Running full vtop probe...")
    vtop.probe_full()
    engine.run_until(engine.now + 30 * SEC)
    print(f"full probe finished in {vtop.last_full_ns / MSEC:.0f} ms "
          f"(simulated)\n")
    print_matrix(vtop.view)

    print("\nValidating (the cheap periodic check)...")
    vtop.validate()
    engine.run_until(engine.now + 30 * SEC)
    print(f"validation finished in {vtop.last_validate_ns / MSEC:.0f} ms")

    print("\nNow the hypervisor migrates vCPU3 to socket 1 "
          "(the guest is not told)...")
    machine.repin(vm.vcpu(3), (12,))
    vtop.validate()
    engine.run_until(engine.now + 60 * SEC)
    print(f"validation failed and triggered a re-probe "
          f"(full probes so far: {vtop.full_probes})\n")
    print_matrix(vtop.view)
    print("\nvCPU3 now correctly appears in socket 1.")


if __name__ == "__main__":
    main()
