#!/usr/bin/env python3
"""Quickstart: probe an overcommitted VM and see vSched beat stock CFS.

Builds a 4-vCPU VM whose cores are time-shared 50/50 with a competing
tenant, runs a single CPU-bound job under stock CFS and under vSched, and
prints the probed vCPU abstraction plus the throughput difference (the
intra-VM harvesting effect of §5.5).

Run:  python examples/quickstart.py
"""

from repro.cluster import build_plain_vm
from repro.core import VSched, VSchedConfig
from repro.sim import MSEC, SEC


def run_job(mode_name: str, config: VSchedConfig) -> None:
    # A 4-vCPU VM; every hardware thread is shared with a co-located
    # tenant's CPU-bound work, so each vCPU alternates ~5 ms on / 5 ms off.
    env = build_plain_vm(4, host_slice_ns=5 * MSEC)
    for i in range(4):
        env.machine.add_host_task(f"tenant-{i}", pinned=(i,))

    vsched = VSched(env.kernel, config)
    vsched.start()

    # Let the probers converge before starting work.
    env.engine.run_until(4 * SEC)

    finished = []

    def job(api):
        yield api.run(2 * SEC)  # two seconds of computation
        finished.append(api.now())

    env.kernel.spawn(job, "job", group=vsched.workload_group,
                     initial_util=900)
    env.engine.run_until(60 * SEC)

    elapsed = (finished[0] - 4 * SEC) / SEC
    print(f"\n=== {mode_name} ===")
    print(f"2.0 s of work took {elapsed:.2f} s "
          f"({100 * 2.0 / elapsed:.0f}% effective speed)")
    if vsched.module is not None:
        print("probed vCPU abstraction:")
        for i in range(4):
            e = vsched.module.store[i]
            print(f"  vCPU{i}: capacity={e.capacity:4.0f}/1024  "
                  f"latency={e.latency_ns / MSEC:.1f} ms  "
                  f"avg active={e.avg_active_ns / MSEC:.1f} ms")
    if vsched.ivh is not None:
        print(f"ivh migrations: {env.kernel.stats.ivh_migrations} "
              f"(aborted: {env.kernel.stats.ivh_aborted})")


def main() -> None:
    print("vSched quickstart: one CPU-bound thread on an overcommitted "
          "4-vCPU VM")
    run_job("stock CFS", VSchedConfig.baseline())
    run_job("vSched", VSchedConfig.full())
    print("\nvSched keeps the thread on whichever vCPU is currently "
          "host-active,\nharvesting cycles the stalled task would have "
          "wasted (paper §5.5).")


if __name__ == "__main__":
    main()
