#!/usr/bin/env python3
"""Latency-sensitive serving with biased vCPU selection (bvs).

The motivating scenario of §5.4: a VM whose vCPUs have *asymmetric
latency* — half of them are rescheduled quickly by the host, half wait
much longer.  A key-value-store-style workload (masstree-like requests)
runs with and without bvs; the script prints the p95 tail latency
breakdown (queue / service / end-to-end) for both.

Run:  python examples/latency_serving.py
"""

from repro.cluster import (
    attach_scheduler,
    build_plain_vm,
    make_context,
    run_to_completion,
)
from repro.sim import MSEC, SEC
from repro.workloads import LatencyWorkload


def build_asymmetric_latency_vm():
    """16 vCPUs, symmetric capacity; vCPUs 0-7 have 2x lower latency."""
    env = build_plain_vm(16, wakeup_gran_ns=None)
    for i in range(16):
        slice_ns = 3 * MSEC if i < 8 else 6 * MSEC
        env.machine.set_slice(i, slice_ns)
        env.machine.add_host_task(f"tenant-{i}", pinned=(i,))
    return env


def serve(with_bvs: bool) -> LatencyWorkload:
    env = build_asymmetric_latency_vm()
    overrides = {"enable_ivh": False, "enable_rwc": False}
    if not with_bvs:
        overrides["enable_bvs"] = False
    vsched = attach_scheduler(env, "vsched", overrides=overrides)
    ctx = make_context(env, vsched, seed="latency-serving")
    env.engine.run_until(6 * SEC)  # prober warm-up

    workload = LatencyWorkload("masstree", workers=8, n_requests=400)
    run_to_completion(env, [workload], ctx, timeout_ns=120 * SEC)
    return workload


def report(label: str, wl: LatencyWorkload) -> None:
    print(f"\n=== {label} ===")
    print(f"  p95 queue time:   {wl.p95_ns('queue') / MSEC:6.2f} ms")
    print(f"  p95 service time: {wl.p95_ns('service') / MSEC:6.2f} ms")
    print(f"  p95 end-to-end:   {wl.p95_ns('e2e') / MSEC:6.2f} ms")
    print(f"  mean end-to-end:  {wl.mean_ns('e2e') / MSEC:6.2f} ms")


def main() -> None:
    print("Serving 400 masstree-style requests on a VM with asymmetric "
          "vCPU latency")
    base = serve(with_bvs=False)
    report("vProbers only (CFS placement)", base)
    biased = serve(with_bvs=True)
    report("vProbers + bvs", biased)
    gain = 100.0 * (1 - biased.p95_ns() / base.p95_ns())
    print(f"\nbvs reduced p95 tail latency by {gain:.0f}% by steering small "
          f"tasks to\nlow-latency vCPUs (paper §5.4 reports 42% on average).")


if __name__ == "__main__":
    main()
