#!/usr/bin/env python3
"""A resource-constrained spot VM: stragglers, stacking, and rwc.

Builds the paper's rcvm (12 vCPUs: SMT pairs, a stacked pair, two
stragglers, four capacity/latency classes) and runs a synchronization-
intensive job under stock CFS, enhanced CFS (probers + relaxed work
conservation), and full vSched.  Prints what rwc decided to hide and the
resulting throughput.

Run:  python examples/spot_vm_harvesting.py
"""

from repro.cluster import attach_scheduler, build_rcvm, make_context, run_to_completion
from repro.sim import SEC
from repro.workloads import build_parsec


def run_mode(mode: str) -> None:
    env = build_rcvm()
    vsched = attach_scheduler(env, mode)
    ctx = make_context(env, vsched, seed=f"spot-{mode}")
    env.engine.run_until(9 * SEC)  # probers converge; rwc applies its bans

    job = build_parsec("ocean_cp", threads=12, scale=0.1)
    run_to_completion(env, [job], ctx, timeout_ns=600 * SEC)

    print(f"\n=== {mode} ===")
    print(f"  ocean_cp finished in {job.elapsed_ns() / SEC:.2f} s")
    if vsched.module is not None:
        caps = [f"{vsched.module.store[i].capacity:.0f}" for i in range(12)]
        print(f"  probed capacities: {' '.join(caps)}")
    if vsched.rwc is not None:
        hidden = sorted(vsched.rwc.hidden_cpus())
        print(f"  rwc hid vCPUs {hidden} "
              f"(stacked: {sorted(vsched.rwc.banned_stacked)}, "
              f"stragglers: {sorted(vsched.rwc.stragglers)})")


def main() -> None:
    print("rcvm: 12 vCPUs = 4 capacity/latency classes + 2 stragglers + "
          "1 stacked pair")
    for mode in ("cfs", "enhanced", "vsched"):
        run_mode(mode)
    print("\nHiding the stragglers and one stacked vCPU keeps the barrier "
          "phases free\nof stragglers (paper §5.6: +59-69% throughput on "
          "rcvm overall).")


if __name__ == "__main__":
    main()
