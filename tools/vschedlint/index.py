"""The project index: one whole-program view built once per run.

Per-file rules (VSL1xx–3xx) see one AST at a time; the snapshot-safety,
cache-key, and leakage families (VSL4xx–6xx) need to know what the *rest*
of the tree does — where a callable handed to ``Engine.call_at`` is
defined, which modules an experiment transitively imports, which functions
a work unit can reach.  This module distills every linted file into a
:class:`FileRecord`: a JSON-serializable summary of exactly the facts the
whole-program rules consume (imports, the function/class registry with
closure and default information, registration sites, hidden-input sites,
module-state writes).  A :class:`ProjectIndex` is the collection of
records plus the cross-module resolution helpers.

Records are deliberately AST-free so they can be cached on disk
(:class:`IndexCache`): the cache is keyed by each file's SHA-256 *and* a
hash of the linter's own sources, so editing one simulator file re-parses
one file, while editing the linter (or its config) invalidates everything.
Whole-program rules always re-run — they are cheap once parsing is paid —
so a cached record can still produce fresh cross-module findings.

Free-variable analysis uses :mod:`symtable` (the compiler's own symbol
pass), so "closure" here means exactly what it means at runtime: a
function whose code object carries cells into an enclosing scope.  A
nested function that only reads module globals is *not* a closure and is
not flagged.
"""

from __future__ import annotations

import ast
import hashlib
import json
import symtable
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from vschedlint import config
from vschedlint.findings import Finding

#: Bump when the record schema changes; cached records from another
#: schema are discarded wholesale.
RECORD_SCHEMA = 2


# ---------------------------------------------------------------------------
# Expression summaries
# ---------------------------------------------------------------------------
# A tiny, serializable description of the expressions that matter to the
# snapshot-safety rules: what was passed as a callback / argument at a
# registration site.  ``form`` is one of:
#
#   lambda   {free: [names]}          — a lambda, with its free variables
#   name     {id: str}                — a bare name
#   attr     {attr: str, dotted: str} — an attribute access (x.y.z)
#   call     {callee: summary, args: [summaries]} — a call expression
#   genexp   {}                       — a generator expression
#   other    {}                       — anything else (conservatively mute)

def _dotted(node: ast.AST) -> Optional[str]:
    """x.y.z for pure attribute chains rooted at a Name, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def summarize_expr(node: ast.AST, frees_of, depth: int = 0) -> dict:
    if depth > 4:
        return {"form": "other"}
    if isinstance(node, ast.Lambda):
        return {"form": "lambda", "free": frees_of(node),
                "line": node.lineno, "col": node.col_offset}
    if isinstance(node, ast.Name):
        return {"form": "name", "id": node.id}
    if isinstance(node, ast.Attribute):
        return {"form": "attr", "attr": node.attr,
                "dotted": _dotted(node) or node.attr}
    if isinstance(node, ast.Call):
        return {"form": "call",
                "callee": summarize_expr(node.func, frees_of, depth + 1),
                "args": [summarize_expr(a, frees_of, depth + 1)
                         for a in node.args]}
    if isinstance(node, ast.GeneratorExp):
        return {"form": "genexp"}
    return {"form": "other"}


# ---------------------------------------------------------------------------
# Record dataclasses
# ---------------------------------------------------------------------------
@dataclass
class FunctionInfo:
    """One function or method, as the whole-program rules see it."""

    qual: str                      # e.g. "VTop._begin" or "run_one"
    line: int = 0
    cls: Optional[str] = None      # innermost enclosing class name
    free: List[str] = field(default_factory=list)   # closure cells
    mutable_defaults: bool = False
    has_yield: bool = False
    decorators: List[str] = field(default_factory=list)
    calls: List[List[str]] = field(default_factory=list)  # [kind, name]
    returns: List[dict] = field(default_factory=list)     # expr summaries

    def to_json(self) -> dict:
        return self.__dict__.copy()

    @classmethod
    def from_json(cls, d: dict) -> "FunctionInfo":
        return cls(**d)


@dataclass
class FileRecord:
    """Everything the whole-program pass needs to know about one file."""

    path: str
    modname: str
    tree: str                      # "repro" | "tools" | "tests"
    layer: Optional[str]
    sha: str
    imports: List[List[Any]] = field(default_factory=list)
    # [target_module, imported_name_or_None, lineno, col]
    functions: Dict[str, dict] = field(default_factory=dict)
    classes: Dict[str, dict] = field(default_factory=dict)
    # class name -> {"line": int, "methods": [names]}
    module_mutables: Dict[str, int] = field(default_factory=dict)
    # module-level name bound to a mutable value -> lineno
    state_writes: List[dict] = field(default_factory=list)
    # {"func", "name", "target_mod", "how", "line", "col"}
    env_reads: List[dict] = field(default_factory=list)
    file_reads: List[dict] = field(default_factory=list)
    # {"func", "what", "line", "col"}
    reg_sites: List[dict] = field(default_factory=list)
    # {"kind", "func", "line", "col", "callback": summary,
    #  "args": [summaries]}
    root_sites: List[dict] = field(default_factory=list)
    # WorkUnit/PrefixSpec construction: {"kind", "func_summary", "line"}
    spans: List[List[Any]] = field(default_factory=list)
    # [start, end, def_line, qual] — for suppression def-line scoping
    suppressions: Dict[str, dict] = field(default_factory=dict)
    # str(lineno) -> {"rules": [...], "reason": str}
    findings: List[dict] = field(default_factory=list)
    # serialized per-file findings (pre-suppression)

    def function(self, qual: str) -> Optional[FunctionInfo]:
        d = self.functions.get(qual)
        return FunctionInfo.from_json(d) if d else None

    def def_lines_of(self, line: int) -> List[int]:
        hits = [(start, dl) for start, end, dl, _q in self.spans
                if start <= line <= end]
        return [dl for _, dl in sorted(hits, reverse=True)]

    def symbol_at(self, line: int) -> str:
        best = ""
        for start, end, _dl, qual in sorted(self.spans):
            if start <= line <= end:
                best = qual
        return best

    def to_json(self) -> dict:
        return {
            "path": self.path, "modname": self.modname, "tree": self.tree,
            "layer": self.layer, "sha": self.sha, "imports": self.imports,
            "functions": self.functions, "classes": self.classes,
            "module_mutables": self.module_mutables,
            "state_writes": self.state_writes, "env_reads": self.env_reads,
            "file_reads": self.file_reads, "reg_sites": self.reg_sites,
            "root_sites": self.root_sites, "spans": self.spans,
            "suppressions": self.suppressions, "findings": self.findings,
        }

    @classmethod
    def from_json(cls, d: dict) -> "FileRecord":
        return cls(**d)


# ---------------------------------------------------------------------------
# Free variables via symtable
# ---------------------------------------------------------------------------
def _collect_frees(source: str, path: str) -> Dict[Tuple[str, int], List[str]]:
    """(block name, first line) -> free variable names, for every function
    block (including lambdas, which symtable names ``lambda``).  Two
    blocks on one line with the same name merge their frees — a
    conservative union."""
    out: Dict[Tuple[str, int], List[str]] = {}

    def walk(tbl):
        for child in tbl.get_children():
            if child.get_type() == "function":
                key = (child.get_name(), child.get_lineno())
                frees = sorted(set(child.get_frees())
                               | set(out.get(key, ())))
                out[key] = frees
            walk(child)

    walk(symtable.symtable(source, path, "exec"))
    return out


# ---------------------------------------------------------------------------
# The extraction visitor
# ---------------------------------------------------------------------------
_MUTABLE_LITERALS = (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp,
                     ast.SetComp)
_MUTABLE_CTORS = frozenset({"list", "dict", "set", "defaultdict", "deque",
                            "Counter", "OrderedDict", "bytearray"})


def _is_mutable_value(node: ast.AST) -> bool:
    if isinstance(node, _MUTABLE_LITERALS):
        return True
    if isinstance(node, ast.Call):
        name = None
        if isinstance(node.func, ast.Name):
            name = node.func.id
        elif isinstance(node.func, ast.Attribute):
            name = node.func.attr
        return name in _MUTABLE_CTORS
    return False


def _decorator_names(fn) -> List[str]:
    out = []
    for dec in fn.decorator_list:
        node = dec.func if isinstance(dec, ast.Call) else dec
        name = _dotted(node) or (node.id if isinstance(node, ast.Name) else
                                 getattr(node, "attr", None))
        if name:
            out.append(name.split(".")[-1])
    return out


class _Extractor(ast.NodeVisitor):
    """One pass over a module AST filling a FileRecord."""

    def __init__(self, module, record: FileRecord):
        self.m = module
        self.rec = record
        self.frees = _collect_frees(module.source, module.path)
        self.func_stack: List[str] = []   # qualnames
        self.class_stack: List[str] = []
        self.local_names_stack: List[set] = []
        self.global_decls_stack: List[set] = []
        self._module_level_pass()

    # -- helpers -----------------------------------------------------------
    def _qual(self) -> str:
        return self.func_stack[-1] if self.func_stack else ""

    def _frees_of(self, node) -> List[str]:
        name = node.name if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef)) else "lambda"
        return self.frees.get((name, node.lineno), [])

    def _summarize(self, node) -> dict:
        return summarize_expr(node, self._frees_of)

    def _module_level_pass(self) -> None:
        for node in self.m.tree.body:
            targets = []
            if isinstance(node, ast.Assign):
                targets, value = node.targets, node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets, value = [node.target], node.value
            else:
                continue
            for tgt in targets:
                if isinstance(tgt, ast.Name) and _is_mutable_value(value):
                    self.rec.module_mutables[tgt.id] = tgt.lineno

    def _resolve_imported(self, name: str) -> Optional[str]:
        """Module that ``name`` was imported from, if any."""
        for target_mod, imported, _ln, _col in self.rec.imports:
            if imported == name:
                return target_mod
        return None

    # -- scopes ------------------------------------------------------------
    def visit_ClassDef(self, node):
        self.class_stack.append(node.name)
        methods = [n.name for n in node.body
                   if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))]
        if len(self.class_stack) == 1 and not self.func_stack:
            self.rec.classes[node.name] = {"line": node.lineno,
                                           "methods": methods}
        self.generic_visit(node)
        self.class_stack.pop()

    def visit_FunctionDef(self, node):
        prefix = (self.func_stack[-1] + "." if self.func_stack
                  else ".".join(self.class_stack + [""])
                  if self.class_stack else "")
        qual = prefix + node.name
        args = node.args
        local = {a.arg for a in (args.posonlyargs + args.args
                                 + args.kwonlyargs)}
        if args.vararg:
            local.add(args.vararg.arg)
        if args.kwarg:
            local.add(args.kwarg.arg)
        glob: set = set()
        has_yield = False
        calls: List[List[str]] = []
        returns: List[dict] = []
        for sub in _walk_own(node):
            if isinstance(sub, ast.Global):
                glob.update(sub.names)
            elif isinstance(sub, (ast.Yield, ast.YieldFrom)):
                has_yield = True
            elif isinstance(sub, ast.Return) and sub.value is not None:
                returns.append(self._summarize(sub.value))
            elif isinstance(sub, ast.Call):
                fn = sub.func
                if isinstance(fn, ast.Name):
                    calls.append(["bare", fn.id])
                elif isinstance(fn, ast.Attribute):
                    kind = ("selfattr" if isinstance(fn.value, ast.Name)
                            and fn.value.id in ("self", "cls") else "attr")
                    calls.append([kind, fn.attr])
            elif isinstance(sub, ast.Assign):
                for tgt in sub.targets:
                    if isinstance(tgt, ast.Name):
                        local.add(tgt.id)
            elif isinstance(sub, (ast.AnnAssign, ast.AugAssign)):
                if isinstance(sub.target, ast.Name):
                    local.add(sub.target.id)

        defaults = list(args.defaults) + [d for d in args.kw_defaults
                                          if d is not None]
        info = FunctionInfo(
            qual=qual, line=node.lineno,
            cls=self.class_stack[-1] if self.class_stack else None,
            free=self._frees_of(node),
            mutable_defaults=any(_is_mutable_value(d) for d in defaults),
            has_yield=has_yield,
            decorators=_decorator_names(node),
            calls=sorted({tuple(c) for c in calls} - {()},
                         key=lambda c: (c[0], c[1])),
            returns=returns)
        info.calls = [list(c) for c in info.calls]
        self.rec.functions[qual] = info.to_json()

        self.func_stack.append(qual)
        self.local_names_stack.append(local - glob)
        self.global_decls_stack.append(glob)
        self.generic_visit(node)
        self.func_stack.pop()
        self.local_names_stack.pop()
        self.global_decls_stack.pop()

    visit_AsyncFunctionDef = visit_FunctionDef

    # -- imports -----------------------------------------------------------
    def visit_Import(self, node):
        for a in node.names:
            self.rec.imports.append([a.name, None, node.lineno,
                                     node.col_offset])
        self.generic_visit(node)

    def visit_ImportFrom(self, node):
        base = node.module or ""
        if node.level:
            parts = self.m.modname.split(".")[: -node.level]
            base = ".".join(parts + ([base] if base else []))
        for a in node.names:
            self.rec.imports.append([base, a.name, node.lineno,
                                     node.col_offset])
        self.generic_visit(node)

    # -- state writes ------------------------------------------------------
    def _is_local(self, name: str) -> bool:
        return any(name in names for names in self.local_names_stack)

    def _note_write(self, name: str, target_mod: Optional[str], how: str,
                    node) -> None:
        self.rec.state_writes.append({
            "func": self._qual(), "name": name,
            "target_mod": target_mod or self.rec.modname, "how": how,
            "line": node.lineno, "col": node.col_offset})

    def _check_target_write(self, target, node) -> None:
        """Assign/AugAssign targets that hit module or class state."""
        if not self.func_stack:
            return
        if isinstance(target, ast.Name):
            if target.id in (self.global_decls_stack[-1] if
                             self.global_decls_stack else ()):
                self._note_write(target.id, None, "global-rebind", node)
        elif isinstance(target, ast.Subscript) and isinstance(
                target.value, ast.Name):
            base = target.value.id
            if self._is_local(base):
                return
            if base in self.rec.module_mutables:
                self._note_write(base, None, "mutate", node)
            else:
                src = self._resolve_imported(base)
                if src and src.startswith("repro"):
                    self._note_write(base, src, "mutate", node)
        elif isinstance(target, ast.Attribute) and isinstance(
                target.value, ast.Name):
            base = target.value.id
            if base == "cls" or base in self.rec.classes:
                cls = (self.class_stack[-1] if base == "cls"
                       and self.class_stack else base)
                self._note_write(f"{cls}.{target.attr}", None,
                                 "class-attr", node)
            elif base[:1].isupper():
                src = self._resolve_imported(base)
                if src and src.startswith("repro"):
                    self._note_write(f"{base}.{target.attr}", src,
                                     "class-attr", node)

    def visit_Assign(self, node):
        for tgt in node.targets:
            self._check_target_write(tgt, node)
        self.generic_visit(node)

    def visit_AugAssign(self, node):
        self._check_target_write(node.target, node)
        self.generic_visit(node)

    # -- calls: mutations, registrations, env/file reads -------------------
    def visit_Call(self, node):
        fn = node.func
        qual = self._qual()

        # mutation of module-level mutables via method call
        if (self.func_stack and isinstance(fn, ast.Attribute)
                and fn.attr in config.MUTATOR_METHODS
                and isinstance(fn.value, ast.Name)
                and not self._is_local(fn.value.id)):
            base = fn.value.id
            if base in self.rec.module_mutables:
                self._note_write(base, None, "mutate", node)
            else:
                src = self._resolve_imported(base)
                if src and src.startswith("repro"):
                    self._note_write(base, src, "mutate", node)

        # engine / listener registration sites
        reg_idx = None
        kind = None
        if isinstance(fn, ast.Attribute):
            if fn.attr in config.REGISTRATION_CALLS:
                kind, reg_idx = fn.attr, config.REGISTRATION_CALLS[fn.attr]
            elif (fn.attr == "append"
                  and isinstance(fn.value, ast.Attribute)
                  and fn.value.attr in config.LISTENER_ATTRS):
                kind, reg_idx = f"{fn.value.attr}.append", 0
        if kind is not None and len(node.args) > reg_idx:
            self.rec.reg_sites.append({
                "kind": kind, "func": qual, "line": node.lineno,
                "col": node.col_offset,
                "callback": self._summarize(node.args[reg_idx]),
                "args": [self._summarize(a)
                         for a in node.args[reg_idx + 1:]]})

        # WorkUnit / PrefixSpec roots (for reachability)
        ctor = fn.id if isinstance(fn, ast.Name) else (
            fn.attr if isinstance(fn, ast.Attribute) else None)
        if ctor in config.UNIT_ROOT_CTORS:
            func_arg = None
            pos = config.UNIT_ROOT_CTORS[ctor]
            if len(node.args) > pos:
                func_arg = node.args[pos]
            for kw in node.keywords:
                if kw.arg == "func":
                    func_arg = kw.value
            if func_arg is not None:
                self.rec.root_sites.append({
                    "kind": ctor, "line": node.lineno,
                    "func_summary": self._summarize(func_arg)})

        # hidden inputs: environment
        dotted = _dotted(fn) or ""
        if (dotted in ("os.getenv", "os.environ.get", "environ.get",
                       "getenv")):
            self.rec.env_reads.append({"func": qual, "what": dotted,
                                       "line": node.lineno,
                                       "col": node.col_offset})

        # hidden inputs: file content
        if isinstance(fn, ast.Name) and fn.id == "open":
            self.rec.file_reads.append({"func": qual, "what": "open()",
                                        "line": node.lineno,
                                        "col": node.col_offset})
        elif isinstance(fn, ast.Attribute) and fn.attr in (
                "read_text", "read_bytes"):
            self.rec.file_reads.append({
                "func": qual, "what": f".{fn.attr}()",
                "line": node.lineno, "col": node.col_offset})
        elif dotted in ("np.load", "numpy.load", "np.loadtxt",
                        "numpy.loadtxt"):
            self.rec.file_reads.append({"func": qual, "what": dotted,
                                        "line": node.lineno,
                                        "col": node.col_offset})
        self.generic_visit(node)

    def visit_Subscript(self, node):
        # os.environ["X"] reads (stores are caught as state writes... no:
        # environ stores are env *mutations*; both are hidden inputs).
        if (_dotted(node.value) in ("os.environ", "environ")
                and isinstance(node.ctx, (ast.Load, ast.Store))):
            self.rec.env_reads.append({
                "func": self._qual(),
                "what": (_dotted(node.value) or "os.environ") + "[...]",
                "line": node.lineno, "col": node.col_offset})
        self.generic_visit(node)


def _walk_own(fn: ast.AST):
    """Walk a function's body without descending into nested defs."""
    stack = list(ast.iter_child_nodes(fn))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            yield node  # the def itself is visible; its body is not
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


# ---------------------------------------------------------------------------
# Record construction
# ---------------------------------------------------------------------------
def sha256_text(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def extract(module, findings: List[Finding],
            suppressions: Dict[int, Any]) -> FileRecord:
    """Distill a parsed :class:`vschedlint.checker.Module` plus its
    per-file findings into a cacheable record."""
    rec = FileRecord(path=module.path, modname=module.modname,
                     tree=module.tree_kind, layer=module.layer,
                     sha=sha256_text(module.source))
    _Extractor(module, rec).visit(module.tree)
    rec.spans = [[s, e, dl, q] for s, e, dl, q in module.spans]
    rec.suppressions = {
        str(ln): {"rules": sup.rules, "reason": sup.reason}
        for ln, sup in suppressions.items()}
    rec.findings = [_finding_to_json(f) for f in findings]
    return rec


def _finding_to_json(f: Finding) -> dict:
    return {"rule": f.rule, "path": f.path, "line": f.line, "col": f.col,
            "message": f.message, "symbol": f.symbol, "modname": f.modname}


def finding_from_json(d: dict) -> Finding:
    return Finding(**d)


# ---------------------------------------------------------------------------
# The project index
# ---------------------------------------------------------------------------
class ProjectIndex:
    """All records of one run, with cross-module resolution helpers."""

    def __init__(self, records: List[FileRecord]):
        self.records = records
        self.by_mod: Dict[str, FileRecord] = {}
        for rec in records:
            self.by_mod[rec.modname] = rec
        # last-qual-component -> [(record, FunctionInfo)] across the tree
        self._by_short: Dict[str, List[Tuple[FileRecord, FunctionInfo]]] = {}
        for rec in records:
            for qual, d in rec.functions.items():
                info = FunctionInfo.from_json(d)
                short = qual.rsplit(".", 1)[-1]
                self._by_short.setdefault(short, []).append((rec, info))

    def repro_records(self) -> List[FileRecord]:
        return [r for r in self.records if r.tree == "repro"]

    def functions_named(self, short: str) -> List[Tuple[FileRecord,
                                                        FunctionInfo]]:
        return self._by_short.get(short, [])

    def import_map(self, rec: FileRecord) -> Dict[str, str]:
        """imported name -> source module, for ``from m import n``."""
        return {name: mod for mod, name, _ln, _col in rec.imports
                if name is not None}

    def resolve_function(self, rec: FileRecord, name: str,
                         context_qual: str = "") -> Optional[
                             Tuple[FileRecord, FunctionInfo]]:
        """Resolve a bare callable name seen in ``rec``.

        Resolution order: a nested def of the referencing function, a
        module-level function of ``rec``, then a function imported by
        name from another indexed module.  Returns None when the name is
        unknown (a parameter, a local variable, a third-party import) —
        callers must treat that as "cannot prove unsafe".
        """
        if context_qual:
            nested = rec.function(f"{context_qual}.{name}")
            if nested is not None:
                return rec, nested
        direct = rec.function(name)
        if direct is not None:
            return rec, direct
        src_mod = self.import_map(rec).get(name)
        if src_mod is not None:
            src = self.by_mod.get(src_mod)
            if src is not None:
                info = src.function(name)
                if info is not None:
                    return src, info
            # ``from pkg import module`` — nothing to resolve further.
        return None

    def resolve_method(self, rec: FileRecord, attr: str,
                       context_qual: str = "") -> Optional[
                           Tuple[FileRecord, FunctionInfo]]:
        """Resolve ``something.attr`` conservatively.

        Preference: a method of the class enclosing ``context_qual`` in
        this module; then a uniquely-named method anywhere in this
        module; then a uniquely-named function across the whole index.
        Ambiguity (several unrelated definitions share the name) resolves
        to None — the rules stay quiet rather than guess.
        """
        ctx_cls = context_qual.split(".")[0] if "." in context_qual else None
        if ctx_cls and ctx_cls in rec.classes:
            info = rec.function(f"{ctx_cls}.{attr}")
            if info is not None:
                return rec, info
        local = [(rec, FunctionInfo.from_json(d))
                 for q, d in rec.functions.items()
                 if q.rsplit(".", 1)[-1] == attr]
        if len(local) == 1:
            return local[0]
        everywhere = self.functions_named(attr)
        if len(everywhere) == 1:
            return everywhere[0]
        return None

    def transitive_imports(self, modname: str) -> set:
        """All repro-tree modules reachable from ``modname`` via imports
        (including import targets that are *not* in the index — callers
        detect fingerprint gaps by checking membership)."""
        seen: set = set()
        stack = [modname]
        while stack:
            mod = stack.pop()
            if mod in seen:
                continue
            seen.add(mod)
            rec = self.by_mod.get(mod)
            if rec is None:
                continue
            for target, name, _ln, _col in rec.imports:
                if not target.startswith("repro"):
                    continue
                stack.append(target)
                if name is not None and f"{target}.{name}" in self.by_mod:
                    stack.append(f"{target}.{name}")
        seen.discard(modname)
        return seen


# ---------------------------------------------------------------------------
# The on-disk incremental cache
# ---------------------------------------------------------------------------
def tool_hash() -> str:
    """Hash of the linter's own sources: any change invalidates records."""
    here = Path(__file__).resolve().parent
    h = hashlib.sha256()
    for p in sorted(here.glob("*.py")) + sorted(here.glob("*.json")):
        h.update(p.name.encode())
        h.update(b"\0")
        h.update(p.read_bytes())
        h.update(b"\0")
    h.update(str(RECORD_SCHEMA).encode())
    return h.hexdigest()


class IndexCache:
    """Per-file record cache keyed by content SHA-256 + linter hash.

    ``hits``/``misses`` count record reuse; a miss means the file was
    (re)parsed this run.  The cache never affects findings — a corrupt or
    stale file is simply ignored.
    """

    def __init__(self, path: Optional[Path]):
        self.path = path
        self.hits = 0
        self.misses = 0
        self._entries: Dict[str, dict] = {}
        self._tool = tool_hash()
        if path is not None and path.exists():
            try:
                data = json.loads(path.read_text())
                if (data.get("schema") == RECORD_SCHEMA
                        and data.get("tool") == self._tool):
                    self._entries = data.get("files", {})
            except (ValueError, OSError):
                self._entries = {}

    def get(self, display_path: str, sha: str) -> Optional[FileRecord]:
        entry = self._entries.get(display_path)
        if entry is not None and entry.get("sha") == sha:
            try:
                rec = FileRecord.from_json(entry["record"])
            except (KeyError, TypeError):
                self.misses += 1
                return None
            self.hits += 1
            return rec
        self.misses += 1
        return None

    def put(self, rec: FileRecord) -> None:
        self._entries[rec.path] = {"sha": rec.sha, "record": rec.to_json()}

    def prune(self, live_paths) -> None:
        """Drop entries for files that no longer exist (rename, delete)."""
        live = set(live_paths)
        for path in list(self._entries):
            if path not in live:
                del self._entries[path]

    def save(self) -> None:
        if self.path is None:
            return
        payload = {"schema": RECORD_SCHEMA, "tool": self._tool,
                   "files": self._entries}
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self.path.write_text(json.dumps(payload))
        except OSError:
            pass  # the cache is an accelerator, never a point of failure
