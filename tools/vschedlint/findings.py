"""Finding model and the rule catalogue."""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional

#: rule slug -> (id, family, one-line description).  Slugs are what
#: ``# vschedlint: disable=<slug>`` comments name.
RULES: Dict[str, tuple] = {
    # layering / isolation
    "layer-order": ("VSL101", "layering",
                    "import from a higher-ranked layer"),
    "guest-isolation": ("VSL102", "layering",
                        "guest-side import of host-side (hypervisor) code"),
    "guest-abi": ("VSL103", "layering",
                  "guest-side attribute access outside the guest-visible ABI"),
    "layer-unknown": ("VSL104", "layering",
                      "module outside the declared layer graph"),
    "heap-encapsulation": ("VSL105", "layering",
                           "direct heapq/_heap access outside the engine "
                           "backends (repro.sim)"),
    # determinism
    "wall-clock": ("VSL201", "determinism",
                   "wall-clock read in deterministic code"),
    "unseeded-rng": ("VSL202", "determinism",
                     "randomness not routed through repro.sim.rng.make_rng"),
    "identity-key": ("VSL203", "determinism",
                     "object identity (id()) used where ordering matters"),
    "unordered-iter": ("VSL204", "determinism",
                       "iteration over an unordered collection without an "
                       "explicit ordering"),
    # elision
    "elision-sync": ("VSL301", "elision",
                     "tick-replayed field touched before _catch_up/sync"),
    # snapshot safety (whole-program)
    "snapshot-closure": ("VSL401", "snapshot",
                         "closure registered where a world freeze would "
                         "alias it"),
    "snapshot-bound-builtin": ("VSL402", "snapshot",
                               "bound builtin method registered as a "
                               "callback (deepcopy keeps the original "
                               "receiver)"),
    "snapshot-mutable-default": ("VSL403", "snapshot",
                                 "registered callable has mutable default "
                                 "arguments (shared across forks)"),
    "snapshot-generator": ("VSL404", "snapshot",
                           "generator in a pending event (cannot be "
                           "deep-copied)"),
    # cache-key soundness (whole-program)
    "fingerprint-gap": ("VSL501", "cachekeys",
                        "import outside the result cache's code "
                        "fingerprint"),
    "hidden-env-input": ("VSL502", "cachekeys",
                         "environment read in result-producing code not "
                         "folded into unit keys"),
    "hidden-file-input": ("VSL503", "cachekeys",
                          "file read in result-producing code not folded "
                          "into unit keys"),
    # cross-unit leakage (whole-program)
    "cross-unit-state": ("VSL601", "leakage",
                         "module-level state written at simulation time "
                         "(persists across units in a warm worker)"),
    "class-attr-state": ("VSL602", "leakage",
                         "class attribute written at simulation time "
                         "(persists across units in a warm worker)"),
    # meta
    "bad-suppression": ("VSL001", "meta",
                        "malformed suppression (unknown rule or no reason)"),
    "unused-suppression": ("VSL002", "meta",
                           "suppression that matches no finding"),
    "stale-baseline": ("VSL003", "meta",
                       "baseline entry no longer matches any finding"),
}

#: Meta rules cannot themselves be suppressed (that way lies recursion).
UNSUPPRESSABLE = frozenset({"bad-suppression", "unused-suppression",
                            "stale-baseline"})


@dataclass
class Finding:
    """One violation, stable across unrelated edits via ``fingerprint``."""

    rule: str                  # slug, key into RULES
    path: str                  # path as given on the command line
    line: int
    col: int
    message: str
    symbol: str = ""           # enclosing Class.func qualname, if any
    modname: str = ""          # dotted module name, e.g. repro.guest.cpu
    fingerprint: str = ""      # filled by finalize_fingerprints()
    baselined: bool = False

    @property
    def rule_id(self) -> str:
        return RULES[self.rule][0]

    @property
    def family(self) -> str:
        return RULES[self.rule][1]

    @property
    def doc_anchor(self) -> str:
        """Stable per-rule documentation link (INTERNALS rule catalogue)."""
        return f"docs/INTERNALS.md#{self.rule_id.lower()}"

    def render(self) -> str:
        where = f" [{self.symbol}]" if self.symbol else ""
        return (f"{self.path}:{self.line}:{self.col}: {self.rule_id} "
                f"({self.rule}) {self.message}{where} -> {self.doc_anchor}")

    def to_json(self) -> dict:
        return {
            "rule": self.rule,
            "rule_id": self.rule_id,
            "family": self.family,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "symbol": self.symbol,
            "module": self.modname,
            "message": self.message,
            "fingerprint": self.fingerprint,
            "baselined": self.baselined,
            "doc": self.doc_anchor,
        }


def finalize_fingerprints(findings: List[Finding]) -> None:
    """Assign line-number-independent fingerprints.

    The identity of a finding is (module, rule, enclosing symbol, message)
    plus an occurrence index among identical tuples, so a baseline survives
    unrelated edits that only shift line numbers.
    """
    seen: Dict[tuple, int] = {}
    for f in sorted(findings, key=lambda f: (f.path, f.line, f.col, f.rule)):
        key = (f.modname, f.rule, f.symbol, f.message)
        idx = seen.get(key, 0)
        seen[key] = idx + 1
        raw = "\x1f".join((f.modname, f.rule, f.symbol, f.message, str(idx)))
        f.fingerprint = hashlib.sha256(raw.encode("utf-8")).hexdigest()[:16]
