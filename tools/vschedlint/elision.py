"""Tickless catch-up discipline (VSL301).

Tick elision (INTERNALS §11) defers per-CPU tick arithmetic and replays it
on demand: the armed tick event sits at the elision horizon and
``GuestCpu._catch_up()`` materializes the skipped instants the moment
anything could observe them.  That is only sound if *every* reader or
mutator of tick-replayed state syncs first — a raw read sees the world as
of the last materialization, which an eager (non-elided) run would never
show.  The same pattern guards the host balance grid and DVFS logical
dues in ``hypervisor/machine.py``.

The rule: any function touching a field in ``config.ELISION_FIELDS`` must
contain a sync call (``_catch_up`` / ``sync_ticks`` /
``_note_host_waiting`` / ``materialize`` — the last is the engine-wide
replay the snapshot layer runs before freezing a world, INTERNALS §15)
textually before the first touch, unless the function is registered
elision machinery (``config.ELISION_EXEMPT``) or a constructor.  "Textually before" is a deliberate approximation — it keeps
the rule read-able and has no false negatives on straight-line prologues,
which is how every legitimate sync site in this tree is written.
"""

from __future__ import annotations

import ast
from typing import List, Optional, Tuple

from vschedlint import config
from vschedlint.findings import Finding


def check_elision_sync(module, findings: List[Finding]) -> None:
    exempt = set(config.ELISION_EXEMPT.get(module.modname, ()))

    for fn, qualname in module.functions():
        short = fn.name
        if short in config.ELISION_EXEMPT_EVERYWHERE or qualname in exempt:
            continue
        # Nested functions inherit nothing: a closure that fires later (an
        # engine callback) must sync for itself, so each def is checked on
        # its own body minus nested defs.
        touches = []
        sync = _first_sync_pos_own(fn)
        for pos, field in _field_touches_own(fn):
            if sync is None or pos < sync:
                touches.append((pos, field))
        seen = set()
        for pos, field in sorted(touches):
            if field in seen:
                continue
            seen.add(field)
            findings.append(Finding(
                "elision-sync", module.path, pos[0], pos[1],
                f"{qualname} touches tick-replayed field {field!r} without "
                f"a prior _catch_up()/sync_ticks() — elided ticks may not "
                f"have been materialized",
                symbol=qualname, modname=module.modname))


def _walk_own(fn: ast.AST):
    """Walk a function's body without descending into nested defs."""
    stack = list(ast.iter_child_nodes(fn))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


def _first_sync_pos_own(fn: ast.AST) -> Optional[Tuple[int, int]]:
    best = None
    for node in _walk_own(fn):
        if not isinstance(node, ast.Call):
            continue
        callee = node.func
        name = None
        if isinstance(callee, ast.Attribute):
            name = callee.attr
        elif isinstance(callee, ast.Name):
            name = callee.id
        if name in config.ELISION_SYNC_CALLS:
            pos = (node.lineno, node.col_offset)
            if best is None or pos < best:
                best = pos
    return best


def _field_touches_own(fn: ast.AST) -> List[Tuple[Tuple[int, int], str]]:
    out = []
    for node in _walk_own(fn):
        if isinstance(node, ast.Attribute) and (
                node.attr in config.ELISION_FIELDS):
            out.append(((node.lineno, node.col_offset), node.attr))
    return out
